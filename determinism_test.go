package main

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The characterization pipeline promises byte-identical output for a fixed
// seed: every stochastic component draws from an explicitly seeded
// dist.Rand and nothing touches math/rand global state (enforced by the
// seedhygiene analyzer in internal/analysis). These tests pin that promise
// for both binaries' code paths: cmd/experiments (RunAll) and
// cmd/characterize (per-figure Lookup/Run).

func TestExperimentsRunAllDeterministic(t *testing.T) {
	first, err := experiments.RunAll()
	if err != nil {
		t.Fatalf("first RunAll: %v", err)
	}
	second, err := experiments.RunAll()
	if err != nil {
		t.Fatalf("second RunAll: %v", err)
	}
	if first != second {
		t.Fatalf("RunAll output differs between runs:\n%s", firstDiff(first, second))
	}
}

func TestCharacterizationFiguresDeterministic(t *testing.T) {
	for i := 1; i <= 10; i++ {
		id := fmt.Sprintf("fig%d", i)
		e, err := experiments.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", id, err)
		}
		first, err := e.Run()
		if err != nil {
			t.Fatalf("%s first run: %v", id, err)
		}
		second, err := e.Run()
		if err != nil {
			t.Fatalf("%s second run: %v", id, err)
		}
		if first != second {
			t.Errorf("%s output differs between runs:\n%s", id, firstDiff(first, second))
		}
	}
}

// firstDiff points at the first line where two outputs diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run1: %q\n  run2: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
