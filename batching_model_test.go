package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Batched measured-vs-modeled validation, the batching counterpart of
// measured_model_test.go: coalescing B requests into one batched exchange
// amortizes the fixed per-exchange cost F (encode + frame + round trip)
// across the batch, so a round of B requests drops from B·(F + W) to
// F + B·W, where W is per-request handler work. The same amortization in
// the model is core.Model.Batched: with A = 1 (no accelerator, pure
// overhead amortization) and O0 calibrated to F, the model's
// BatchSpeedupGain predicts exactly B·(F+W)/(F+B·W). The measured round
// ratio must agree within the same 35% tolerance regime as
// measured_model_test.go.
const (
	batchB     = 8  // requests coalesced per batch
	batchWork  = 1  // W: spin units of handler work per request (keeps F/W large enough to amortize)
	batchRound = 25 // timing rounds; the minimum is compared
)

// minRoundTime runs rounds of fn and returns the fastest wall time. The
// minimum is the noise-floor estimator: systematic costs (framing, spin
// work, race instrumentation) survive it, scheduler preemption does not.
func minRoundTime(t *testing.T, rounds int, fn func()) float64 {
	t.Helper()
	fn() // warm up scheduler and code paths
	best := math.Inf(1)
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// batchModelClient serves a mutex-serialized spin handler (serialization
// keeps batched handler work additive, matching the model's single-core
// framing) and returns a connected client.
func batchModelClient(t *testing.T, units int) *rpc.Client {
	t.Helper()
	var mu sync.Mutex
	srv, err := rpc.NewServer(func(_ context.Context, m rpc.Message) (rpc.Message, error) {
		mu.Lock()
		spin(units)
		mu.Unlock()
		return m, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// measureRounds returns the noise-floor unbatched and batched round times for a
// handler doing units of work: an unbatched round is B sequential calls,
// a batched round one CallBatch of the same B requests.
func measureRounds(t *testing.T, units int) (unbatched, batched float64) {
	t.Helper()
	client := batchModelClient(t, units)
	reqs := make([]rpc.Message, batchB)
	for i := range reqs {
		reqs[i] = rpc.Message{Method: fmt.Sprintf("work/%d", i), Payload: []byte("x")}
	}
	unbatched = minRoundTime(t, batchRound, func() {
		for _, req := range reqs {
			if _, err := client.Call(req); err != nil {
				t.Fatal(err)
			}
		}
	})
	batched = minRoundTime(t, batchRound, func() {
		_, errs, err := client.CallBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("batched req %d: %v", i, e)
			}
		}
	})
	return unbatched, batched
}

func TestBatchedMeasuredSpeedupMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement")
	}

	// Calibrate from the null (zero-work) rounds and the unbatched work
	// round; the batched work round is the held-out measurement the model
	// must predict. A null unbatched round is B·(F + r): F the fixed cost
	// batching amortizes, r the per-member cost it cannot (decode, handler
	// dispatch — inflated under -race). A null batched round is F + B·r,
	// so the two null rounds separate the split: F = Δnull/(B−1).
	nullRound, nullBatched := measureRounds(t, 0)
	workRound, batchedRound := measureRounds(t, batchWork)
	perCall := nullRound / batchB
	amort := (nullRound - nullBatched) / (batchB - 1)
	if amort > perCall {
		amort = perCall // timing jitter; the whole exchange cost amortizes
	}
	resid := perCall - amort
	work := (workRound - nullRound) / batchB
	if work <= 0 || amort <= 0 {
		t.Fatalf("calibration degenerate: F=%.3gs r=%.3gs W=%.3gs", amort, resid, work)
	}

	// Model: N = B offloads of amortizable overhead O0 = F against
	// C = B·(W + r) serial work; A = 1 makes the alpha split irrelevant,
	// so the batching gain isolates overhead amortization.
	m := core.MustNew(core.Params{
		C:     batchB * (work + resid),
		Alpha: 0.5,
		N:     batchB,
		O0:    amort,
		A:     1,
	})
	predicted, err := m.BatchSpeedupGain(core.Sync, batchB)
	if err != nil {
		t.Fatal(err)
	}

	measured := workRound / batchedRound
	relErr := math.Abs(measured-predicted) / predicted
	t.Logf("rounds: null=%.4gs/%.4gs unbatched=%.4gs batched=%.4gs (F=%.3gs, r=%.3gs, W=%.3gs); measured gain %.3fx, model predicts %.3fx (rel err %.1f%%)",
		nullRound, nullBatched, workRound, batchedRound, amort, resid, work, measured, predicted, relErr*100)
	if relErr > 0.35 {
		t.Errorf("measured batching gain %.3fx disagrees with model prediction %.3fx (rel err %.1f%% > 35%%)",
			measured, predicted, relErr*100)
	}
	if measured <= 1 {
		t.Errorf("batching gained nothing: unbatched %.4gs vs batched %.4gs", workRound, batchedRound)
	}
}
