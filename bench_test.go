// Package repro's root bench suite regenerates every table and figure of
// the paper (run with `go test -bench=. -benchmem`). Each BenchmarkFigN /
// BenchmarkTableN target re-executes the corresponding experiment from
// internal/experiments; the first iteration of each prints the artifact so
// a bench run leaves a full paper regeneration in its log. Ablation
// benches probe the design choices called out in DESIGN.md, and the
// kernel micro-benchmarks ground the Cb (host cycles per byte) parameters
// the way the paper's micro-benchmarks do.
package main

import (
	"compress/flate"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// benchOutput prints each experiment's rendered artifact exactly once per
// bench binary run, however many times the harness re-invokes the bench.
var benchOutput sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, printed := benchOutput.LoadOrStore(id, true); !printed {
		b.Logf("%s: %s\n%s", e.ID, e.Title, out)
	}
}

// Characterization figures (§2).

func BenchmarkFig1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// Granularity CDFs (§4-§5).

func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig19(b *testing.B) { runExperiment(b, "fig19") }
func BenchmarkFig21(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B) { runExperiment(b, "fig22") }

// Case studies (§4).

func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// Model application (§5).

func BenchmarkFig20(b *testing.B) { runExperiment(b, "fig20") }

// Tables.

func BenchmarkTable1(b *testing.B) { runExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "tab5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "tab6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "tab7") }

// Ablations (DESIGN.md).

func BenchmarkAblationSelectiveOffload(b *testing.B) { runExperiment(b, "abl1") }
func BenchmarkAblationQueueModel(b *testing.B)       { runExperiment(b, "abl2") }
func BenchmarkAblationOversubscription(b *testing.B) { runExperiment(b, "abl3") }
func BenchmarkAblationPipelining(b *testing.B)       { runExperiment(b, "abl4") }

// Extensions beyond the paper.

func BenchmarkExtensionDesignSweep(b *testing.B)       { runExperiment(b, "ext1") }
func BenchmarkExtensionCombinedOffload(b *testing.B)   { runExperiment(b, "ext2") }
func BenchmarkExtensionAdvisor(b *testing.B)           { runExperiment(b, "ext3") }
func BenchmarkExtensionCapacityPlanning(b *testing.B)  { runExperiment(b, "ext4") }
func BenchmarkExtensionTailLatency(b *testing.B)       { runExperiment(b, "ext5") }
func BenchmarkExtensionUncertainty(b *testing.B)       { runExperiment(b, "ext6") }
func BenchmarkExtensionLatencyValidation(b *testing.B) { runExperiment(b, "ext7") }

// Model evaluation cost: the whole point of an analytical model is that it
// is effectively free compared to simulation.

func BenchmarkModelSpeedup(b *testing.B) {
	m := core.MustNew(core.Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, O1: 5750, A: 27})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Speedup(core.SyncOS); err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel micro-benchmarks grounding Cb, one per offloadable kernel the
// paper's recommendations target. Sizes follow the fleet's typical
// granularities (Figs 15, 19, 21, 22).

func benchSizes() []int { return []int{64, 512, 4096} }

func BenchmarkKernelMemoryCopy(b *testing.B) {
	for _, size := range benchSizes() {
		b.Run(fmt.Sprintf("g=%d", size), func(b *testing.B) {
			src := kernels.CompressibleData(size, 1)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				kernels.Copy(dst, src)
			}
		})
	}
}

func BenchmarkKernelMemorySet(b *testing.B) {
	for _, size := range benchSizes() {
		b.Run(fmt.Sprintf("g=%d", size), func(b *testing.B) {
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				kernels.Set(dst, byte(i))
			}
		})
	}
}

func BenchmarkKernelCompression(b *testing.B) {
	for _, size := range benchSizes() {
		b.Run(fmt.Sprintf("g=%d", size), func(b *testing.B) {
			src := kernels.CompressibleData(size, 1)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := kernels.Compress(src, flate.BestSpeed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelEncryption(b *testing.B) {
	c, err := kernels.NewCipher(make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	iv := make([]byte, 16)
	for _, size := range benchSizes() {
		b.Run(fmt.Sprintf("g=%d", size), func(b *testing.B) {
			buf := kernels.CompressibleData(size, 1)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := c.EncryptInPlace(iv, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelHashing(b *testing.B) {
	for _, size := range benchSizes() {
		b.Run(fmt.Sprintf("g=%d", size), func(b *testing.B) {
			buf := kernels.CompressibleData(size, 1)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				kernels.Hash(buf)
			}
		})
	}
}

func BenchmarkKernelAllocation(b *testing.B) {
	for _, sized := range []bool{false, true} {
		name := "unsized-free"
		if sized {
			name = "sized-free"
		}
		b.Run(name, func(b *testing.B) {
			arena := kernels.NewArena()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arena.Churn(1, 256, sized); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Telemetry overhead: an instrumented Call (span + stage children + stage
// histograms) versus the same Call with no Instrumentation attached. The
// disabled path must stay within noise of the pre-telemetry substrate —
// the nil-sink instruments are allocation-free (see
// telemetry.TestDisabledPathAllocationFree). scripts/bench.sh captures the
// pair into BENCH_telemetry.json.

func benchEchoClient(b *testing.B, ins *rpc.Instrumentation) *rpc.Client {
	b.Helper()
	srv, err := rpc.NewServer(func(_ context.Context, m rpc.Message) (rpc.Message, error) { return m, nil }, nil)
	if err != nil {
		b.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := rpc.NewClient(clientConn, nil)
	if err != nil {
		b.Fatal(err)
	}
	if ins != nil {
		client.Instrument(ins)
	}
	b.Cleanup(func() {
		if err := client.Close(); err != nil {
			b.Errorf("client close: %v", err)
		}
		if err := srv.Close(); err != nil {
			b.Errorf("server close: %v", err)
		}
	})
	return client
}

func benchCall(b *testing.B, client *rpc.Client) {
	b.Helper()
	ctx := context.Background()
	req := rpc.Message{Method: "echo", Payload: []byte("accelerometer")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallContext(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallDisabled(b *testing.B) {
	benchCall(b, benchEchoClient(b, nil))
}

func BenchmarkCallInstrumented(b *testing.B) {
	reg := telemetry.NewRegistry()
	mx, err := rpc.NewMetrics(reg, "bench_rpc")
	if err != nil {
		b.Fatal(err)
	}
	tracer := telemetry.NewTracer("bench")
	benchCall(b, benchEchoClient(b, &rpc.Instrumentation{Tracer: tracer, Metrics: mx}))
}

// Batching throughput: sequential small calls versus the same messages
// coalesced through the batch envelope, over a real TCP loopback so the
// per-exchange fixed cost (frame round trip + pipeline pass) is genuine.
// The 64-byte payload sits far below the fleet's break-even granularities
// (§2.4/Fig 15: most Copy/Alloc operations are this small), which is
// exactly the regime where the batched-offload model predicts the win.
// scripts/bench_batching.sh captures the pair into BENCH_batching.json and
// fails CI if the batched path is not ≥ 2× the unbatched one.

func benchTCPEchoClient(b *testing.B) *rpc.Client {
	b.Helper()
	srv, err := rpc.NewServer(func(_ context.Context, m rpc.Message) (rpc.Message, error) { return m, nil }, nil)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	client, err := rpc.NewClient(conn, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := client.Close(); err != nil {
			b.Errorf("client close: %v", err)
		}
		if err := srv.Close(); err != nil {
			b.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			b.Errorf("serve: %v", err)
		}
	})
	return client
}

const benchBatchSize = 16

func benchSmallReq() rpc.Message {
	return rpc.Message{Method: "echo", Payload: kernels.CompressibleData(64, 1)}
}

func BenchmarkCallSmallUnbatched(b *testing.B) {
	client := benchTCPEchoClient(b)
	req := benchSmallReq()
	b.SetBytes(int64(len(req.Payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallSmallBatched16(b *testing.B) {
	client := benchTCPEchoClient(b)
	reqs := make([]rpc.Message, benchBatchSize)
	for i := range reqs {
		reqs[i] = benchSmallReq()
	}
	b.SetBytes(int64(len(reqs[0].Payload)))
	b.ReportAllocs()
	b.ResetTimer()
	// b.N counts messages, not batches, so ns/op is directly comparable to
	// the unbatched benchmark.
	for sent := 0; sent < b.N; sent += benchBatchSize {
		n := benchBatchSize
		if rest := b.N - sent; rest < n {
			n = rest
		}
		_, errs, err := client.CallBatch(reqs[:n])
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
	}
}

// BenchmarkTelemetryDisabledSinks measures the pure instrumentation calls
// with nil sinks — what every Call pays when telemetry is off. Must report
// 0 B/op, 0 allocs/op (also asserted by telemetry.TestDisabledPathAllocationFree).
func BenchmarkTelemetryDisabledSinks(b *testing.B) {
	var (
		tr *telemetry.Tracer
		c  *telemetry.Counter
		h  *telemetry.Histogram
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("call")
		sp.ChildDone("stage", time.Time{}, 0)
		c.Inc()
		h.Record(1.0)
		sp.End()
	}
}
