package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/record"
	"repro/internal/sim"
)

// The scenario library: three named, checked-in request-stream traces
// (testdata/scenarios/*.trace) plus golden replay aggregates
// (golden.json). The traces are synthesized deterministically — run
//
//	UPDATE_SCENARIOS=1 go test -run TestScenario .
//
// to regenerate both after changing the synthesizer or the replay
// defaults. Every other benchmark and A/B in the repository can replay
// these byte-identical streams instead of re-drawing Poisson arrivals.

const (
	scenarioSeed   = 1234
	scenarioEvents = 2048
	scenarioDir    = "testdata/scenarios"
)

// scenarioReplayConfig is the fixed configuration the golden aggregates
// are recorded under: the default replay substrate plus a modest
// accelerator so offload counts are exercised too.
func scenarioReplayConfig() record.SimReplayConfig {
	return record.SimReplayConfig{
		Accel: &sim.Accel{A: 8, O0: 200, L: 500, Servers: 2},
	}
}

// scenarioGolden is one scenario's expected replay aggregate.
type scenarioGolden struct {
	Events    int     `json:"events"`
	Services  int     `json:"services"`
	Completed int     `json:"completed"`
	Offloads  int     `json:"offloads"`
	P50Cycles float64 `json:"p50_cycles"`
	P99Cycles float64 `json:"p99_cycles"`
	QPS       float64 `json:"throughput_qps"`
}

func updateScenarios() bool { return os.Getenv("UPDATE_SCENARIOS") == "1" }

func scenarioTracePath(name string) string {
	return filepath.Join(scenarioDir, name+".trace")
}

// TestScenarioTracesMatchSynthesis pins the checked-in traces to their
// synthesis recipe: each file must be byte-identical to
// Synthesize(name, scenarioSeed, scenarioEvents). This documents the
// provenance of the library and catches silent drift in either the
// synthesizer or the files.
func TestScenarioTracesMatchSynthesis(t *testing.T) {
	for _, name := range record.Scenarios {
		t.Run(name, func(t *testing.T) {
			tr, err := record.Synthesize(name, scenarioSeed, scenarioEvents)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tr.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := scenarioTracePath(name)
			if updateScenarios() {
				if err := os.MkdirAll(scenarioDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(want))
				return
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s diverges from its synthesis recipe (%d vs %d bytes); regenerate with UPDATE_SCENARIOS=1 if the synthesizer changed deliberately", path, len(got), len(want))
			}
		})
	}
}

// TestScenarioGoldenReplay replays every checked-in trace through the
// simulator twice and checks both runs agree with each other and with the
// golden aggregates — replay determinism, end to end from file bytes.
func TestScenarioGoldenReplay(t *testing.T) {
	goldenPath := filepath.Join(scenarioDir, "golden.json")
	got := map[string]scenarioGolden{}
	for _, name := range record.Scenarios {
		tr, err := record.ReadFile(scenarioTracePath(name))
		if err != nil {
			t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
		}
		a, err := record.ReplaySim(tr, scenarioReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := record.ReplaySim(tr, scenarioReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two replays of the same trace diverged", name)
		}
		got[name] = scenarioGolden{
			Events:    len(tr.Events),
			Services:  len(tr.Services),
			Completed: a.Aggregate.Completed,
			Offloads:  a.Aggregate.Offloads,
			P50Cycles: a.Aggregate.P50Latency,
			P99Cycles: a.Aggregate.P99Latency,
			QPS:       a.Aggregate.ThroughputQPS,
		}
	}
	if updateScenarios() {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
	}
	want := map[string]scenarioGolden{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay aggregates diverge from golden.json\ngot:  %+v\nwant: %+v\n(regenerate with UPDATE_SCENARIOS=1 if the replay substrate changed deliberately)", got, want)
	}
}

// TestScenarioBatchedABProof is the paired-comparison proof: the
// retry-storm trace replays through an unbatched sequential client and
// the coalescing batcher against the same in-process server, on
// byte-identical arrivals; both arms must issue every recorded event
// without error. The measured latency contrast is recorded in
// EXPERIMENTS.md.
func TestScenarioBatchedABProof(t *testing.T) {
	tr, err := record.ReadFile(scenarioTracePath("retry-storm"))
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SCENARIOS=1 to generate)", err)
	}
	res, err := record.ReplayAB(context.Background(), tr, record.ABConfig{Dilate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []struct {
		name string
		a    record.ABArm
	}{{"unbatched", res.Unbatched}, {"batched", res.Batched}} {
		if arm.a.Stats.Issued != len(tr.Events) || arm.a.Stats.Errors != 0 {
			t.Errorf("%s arm: issued %d of %d, %d errors — the arms must see identical streams",
				arm.name, arm.a.Stats.Issued, len(tr.Events), arm.a.Stats.Errors)
		}
	}
	t.Logf("unbatched mean %.3gms p99 %.3gms | batched mean %.3gms p99 %.3gms",
		res.Unbatched.Latency.Mean()/1e6, res.Unbatched.Latency.Quantile(0.99)/1e6,
		res.Batched.Latency.Mean()/1e6, res.Batched.Latency.Quantile(0.99)/1e6)
}
