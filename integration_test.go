package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Integration tests: build each binary once and drive it end to end,
// checking the output carries the paper's headline numbers.

// buildBinaries compiles all commands into a temp dir and returns their
// paths by name.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	names := []string{"accelerometer", "characterize", "experiments", "abtest", "advisor"}
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func run(t *testing.T, bin string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries")
	}
	bins := buildBinaries(t)

	t.Run("accelerometer", func(t *testing.T) {
		conf := "name = aesni\nC=2e9\nalpha=0.165844\nn=298951\no0=10\nL=3\nA=6\nthreading=sync\n"
		out := run(t, bins["accelerometer"], conf, "-config", "-", "-all")
		if !strings.Contains(out, "15.78") {
			t.Errorf("missing the 15.78%% AES-NI estimate:\n%s", out)
		}
		if !strings.Contains(out, "Sync-OS") {
			t.Errorf("-all should evaluate every design:\n%s", out)
		}
		// Errors exit non-zero.
		cmd := exec.Command(bins["accelerometer"], "-config", "/nonexistent")
		if err := cmd.Run(); err == nil {
			t.Error("missing config file: want non-zero exit")
		}

		// Sweep mode.
		out = run(t, bins["accelerometer"], conf, "-config", "-", "-sweep", "A", "-values", "1,6,100")
		if !strings.Contains(out, "100") || !strings.Contains(out, "Speedup %") {
			t.Errorf("sweep output:\n%s", out)
		}
		cmd = exec.Command(bins["accelerometer"], "-config", "-", "-sweep", "bogus", "-values", "1")
		cmd.Stdin = strings.NewReader(conf)
		if err := cmd.Run(); err == nil {
			t.Error("bogus sweep parameter: want non-zero exit")
		}
	})

	t.Run("experiments list and run", func(t *testing.T) {
		out := run(t, bins["experiments"], "", "-list")
		for _, id := range []string{"fig9", "tab6", "abl1", "ext5"} {
			if !strings.Contains(out, id) {
				t.Errorf("-list missing %s:\n%s", id, out)
			}
		}
		out = run(t, bins["experiments"], "", "-run", "tab7")
		if !strings.Contains(out, "compression") || !strings.Contains(out, "memory allocation") {
			t.Errorf("tab7 output:\n%s", out)
		}
	})

	t.Run("characterize", func(t *testing.T) {
		out := run(t, bins["characterize"], "", "-fig", "1")
		if !strings.Contains(out, "Orchestration") || !strings.Contains(out, "Web") {
			t.Errorf("fig1 output:\n%s", out)
		}
		// Profile dump round-trips through the profiler format.
		dir := t.TempDir()
		run(t, bins["characterize"], "", "-fig", "1", "-dump", dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 7 {
			t.Errorf("dumped %d profiles, want 7", len(entries))
		}
	})

	t.Run("abtest", func(t *testing.T) {
		out := run(t, bins["abtest"], "", "-case", "aesni", "-requests", "300", "-trials", "1")
		if !strings.Contains(out, "Model estimate %") || !strings.Contains(out, "15.78") {
			t.Errorf("abtest output:\n%s", out)
		}
	})

	t.Run("advisor", func(t *testing.T) {
		out := run(t, bins["advisor"], "", "-service", "Web")
		if !strings.Contains(out, "logs") {
			t.Errorf("Web advice should mention logging:\n%s", out)
		}
		cmd := exec.Command(bins["advisor"], "-service", "Nope")
		if err := cmd.Run(); err == nil {
			t.Error("unknown service: want non-zero exit")
		}
	})
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs examples")
	}
	examples := []struct{ name, needle string }{
		{"quickstart", "Amdahl bound"},
		{"aesni", "paper: 15.7%"},
		{"remoteinference", "SLO"},
		{"compressionsweep", "Recommendation"},
		{"fleetcharacterize", "Exercised"},
		{"capacityplan", "pays for itself"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+ex.name)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", ex.name, err, out)
			}
			if !strings.Contains(string(out), ex.needle) {
				t.Errorf("%s output missing %q:\n%s", ex.name, ex.needle, out)
			}
		})
	}
}
