// compressionsweep applies the model the way §5 does: given Feed1's
// compression workload and its measured granularity distribution, sweep
// the candidate acceleration designs (on-chip vs off-chip, Sync vs Sync-OS
// vs Async), project throughput and latency for each, and pick the best
// design that still reduces latency.
//
// Run with: go run ./examples/compressionsweep
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/services"
)

func main() {
	feed1, err := services.New(fleetdata.Feed1)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := feed1.MeasureSizes(kernels.Compression, 100000, 1)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := hist.CDF()
	if err != nil {
		log.Fatal(err)
	}
	workload := core.Workload{
		C:          2.3e9,
		KernelFrac: feed1.FunctionalityShare(fleetdata.FuncCompression) / 100,
		Invocation: 15008,
		Sizes:      sizes,
	}
	kernel := core.LinearKernel(5.6)

	designs := []struct {
		name string
		off  core.Offload
	}{
		{"on-chip Sync", core.Offload{Strategy: core.OnChip, Thread: core.Sync, A: 5, SelectiveOffload: true}},
		{"off-chip Sync", core.Offload{Strategy: core.OffChip, Thread: core.Sync, A: 27, L: 2300, SelectiveOffload: true}},
		{"off-chip Sync-OS", core.Offload{Strategy: core.OffChip, Thread: core.SyncOS, A: 27, L: 2300, O1: 5750, SelectiveOffload: true}},
		{"off-chip Async", core.Offload{Strategy: core.OffChip, Thread: core.AsyncSameThread, A: 27, L: 2300, SelectiveOffload: true}},
	}

	fmt.Printf("Feed1 compression: %.0f%% of cycles, %g invocations/sec, ideal bound %+.1f%%\n\n",
		workload.KernelFrac*100, workload.Invocation,
		100/(1-workload.KernelFrac)-100)

	best := -1
	bestSpeedup := 1.0
	for i, d := range designs {
		pr, err := core.Project(workload, kernel, d.off)
		if err != nil {
			log.Fatal(err)
		}
		be := "all sizes"
		if pr.BreakEvenG > 1 {
			be = fmt.Sprintf("g >= %.0f B (%.0f%% of offloads)",
				math.Ceil(pr.BreakEvenG), pr.OffloadedFraction*100)
		}
		fmt.Printf("%-18s throughput %+6.2f%%   latency %+6.2f%%   offloads: %s\n",
			d.name, pr.SpeedupPercent(), pr.LatencyReductionPercent(), be)
		if pr.Speedup > bestSpeedup && pr.LatencyReduction > 1 {
			best, bestSpeedup = i, pr.Speedup
		}
	}

	if best >= 0 {
		fmt.Printf("\nRecommendation: %s — the largest throughput win that also reduces latency.\n",
			designs[best].name)
	} else {
		fmt.Println("\nNo design improves both throughput and latency; keep compression on the host.")
	}
}
