// fleetcharacterize profiles one synthetic microservice the way §2 profiles
// the production fleet — functionality breakdown, leaf breakdown, copy-size
// CDF — and then genuinely exercises the service's orchestration path
// (serialize → compress → encrypt → hash → free) to show the substrate does
// real work, not just cycle accounting.
//
// Run with: go run ./examples/fleetcharacterize [-service Cache1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/profiler"
	"repro/internal/services"
	"repro/internal/textchart"
)

func main() {
	name := flag.String("service", "Cache1", "service to characterize (Web, Feed1, Feed2, Ads1, Ads2, Cache1, Cache2)")
	flag.Parse()

	svc, err := services.New(fleetdata.Service(*name))
	if err != nil {
		log.Fatal(err)
	}
	profile, err := svc.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		log.Fatal(err)
	}

	// Functionality breakdown (the Fig 9 view).
	shares := profile.FunctionalityBreakdown(profiler.NewFunctionalityBucketer())
	segs := make([]textchart.Segment, 0, len(shares))
	for _, s := range shares {
		if s.Percent >= 1 {
			segs = append(segs, textchart.Segment{Label: s.Category, Fraction: s.Percent / 100})
		}
	}
	bar, err := textchart.StackedBar(fmt.Sprintf("%s functionality breakdown", svc.Name), segs, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bar)

	// Leaf breakdown with IPC (the Fig 2/8 view).
	fmt.Printf("\nLeaf categories (GenC):\n")
	for _, s := range profile.LeafBreakdown(profiler.NewLeafTagger()) {
		if s.Percent >= 1 {
			fmt.Printf("  %-18s %5.1f%%   IPC %.2f\n", s.Category, s.Percent, s.IPC())
		}
	}

	// Copy-size distribution (the Fig 21 view).
	if hist, err := svc.MeasureSizes(kernels.MemoryCopy, 50000, 1); err == nil {
		if cdf, err := hist.CDF(); err == nil {
			fmt.Printf("\nMemory copies under 512 B: %.0f%% (mean %.0f B)\n",
				cdf.FractionBelow(512)*100, cdf.MeanSize())
		}
	}

	// Execute the real orchestration path.
	stats, err := svc.Exercise(500, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExercised %d real requests through the RPC substrate:\n", stats.Requests)
	fmt.Printf("  payload bytes %d -> wire bytes %d (compression %v, encryption %v)\n",
		stats.PayloadBytes, stats.WireBytes,
		stats.Pipeline.Compressions > 0, stats.Pipeline.Encryptions > 0)
	fmt.Printf("  copied %d B, hashed %d B, %d allocations via the size-class arena (%d freelist hits)\n",
		stats.BytesCopied, stats.BytesHashed, stats.Alloc.Allocs, stats.Alloc.FreeListHits)
}
