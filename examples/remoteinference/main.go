// remoteinference replays the paper's case study 3: Ads1 offloads its ML
// inference to a remote general-purpose CPU (A = 1) over the network with
// asynchronous APIs and a dedicated response thread. The host gains
// throughput because inference cycles leave the box, but each request pays
// a network traversal — so the example also checks a latency SLO before
// recommending the design, the way a service operator would.
//
// Run with: go run ./examples/remoteinference
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/sim"
)

func main() {
	cs := fleetdata.CaseStudies[2] // Inference for Ads1
	m, err := core.New(cs.Params)
	if err != nil {
		log.Fatal(err)
	}

	est, err := m.Speedup(cs.Threading)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ads1 remote inference (batched, %g offloads/sec, o0 = %.0fM cycles of extra IO):\n",
		cs.Params.N, cs.Params.O0/1e6)
	fmt.Printf("  model-estimated host throughput speedup: %+.2f%% (paper: %.2f%%, production: %.2f%%)\n\n",
		(est-1)*100, cs.EstimatedPct, cs.RealPct)

	// Latency check: simulate the request path. A remote CPU with A = 1
	// takes as long as local inference; the asynchronous send means the
	// host never blocks on the network (the model's L+Q = 0 for remote),
	// but each request still pays a ~10 ms traversal on its latency path,
	// which we add to the simulated request time below.
	const networkMs = 10.0
	p := cs.Params
	kernelCycles := p.Alpha * p.C / p.N
	nonKernel := (1 - p.Alpha) * p.C / p.N
	wl := sim.UniformWorkload{
		NonKernelCycles: nonKernel,
		KernelsPerReq:   1,
		KernelBytes:     uint64(kernelCycles / 50),
		Kernel:          core.LinearKernel(50),
	}

	base, err := sim.New(sim.Config{Cores: 1, Threads: 4, HostHz: p.C, Requests: 200, ContextSwitch: p.O1}, wl)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	accel, err := sim.New(sim.Config{
		Cores: 1, Threads: 4, HostHz: p.C, Requests: 200, ContextSwitch: p.O1,
		Accel: &sim.Accel{
			Threading: cs.Threading, Strategy: core.Remote,
			A: 1, O0: p.O0, L: 0, Servers: 8,
		},
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	accRes, err := accel.Run()
	if err != nil {
		log.Fatal(err)
	}

	speedup, err := accRes.Speedup(baseRes)
	if err != nil {
		log.Fatal(err)
	}
	baseMs := baseRes.MeanLatency / p.C * 1e3
	accMs := accRes.MeanLatency/p.C*1e3 + networkMs
	fmt.Printf("Simulated A/B: throughput %+.2f%%; mean request latency %.1f ms -> %.1f ms\n"+
		"(accelerated latency includes the %.0f ms network traversal)\n",
		(speedup-1)*100, baseMs, accMs, networkMs)

	const sloMs = 350.0
	if accMs <= sloMs {
		fmt.Printf("Latency SLO (%.0f ms): met — remote inference is deployable.\n", sloMs)
	} else {
		fmt.Printf("Latency SLO (%.0f ms): VIOLATED — replace the remote CPU (A = 1) with a real\n"+
			"inference accelerator (A > 1) to absorb the network traversal, as the paper suggests.\n", sloMs)
	}
}
