// Quickstart: estimate the speedup from offloading a compression kernel to
// an off-chip accelerator under the three microservice threading designs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A host spending 15% of its 2.3e9 cycles/sec compressing, in 15,008
	// invocations/sec, considering a PCIe accelerator 27x faster than the
	// host with a 2,300-cycle transfer cost per offload and 5,750-cycle
	// thread switches (the paper's Table 7 compression parameters).
	m, err := core.New(core.Params{
		C:     2.3e9,
		Alpha: 0.15,
		N:     15008,
		L:     2300,
		O1:    5750,
		A:     27,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Off-chip compression accelerator, by threading design:")
	for _, th := range []core.Threading{core.Sync, core.SyncOS, core.AsyncSameThread} {
		speedup, err := m.Speedup(th)
		if err != nil {
			log.Fatal(err)
		}
		latency, err := m.LatencyReduction(th, core.OffChip)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s throughput %+.1f%%   latency %+.1f%%\n",
			th, (speedup-1)*100, (latency-1)*100)
	}

	// How large must an offload be to pay for itself? (eqn 2)
	kernel := core.LinearKernel(5.6) // host cycles per compressed byte
	g, err := m.BreakEvenThroughputG(core.Sync, kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA Sync offload profits only at g >= %.0f bytes.\n", g)
	fmt.Printf("The Amdahl bound for this kernel is %+.1f%% — no accelerator can beat it.\n",
		(m.IdealSpeedup()-1)*100)
}
