// capacityplan walks the full decision loop a data-center operator would
// run: profile a service, get ranked acceleration recommendations, project
// the best one with the Accelerometer model, and turn the projection into
// a fleet provisioning plan — servers freed, accelerator devices needed,
// and the break-even device cost.
//
// Run with: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/profiler"
	"repro/internal/services"
)

func main() {
	// 1. Profile Feed1 and ask the advisor what to accelerate.
	feed1, err := services.New(fleetdata.Feed1)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := feed1.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := advisor.Analyze(advisor.Input{
		Service:       feed1.Name,
		Functionality: profile.FunctionalityBreakdown(profiler.NewFunctionalityBucketer()),
		Leaf:          profile.LeafBreakdown(profiler.NewLeafTagger()),
		MemoryLeaf:    profile.LeafFunctionBreakdown("mem", profiler.MemoryLabels, "Other"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Advisor findings for %s:\n", feed1.Name)
	for _, r := range recs {
		fmt.Printf("  [%s] %s\n", r.Severity, r.Finding)
	}

	// 2. Project the compression recommendation with the model.
	hist, err := feed1.MeasureSizes(kernels.Compression, 100000, 1)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := hist.CDF()
	if err != nil {
		log.Fatal(err)
	}
	pr, err := core.Project(core.Workload{
		C:          2.3e9,
		KernelFrac: feed1.FunctionalityShare(fleetdata.FuncCompression) / 100,
		Invocation: 15008,
		Sizes:      sizes,
	}, core.LinearKernel(5.6), core.Offload{
		Strategy: core.OffChip, Thread: core.AsyncSameThread,
		A: 27, L: 2300, SelectiveOffload: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOff-chip Async compression projection: %+.1f%% throughput, %+.1f%% latency\n",
		pr.SpeedupPercent(), pr.LatencyReductionPercent())

	// 3. Provision a 10,000-server installed base.
	plan, err := capacity.FromProjection(pr, 10000, 1.0e9, 0.6, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := capacity.Provision(plan)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := capacity.BreakEvenDeviceCost(res, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFleet plan for 10,000 servers at $10k each:\n")
	fmt.Printf("  servers after acceleration: %d (%d freed)\n", res.ServersAfter, res.ServersFreed)
	fmt.Printf("  accelerator devices: %d per server, %d total, %.1f%% utilized\n",
		res.DevicesPerServerNeeded, res.DevicesTotal, res.DeviceUtilization*100)
	fmt.Printf("  the deployment pays for itself if a device costs under $%.0f\n", cost)
	if !res.Feasible {
		fmt.Println("  WARNING: the per-server device budget is exceeded")
	}
}
