// aesni replays the paper's case study 1 end to end using the public
// pipeline: measure Cache1's encryption-size distribution (the bpftrace
// step), find the AES-NI break-even granularity, derive n and alpha for the
// profitable offloads, estimate speedup with the Accelerometer model, and
// validate against a paired simulation A/B test (the ODS step).
//
// Run with: go run ./examples/aesni
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/abtest"
	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/services"
	"repro/internal/sim"
)

func main() {
	// Step 1: identify offload sizes that improve speedup.
	cache1, err := services.New(fleetdata.Cache1)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := cache1.MeasureSizes(kernels.Encryption, 100000, 1)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := hist.CDF()
	if err != nil {
		log.Fatal(err)
	}

	params := core.Params{C: 2.0e9, Alpha: 0.165844, N: 298951, O0: 10, L: 3, A: 6}
	m, err := core.New(params)
	if err != nil {
		log.Fatal(err)
	}
	kernel := core.LinearKernel(5.5) // software AES cycles per byte
	breakEven, err := m.BreakEvenThroughputG(core.Sync, kernel)
	if err != nil {
		log.Fatal(err)
	}
	fraction := sizes.FractionAtLeast(uint64(math.Ceil(breakEven)))
	fmt.Printf("Step 1-2: AES-NI offloads profit at g >= %.0f B; %.1f%% of Cache1's\n"+
		"encryptions qualify (mean size %.0f B), so n = %.0f offloads/sec.\n\n",
		math.Ceil(breakEven), fraction*100, sizes.MeanSize(), params.N*fraction)

	// Step 3: model-estimated speedup.
	est, err := m.Speedup(core.Sync)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 3: Accelerometer estimates %+.1f%% (paper: 15.7%%).\n\n", (est-1)*100)

	// Step 4: compare with the simulated A/B test.
	factory := func(seed uint64) (sim.Workload, error) {
		return sim.NewSampledWorkload(5581, 1, kernel,
			fleetdata.EncryptionSizes[fleetdata.Cache1], 2000, seed)
	}
	base := sim.Config{Cores: 1, Threads: 1, HostHz: params.C, Requests: 2000}
	accel := base
	accel.Accel = &sim.Accel{
		Threading: core.Sync, Strategy: core.OnChip,
		A: 6, O0: 10, L: 3, Servers: 1,
	}
	comp, err := abtest.Run(base, accel, factory, 3)
	if err != nil {
		log.Fatal(err)
	}
	v, err := abtest.Validate(est, comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 4: paired A/B simulation measures %+.2f%% (model error %.2f%%;\n"+
		"the paper reported 14%% in production, a 1.7%% estimate error).\n\n",
		v.MeasuredPct, v.ErrorPct)

	// Step 5: the accelerated functionality breakdown (Fig 16's story).
	saved := (1 - 1/est) * 100
	fmt.Printf("Step 5: acceleration frees %.1f%% of Cache1's cycles for more requests.\n", saved)
}
