package dist

import (
	"fmt"
	"math"
)

// Rand is a small, deterministic pseudo-random generator (SplitMix64) used
// everywhere the reproduction needs randomness. Determinism matters: every
// experiment must regenerate the same rows on every run, so all stochastic
// components seed a Rand explicitly and nothing uses global randomness.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with the given value. Any seed,
// including zero, is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("dist: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// NormFloat64 returns a standard-normal value using the Box-Muller
// transform.
func (r *Rand) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Sampler draws event sizes from a CDF: it first picks a bucket according to
// the bucket masses, then a size uniformly within the bucket. For the final
// unbounded bucket it draws from [Lo, 2*Lo) so tail sizes remain plausible
// without an explicit upper bound.
type Sampler struct {
	cdf *CDF
	rng *Rand
}

// NewSampler returns a sampler over the CDF using the given generator.
func NewSampler(cdf *CDF, rng *Rand) (*Sampler, error) {
	if cdf == nil {
		return nil, fmt.Errorf("dist: nil CDF")
	}
	if rng == nil {
		return nil, fmt.Errorf("dist: nil Rand")
	}
	return &Sampler{cdf: cdf, rng: rng}, nil
}

// Sample returns one event size in bytes drawn from the distribution.
func (s *Sampler) Sample() uint64 {
	u := s.rng.Float64()
	layout := s.cdf.Layout()
	for i, b := range layout {
		if u <= s.cdf.Cumulative(i) || i == len(layout)-1 {
			if b.Hi == MaxSize {
				if b.Lo == 0 {
					return 0
				}
				return b.Lo + s.rng.Uint64n(b.Lo)
			}
			if w := b.Width(); w > 0 {
				return b.Lo + s.rng.Uint64n(w)
			}
			return b.Lo
		}
	}
	return 0
}

// SampleN draws n sizes and returns them; convenience for workload setup.
func (s *Sampler) SampleN(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}
