// Package dist provides empirical size distributions, bucketed histograms,
// and cumulative distribution functions (CDFs) used throughout the
// Accelerometer reproduction.
//
// The paper reports offload-granularity distributions as CDFs over byte-size
// buckets (Figures 15, 19, 21, and 22). This package models those
// distributions exactly as the paper presents them: a sequence of
// half-open byte ranges with a fraction of events per range, from which we
// can answer the questions the model needs — "what fraction of offloads is
// at least g bytes?" and "how many offloads above the break-even size occur
// per second?".
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bucket is a half-open byte-size range [Lo, Hi). A Hi of MaxSize means the
// bucket is unbounded above ("&gt;4K" style buckets in the paper).
type Bucket struct {
	Lo uint64 // inclusive lower bound in bytes
	Hi uint64 // exclusive upper bound in bytes; MaxSize means unbounded
}

// MaxSize marks an unbounded upper edge for the final bucket of a layout.
const MaxSize = math.MaxUint64

// Contains reports whether size falls inside the bucket.
func (b Bucket) Contains(size uint64) bool {
	return size >= b.Lo && (b.Hi == MaxSize || size < b.Hi)
}

// Width returns the bucket width in bytes; unbounded buckets report 0.
func (b Bucket) Width() uint64 {
	if b.Hi == MaxSize {
		return 0
	}
	return b.Hi - b.Lo
}

// String renders the bucket the way the paper labels its x-axes.
func (b Bucket) String() string {
	if b.Hi == MaxSize {
		return ">" + FormatBytes(b.Lo)
	}
	return FormatBytes(b.Lo) + "-" + FormatBytes(b.Hi)
}

// FormatBytes renders a byte count using the paper's axis style (512, 1K,
// 4K, 32K...). Values below 1024 print as plain integers.
func FormatBytes(n uint64) string {
	switch {
	case n == MaxSize:
		return "inf"
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Layout is an ordered, contiguous set of buckets covering [0, +inf).
type Layout []Bucket

// Validate checks that the layout is non-empty, contiguous, ascending, and
// ends with an unbounded bucket.
func (l Layout) Validate() error {
	if len(l) == 0 {
		return errors.New("dist: empty bucket layout")
	}
	if l[0].Lo != 0 {
		return fmt.Errorf("dist: layout must start at 0, got %d", l[0].Lo)
	}
	for i := 0; i < len(l)-1; i++ {
		if l[i].Hi == MaxSize {
			return fmt.Errorf("dist: unbounded bucket %d before end of layout", i)
		}
		if l[i].Hi <= l[i].Lo {
			return fmt.Errorf("dist: bucket %d has non-positive width", i)
		}
		if l[i].Hi != l[i+1].Lo {
			return fmt.Errorf("dist: gap between bucket %d and %d", i, i+1)
		}
	}
	if last := l[len(l)-1]; last.Hi != MaxSize {
		return fmt.Errorf("dist: layout must end unbounded, got hi=%d", last.Hi)
	}
	return nil
}

// Index returns the bucket index containing size. The layout must be valid.
func (l Layout) Index(size uint64) int {
	// Binary search over lower bounds.
	i := sort.Search(len(l), func(i int) bool { return l[i].Lo > size })
	return i - 1
}

// NewLayout builds a layout from ascending interior edges. Edges are the
// boundaries between buckets: NewLayout(4, 8) yields [0,4) [4,8) [8,inf).
func NewLayout(edges ...uint64) (Layout, error) {
	l := make(Layout, 0, len(edges)+1)
	lo := uint64(0)
	for _, e := range edges {
		if e <= lo {
			return nil, fmt.Errorf("dist: edges must be strictly ascending, got %d after %d", e, lo)
		}
		l = append(l, Bucket{Lo: lo, Hi: e})
		lo = e
	}
	l = append(l, Bucket{Lo: lo, Hi: MaxSize})
	return l, nil
}

// MustLayout is NewLayout that panics on invalid input; for package-level
// layout constants.
func MustLayout(edges ...uint64) Layout {
	l, err := NewLayout(edges...)
	if err != nil {
		panic(err)
	}
	return l
}

// Paper bucket layouts. Each matches the x-axis of the corresponding figure.
var (
	// EncryptionLayout matches Fig 15 (bytes encrypted in Cache1):
	// 0-4, 4-8, 8-16, ..., 2K-4K, >4K.
	EncryptionLayout = MustLayout(4, 8, 16, 32, 64, 128, 256, 512, 1<<10, 2<<10, 4<<10)

	// CompressionLayout matches Fig 19 (bytes compressed):
	// 0, 1-64, 64-128, ..., 16K-32K, >32K.
	CompressionLayout = MustLayout(1, 64, 128, 256, 512, 1<<10, 2<<10, 4<<10, 8<<10, 16<<10, 32<<10)

	// CopyAllocLayout matches Figs 21 and 22 (bytes copied / allocated):
	// 0, 1-64, 64-128, 128-256, 256-512, 512-1K, 1K-2K, 2K-4K, >4K.
	CopyAllocLayout = MustLayout(1, 64, 128, 256, 512, 1<<10, 2<<10, 4<<10)
)

// Histogram counts events per size bucket. The zero value is unusable; build
// one with NewHistogram.
type Histogram struct {
	layout Layout
	counts []uint64
	total  uint64
	sumSz  uint64 // sum of observed sizes, for mean
}

// NewHistogram returns an empty histogram over the given layout.
func NewHistogram(layout Layout) (*Histogram, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &Histogram{layout: layout, counts: make([]uint64, len(layout))}, nil
}

// MustHistogram is NewHistogram that panics on invalid layout.
func MustHistogram(layout Layout) *Histogram {
	h, err := NewHistogram(layout)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one event of the given size in bytes.
func (h *Histogram) Observe(size uint64) {
	h.counts[h.layout.Index(size)]++
	h.total++
	h.sumSz += size
}

// ObserveN records n events of the given size.
func (h *Histogram) ObserveN(size uint64, n uint64) {
	h.counts[h.layout.Index(size)] += n
	h.total += n
	h.sumSz += size * n
}

// Total returns the number of observed events.
func (h *Histogram) Total() uint64 { return h.total }

// MeanSize returns the mean observed size in bytes, or 0 with no events.
func (h *Histogram) MeanSize() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sumSz) / float64(h.total)
}

// Count returns the number of events in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Merge folds other's observations into h. The layouts must be identical.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.layout) != len(other.layout) {
		return fmt.Errorf("dist: merging histograms with %d vs %d buckets", len(h.layout), len(other.layout))
	}
	for i := range h.layout {
		if h.layout[i] != other.layout[i] {
			return fmt.Errorf("dist: merging histograms with different layouts at bucket %d", i)
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sumSz += other.sumSz
	return nil
}

// Layout returns the histogram's bucket layout.
func (h *Histogram) Layout() Layout { return h.layout }

// CDF converts the histogram into an empirical CDF. It returns an error if
// the histogram is empty.
func (h *Histogram) CDF() (*CDF, error) {
	if h.total == 0 {
		return nil, errors.New("dist: cannot build CDF from empty histogram")
	}
	fracs := make([]float64, len(h.counts))
	for i, c := range h.counts {
		fracs[i] = float64(c) / float64(h.total)
	}
	return NewCDF(h.layout, fracs)
}

// CDF is an empirical cumulative distribution over a bucket layout: the
// fraction of events whose size falls in each bucket, with cumulative sums
// precomputed. This is exactly the representation used by the paper's
// granularity figures.
type CDF struct {
	layout Layout
	frac   []float64 // per-bucket probability mass
	cum    []float64 // cum[i] = P(size < layout[i].Hi); cum[last] = 1
}

// NewCDF builds a CDF from a layout and per-bucket fractions. The fractions
// must sum to 1 within a small tolerance; they are renormalized exactly.
func NewCDF(layout Layout, fractions []float64) (*CDF, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if len(fractions) != len(layout) {
		return nil, fmt.Errorf("dist: %d fractions for %d buckets", len(fractions), len(layout))
	}
	sum := 0.0
	for i, f := range fractions {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("dist: invalid fraction %v in bucket %d", f, i)
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.02 {
		return nil, fmt.Errorf("dist: fractions sum to %.4f, want 1", sum)
	}
	c := &CDF{
		layout: layout,
		frac:   make([]float64, len(fractions)),
		cum:    make([]float64, len(fractions)),
	}
	run := 0.0
	for i, f := range fractions {
		c.frac[i] = f / sum
		run += c.frac[i]
		c.cum[i] = run
	}
	c.cum[len(c.cum)-1] = 1
	return c, nil
}

// MustCDF is NewCDF that panics on error; for package-level reference data.
func MustCDF(layout Layout, fractions []float64) *CDF {
	c, err := NewCDF(layout, fractions)
	if err != nil {
		panic(err)
	}
	return c
}

// Layout returns the CDF's bucket layout.
func (c *CDF) Layout() Layout { return c.layout }

// BucketFraction returns the probability mass of bucket i.
func (c *CDF) BucketFraction(i int) float64 { return c.frac[i] }

// Cumulative returns P(size < layout[i].Hi) for bucket i.
func (c *CDF) Cumulative(i int) float64 { return c.cum[i] }

// FractionAtLeast returns the fraction of events with size >= g. Within a
// bucket, mass is assumed uniformly distributed over the bucket's width
// (the final unbounded bucket contributes all of its mass when g <= Lo and
// none otherwise, since it has no modeled width).
func (c *CDF) FractionAtLeast(g uint64) float64 {
	if g == 0 {
		return 1
	}
	total := 0.0
	for i, b := range c.layout {
		switch {
		case g <= b.Lo:
			total += c.frac[i]
		case b.Hi != MaxSize && g < b.Hi:
			// Partial bucket: uniform interpolation.
			span := float64(b.Hi - b.Lo)
			total += c.frac[i] * float64(b.Hi-g) / span
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// FractionBelow returns the fraction of events with size < g.
func (c *CDF) FractionBelow(g uint64) float64 { return 1 - c.FractionAtLeast(g) }

// ByteFractionAtLeast returns the fraction of total bytes carried by events
// of size >= g (as opposed to FractionAtLeast, which counts events). Large
// events carry disproportionately many bytes, so this fraction is always at
// least the event fraction. Within a bucket, mass is uniform; the unbounded
// tail bucket contributes at its lower edge.
func (c *CDF) ByteFractionAtLeast(g uint64) float64 {
	total := c.MeanSize()
	if total == 0 {
		return 0
	}
	kept := 0.0
	for i, b := range c.layout {
		switch {
		case g <= b.Lo:
			if b.Hi == MaxSize {
				kept += c.frac[i] * float64(b.Lo)
			} else {
				kept += c.frac[i] * (float64(b.Lo) + float64(b.Hi)) / 2
			}
		case b.Hi != MaxSize && g < b.Hi:
			span := float64(b.Hi - b.Lo)
			evFrac := c.frac[i] * float64(b.Hi-g) / span
			kept += evFrac * (float64(g) + float64(b.Hi)) / 2
		}
	}
	f := kept / total
	if f > 1 {
		f = 1
	}
	return f
}

// Quantile returns the size s such that approximately a fraction q of events
// have size < s, using uniform interpolation within buckets. q must be in
// [0, 1]. For q landing in the final unbounded bucket, the bucket's lower
// edge is returned.
func (c *CDF) Quantile(q float64) (uint64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("dist: quantile %v out of [0,1]", q)
	}
	prev := 0.0
	for i, b := range c.layout {
		if q <= c.cum[i] || i == len(c.layout)-1 {
			if b.Hi == MaxSize || c.frac[i] == 0 {
				return b.Lo, nil
			}
			within := (q - prev) / c.frac[i]
			if within < 0 {
				within = 0
			}
			if within > 1 {
				within = 1
			}
			return b.Lo + uint64(within*float64(b.Hi-b.Lo)), nil
		}
		prev = c.cum[i]
	}
	return c.layout[len(c.layout)-1].Lo, nil
}

// MeanSize estimates the mean event size assuming uniform mass within each
// bounded bucket and using the lower edge for the unbounded tail bucket.
func (c *CDF) MeanSize() float64 {
	mean := 0.0
	for i, b := range c.layout {
		if b.Hi == MaxSize {
			mean += c.frac[i] * float64(b.Lo)
			continue
		}
		mean += c.frac[i] * (float64(b.Lo) + float64(b.Hi)) / 2
	}
	return mean
}

// Scale returns a new CDF with every bucket's mass multiplied by the given
// per-bucket weights and renormalized. Useful for "what if the workload
// shifted" ablations. The weights slice must match the layout length.
func (c *CDF) Scale(weights []float64) (*CDF, error) {
	if len(weights) != len(c.frac) {
		return nil, fmt.Errorf("dist: %d weights for %d buckets", len(weights), len(c.frac))
	}
	scaled := make([]float64, len(c.frac))
	sum := 0.0
	for i := range scaled {
		if weights[i] < 0 {
			return nil, fmt.Errorf("dist: negative weight %v at %d", weights[i], i)
		}
		scaled[i] = c.frac[i] * weights[i]
		sum += scaled[i]
	}
	if sum == 0 {
		return nil, errors.New("dist: scaling produced empty distribution")
	}
	for i := range scaled {
		scaled[i] /= sum
	}
	return NewCDF(c.layout, scaled)
}

// String renders the CDF as "bucket cumfrac" rows, matching the paper's
// figure axes.
func (c *CDF) String() string {
	var sb strings.Builder
	for i, b := range c.layout {
		fmt.Fprintf(&sb, "%-10s %.3f\n", b.String(), c.cum[i])
	}
	return sb.String()
}
