package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLayout(t *testing.T) {
	l, err := NewLayout(4, 8, 16)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	if len(l) != 4 {
		t.Fatalf("got %d buckets, want 4", len(l))
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := []Bucket{{0, 4}, {4, 8}, {8, 16}, {16, MaxSize}}
	for i, b := range l {
		if b != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, b, want[i])
		}
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(4, 4); err == nil {
		t.Error("duplicate edges: want error")
	}
	if _, err := NewLayout(8, 4); err == nil {
		t.Error("descending edges: want error")
	}
	if _, err := NewLayout(0); err == nil {
		t.Error("zero edge: want error")
	}
}

func TestLayoutValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		l    Layout
	}{
		{"empty", Layout{}},
		{"not starting at zero", Layout{{1, MaxSize}}},
		{"gap", Layout{{0, 4}, {8, MaxSize}}},
		{"bounded end", Layout{{0, 4}, {4, 8}}},
		{"interior unbounded", Layout{{0, MaxSize}, {4, MaxSize}}},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestLayoutIndex(t *testing.T) {
	l := MustLayout(4, 8, 16)
	cases := []struct {
		size uint64
		want int
	}{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {15, 2}, {16, 3}, {1 << 40, 3},
	}
	for _, tc := range cases {
		if got := l.Index(tc.size); got != tc.want {
			t.Errorf("Index(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestBucketString(t *testing.T) {
	cases := []struct {
		b    Bucket
		want string
	}{
		{Bucket{0, 4}, "0-4"},
		{Bucket{512, 1 << 10}, "512-1K"},
		{Bucket{1 << 10, 2 << 10}, "1K-2K"},
		{Bucket{4 << 10, MaxSize}, ">4K"},
		{Bucket{1 << 20, 2 << 20}, "1M-2M"},
	}
	for _, tc := range cases {
		if got := tc.b.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", tc.b, got, tc.want)
		}
	}
}

func TestHistogramObserveAndCDF(t *testing.T) {
	h := MustHistogram(MustLayout(4, 8))
	h.Observe(1)
	h.Observe(2)
	h.Observe(5)
	h.ObserveN(10, 2)
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if got, want := h.MeanSize(), (1.0+2+5+10+10)/5; got != want {
		t.Errorf("MeanSize = %v, want %v", got, want)
	}
	c, err := h.CDF()
	if err != nil {
		t.Fatalf("CDF: %v", err)
	}
	if got := c.BucketFraction(0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("frac[0] = %v, want 0.4", got)
	}
	if got := c.Cumulative(2); got != 1 {
		t.Errorf("cum[last] = %v, want 1", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram(MustLayout(4, 8))
	b := MustHistogram(MustLayout(4, 8))
	a.Observe(2)
	b.Observe(6)
	b.ObserveN(10, 3)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Total() != 5 {
		t.Errorf("merged total = %d, want 5", a.Total())
	}
	if got, want := a.MeanSize(), (2.0+6+30)/5; got != want {
		t.Errorf("merged mean = %v, want %v", got, want)
	}
	if a.Count(2) != 3 {
		t.Errorf("tail count = %d, want 3", a.Count(2))
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	// Mismatched layouts are rejected.
	c := MustHistogram(MustLayout(16))
	if err := a.Merge(c); err == nil {
		t.Error("mismatched bucket count: want error")
	}
	d := MustHistogram(MustLayout(4, 16))
	if err := a.Merge(d); err == nil {
		t.Error("mismatched edges: want error")
	}
}

func TestEmptyHistogramCDF(t *testing.T) {
	h := MustHistogram(MustLayout(4))
	if _, err := h.CDF(); err == nil {
		t.Error("empty histogram: want error")
	}
}

func TestNewCDFValidation(t *testing.T) {
	l := MustLayout(4, 8)
	if _, err := NewCDF(l, []float64{0.5, 0.5}); err == nil {
		t.Error("wrong fraction count: want error")
	}
	if _, err := NewCDF(l, []float64{0.5, 0.5, 0.5}); err == nil {
		t.Error("sum 1.5: want error")
	}
	if _, err := NewCDF(l, []float64{-0.1, 0.6, 0.5}); err == nil {
		t.Error("negative fraction: want error")
	}
	if _, err := NewCDF(l, []float64{0.2, 0.3, 0.5}); err != nil {
		t.Errorf("valid CDF: %v", err)
	}
}

func TestCDFFractionAtLeast(t *testing.T) {
	c := MustCDF(MustLayout(4, 8), []float64{0.25, 0.25, 0.5})
	cases := []struct {
		g    uint64
		want float64
	}{
		{0, 1},
		{4, 0.75},
		{6, 0.625}, // half of the [4,8) bucket remains
		{8, 0.5},
		{100, 0}, // tail bucket has no modeled width above Lo
	}
	for _, tc := range cases {
		if got := c.FractionAtLeast(tc.g); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("FractionAtLeast(%d) = %v, want %v", tc.g, got, tc.want)
		}
	}
	if got := c.FractionBelow(8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionBelow(8) = %v, want 0.5", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := MustCDF(MustLayout(4, 8), []float64{0.25, 0.25, 0.5})
	q, err := c.Quantile(0.25)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if q != 4 {
		t.Errorf("Quantile(0.25) = %d, want 4", q)
	}
	q, _ = c.Quantile(0.5)
	if q != 8 {
		t.Errorf("Quantile(0.5) = %d, want 8", q)
	}
	q, _ = c.Quantile(0.99) // falls in unbounded tail bucket
	if q != 8 {
		t.Errorf("Quantile(0.99) = %d, want 8 (tail lower edge)", q)
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5): want error")
	}
	if _, err := c.Quantile(math.NaN()); err == nil {
		t.Error("Quantile(NaN): want error")
	}
}

func TestByteFractionAtLeast(t *testing.T) {
	c := MustCDF(MustLayout(4, 8), []float64{0.5, 0.5, 0})
	// Bytes: 0.5*2 + 0.5*6 = 4 total; events >= 4 carry 3 bytes.
	if got := c.ByteFractionAtLeast(4); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ByteFractionAtLeast(4) = %v, want 0.75", got)
	}
	if got := c.ByteFractionAtLeast(0); got != 1 {
		t.Errorf("ByteFractionAtLeast(0) = %v, want 1", got)
	}
	// Byte fraction always dominates event fraction.
	for _, g := range []uint64{1, 2, 4, 6, 8} {
		if c.ByteFractionAtLeast(g)+1e-12 < c.FractionAtLeast(g) {
			t.Errorf("byte fraction below event fraction at g=%d", g)
		}
	}
	// Empty distribution (all mass at size 0): no bytes at all.
	z := MustCDF(MustLayout(4), []float64{1, 0})
	_ = z.ByteFractionAtLeast(1) // must not panic or divide by zero
}

func TestCDFMeanSize(t *testing.T) {
	c := MustCDF(MustLayout(4, 8), []float64{0.5, 0.5, 0})
	// 0.5*2 + 0.5*6 = 4
	if got := c.MeanSize(); math.Abs(got-4) > 1e-12 {
		t.Errorf("MeanSize = %v, want 4", got)
	}
}

func TestCDFScale(t *testing.T) {
	c := MustCDF(MustLayout(4, 8), []float64{0.25, 0.25, 0.5})
	s, err := c.Scale([]float64{0, 1, 1})
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	if got := s.BucketFraction(0); got != 0 {
		t.Errorf("scaled frac[0] = %v, want 0", got)
	}
	if got := s.BucketFraction(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("scaled frac[2] = %v, want 2/3", got)
	}
	if _, err := c.Scale([]float64{1, 1}); err == nil {
		t.Error("short weights: want error")
	}
	if _, err := c.Scale([]float64{0, 0, 0}); err == nil {
		t.Error("all-zero weights: want error")
	}
	if _, err := c.Scale([]float64{-1, 1, 1}); err == nil {
		t.Error("negative weight: want error")
	}
}

func TestPaperLayoutsValid(t *testing.T) {
	for _, l := range []Layout{EncryptionLayout, CompressionLayout, CopyAllocLayout} {
		if err := l.Validate(); err != nil {
			t.Errorf("paper layout invalid: %v", err)
		}
	}
	if len(EncryptionLayout) != 12 {
		t.Errorf("EncryptionLayout has %d buckets, want 12 (Fig 15)", len(EncryptionLayout))
	}
	if len(CompressionLayout) != 12 {
		t.Errorf("CompressionLayout has %d buckets, want 12 (Fig 19)", len(CompressionLayout))
	}
	if len(CopyAllocLayout) != 9 {
		t.Errorf("CopyAllocLayout has %d buckets, want 9 (Figs 21-22)", len(CopyAllocLayout))
	}
}

// Property: FractionAtLeast is monotonically non-increasing in g.
func TestFractionAtLeastMonotonic(t *testing.T) {
	c := MustCDF(CompressionLayout, []float64{0.05, 0.1, 0.1, 0.1, 0.15, 0.1, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05})
	f := func(a, b uint32) bool {
		ga, gb := uint64(a), uint64(b)
		if ga > gb {
			ga, gb = gb, ga
		}
		return c.FractionAtLeast(ga)+1e-12 >= c.FractionAtLeast(gb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any histogram contents, CDF cumulative ends at exactly 1 and
// bucket fractions are non-negative.
func TestHistogramCDFProperties(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		h := MustHistogram(CopyAllocLayout)
		for _, s := range sizes {
			h.Observe(uint64(s))
		}
		c, err := h.CDF()
		if err != nil {
			return false
		}
		for i := range c.Layout() {
			if c.BucketFraction(i) < 0 {
				return false
			}
		}
		return c.Cumulative(len(c.Layout())-1) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and FractionBelow approximately invert each other.
func TestQuantileInverse(t *testing.T) {
	c := MustCDF(MustLayout(64, 256, 1024), []float64{0.3, 0.3, 0.3, 0.1})
	for _, q := range []float64{0.1, 0.3, 0.45, 0.6, 0.85} {
		s, err := c.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		got := c.FractionBelow(s)
		if math.Abs(got-q) > 0.02 {
			t.Errorf("FractionBelow(Quantile(%v)) = %v, want ~%v", q, got, q)
		}
	}
}
