package dist

import (
	"errors"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics over a sample of float64
// observations; used by the A/B test harness and the simulator's latency
// accounting.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary for the sample. It returns an error for an
// empty sample.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, errors.New("dist: empty sample")
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)

	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	var sd float64
	if len(sorted) > 1 {
		sd = math.Sqrt(varSum / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: sd,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentileSorted(sorted, 0.50),
		P95:    percentileSorted(sorted, 0.95),
		P99:    percentileSorted(sorted, 0.99),
	}, nil
}

// percentileSorted returns the p-quantile of an ascending sample using
// nearest-rank with linear interpolation.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the sample mean and the half-width of its two-sided 95%
// confidence interval (normal approximation). Used by the A/B harness to
// decide whether a measured throughput delta is significant.
func MeanCI(sample []float64) (mean, halfWidth float64, err error) {
	s, err := Summarize(sample)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return s.Mean, math.Inf(1), nil
	}
	return s.Mean, 1.96 * s.Stddev / math.Sqrt(float64(s.N)), nil
}

// RelativeError returns |got-want| / |want|. It reports 0 when both are
// zero and +Inf when only want is zero; callers use it to express
// "model-estimated speedup differs from measured speedup by x%".
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
