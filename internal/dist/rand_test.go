package dist

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) hit %d distinct values, want 5", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0): want panic")
		}
	}()
	r.Intn(0)
}

func TestRandUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0): want panic")
		}
	}()
	NewRand(1).Uint64n(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(99)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(5)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestSamplerMatchesCDF(t *testing.T) {
	c := MustCDF(MustLayout(64, 256), []float64{0.5, 0.3, 0.2})
	s, err := NewSampler(c, NewRand(11))
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	n := 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[c.Layout().Index(s.Sample())]++
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestSamplerTailBucketBounded(t *testing.T) {
	c := MustCDF(MustLayout(1024), []float64{0, 1})
	s, _ := NewSampler(c, NewRand(3))
	for i := 0; i < 1000; i++ {
		v := s.Sample()
		if v < 1024 || v >= 2048 {
			t.Fatalf("tail sample %d out of [1024, 2048)", v)
		}
	}
}

func TestSamplerErrors(t *testing.T) {
	c := MustCDF(MustLayout(4), []float64{0.5, 0.5})
	if _, err := NewSampler(nil, NewRand(1)); err == nil {
		t.Error("nil CDF: want error")
	}
	if _, err := NewSampler(c, nil); err == nil {
		t.Error("nil Rand: want error")
	}
}

func TestSampleN(t *testing.T) {
	c := MustCDF(MustLayout(4), []float64{1, 0})
	s, _ := NewSampler(c, NewRand(1))
	out := s.SampleN(10)
	if len(out) != 10 {
		t.Fatalf("SampleN returned %d values", len(out))
	}
	for _, v := range out {
		if v >= 4 {
			t.Errorf("sample %d outside only populated bucket [0,4)", v)
		}
	}
}
