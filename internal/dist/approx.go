package dist

import "math"

// Epsilon comparison helpers. Exact float equality is banned throughout the
// repository (enforced by the floatcmp analyzer in internal/analysis);
// model code compares through these instead so projections stay stable
// under rounding and re-association.

// DefaultEps is the absolute/relative tolerance used when a caller has no
// domain-specific one. It is generous enough for accumulated float64 model
// arithmetic and far finer than any quantity the paper reports.
const DefaultEps = 1e-9

// AlmostEqual reports whether a and b are equal within eps, using an
// absolute comparison near zero and a relative one elsewhere. NaN is never
// almost-equal to anything; equal infinities are.
func AlmostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //modelcheck:ignore floatcmp — the exact fast path, incl. infinities
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		return false
	}
	norm := math.Max(math.Abs(a), math.Abs(b))
	if norm <= 1 {
		return diff <= eps
	}
	return diff <= eps*norm
}

// WithinRel reports whether got is within relative tolerance rel of want;
// it is the boolean companion of RelativeError and follows its zero/Inf
// conventions.
func WithinRel(got, want, rel float64) bool {
	return RelativeError(got, want) <= rel
}

// IsZero reports whether x is within DefaultEps of zero — the idiomatic
// replacement for `x == 0` sentinel checks on computed values.
func IsZero(x float64) bool {
	return math.Abs(x) <= DefaultEps
}
