package dist

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		{"identical", 1.5, 1.5, DefaultEps, true},
		{"within absolute eps near zero", 1e-12, -1e-12, 1e-9, true},
		{"outside absolute eps near zero", 1e-6, 0, 1e-9, false},
		{"relative tolerance on large values", 1e15, 1e15 * (1 + 1e-12), 1e-9, true},
		{"outside relative tolerance", 100, 101, 1e-9, false},
		{"accumulated rounding", 0.1 + 0.2, 0.3, DefaultEps, true},
		{"equal infinities", math.Inf(1), math.Inf(1), DefaultEps, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), DefaultEps, false},
		{"infinity vs finite", math.Inf(1), 1e300, DefaultEps, false},
		{"nan never equal", math.NaN(), math.NaN(), DefaultEps, false},
		{"nan vs value", math.NaN(), 1, DefaultEps, false},
	}
	for _, tc := range cases {
		if got := AlmostEqual(tc.a, tc.b, tc.eps); got != tc.want {
			t.Errorf("%s: AlmostEqual(%v, %v, %v) = %v, want %v", tc.name, tc.a, tc.b, tc.eps, got, tc.want)
		}
	}
}

func TestWithinRel(t *testing.T) {
	if !WithinRel(101, 100, 0.02) {
		t.Error("101 should be within 2% of 100")
	}
	if WithinRel(103, 100, 0.02) {
		t.Error("103 should not be within 2% of 100")
	}
	if !WithinRel(0, 0, 0) {
		t.Error("both zero should be within any tolerance")
	}
	if WithinRel(1, 0, 0.5) {
		t.Error("nonzero vs zero want should never be within a relative tolerance")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(1e-12) || !IsZero(-1e-12) {
		t.Error("values within DefaultEps of zero should report zero")
	}
	if IsZero(1e-6) || IsZero(math.Inf(1)) || IsZero(math.NaN()) {
		t.Error("values beyond DefaultEps of zero should not report zero")
	}
}
