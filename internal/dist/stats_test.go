package dist

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Stddev != 0 || s.P99 != 7 || s.P50 != 7 {
		t.Errorf("single-value summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentiles(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i + 1) // 1..100
	}
	s, _ := Summarize(sample)
	if math.Abs(s.P95-95.05) > 0.5 {
		t.Errorf("P95 = %v, want ~95", s.P95)
	}
	if math.Abs(s.P99-99.01) > 0.5 {
		t.Errorf("P99 = %v, want ~99", s.P99)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw, err := MeanCI([]float64{10, 10, 10, 10})
	if err != nil {
		t.Fatalf("MeanCI: %v", err)
	}
	if mean != 10 || hw != 0 {
		t.Errorf("constant sample: mean=%v hw=%v", mean, hw)
	}
	_, hw, err = MeanCI([]float64{5})
	if err != nil {
		t.Fatalf("MeanCI single: %v", err)
	}
	if !math.IsInf(hw, 1) {
		t.Errorf("single sample half-width = %v, want +Inf", hw)
	}
	if _, _, err := MeanCI(nil); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		got, want, expect float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{0, 0, 0},
		{100, 100, 0},
	}
	for _, tc := range cases {
		if got := RelativeError(tc.got, tc.want); math.Abs(got-tc.expect) > 1e-12 {
			t.Errorf("RelativeError(%v,%v) = %v, want %v", tc.got, tc.want, got, tc.expect)
		}
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("RelativeError(1,0) should be +Inf")
	}
}
