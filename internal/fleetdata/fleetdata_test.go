package fleetdata

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestServicesValid(t *testing.T) {
	if len(Services) != 7 {
		t.Fatalf("got %d services, want the paper's 7", len(Services))
	}
	for _, s := range Services {
		if !s.Valid() {
			t.Errorf("service %q invalid", s)
		}
	}
	if !Cache3.Valid() {
		t.Error("Cache3 must be valid (case study 2)")
	}
	if Service("Nope").Valid() {
		t.Error("unknown service must be invalid")
	}
}

func TestAllBreakdownsSumTo100(t *testing.T) {
	check := func(name string, b Breakdown) {
		t.Helper()
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for s, b := range FunctionalityBreakdowns {
		check("functionality/"+string(s), b)
	}
	for s, b := range LeafBreakdowns {
		check("leaf/"+string(s), b)
	}
	check("leaf/google", GoogleLeafBreakdown)
	for n, b := range SPECLeafBreakdowns {
		check("leaf/"+n, b)
	}
	for s, b := range MemoryBreakdowns {
		check("memory/"+string(s), b)
	}
	check("memory/google", GoogleMemoryBreakdown)
	for n, b := range SPECMemoryBreakdowns {
		check("memory/"+n, b)
	}
	for s, b := range CopyOrigins {
		check("copyorigin/"+string(s), b)
	}
	for s, b := range KernelBreakdowns {
		check("kernel/"+string(s), b)
	}
	check("kernel/google", GoogleKernelBreakdown)
	for s, b := range SyncBreakdowns {
		check("sync/"+string(s), b)
	}
	for s, b := range CLibBreakdowns {
		check("clib/"+string(s), b)
	}
}

func TestAllSevenServicesCovered(t *testing.T) {
	for _, s := range Services {
		for name, m := range map[string]map[Service]Breakdown{
			"functionality": FunctionalityBreakdowns,
			"leaf":          LeafBreakdowns,
			"memory":        MemoryBreakdowns,
			"copy origins":  CopyOrigins,
			"kernel":        KernelBreakdowns,
			"sync":          SyncBreakdowns,
			"clib":          CLibBreakdowns,
		} {
			if _, ok := m[s]; !ok {
				t.Errorf("%s breakdown missing service %s", name, s)
			}
		}
		if _, ok := CopySizes[s]; !ok {
			t.Errorf("copy sizes missing %s", s)
		}
		if _, ok := AllocSizes[s]; !ok {
			t.Errorf("alloc sizes missing %s", s)
		}
	}
}

// Text anchors from §2.4 (Fig 9).
func TestFunctionalityAnchors(t *testing.T) {
	web := FunctionalityBreakdowns[Web]
	if got := web.Share(FuncAppLogic); got != 18 {
		t.Errorf("Web app logic = %v%%, paper states 18%%", got)
	}
	if got := web.Share(FuncLogging); got != 23 {
		t.Errorf("Web logging = %v%%, paper states 23%%", got)
	}
	if got := FunctionalityBreakdowns[Cache2].Share(FuncIO); got != 52 {
		t.Errorf("Cache2 IO = %v%%, paper states 52%%", got)
	}
	if got := FunctionalityBreakdowns[Feed1].Share(FuncCompression); got != 15 {
		t.Errorf("Feed1 compression = %v%%, Table 7 states 15%%", got)
	}
	// Ads1 inference fraction matches Table 6's α = 0.52.
	if got := FunctionalityBreakdowns[Ads1].Share(FuncPrediction); got != 52 {
		t.Errorf("Ads1 prediction = %v%%, Table 6 α = 0.52", got)
	}
	// Thread-pool overhead is high for Ads1, Feed2, Cache1, Feed1 (§2.4).
	for _, s := range []Service{Ads1, Feed2, Cache1, Feed1} {
		if got := FunctionalityBreakdowns[s].Share(FuncThreadPool); got < 5 {
			t.Errorf("%s thread pool = %v%%, expected high (≥5)", s, got)
		}
	}
	for _, s := range []Service{Web, Ads2, Cache2} {
		if got := FunctionalityBreakdowns[s].Share(FuncThreadPool); got >= 5 {
			t.Errorf("%s thread pool = %v%%, expected low (<5)", s, got)
		}
	}
}

// §2.4: ML services spend 33-58% on inference, so ideal inference
// acceleration improves them by 1.49x-2.38x, and orchestration (everything
// but inference and core app logic) spans 42-67%.
func TestMLInferenceBounds(t *testing.T) {
	ml := []Service{Feed1, Feed2, Ads1, Ads2}
	minBound, maxBound := math.Inf(1), 0.0
	minOrch, maxOrch := math.Inf(1), 0.0
	for _, s := range ml {
		b := FunctionalityBreakdowns[s]
		inf := b.Share(FuncPrediction)
		if inf < 33 || inf > 58 {
			t.Errorf("%s inference = %v%%, want within [33, 58]", s, inf)
		}
		bound := 1 / (1 - inf/100)
		minBound = math.Min(minBound, bound)
		maxBound = math.Max(maxBound, bound)
		orch := 100 - inf - b.Share(FuncAppLogic)
		minOrch = math.Min(minOrch, orch)
		maxOrch = math.Max(maxOrch, orch)
	}
	if math.Abs(minBound-1.49) > 0.02 {
		t.Errorf("min ideal inference speedup = %vx, paper states 1.49x", minBound)
	}
	if math.Abs(maxBound-2.38) > 0.02 {
		t.Errorf("max ideal inference speedup = %vx, paper states 2.38x", maxBound)
	}
	if math.Abs(minOrch-42) > 1 || math.Abs(maxOrch-67) > 1 {
		t.Errorf("orchestration range = [%v, %v]%%, paper states 42-67%%", minOrch, maxOrch)
	}
}

// Fig 1: orchestration dominates; Web/Cache app-logic shares are small.
func TestAppLogicShares(t *testing.T) {
	for _, s := range Services {
		share, err := AppLogicShare(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if share >= 70 {
			t.Errorf("%s app logic = %v%%, orchestration should dominate", s, share)
		}
	}
	if share, _ := AppLogicShare(Web); share != 18 {
		t.Errorf("Web Fig 1 app logic = %v%%, want 18", share)
	}
	if _, err := AppLogicShare(Service("Nope")); err == nil {
		t.Error("unknown service: want error")
	}
	// §2: "microservices spend as few as 18% of CPU cycles executing core
	// application logic" — 18% must be the fleet minimum.
	min := 100.0
	for _, s := range Services {
		share, _ := AppLogicShare(s)
		min = math.Min(min, share)
	}
	if min != 18 {
		t.Errorf("fleet-minimum app logic = %v%%, paper states 18%%", min)
	}
}

// Fig 2/3 anchors.
func TestLeafAnchors(t *testing.T) {
	if got := LeafBreakdowns[Web].Share(LeafMemory); got != 37 {
		t.Errorf("Web memory = %v%%, Fig 3 Net states 37%%", got)
	}
	if got := LeafBreakdowns[Cache1].Share(LeafSSL); got != 6 {
		t.Errorf("Cache1 SSL = %v%%, paper states 6%%", got)
	}
	if got := GoogleLeafBreakdown.Share(LeafMemory); got != 13 {
		t.Errorf("Google memory = %v%%, paper states 13%%", got)
	}
	// Cache tiers have the highest kernel shares (frequent context
	// switches at high service throughput).
	cacheMin := math.Min(LeafBreakdowns[Cache1].Share(LeafKernel), LeafBreakdowns[Cache2].Share(LeafKernel))
	for _, s := range []Service{Web, Feed1, Feed2, Ads1, Ads2} {
		if got := LeafBreakdowns[s].Share(LeafKernel); got >= cacheMin {
			t.Errorf("%s kernel %v%% >= cache minimum %v%%", s, got, cacheMin)
		}
	}
	// ML services spend up to 13% in math; no service exceeds it.
	for _, s := range Services {
		if got := LeafBreakdowns[s].Share(LeafMath); got > 13 {
			t.Errorf("%s math = %v%% exceeds the paper's 13%% ceiling", s, got)
		}
	}
	if got := LeafBreakdowns[Feed2].Share(LeafMath); got != 13 {
		t.Errorf("Feed2 math = %v%%, want the 13%% ceiling", got)
	}
	// SPEC rows do not capture kernel overheads at all.
	for n, b := range SPECLeafBreakdowns {
		if b.Share(LeafKernel) != 0 {
			t.Errorf("%s has kernel leaves; SPEC should not", n)
		}
	}
}

// Fig 3 anchors: copies dominate memory cycles in every service; Google's
// published copy share is 5% of total (38% of its 13% memory share); gcc
// has high memory overhead but few copies.
func TestMemoryAnchors(t *testing.T) {
	for s, b := range MemoryBreakdowns {
		copyShare := b.Share(MemCopy)
		for _, cat := range MemoryCategories[1:] {
			if b.Share(cat) > copyShare {
				t.Errorf("%s: %s (%v%%) exceeds copies (%v%%)", s, cat, b.Share(cat), copyShare)
			}
		}
	}
	googleCopyTotal := GoogleMemoryBreakdown.Share(MemCopy) / 100 * GoogleLeafBreakdown.Share(LeafMemory)
	if math.Abs(googleCopyTotal-5) > 0.1 {
		t.Errorf("Google total copy share = %v%%, paper states 5%%", googleCopyTotal)
	}
	if got := SPECMemoryBreakdowns["403.gcc"].Share(MemCopy); got > 2 {
		t.Errorf("gcc copy share = %v%%, paper notes it copies very little", got)
	}
	// omnetpp allocates ~5% of its total cycles — the most in the suite.
	omnetppAllocTotal := SPECMemoryBreakdowns["471.omnetpp"].Share(MemAlloc) / 100 *
		SPECLeafBreakdowns["471.omnetpp"].Share(LeafMemory)
	if math.Abs(omnetppAllocTotal-5) > 0.5 {
		t.Errorf("omnetpp allocation = %v%% of total, paper states ~5%%", omnetppAllocTotal)
	}
}

// Fig 5/6 anchors.
func TestKernelAndSyncAnchors(t *testing.T) {
	for _, s := range []Service{Cache1, Cache2} {
		b := KernelBreakdowns[s]
		if b.Share(KernSched) < 30 {
			t.Errorf("%s scheduler share = %v%%, caches invoke the scheduler frequently", s, b.Share(KernSched))
		}
	}
	if got := KernelBreakdowns[Cache2].Share(KernNetwork); got < 25 {
		t.Errorf("Cache2 network share = %v%%, should be significant", got)
	}
	if GoogleKernelBreakdown.Share(KernSched) != 100 {
		t.Error("Google kernel row should report only the scheduler")
	}
	// Cache implements spin locks (§2.3.3); it dominates Cache1's
	// synchronization and no non-cache service leans on spin locks.
	if got := SyncBreakdowns[Cache1].Share(SyncSpin); got < 50 {
		t.Errorf("Cache1 spin-lock share = %v%%, should dominate", got)
	}
	for _, s := range []Service{Feed1, Feed2, Ads1, Ads2} {
		if got := SyncBreakdowns[s].Share(SyncSpin); got > 15 {
			t.Errorf("%s spin-lock share = %v%%, non-cache services should avoid spinning", s, got)
		}
	}
}

// Fig 7 anchors: vector ops dominate for the feature-vector services; Web
// is string- and hash-table-heavy.
func TestCLibAnchors(t *testing.T) {
	for _, s := range []Service{Feed2, Ads1, Ads2} {
		b := CLibBreakdowns[s]
		if b.Share(CLibVectors) < 30 {
			t.Errorf("%s vector share = %v%%, feature-vector services should be vector heavy", s, b.Share(CLibVectors))
		}
	}
	web := CLibBreakdowns[Web]
	if web.Share(CLibStrings)+web.Share(CLibHashTbl) < 35 {
		t.Errorf("Web strings+hash = %v%%, should be the dominant C-library work",
			web.Share(CLibStrings)+web.Share(CLibHashTbl))
	}
}

// Fig 15: Cache1's encryptions are all ≥ 4 B (so AES-NI profits on every
// offload) and mostly < 512 B.
func TestEncryptionSizeAnchors(t *testing.T) {
	c := EncryptionSizes[Cache1]
	if got := c.FractionAtLeast(4); got != 1 {
		t.Errorf("fraction ≥ 4 B = %v, want 1", got)
	}
	if got := c.FractionBelow(512); got < 0.7 {
		t.Errorf("fraction < 512 B = %v, paper: <512 B frequently encrypted", got)
	}
}

// Fig 19: 64.2% of Feed1's compressions are ≥ 425 B; Feed1 compresses
// larger granularities than Cache1.
func TestCompressionSizeAnchors(t *testing.T) {
	feed1 := CompressionSizes[Feed1]
	if got := feed1.FractionAtLeast(425); math.Abs(got-0.642) > 0.02 {
		t.Errorf("Feed1 fraction ≥ 425 B = %v, paper states 0.642", got)
	}
	cache1 := CompressionSizes[Cache1]
	if !(feed1.MeanSize() > 2*cache1.MeanSize()) {
		t.Errorf("Feed1 mean %v should far exceed Cache1 mean %v",
			feed1.MeanSize(), cache1.MeanSize())
	}
}

// Figs 21/22: small granularities dominate copies and allocations.
func TestCopyAllocSizeAnchors(t *testing.T) {
	for s, c := range CopySizes {
		if got := c.FractionBelow(512); got < 0.55 {
			t.Errorf("%s copies < 512 B = %v, small copies should dominate", s, got)
		}
	}
	for s, c := range AllocSizes {
		if got := c.FractionBelow(512); got < 0.6 {
			t.Errorf("%s allocations < 512 B = %v, small allocations should dominate", s, got)
		}
	}
}

// Table 6 rows must reproduce the paper's estimates through the model.
func TestCaseStudiesReproduce(t *testing.T) {
	if len(CaseStudies) != 3 {
		t.Fatalf("got %d case studies, want 3", len(CaseStudies))
	}
	for _, cs := range CaseStudies {
		m, err := core.New(cs.Params)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		pct, err := m.SpeedupPercent(cs.Threading)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		if math.Abs(pct-cs.EstimatedPct) > 0.15 {
			t.Errorf("%s: model = %.2f%%, paper estimate = %.2f%%", cs.Name, pct, cs.EstimatedPct)
		}
		// ≤3.7% error claim: |est - real| as relative error on the
		// speedup factors stays within the paper's bound.
		est := 1 + cs.EstimatedPct/100
		real := 1 + cs.RealPct/100
		if relErr := math.Abs(est-real) / real * 100; relErr > 3.8 {
			t.Errorf("%s: est-vs-real error = %.2f%%, paper claims ≤3.7%%", cs.Name, relErr)
		}
	}
}

// Table 7 rows must reproduce Fig 20's bars through the model.
func TestApplicationsReproduce(t *testing.T) {
	if len(Applications) != 6 {
		t.Fatalf("got %d applications, want 6", len(Applications))
	}
	for _, app := range Applications {
		m, err := core.New(app.EffectiveParams())
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		pct, err := m.SpeedupPercent(app.Threading)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if math.Abs(pct-app.SpeedupPct) > 0.15 {
			t.Errorf("%s: model = %.2f%%, Fig 20 = %.2f%%", app.Name, pct, app.SpeedupPct)
		}
	}
}

func TestEffectiveParamsScaling(t *testing.T) {
	app := Applications[1] // off-chip Sync compression, n=9629 of 15008
	eff := app.EffectiveParams()
	if err := eff.Validate(); err != nil {
		t.Fatalf("EffectiveParams must produce a valid model config: %v", err)
	}
	want := 0.15 * 9629 / 15008
	if math.Abs(eff.Alpha-want) > 1e-12 {
		t.Errorf("effective α = %v, want %v", eff.Alpha, want)
	}
	onchip := Applications[0].EffectiveParams()
	if err := onchip.Validate(); err != nil {
		t.Fatalf("EffectiveParams must produce a valid model config: %v", err)
	}
	if onchip.Alpha != 0.15 {
		t.Errorf("on-chip α must stay unscaled, got %v", onchip.Alpha)
	}
}

// Data-integrity invariant required by the fleet synthesis: for every
// service, the copy cycles Fig 4 pins to each functionality must fit
// inside that functionality's Fig 9 budget. Violations would make the
// joint (functionality × leaf) distribution unsatisfiable.
func TestCopyOriginPinningFeasible(t *testing.T) {
	all := append(append([]Service(nil), Services...), Cache3)
	for _, svc := range all {
		leaf, ok := LeafBreakdowns[svc]
		if !ok {
			t.Fatalf("%s: no leaf breakdown", svc)
		}
		memTotal := leaf.Share(LeafMemory)
		copyTotal := memTotal * MemoryBreakdowns[svc].Share(MemCopy) / 100
		funcs := FunctionalityBreakdowns[svc]
		for cat, pct := range CopyOrigins[svc] {
			pinned := copyTotal * pct / 100
			budget := funcs.Share(cat)
			if pinned > budget+1e-9 {
				t.Errorf("%s: %.2f%% of cycles are copies pinned to %q, but the functionality has only %.2f%%",
					svc, pinned, cat, budget)
			}
		}
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{"a": 50, "b": 30, "c": 20}
	cats := b.Categories()
	if cats[0] != "a" || cats[1] != "b" || cats[2] != "c" {
		t.Errorf("categories = %v, want descending by share", cats)
	}
	if b.Share("missing") != 0 {
		t.Error("missing category should report 0")
	}
	if err := (Breakdown{"a": -1, "b": 101}).Validate(); err == nil {
		t.Error("negative share: want error")
	}
	if err := (Breakdown{"a": 50}).Validate(); err == nil {
		t.Error("sum 50: want error")
	}
}
