// Package fleetdata holds the paper's published characterization numbers as
// reference datasets: per-service leaf-function breakdowns (Fig 2 with the
// sub-breakdowns of Figs 3-7), service-functionality breakdowns (Fig 9,
// from which Fig 1 derives), and the offload-granularity CDFs (Figs 15, 19,
// 21, 22).
//
// Provenance: the paper prints its figures as charts, not tables, so exact
// per-segment values are not all recoverable. Every dataset below is
// calibrated to the anchors the text states numerically (e.g. Web spends
// 18% of cycles in application logic and 23% in logging; Cache2 spends 52%
// of cycles in I/O; Google's fleet spends 5% of cycles on memory copies and
// 13% on copy+allocation; 64.2% of Feed1's compressions are ≥ 425 B; the
// ML services' inference fractions span 33-58% so that ideal inference
// acceleration yields 1.49x-2.38x) and to the figures' qualitative shape.
// The synthetic fleet in internal/services is generated from these
// datasets, so the characterization experiments verify that our profiling
// pipeline reproduces them without distortion — the honest claim available
// without Facebook's production traffic.
package fleetdata

import (
	"fmt"
	"sort"
)

// Service identifies one of the characterized microservices. Cache3 is the
// additional caching service of case study 2.
type Service string

// The seven characterized production microservices (§2.1) plus Cache3 (§4).
const (
	Web    Service = "Web"
	Feed1  Service = "Feed1"
	Feed2  Service = "Feed2"
	Ads1   Service = "Ads1"
	Ads2   Service = "Ads2"
	Cache1 Service = "Cache1"
	Cache2 Service = "Cache2"
	Cache3 Service = "Cache3"
)

// Services lists the seven characterized microservices in the paper's
// figure order (Cache3 appears only in case study 2 and is excluded).
var Services = []Service{Web, Feed1, Feed2, Ads1, Ads2, Cache1, Cache2}

// Valid reports whether s names a known service.
func (s Service) Valid() bool {
	switch s {
	case Web, Feed1, Feed2, Ads1, Ads2, Cache1, Cache2, Cache3:
		return true
	}
	return false
}

// Breakdown maps category names to percentages of total cycles. A valid
// breakdown sums to 100 within rounding.
type Breakdown map[string]float64

// Sum returns the total percentage mass.
func (b Breakdown) Sum() float64 {
	t := 0.0
	for _, v := range b {
		t += v
	}
	return t
}

// Categories returns the category names sorted descending by share (ties
// alphabetical) — the order experiment output prints them in.
func (b Breakdown) Categories() []string {
	out := make([]string, 0, len(b))
	for c := range b {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		//modelcheck:ignore floatcmp — sort comparator needs exact ordering to stay strict-weak
		if b[out[i]] != b[out[j]] {
			return b[out[i]] > b[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Share returns the percentage for a category (0 when absent).
func (b Breakdown) Share(category string) float64 { return b[category] }

// Validate checks that every share is non-negative and the total is 100±2.
func (b Breakdown) Validate() error {
	for c, v := range b {
		if v < 0 {
			return fmt.Errorf("fleetdata: category %q has negative share %v", c, v)
		}
	}
	if s := b.Sum(); s < 98 || s > 102 {
		return fmt.Errorf("fleetdata: breakdown sums to %v, want ~100", s)
	}
	return nil
}

// Leaf-function category names (Table 2).
const (
	LeafMemory  = "Memory"
	LeafKernel  = "Kernel"
	LeafHashing = "Hashing"
	LeafSync    = "Synchronization"
	LeafZSTD    = "ZSTD"
	LeafMath    = "Math"
	LeafSSL     = "SSL"
	LeafCLib    = "C Libraries"
	LeafMisc    = "Miscellaneous"
)

// LeafCategories lists Table 2's categories in the paper's order.
var LeafCategories = []string{
	LeafMemory, LeafKernel, LeafHashing, LeafSync, LeafZSTD,
	LeafMath, LeafSSL, LeafCLib, LeafMisc,
}

// Functionality category names (Table 3).
const (
	FuncIO            = "Secure + Insecure IO"
	FuncIOPrePost     = "IO Pre/Post Processing"
	FuncCompression   = "Compression"
	FuncSerialization = "Serialization/Deserialization"
	FuncFeatureExt    = "Feature Extraction"
	FuncPrediction    = "Prediction/Ranking"
	FuncAppLogic      = "Application Logic"
	FuncLogging       = "Logging"
	FuncThreadPool    = "Thread Pool Management"
	FuncMisc          = "Miscellaneous"
)

// FunctionalityCategories lists Table 3's categories in the paper's order.
var FunctionalityCategories = []string{
	FuncIO, FuncIOPrePost, FuncCompression, FuncSerialization, FuncFeatureExt,
	FuncPrediction, FuncAppLogic, FuncLogging, FuncThreadPool, FuncMisc,
}

// FunctionalityBreakdowns is the Fig 9 dataset: percent of CPU cycles per
// Table 3 functionality for each service. Anchors: Web 18% application
// logic and 23% logging; Cache2 52% I/O; Cache1 38% I/O; inference
// (prediction/ranking) fractions 35/33/52/58 for Feed1/Feed2/Ads1/Ads2 so
// orchestration spans 42-67% for the ML services and ideal inference
// acceleration yields 1.49x (Feed2) to 2.38x (Ads2); Feed1 compression 15%
// (Table 7); Cache1 allocation-heavy I/O pre/post; high thread-pool
// overheads for Ads1, Feed2, Cache1, Feed1.
var FunctionalityBreakdowns = map[Service]Breakdown{
	Web: {
		FuncIO: 21, FuncIOPrePost: 8, FuncCompression: 4, FuncSerialization: 4,
		FuncAppLogic: 18, FuncLogging: 23, FuncThreadPool: 3, FuncMisc: 19,
	},
	Feed1: {
		FuncIO: 7, FuncIOPrePost: 3, FuncCompression: 15, FuncSerialization: 10,
		FuncFeatureExt: 5, FuncPrediction: 35, FuncAppLogic: 10, FuncLogging: 2,
		FuncThreadPool: 10, FuncMisc: 3,
	},
	Feed2: {
		FuncIO: 4, FuncIOPrePost: 6, FuncCompression: 5, FuncSerialization: 11,
		FuncFeatureExt: 18, FuncPrediction: 33, FuncLogging: 2,
		FuncThreadPool: 8, FuncMisc: 13,
	},
	Ads1: {
		FuncIO: 7, FuncCompression: 3, FuncSerialization: 9,
		FuncFeatureExt: 10, FuncPrediction: 52, FuncAppLogic: 6,
		FuncThreadPool: 7, FuncMisc: 6,
	},
	Ads2: {
		FuncIO: 4, FuncIOPrePost: 3, FuncCompression: 2, FuncSerialization: 8,
		FuncFeatureExt: 6, FuncPrediction: 58, FuncLogging: 2,
		FuncThreadPool: 3, FuncMisc: 14,
	},
	Cache1: {
		FuncIO: 38, FuncIOPrePost: 15, FuncCompression: 6, FuncSerialization: 11,
		FuncAppLogic: 18, FuncThreadPool: 9, FuncMisc: 3,
	},
	Cache2: {
		FuncIO: 52, FuncIOPrePost: 21, FuncSerialization: 4,
		FuncAppLogic: 18, FuncThreadPool: 4, FuncMisc: 1,
	},
	// Cache3 (case study 2): similar to Cache1/Cache2, with a large secure
	// I/O share (its encryption is the offloaded kernel, α=0.19154) and no
	// compression tier.
	Cache3: {
		FuncIO: 45, FuncIOPrePost: 16, FuncSerialization: 10,
		FuncAppLogic: 19, FuncThreadPool: 6, FuncMisc: 4,
	},
}

// AppLogicShare returns the Fig 1 "application logic" percentage for a
// service: core application logic plus ML inference (the paper counts
// inference as core work in Fig 1's framing; everything else is
// orchestration).
func AppLogicShare(s Service) (float64, error) {
	b, ok := FunctionalityBreakdowns[s]
	if !ok {
		return 0, fmt.Errorf("fleetdata: no functionality breakdown for %q", s)
	}
	return b.Share(FuncAppLogic) + b.Share(FuncPrediction), nil
}

// LeafBreakdowns is the Fig 2 dataset: percent of total cycles per Table 2
// leaf category for each service. Anchors: memory totals per Fig 3's "Net"
// labels (Web 37, Feed1 8, Feed2 20, Ads1 28, Ads2 28, Cache1 26, Cache2
// 19); kernel totals per Fig 5 (Web 7, Feed1 3, Feed2 1, Ads1 11, Ads2 4,
// Cache1 22, Cache2 44); synchronization per Fig 6 (2/1/3/3/5/19/10);
// C-library totals per Fig 7 (31/5/37/17/42/13/10); Cache1 spends 6% in
// leaf encryption (SSL); ML services spend up to 13% in math.
var LeafBreakdowns = map[Service]Breakdown{
	Web: {
		LeafMemory: 37, LeafKernel: 7, LeafHashing: 2, LeafSync: 2,
		LeafZSTD: 10, LeafCLib: 31, LeafMisc: 11,
	},
	Feed1: {
		LeafMemory: 8, LeafKernel: 3, LeafHashing: 2, LeafSync: 1,
		LeafZSTD: 19, LeafMath: 10, LeafCLib: 5, LeafMisc: 52,
	},
	Feed2: {
		LeafMemory: 20, LeafKernel: 1, LeafHashing: 2, LeafSync: 3,
		LeafZSTD: 5, LeafMath: 13, LeafCLib: 37, LeafMisc: 19,
	},
	Ads1: {
		LeafMemory: 28, LeafKernel: 11, LeafHashing: 2, LeafSync: 3,
		LeafZSTD: 3, LeafMath: 5, LeafCLib: 17, LeafMisc: 31,
	},
	Ads2: {
		LeafMemory: 28, LeafKernel: 4, LeafHashing: 2, LeafSync: 5,
		LeafZSTD: 2, LeafMath: 11, LeafCLib: 42, LeafMisc: 6,
	},
	Cache1: {
		LeafMemory: 26, LeafKernel: 22, LeafHashing: 4, LeafSync: 19,
		LeafZSTD: 5, LeafSSL: 6, LeafCLib: 13, LeafMisc: 5,
	},
	Cache2: {
		LeafMemory: 19, LeafKernel: 44, LeafHashing: 3, LeafSync: 10,
		LeafZSTD: 2, LeafSSL: 2, LeafCLib: 10, LeafMisc: 10,
	},
	// Cache3 (case study 2): an encryption-heavy cache tier; its secure
	// I/O kernel (α = 0.19154 in Table 6) shows up as a large SSL leaf
	// share, and it has no compression tier.
	Cache3: {
		LeafMemory: 24, LeafKernel: 25, LeafHashing: 3, LeafSync: 12,
		LeafSSL: 8, LeafCLib: 12, LeafMisc: 16,
	},
}

// GoogleLeafBreakdown is the Kanev et al. WSC-fleet reference row of Fig 2.
var GoogleLeafBreakdown = Breakdown{
	LeafMemory: 13, LeafKernel: 19, LeafHashing: 4, LeafSync: 5,
	LeafZSTD: 3, LeafSSL: 2, LeafCLib: 20, LeafMisc: 34,
}

// SPECLeafBreakdowns holds the SPEC CPU2006 reference rows of Fig 2: their
// leaves are dominated by math, C libraries, and miscellaneous functions.
var SPECLeafBreakdowns = map[string]Breakdown{
	"400.perlbench": {LeafMemory: 6, LeafMathCLibMisc: 94},
	"403.gcc":       {LeafMemory: 31, LeafMathCLibMisc: 69},
	"471.omnetpp":   {LeafMemory: 11, LeafSync: 1, LeafMathCLibMisc: 88},
	"473.astar":     {LeafMemory: 3, LeafMathCLibMisc: 97},
}

// LeafMathCLibMisc is the combined "Math + C Lib + Misc" category Fig 2
// uses for the SPEC rows.
const LeafMathCLibMisc = "Math + C Lib + Misc"
