package fleetdata

import "repro/internal/core"

// Reference parameters and results for the paper's model validation
// (Table 6) and model application (Table 7, Fig 20). The experiment
// harness evaluates the model against these and the benches regenerate the
// corresponding tables/figures.

// CaseStudy captures one Table 6 validation row.
type CaseStudy struct {
	Name      string
	Service   Service
	Kernel    string
	Params    core.Params
	Threading core.Threading
	Strategy  core.Strategy
	// EstimatedPct and RealPct are the paper's reported model estimate and
	// measured production (A/B-test) speedup in percent.
	EstimatedPct float64
	RealPct      float64
}

// CaseStudies holds the three Table 6 rows.
var CaseStudies = []CaseStudy{
	{
		Name:    "AES-NI",
		Service: Cache1,
		Kernel:  "encryption",
		Params: core.Params{
			C: 2.0e9, Alpha: 0.165844, N: 298951,
			O0: 10, Q: 0, L: 3, A: 6,
		},
		Threading:    core.Sync,
		Strategy:     core.OnChip,
		EstimatedPct: 15.7,
		RealPct:      14.0,
	},
	{
		Name:    "Encryption",
		Service: Cache3,
		Kernel:  "encryption",
		Params: core.Params{
			C: 2.3e9, Alpha: 0.19154, N: 101863,
			O0: 0, Q: 0, L: 2530, A: 1, // A is unused on the Async path
		},
		Threading:    core.AsyncNoResponse,
		Strategy:     core.OffChip,
		EstimatedPct: 8.6,
		RealPct:      7.5,
	},
	{
		Name:    "Inference",
		Service: Ads1,
		Kernel:  "ML inference",
		Params: core.Params{
			C: 2.5e9, Alpha: 0.52, N: 10,
			O0: 25e6, Q: 0, L: 0, O1: 12500, A: 1,
		},
		Threading:    core.AsyncDistinctThread,
		Strategy:     core.Remote,
		EstimatedPct: 72.39,
		RealPct:      68.69,
	},
}

// Application captures one Table 7 row with the Fig 20 result it produces.
type Application struct {
	Name      string
	Service   Service
	Overhead  string // the common overhead being accelerated
	Params    core.Params
	Threading core.Threading
	Strategy  core.Strategy
	// SpeedupPct is the Fig 20 bar the parameters produce.
	SpeedupPct float64
	// TotalInvocations is the unfiltered n (before profitable-granularity
	// selection); equals Params.N for on-chip rows.
	TotalInvocations float64
}

// Applications holds the Table 7 rows. The off-chip compression rows carry
// pre-filtered n (and their α must be scaled by n/TotalInvocations, the
// paper's invocation-count convention).
var Applications = []Application{
	{
		Name: "Compression on-chip Sync", Service: Feed1, Overhead: "compression",
		Params:    core.Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 0, A: 5},
		Threading: core.Sync, Strategy: core.OnChip,
		SpeedupPct: 13.6, TotalInvocations: 15008,
	},
	{
		Name: "Compression off-chip Sync", Service: Feed1, Overhead: "compression",
		Params:    core.Params{C: 2.3e9, Alpha: 0.15, N: 9629, L: 2300, A: 27},
		Threading: core.Sync, Strategy: core.OffChip,
		SpeedupPct: 9.0, TotalInvocations: 15008,
	},
	{
		Name: "Compression off-chip Sync-OS", Service: Feed1, Overhead: "compression",
		Params:    core.Params{C: 2.3e9, Alpha: 0.15, N: 3986, L: 2300, O1: 5750, A: 27},
		Threading: core.SyncOS, Strategy: core.OffChip,
		SpeedupPct: 1.6, TotalInvocations: 15008,
	},
	{
		Name: "Compression off-chip Async", Service: Feed1, Overhead: "compression",
		Params:    core.Params{C: 2.3e9, Alpha: 0.15, N: 9769, L: 2300, A: 27},
		Threading: core.AsyncSameThread, Strategy: core.OffChip,
		SpeedupPct: 9.6, TotalInvocations: 15008,
	},
	{
		Name: "Memory copy on-chip Sync", Service: Ads1, Overhead: "memory copy",
		Params:    core.Params{C: 2.3e9, Alpha: 0.1512, N: 1473681, L: 0, A: 4},
		Threading: core.Sync, Strategy: core.OnChip,
		SpeedupPct: 12.7, TotalInvocations: 1473681,
	},
	{
		Name: "Memory allocation on-chip Sync", Service: Cache1, Overhead: "memory allocation",
		Params:    core.Params{C: 2.0e9, Alpha: 0.055, N: 51695, A: 1.5},
		Threading: core.Sync, Strategy: core.OnChip,
		SpeedupPct: 1.86, TotalInvocations: 51695,
	},
}

// EffectiveParams returns the application's parameters with α scaled by the
// offloaded-invocation fraction — the paper's convention for off-chip rows
// where only profitable granularities are offloaded.
func (a Application) EffectiveParams() core.Params {
	p := a.Params
	if a.TotalInvocations > 0 && a.Params.N < a.TotalInvocations {
		p.Alpha = a.Params.Alpha * a.Params.N / a.TotalInvocations
	}
	return p
}

// CaseStudyKernels maps each case study to the kernel cost model used for
// break-even analysis (cycles per byte on the host).
var CaseStudyKernels = map[string]core.Kernel{
	"AES-NI":      core.LinearKernel(5.5),
	"Encryption":  core.LinearKernel(5.5),
	"Inference":   core.LinearKernel(50), // feature vectors are compute-dense
	"compression": core.LinearKernel(5.6),
}
