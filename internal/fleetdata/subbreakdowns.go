package fleetdata

import "repro/internal/dist"

// Sub-breakdowns of the leaf-function categories (Figs 3-7). Each is
// expressed as a percentage of that category's cycles (summing to 100) so
// it composes with the Fig 2 totals in LeafBreakdowns.

// Memory sub-category names (Fig 3).
const (
	MemCopy    = "Memory-Copy"
	MemFree    = "Memory-Free"
	MemAlloc   = "Memory-Allocation"
	MemMove    = "Memory-Move"
	MemSet     = "Memory-Set"
	MemCompare = "Memory-Compare"
)

// MemoryCategories lists Fig 3's sub-categories in the paper's order.
var MemoryCategories = []string{MemCopy, MemFree, MemAlloc, MemMove, MemSet, MemCompare}

// MemoryBreakdowns is the Fig 3 dataset: share of each service's memory
// cycles per memory leaf function. Anchors: copies are by far the greatest
// consumers everywhere; frees are expensive for several services; Cache2's
// network stack makes it the most copy-dominated.
var MemoryBreakdowns = map[Service]Breakdown{
	Web:    {MemCopy: 38, MemFree: 19, MemAlloc: 24, MemMove: 8, MemSet: 6, MemCompare: 5},
	Feed1:  {MemCopy: 49, MemFree: 12, MemAlloc: 21, MemMove: 5, MemSet: 8, MemCompare: 5},
	Feed2:  {MemCopy: 44, MemFree: 9, MemAlloc: 26, MemMove: 6, MemSet: 9, MemCompare: 6},
	Ads1:   {MemCopy: 42, MemFree: 19, MemAlloc: 21, MemMove: 6, MemSet: 7, MemCompare: 5},
	Ads2:   {MemCopy: 40, MemFree: 24, MemAlloc: 17, MemMove: 7, MemSet: 7, MemCompare: 5},
	Cache1: {MemCopy: 38, MemFree: 32, MemAlloc: 12, MemMove: 6, MemSet: 6, MemCompare: 6},
	Cache2: {MemCopy: 73, MemFree: 9, MemAlloc: 10, MemMove: 3, MemSet: 3, MemCompare: 2},
	Cache3: {MemCopy: 45, MemFree: 20, MemAlloc: 18, MemMove: 6, MemSet: 6, MemCompare: 5},
}

// GoogleMemoryBreakdown is Fig 3's Google reference row. Only copy and
// allocation are published (13% of total fleet cycles combined, 5% copies),
// i.e. copies are ~38% of the published memory cycles.
var GoogleMemoryBreakdown = Breakdown{MemCopy: 38, MemAlloc: 62}

// SPECMemoryBreakdowns holds Fig 3's SPEC reference rows; 403.gcc has high
// memory overhead but copies very little, and 471.omnetpp is the suite's
// biggest allocator (~5% of its total cycles).
var SPECMemoryBreakdowns = map[string]Breakdown{
	"400.perlbench": {MemCopy: 9, MemFree: 6, MemAlloc: 58, MemMove: 20, MemSet: 5, MemCompare: 2},
	"403.gcc":       {MemCopy: 1, MemFree: 40, MemAlloc: 43, MemMove: 11, MemSet: 3, MemCompare: 2},
	"471.omnetpp":   {MemCopy: 7, MemFree: 32, MemAlloc: 45, MemMove: 6, MemSet: 5, MemCompare: 5},
	"473.astar":     {MemCopy: 12, MemFree: 15, MemAlloc: 53, MemMove: 12, MemSet: 5, MemCompare: 3},
}

// CopyOrigins is the Fig 4 dataset: which functionality invoked each
// service's memory copies (share of the service's copy cycles). Anchors:
// dominant origins differ per service — Web copies mostly during I/O
// pre/post processing, Cache2 in its network protocol stack (I/O), the ML
// feature services inside application logic.
var CopyOrigins = map[Service]Breakdown{
	Web:    {FuncIO: 8, FuncIOPrePost: 46, FuncSerialization: 9, FuncAppLogic: 37},
	Feed1:  {FuncAppLogic: 100},
	Feed2:  {FuncIOPrePost: 45, FuncSerialization: 55},
	Ads1:   {FuncIO: 9, FuncSerialization: 46, FuncAppLogic: 45},
	Ads2:   {FuncIO: 10, FuncIOPrePost: 20, FuncSerialization: 70},
	Cache1: {FuncIO: 17, FuncIOPrePost: 13, FuncSerialization: 25, FuncAppLogic: 45},
	Cache2: {FuncIO: 36, FuncIOPrePost: 11, FuncSerialization: 7, FuncAppLogic: 46},
	Cache3: {FuncIO: 25, FuncIOPrePost: 20, FuncSerialization: 15, FuncAppLogic: 40},
}

// Kernel sub-category names (Fig 5).
const (
	KernSched   = "Scheduler"
	KernEvent   = "Event Handling"
	KernNetwork = "Network"
	KernSync    = "Synchronization"
	KernMemMgmt = "Memory Management"
	KernMisc    = "Miscellaneous"
)

// KernelCategories lists Fig 5's sub-categories in the paper's order.
var KernelCategories = []string{KernSched, KernEvent, KernNetwork, KernSync, KernMemMgmt, KernMisc}

// KernelBreakdowns is the Fig 5 dataset: share of each service's kernel
// cycles. Anchors: Cache1 and Cache2 invoke scheduler functions frequently;
// Cache2 spends significant cycles in I/O (event handling) and network
// interactions.
var KernelBreakdowns = map[Service]Breakdown{
	Web:    {KernSched: 19, KernEvent: 9, KernNetwork: 23, KernSync: 16, KernMemMgmt: 10, KernMisc: 23},
	Feed1:  {KernSched: 14, KernEvent: 31, KernNetwork: 7, KernSync: 12, KernMemMgmt: 26, KernMisc: 10},
	Feed2:  {KernSched: 19, KernEvent: 20, KernNetwork: 16, KernSync: 12, KernMemMgmt: 33, KernMisc: 0},
	Ads1:   {KernSched: 47, KernEvent: 9, KernNetwork: 18, KernSync: 16, KernMemMgmt: 10, KernMisc: 0},
	Ads2:   {KernSched: 30, KernEvent: 5, KernNetwork: 23, KernSync: 8, KernMemMgmt: 13, KernMisc: 21},
	Cache1: {KernSched: 47, KernEvent: 19, KernNetwork: 13, KernSync: 10, KernMemMgmt: 8, KernMisc: 3},
	Cache2: {KernSched: 32, KernEvent: 14, KernNetwork: 30, KernSync: 7, KernMemMgmt: 10, KernMisc: 7},
	Cache3: {KernSched: 40, KernEvent: 18, KernNetwork: 22, KernSync: 8, KernMemMgmt: 9, KernMisc: 3},
}

// GoogleKernelBreakdown is Fig 5's Google row: prior work reports only the
// scheduler share, which mirrors the Cache tiers.
var GoogleKernelBreakdown = Breakdown{KernSched: 100}

// Synchronization sub-category names (Fig 6).
const (
	SyncAtomics = "C++ Atomics"
	SyncMutex   = "Mutex"
	SyncCAS     = "Compare-Exchange-Swap"
	SyncSpin    = "Spin Lock"
)

// SyncCategories lists Fig 6's sub-categories in the paper's order.
var SyncCategories = []string{SyncAtomics, SyncMutex, SyncCAS, SyncSpin}

// SyncBreakdowns is the Fig 6 dataset: share of each service's
// synchronization cycles. Anchor: the µs-scale Cache tiers implement spin
// locks to avoid thread wakeup delays, so spin locks dominate there.
var SyncBreakdowns = map[Service]Breakdown{
	Web:    {SyncAtomics: 6, SyncMutex: 63, SyncCAS: 20, SyncSpin: 11},
	Feed1:  {SyncMutex: 100},
	Feed2:  {SyncAtomics: 26, SyncMutex: 59, SyncCAS: 15, SyncSpin: 0},
	Ads1:   {SyncAtomics: 30, SyncMutex: 70, SyncCAS: 0, SyncSpin: 0},
	Ads2:   {SyncAtomics: 41, SyncMutex: 50, SyncCAS: 9, SyncSpin: 0},
	Cache1: {SyncAtomics: 6, SyncMutex: 8, SyncCAS: 0, SyncSpin: 86},
	Cache2: {SyncAtomics: 26, SyncMutex: 41, SyncCAS: 11, SyncSpin: 22},
	Cache3: {SyncAtomics: 10, SyncMutex: 15, SyncCAS: 5, SyncSpin: 70},
}

// C-library sub-category names (Fig 7).
const (
	CLibStdAlgo  = "Std algorithms"
	CLibCtors    = "Constructors/Destructors"
	CLibStrings  = "Strings"
	CLibHashTbl  = "Hash tables"
	CLibVectors  = "Vectors"
	CLibTrees    = "Trees"
	CLibOperator = "Operator override"
	CLibMisc     = "Miscellaneous"
)

// CLibCategories lists Fig 7's sub-categories in the paper's order.
var CLibCategories = []string{
	CLibStdAlgo, CLibCtors, CLibStrings, CLibHashTbl,
	CLibVectors, CLibTrees, CLibOperator, CLibMisc,
}

// CLibBreakdowns is the Fig 7 dataset: share of each service's C-library
// cycles. Anchors: Feed2, Ads1, and Ads2 perform many vector operations on
// large feature vectors; Web parses/transforms strings for its many URL
// endpoints and does frequent hash-table look-ups.
var CLibBreakdowns = map[Service]Breakdown{
	Web:    {CLibStdAlgo: 5, CLibCtors: 5, CLibStrings: 24, CLibHashTbl: 17, CLibVectors: 16, CLibTrees: 1, CLibOperator: 22, CLibMisc: 10},
	Feed1:  {CLibStdAlgo: 16, CLibCtors: 6, CLibStrings: 10, CLibHashTbl: 16, CLibVectors: 18, CLibTrees: 6, CLibOperator: 22, CLibMisc: 6},
	Feed2:  {CLibStdAlgo: 8, CLibCtors: 11, CLibStrings: 6, CLibHashTbl: 1, CLibVectors: 53, CLibTrees: 1, CLibOperator: 9, CLibMisc: 11},
	Ads1:   {CLibStdAlgo: 19, CLibCtors: 3, CLibStrings: 13, CLibHashTbl: 6, CLibVectors: 32, CLibTrees: 5, CLibOperator: 11, CLibMisc: 11},
	Ads2:   {CLibStdAlgo: 15, CLibCtors: 2, CLibStrings: 10, CLibHashTbl: 0, CLibVectors: 47, CLibTrees: 18, CLibOperator: 3, CLibMisc: 5},
	Cache1: {CLibStdAlgo: 3, CLibCtors: 5, CLibStrings: 15, CLibHashTbl: 32, CLibVectors: 24, CLibTrees: 0, CLibOperator: 7, CLibMisc: 14},
	Cache2: {CLibStdAlgo: 5, CLibCtors: 18, CLibStrings: 6, CLibHashTbl: 16, CLibVectors: 13, CLibTrees: 0, CLibOperator: 14, CLibMisc: 28},
	Cache3: {CLibStdAlgo: 5, CLibCtors: 10, CLibStrings: 12, CLibHashTbl: 30, CLibVectors: 15, CLibTrees: 0, CLibOperator: 10, CLibMisc: 18},
}

// SizeCDFs bundles the granularity distributions of Figs 15, 19, 21, 22.
// All are event-count CDFs over the byte-size layouts of package dist.

// EncryptionSizes is the Fig 15 dataset: Cache1's encryption granularities.
// Anchors: sizes below 512 B dominate; nothing below 4 B (so every offload
// profits under AES-NI, whose break-even is ~1-3 B); the mean size of
// ~203 B makes Table 6's α = 0.165844 and n = 298,951 mutually consistent
// at 5.5 host cycles per encrypted byte.
var EncryptionSizes = map[Service]*dist.CDF{
	Cache1: dist.MustCDF(dist.EncryptionLayout, []float64{
		0, 0.09, 0.13, 0.16, 0.18, 0.15, 0.12, 0.09, 0.045, 0.02, 0.01, 0.005,
	}),
}

// CompressionSizes is the Fig 19 dataset: bytes compressed per invocation
// for the high-compression services. Anchors: Feed1 compresses much larger
// granularities than Cache1; 64.2% of Feed1's compressions are at or above
// the 425 B off-chip Sync break-even, ~65% above the Async break-even
// (411 B), and ~27% above the Sync-OS break-even (~2.5 KiB).
var CompressionSizes = map[Service]*dist.CDF{
	Feed1: dist.MustCDF(dist.CompressionLayout, []float64{
		0, 0.085, 0.08, 0.13, 0.09, 0.145, 0.18, 0.10, 0.09, 0.06, 0.03, 0.01,
	}),
	Cache1: dist.MustCDF(dist.CompressionLayout, []float64{
		0.02, 0.25, 0.18, 0.15, 0.12, 0.10, 0.08, 0.05, 0.03, 0.015, 0.004, 0.001,
	}),
}

// CopySizes is the Fig 21 dataset: memory-copy granularities per service.
// Anchor: most services frequently copy fewer than 512 B (smaller than a
// 4K page).
var CopySizes = map[Service]*dist.CDF{
	Web:    dist.MustCDF(dist.CopyAllocLayout, []float64{0.02, 0.30, 0.16, 0.14, 0.12, 0.10, 0.08, 0.05, 0.03}),
	Feed1:  dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.22, 0.15, 0.14, 0.13, 0.12, 0.11, 0.07, 0.05}),
	Feed2:  dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.20, 0.14, 0.14, 0.13, 0.13, 0.12, 0.08, 0.05}),
	Ads1:   dist.MustCDF(dist.CopyAllocLayout, []float64{0.02, 0.34, 0.18, 0.15, 0.11, 0.09, 0.06, 0.03, 0.02}),
	Ads2:   dist.MustCDF(dist.CopyAllocLayout, []float64{0.02, 0.28, 0.17, 0.15, 0.12, 0.11, 0.08, 0.04, 0.03}),
	Cache1: dist.MustCDF(dist.CopyAllocLayout, []float64{0.03, 0.38, 0.20, 0.14, 0.10, 0.07, 0.05, 0.02, 0.01}),
	Cache2: dist.MustCDF(dist.CopyAllocLayout, []float64{0.02, 0.26, 0.17, 0.15, 0.13, 0.11, 0.09, 0.04, 0.03}),
}

// AllocSizes is the Fig 22 dataset: allocation granularities per service.
// Anchor: most services perform small allocations, typically under 512 B.
var AllocSizes = map[Service]*dist.CDF{
	Web:    dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.36, 0.20, 0.16, 0.12, 0.08, 0.04, 0.02, 0.01}),
	Feed1:  dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.30, 0.19, 0.16, 0.13, 0.10, 0.06, 0.03, 0.02}),
	Feed2:  dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.28, 0.18, 0.16, 0.14, 0.11, 0.07, 0.03, 0.02}),
	Ads1:   dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.33, 0.20, 0.16, 0.12, 0.09, 0.05, 0.03, 0.01}),
	Ads2:   dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.31, 0.19, 0.16, 0.13, 0.10, 0.06, 0.03, 0.01}),
	Cache1: dist.MustCDF(dist.CopyAllocLayout, []float64{0.02, 0.40, 0.21, 0.14, 0.10, 0.07, 0.04, 0.01, 0.01}),
	Cache2: dist.MustCDF(dist.CopyAllocLayout, []float64{0.01, 0.34, 0.20, 0.15, 0.12, 0.09, 0.05, 0.03, 0.01}),
}
