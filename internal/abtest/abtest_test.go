package abtest

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/sim"
)

// caseStudy1Factory reproduces the Table 6 AES-NI setup: one encryption per
// request drawn from Cache1's Fig 15 size distribution.
func caseStudy1Factory(requests int) WorkloadFactory {
	return func(seed uint64) (sim.Workload, error) {
		return sim.NewSampledWorkload(5581, 1, core.LinearKernel(5.5),
			fleetdata.EncryptionSizes[fleetdata.Cache1], requests, seed)
	}
}

func TestRunValidatesInputs(t *testing.T) {
	base := sim.Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 10}
	accel := base
	accel.Accel = &sim.Accel{Threading: core.Sync, Strategy: core.OnChip, A: 6, Servers: 1}
	factory := caseStudy1Factory(10)

	if _, err := Run(base, accel, nil, 1); err == nil {
		t.Error("nil factory: want error")
	}
	if _, err := Run(base, accel, factory, 0); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := Run(accel, accel, factory, 1); err == nil {
		t.Error("baseline with accelerator: want error")
	}
	if _, err := Run(base, base, factory, 1); err == nil {
		t.Error("accelerated without accelerator: want error")
	}
	failing := func(uint64) (sim.Workload, error) { return nil, errors.New("boom") }
	if _, err := Run(base, accel, failing, 1); err == nil {
		t.Error("factory error must propagate")
	}
}

// The full validation loop: A/B-measured speedup must sit within a few
// percent of the model estimate, mirroring Table 6's ≤3.7% error.
func TestCaseStudy1EndToEnd(t *testing.T) {
	base := sim.Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 3000}
	accel := base
	accel.Accel = &sim.Accel{
		Threading: core.Sync, Strategy: core.OnChip,
		A: 6, O0: 10, L: 3, Servers: 1,
	}
	comp, err := Run(base, accel, caseStudy1Factory(3000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Trials != 3 {
		t.Errorf("trials = %d", comp.Trials)
	}
	if comp.BaselineQPS <= 0 || comp.AcceleratedQPS <= comp.BaselineQPS {
		t.Errorf("QPS: base %v accel %v", comp.BaselineQPS, comp.AcceleratedQPS)
	}

	// Model estimate with parameters derived from the measured baseline —
	// the paper's five-step methodology.
	meanEncBytes := fleetdata.EncryptionSizes[fleetdata.Cache1].MeanSize()
	kernelCycles := 5.5 * meanEncBytes
	alpha := kernelCycles / (5581 + kernelCycles)
	m := core.MustNew(core.Params{
		C: 2e9, Alpha: alpha, N: comp.OffloadsPerSecond, O0: 10, L: 3, A: 6,
	})
	est, err := m.Speedup(core.Sync)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(est, comp)
	if err != nil {
		t.Fatal(err)
	}
	if v.ErrorPct > 3.7 {
		t.Errorf("model error = %.2f%%, paper claims ≤3.7%%", v.ErrorPct)
	}
	// And in the paper's ballpark: ~14-16%.
	if comp.SpeedupPercent() < 13 || comp.SpeedupPercent() > 17 {
		t.Errorf("measured speedup = %.2f%%, expected ~15%%", comp.SpeedupPercent())
	}
}

func TestComparisonDeterministic(t *testing.T) {
	base := sim.Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 500}
	accel := base
	accel.Accel = &sim.Accel{Threading: core.Sync, Strategy: core.OnChip, A: 6, Servers: 1}
	a, err := Run(base, accel, caseStudy1Factory(500), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base, accel, caseStudy1Factory(500), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || a.BaselineQPS != b.BaselineQPS { //modelcheck:ignore floatcmp — determinism check: identical runs must agree bit-exactly
		t.Error("A/B runs are not reproducible")
	}
}

func TestLatencyReductionReported(t *testing.T) {
	base := sim.Config{Cores: 1, Threads: 1, HostHz: 2e9, Requests: 500}
	accel := base
	accel.Accel = &sim.Accel{Threading: core.Sync, Strategy: core.OnChip, A: 6, Servers: 1}
	comp, err := Run(base, accel, caseStudy1Factory(500), 1)
	if err != nil {
		t.Fatal(err)
	}
	if comp.LatencyReduction <= 1 {
		t.Errorf("Sync latency reduction = %v, want > 1", comp.LatencyReduction)
	}
	// For Sync, latency reduction tracks throughput speedup (CS = CL).
	if math.Abs(comp.LatencyReduction-comp.Speedup) > 0.02 {
		t.Errorf("Sync latency %v vs speedup %v should match", comp.LatencyReduction, comp.Speedup)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Validate(0, Comparison{Speedup: 1.1}); err == nil {
		t.Error("zero model speedup: want error")
	}
	if _, err := Validate(1.1, Comparison{}); err == nil {
		t.Error("zero measured speedup: want error")
	}
	v, err := Validate(1.157, Comparison{Speedup: 1.14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.EstimatedPct-15.7) > 0.01 || math.Abs(v.MeasuredPct-14.0) > 0.01 {
		t.Errorf("validation = %+v", v)
	}
	if want := dist.RelativeError(1.157, 1.14) * 100; math.Abs(v.ErrorPct-want) > 1e-9 {
		t.Errorf("error pct = %v, want %v", v.ErrorPct, want)
	}
}
