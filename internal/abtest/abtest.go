// Package abtest reproduces the paper's validation methodology (§4): the
// paper measured "real" speedup by A/B testing two identical production
// servers — same hardware, same fleet, same load — differing only in
// whether the kernel is accelerated, with throughput read from ODS. Our
// stand-in runs paired discrete-event simulations over byte-identical
// workload streams and reports the measured speedup with a confidence
// interval, ready to compare against the Accelerometer estimate.
package abtest

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/sim"
)

// WorkloadFactory builds the deterministic workload for one trial; both
// sides of the A/B pair receive the same instance, so load is identical.
type WorkloadFactory func(seed uint64) (sim.Workload, error)

// Comparison is the outcome of a paired A/B study.
type Comparison struct {
	Trials            int
	BaselineQPS       float64 // mean across trials
	AcceleratedQPS    float64
	Speedup           float64 // mean measured speedup factor
	SpeedupCI         float64 // 95% half-width across trials
	LatencyReduction  float64 // mean baseline/accelerated mean-latency ratio
	MeanQueueDelay    float64 // accelerated side, cycles per offload
	OffloadsPerSecond float64
}

// SpeedupPercent returns the measured gain in percent.
func (c Comparison) SpeedupPercent() float64 { return (c.Speedup - 1) * 100 }

// Run executes `trials` paired simulations. base must have Accel == nil and
// accel must have Accel != nil; all other fields are expected to describe
// the same machine.
func Run(base, accel sim.Config, factory WorkloadFactory, trials int) (Comparison, error) {
	if factory == nil {
		return Comparison{}, errors.New("abtest: nil workload factory")
	}
	if trials < 1 {
		return Comparison{}, fmt.Errorf("abtest: trials = %d, want >= 1", trials)
	}
	if base.Accel != nil {
		return Comparison{}, errors.New("abtest: baseline config must not have an accelerator")
	}
	if accel.Accel == nil {
		return Comparison{}, errors.New("abtest: accelerated config must have an accelerator")
	}

	speedups := make([]float64, 0, trials)
	latRed := make([]float64, 0, trials)
	var baseQPS, accQPS, queue, offloadRate float64
	for trial := 0; trial < trials; trial++ {
		wl, err := factory(uint64(trial) + 1)
		if err != nil {
			return Comparison{}, fmt.Errorf("abtest: trial %d workload: %w", trial, err)
		}
		bSim, err := sim.New(base, wl)
		if err != nil {
			return Comparison{}, err
		}
		bRes, err := bSim.Run()
		if err != nil {
			return Comparison{}, fmt.Errorf("abtest: baseline trial %d: %w", trial, err)
		}
		aSim, err := sim.New(accel, wl)
		if err != nil {
			return Comparison{}, err
		}
		aRes, err := aSim.Run()
		if err != nil {
			return Comparison{}, fmt.Errorf("abtest: accelerated trial %d: %w", trial, err)
		}

		s, err := aRes.Speedup(bRes)
		if err != nil {
			return Comparison{}, err
		}
		speedups = append(speedups, s)
		if l, err := aRes.LatencyReduction(bRes); err == nil {
			latRed = append(latRed, l)
		}
		baseQPS += bRes.ThroughputQPS
		accQPS += aRes.ThroughputQPS
		queue += aRes.MeanQueueDelay
		if aRes.ElapsedCycles > 0 {
			offloadRate += float64(aRes.Offloads) / (aRes.ElapsedCycles / accel.HostHz)
		}
	}

	mean, ci, err := dist.MeanCI(speedups)
	if err != nil {
		return Comparison{}, err
	}
	n := float64(trials)
	comp := Comparison{
		Trials:            trials,
		BaselineQPS:       baseQPS / n,
		AcceleratedQPS:    accQPS / n,
		Speedup:           mean,
		SpeedupCI:         ci,
		MeanQueueDelay:    queue / n,
		OffloadsPerSecond: offloadRate / n,
	}
	if len(latRed) > 0 {
		var sum float64
		for _, l := range latRed {
			sum += l
		}
		comp.LatencyReduction = sum / float64(len(latRed))
	}
	return comp, nil
}

// Validation compares a model estimate with the A/B measurement, in the
// terms the paper reports (Table 6).
type Validation struct {
	EstimatedPct float64 // model speedup, percent
	MeasuredPct  float64 // A/B speedup, percent
	ErrorPct     float64 // |estimated-measured| relative error on factors
}

// Validate computes the estimate-vs-measurement error.
func Validate(modelSpeedup float64, measured Comparison) (Validation, error) {
	if modelSpeedup <= 0 || measured.Speedup <= 0 {
		return Validation{}, fmt.Errorf("abtest: non-positive speedups (model=%v measured=%v)",
			modelSpeedup, measured.Speedup)
	}
	return Validation{
		EstimatedPct: (modelSpeedup - 1) * 100,
		MeasuredPct:  measured.SpeedupPercent(),
		ErrorPct:     dist.RelativeError(modelSpeedup, measured.Speedup) * 100,
	}, nil
}
