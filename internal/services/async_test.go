package services

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/rpc"
)

// startServiceAsync serves svc's async handler on a loopback listener and
// returns a mux client plus the backing device and engine for stats.
func startServiceAsync(t *testing.T, svc fleetdata.Service) (*rpc.MuxClient, *kernels.SimAccel, *rpc.Engine) {
	t.Helper()
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	eng, err := rpc.NewEngine(rpc.EngineConfig{Workers: 2, Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() }) // errors swallowed per the teardown rule
	h, err := AsyncOffloadHandler(svc, dev)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rpc.NewAsyncServer(h, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := rpc.NewMuxClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() }) // errors swallowed per the teardown rule
	return client, dev, eng
}

// TestAsyncOffloadHandlerDigest: for every characterized service, the
// async path's response is the digest of the full payload — identical
// work to a sync handler — and services with a nonzero offloadable share
// actually ride the device.
func TestAsyncOffloadHandlerDigest(t *testing.T) {
	payload := bytes.Repeat([]byte("accelerometer-"), 64)
	want := kernels.Hash(payload)
	for _, svc := range fleetdata.Services {
		svc := svc
		t.Run(string(svc), func(t *testing.T) {
			client, dev, _ := startServiceAsync(t, svc)
			resp, err := client.CallContext(context.Background(), rpc.Message{Method: "serve", Payload: payload})
			if err != nil {
				t.Fatalf("call: %v", err)
			}
			if !bytes.Equal(resp.Payload, want[:]) {
				t.Fatalf("digest mismatch: got %x want %x", resp.Payload, want)
			}
			share, err := OffloadableShare(svc)
			if err != nil {
				t.Fatal(err)
			}
			st := dev.Stats()
			if share > 0 && st.Submitted == 0 {
				t.Fatalf("%s has offloadable share %.2f but device saw no submissions", svc, share)
			}
			if share == 0 && st.Submitted != 0 {
				t.Fatalf("%s has no offloadable share but device saw %d submissions", svc, st.Submitted)
			}
		})
	}
}

// TestAsyncOffloadHandlerTinyPayload: a payload whose offloadable share
// rounds to zero bytes responds inline without touching the device.
func TestAsyncOffloadHandlerTinyPayload(t *testing.T) {
	client, dev, _ := startServiceAsync(t, fleetdata.Web)
	payload := []byte("x") // any share < 1 rounds to 0 offloaded bytes
	want := kernels.Hash(payload)
	resp, err := client.CallContext(context.Background(), rpc.Message{Method: "serve", Payload: payload})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if !bytes.Equal(resp.Payload, want[:]) {
		t.Fatalf("digest mismatch: got %x want %x", resp.Payload, want)
	}
	if st := dev.Stats(); st.Submitted != 0 {
		t.Fatalf("tiny payload should not offload, device saw %d submissions", st.Submitted)
	}
}

// TestAsyncOffloadHandlerDeviceClosed: a closed device surfaces as a
// remote error rather than a hang.
func TestAsyncOffloadHandlerDeviceClosed(t *testing.T) {
	client, dev, _ := startServiceAsync(t, fleetdata.Web)
	_ = dev.Close() // closed on purpose mid-test to exercise the error path
	payload := bytes.Repeat([]byte("p"), 4096)
	_, err := client.CallContext(context.Background(), rpc.Message{Method: "serve", Payload: payload})
	if err == nil {
		t.Fatal("want error from closed device, got success")
	}
}

// TestAsyncOffloadHandlerValidation covers the constructor error paths.
func TestAsyncOffloadHandlerValidation(t *testing.T) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close() // errors swallowed per the teardown rule
	if _, err := AsyncOffloadHandler(fleetdata.Web, nil); err == nil {
		t.Fatal("want error for nil device")
	}
	if _, err := AsyncOffloadHandler(fleetdata.Service("nope"), dev); err == nil {
		t.Fatal("want error for unknown service")
	}
}
