package services_test

import (
	"testing"

	"repro/internal/fleetdata"
	"repro/internal/proflabel"
	"repro/internal/services"
)

// BenchmarkExerciseLabelsOff runs the full instrumented Exercise path with
// labeling disabled — the steady production state. scripts/bench_profile.sh
// records its ns/op and allocs/op in BENCH_profile.json so instrumentation
// creep on the whole serving path shows up in the artifact history (the
// region-level 0-alloc/3% gates live in internal/proflabel's benchmarks).
func BenchmarkExerciseLabelsOff(b *testing.B) {
	svc, err := services.New(fleetdata.Cache1)
	if err != nil {
		b.Fatal(err)
	}
	wasEnabled := proflabel.Enabled()
	proflabel.Disable()
	defer func() {
		if wasEnabled {
			proflabel.Enable()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Exercise(4, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
