package services

import (
	"testing"

	"repro/internal/fleetdata"
	"repro/internal/record"
)

// ExerciseRecorded captures one event per request with the service's
// name and the request's payload size, and a nil recorder changes
// nothing about the run.
func TestExerciseRecorded(t *testing.T) {
	svc, err := New(fleetdata.Cache1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	plain, err := svc.Exercise(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := record.NewRecorder(64)
	svc2, err := New(fleetdata.Cache1)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := svc2.ExerciseRecorded(n, 7, nil, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PayloadBytes != recorded.PayloadBytes || plain.BytesHashed != recorded.BytesHashed {
		t.Errorf("recording changed the run: %+v vs %+v", plain, recorded)
	}

	tr := rec.Snapshot()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != n {
		t.Fatalf("recorded %d events for %d requests", len(tr.Events), n)
	}
	if len(tr.Services) != 1 || tr.Services[0] != string(fleetdata.Cache1) {
		t.Fatalf("services = %v", tr.Services)
	}
	var total uint64
	for _, e := range tr.Events {
		if e.Outcome != record.OutcomeOK {
			t.Errorf("event outcome = %v", e.Outcome)
		}
		if e.PayloadBytes == 0 {
			t.Error("zero payload recorded")
		}
		total += e.PayloadBytes
	}
	if total != recorded.PayloadBytes {
		t.Errorf("recorded %d payload bytes, stats say %d", total, recorded.PayloadBytes)
	}
}
