package services

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/fleetdata"
)

func TestBurnSpendsProportionally(t *testing.T) {
	s, err := New(fleetdata.Cache2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BurnConfig{Duration: 300 * time.Millisecond, Seed: 7}
	stats, err := s.Burn(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Burn: %v", err)
	}
	if stats.Rounds < 1 {
		t.Fatalf("Rounds = %d, want >= 1", stats.Rounds)
	}

	want := fleetdata.FunctionalityBreakdowns[fleetdata.Cache2]
	for cat, share := range want {
		if share > 0 && stats.Spent[cat] <= 0 {
			t.Errorf("category %q (%.0f%%) got no burn time", cat, share)
		}
	}

	// Wall-time budgeting means the measured shares should track the
	// calibrated ones closely even on loaded machines; 6 points of slack
	// absorbs slice-granularity rounding on the smallest categories.
	got := stats.MeasuredShares()
	for cat, share := range want {
		if diff := math.Abs(got.Share(cat) - share); diff > 6 {
			t.Errorf("category %q measured %.1f%%, calibrated %.1f%% (drift %.1f)",
				cat, got.Share(cat), share, diff)
		}
	}
}

func TestBurnCancellation(t *testing.T) {
	s, err := New(fleetdata.Web)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if _, err := s.Burn(ctx, BurnConfig{Duration: 10 * time.Second}); err != nil {
		t.Fatalf("cancelled Burn returned error: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancelled Burn ran %v, want near-immediate return", elapsed)
	}
}

func TestBurnUnknownBreakdown(t *testing.T) {
	s := &Service{Name: fleetdata.Service("NoSuch")}
	if _, err := s.Burn(context.Background(), BurnConfig{Duration: time.Millisecond}); err == nil {
		t.Fatal("Burn on a service without a breakdown did not error")
	}
}

func TestMarkerForCoversAllCategories(t *testing.T) {
	for _, name := range fleetdata.Services {
		for cat := range fleetdata.FunctionalityBreakdowns[name] {
			if MarkerFor(cat) == "" {
				t.Errorf("no marker for category %q (service %s)", cat, name)
			}
		}
	}
	if MarkerFor("not-a-category") != "" {
		t.Error("unknown category returned a marker")
	}
}
