package services

import (
	"math"
	"testing"

	"repro/internal/fleetdata"
)

// TestOffloadableShare pins each characterized service's default
// offloadable fraction to the sum of its compression, serialization,
// and prediction shares from the Fig 9 functionality breakdown — the α
// a topology node inherits when its spec omits work=/kernel=.
func TestOffloadableShare(t *testing.T) {
	for _, svc := range fleetdata.Services {
		got, err := OffloadableShare(svc)
		if err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		b := fleetdata.FunctionalityBreakdowns[svc]
		want := (b.Share(fleetdata.FuncCompression) +
			b.Share(fleetdata.FuncSerialization) +
			b.Share(fleetdata.FuncPrediction)) / 100
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: share = %v, want %v", svc, got, want)
		}
		if got <= 0 || got >= 1 {
			t.Fatalf("%s: share %v outside (0,1)", svc, got)
		}
	}
	// Spot-check the ranking services against the published numbers:
	// Ads1 = 3+9+52 = 64%, Ads2 = 2+8+58 = 68%.
	for svc, want := range map[fleetdata.Service]float64{
		fleetdata.Ads1: 0.64,
		fleetdata.Ads2: 0.68,
	} {
		got, err := OffloadableShare(svc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: share = %v, want %v", svc, got, want)
		}
	}
	if _, err := OffloadableShare(fleetdata.Service("NotAService")); err == nil {
		t.Fatal("accepted uncharacterized service")
	}
}
