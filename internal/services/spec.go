// Package services synthesizes the paper's microservice fleet: Web, Feed1,
// Feed2, Ads1, Ads2, Cache1, Cache2 (and Cache3 for case study 2).
//
// Each service is generated from the reference datasets in
// internal/fleetdata. A service's CPU time is modeled as a joint
// distribution over (functionality, leaf function) pairs whose marginals
// reproduce the paper's published breakdowns simultaneously:
//
//   - row sums match the Fig 9 functionality breakdown,
//   - column sums match the Fig 2 leaf-category breakdown, refined to leaf
//     functions by the Figs 3/5/6/7 sub-breakdowns,
//   - the memory-copy column is pinned to the Fig 4 copy-origin
//     attribution exactly.
//
// The joint is found by iterative proportional fitting (IPF) from an
// affinity-seeded initial matrix: plausible pairings (e.g. zstd leaves
// under the Compression functionality, kernel network leaves under I/O)
// start with high affinity, implausible ones with low-but-positive
// affinity so IPF always converges. The fitted joint is then emitted as a
// set of call traces with cycle and instruction weights, which the
// profiler ingests exactly as it would ingest Strobelight data.
package services

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fleetdata"
)

// leafFunc is one concrete leaf function with its frame name and Table 2
// category.
type leafFunc struct {
	frame    string // e.g. "mem.copy"
	category string // Table 2 category
}

// leafInventory expands a service's Fig 2 leaf-category breakdown into
// per-leaf-function weights (percent of total cycles) using the Figs 3, 5,
// 6, 7 sub-breakdowns and fixed intra-category splits for the categories
// the paper does not subdivide.
func leafInventory(svc fleetdata.Service) (map[leafFunc]float64, error) {
	leaf, ok := fleetdata.LeafBreakdowns[svc]
	if !ok {
		return nil, fmt.Errorf("services: no leaf breakdown for %q", svc)
	}
	out := make(map[leafFunc]float64)
	add := func(frame, category string, pct float64) {
		if pct > 0 {
			out[leafFunc{frame: frame, category: category}] += pct
		}
	}

	// Memory per Fig 3.
	memTotal := leaf.Share(fleetdata.LeafMemory)
	mem := fleetdata.MemoryBreakdowns[svc]
	memFrames := map[string]string{
		fleetdata.MemCopy:    "mem.copy",
		fleetdata.MemFree:    "mem.free",
		fleetdata.MemAlloc:   "mem.alloc",
		fleetdata.MemMove:    "mem.move",
		fleetdata.MemSet:     "mem.set",
		fleetdata.MemCompare: "mem.compare",
	}
	for label, frame := range memFrames {
		add(frame, fleetdata.LeafMemory, memTotal*mem.Share(label)/100)
	}

	// Kernel per Fig 5.
	kernTotal := leaf.Share(fleetdata.LeafKernel)
	kern := fleetdata.KernelBreakdowns[svc]
	kernFrames := map[string]string{
		fleetdata.KernSched:   "kernel.sched",
		fleetdata.KernEvent:   "kernel.event",
		fleetdata.KernNetwork: "kernel.net",
		fleetdata.KernSync:    "kernel.sync",
		fleetdata.KernMemMgmt: "kernel.mm",
		fleetdata.KernMisc:    "kernel.misc",
	}
	for label, frame := range kernFrames {
		add(frame, fleetdata.LeafKernel, kernTotal*kern.Share(label)/100)
	}

	// Synchronization per Fig 6.
	syncTotal := leaf.Share(fleetdata.LeafSync)
	syn := fleetdata.SyncBreakdowns[svc]
	synFrames := map[string]string{
		fleetdata.SyncAtomics: "sync.atomics",
		fleetdata.SyncMutex:   "sync.mutex",
		fleetdata.SyncCAS:     "sync.cas",
		fleetdata.SyncSpin:    "sync.spin",
	}
	for label, frame := range synFrames {
		add(frame, fleetdata.LeafSync, syncTotal*syn.Share(label)/100)
	}

	// C libraries per Fig 7.
	clibTotal := leaf.Share(fleetdata.LeafCLib)
	clib := fleetdata.CLibBreakdowns[svc]
	clibFrames := map[string]string{
		fleetdata.CLibStdAlgo:  "clib.stdalgo",
		fleetdata.CLibCtors:    "clib.ctor",
		fleetdata.CLibStrings:  "clib.strings",
		fleetdata.CLibHashTbl:  "clib.hashtable",
		fleetdata.CLibVectors:  "clib.vectors",
		fleetdata.CLibTrees:    "clib.trees",
		fleetdata.CLibOperator: "clib.operator",
		fleetdata.CLibMisc:     "clib.misc",
	}
	for label, frame := range clibFrames {
		add(frame, fleetdata.LeafCLib, clibTotal*clib.Share(label)/100)
	}

	// Categories the paper does not subdivide get fixed, representative
	// splits.
	add("zstd.compress", fleetdata.LeafZSTD, leaf.Share(fleetdata.LeafZSTD)*0.7)
	add("zstd.decompress", fleetdata.LeafZSTD, leaf.Share(fleetdata.LeafZSTD)*0.3)
	add("ssl.encrypt", fleetdata.LeafSSL, leaf.Share(fleetdata.LeafSSL)*0.7)
	add("ssl.decrypt", fleetdata.LeafSSL, leaf.Share(fleetdata.LeafSSL)*0.3)
	add("hash.sha256", fleetdata.LeafHashing, leaf.Share(fleetdata.LeafHashing))
	add("math.mkl", fleetdata.LeafMath, leaf.Share(fleetdata.LeafMath)*0.6)
	add("math.avx", fleetdata.LeafMath, leaf.Share(fleetdata.LeafMath)*0.4)
	add("misc.other", fleetdata.LeafMisc, leaf.Share(fleetdata.LeafMisc))
	return out, nil
}

// funcKeys maps Table 3 categories to the func.* marker frame keys the
// profiler's bucketer understands.
var funcKeys = map[string]string{
	fleetdata.FuncIO:            "io",
	fleetdata.FuncIOPrePost:     "ioprep",
	fleetdata.FuncCompression:   "compression",
	fleetdata.FuncSerialization: "serialization",
	fleetdata.FuncFeatureExt:    "feature",
	fleetdata.FuncPrediction:    "prediction",
	fleetdata.FuncAppLogic:      "app",
	fleetdata.FuncLogging:       "logging",
	fleetdata.FuncThreadPool:    "threadpool",
	fleetdata.FuncMisc:          "misc",
}

// affinity scores how plausible it is for a leaf function to execute under
// a functionality. Values only shape the IPF starting point; every pair
// stays positive so fitting always converges.
func affinity(funcCat string, lf leafFunc) float64 {
	const (
		high = 10.0
		mid  = 2.0
		low  = 0.05
	)
	frame := lf.frame
	switch {
	case strings.HasPrefix(frame, "zstd."):
		if funcCat == fleetdata.FuncCompression {
			return 100 // compression leaves live in the Compression bucket
		}
		return 0.001
	case strings.HasPrefix(frame, "ssl."):
		if funcCat == fleetdata.FuncIO {
			return 100 // encryption is the secure half of I/O
		}
		return 0.001
	case frame == "kernel.net" || frame == "kernel.event":
		if funcCat == fleetdata.FuncIO {
			return high
		}
		if funcCat == fleetdata.FuncIOPrePost {
			return mid
		}
		return low
	case frame == "kernel.sched" || frame == "kernel.sync":
		if funcCat == fleetdata.FuncThreadPool || funcCat == fleetdata.FuncIO {
			return high
		}
		return low
	case frame == "kernel.mm":
		if funcCat == fleetdata.FuncIOPrePost || funcCat == fleetdata.FuncAppLogic {
			return high
		}
		return low
	case strings.HasPrefix(frame, "sync."):
		if funcCat == fleetdata.FuncThreadPool {
			return high
		}
		if funcCat == fleetdata.FuncAppLogic || funcCat == fleetdata.FuncIO {
			return mid
		}
		return low
	case strings.HasPrefix(frame, "math."):
		if funcCat == fleetdata.FuncPrediction {
			return high
		}
		if funcCat == fleetdata.FuncFeatureExt {
			return mid
		}
		return low
	case frame == "clib.vectors":
		if funcCat == fleetdata.FuncFeatureExt || funcCat == fleetdata.FuncPrediction {
			return high
		}
		return low
	case frame == "clib.strings" || frame == "clib.hashtable":
		if funcCat == fleetdata.FuncAppLogic || funcCat == fleetdata.FuncLogging ||
			funcCat == fleetdata.FuncSerialization {
			return high
		}
		return low
	case strings.HasPrefix(frame, "mem."):
		if funcCat == fleetdata.FuncIOPrePost || funcCat == fleetdata.FuncAppLogic ||
			funcCat == fleetdata.FuncSerialization {
			return high
		}
		return mid
	case frame == "misc.other":
		if funcCat == fleetdata.FuncMisc {
			return high
		}
		return mid
	default:
		return mid
	}
}

// fitJoint runs IPF to find a joint cycle distribution matching the row
// (functionality) and column (leaf function) targets, with the mem.copy
// column pinned to the Fig 4 origins.
func fitJoint(svc fleetdata.Service) (map[string]map[leafFunc]float64, error) {
	rows, ok := fleetdata.FunctionalityBreakdowns[svc]
	if !ok {
		return nil, fmt.Errorf("services: no functionality breakdown for %q", svc)
	}
	cols, err := leafInventory(svc)
	if err != nil {
		return nil, err
	}

	// Pin the memory-copy column: its mass distributes across
	// functionalities per Fig 4, and the pinned mass is removed from both
	// target vectors before fitting the remainder.
	copyLeaf := leafFunc{frame: "mem.copy", category: fleetdata.LeafMemory}
	copyTotal := cols[copyLeaf]
	origins := fleetdata.CopyOrigins[svc]
	pinned := make(map[string]float64) // funcCat → copy cycles
	for cat, pct := range origins {
		pinned[cat] = copyTotal * pct / 100
	}

	rowTarget := make(map[string]float64)
	for cat, pct := range rows {
		t := pct - pinned[cat]
		if t < 0 {
			return nil, fmt.Errorf("services: %s: pinned copies (%v%%) exceed functionality %q (%v%%)",
				svc, pinned[cat], cat, pct)
		}
		rowTarget[cat] = t
	}
	colTarget := make(map[leafFunc]float64)
	for lf, pct := range cols {
		if lf == copyLeaf {
			continue
		}
		colTarget[lf] = pct
	}

	// Seed and fit.
	joint := make(map[string]map[leafFunc]float64)
	for cat := range rowTarget {
		joint[cat] = make(map[leafFunc]float64)
		for lf := range colTarget {
			joint[cat][lf] = affinity(cat, lf)
		}
	}
	const iterations = 400
	for iter := 0; iter < iterations; iter++ {
		// Scale rows.
		for cat, row := range joint {
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			if sum <= 0 {
				continue
			}
			f := rowTarget[cat] / sum
			for lf := range row {
				row[lf] *= f
			}
		}
		// Scale columns.
		for lf, target := range colTarget {
			sum := 0.0
			for cat := range joint {
				sum += joint[cat][lf]
			}
			if sum <= 0 {
				continue
			}
			f := target / sum
			for cat := range joint {
				joint[cat][lf] *= f
			}
		}
	}

	// Verify convergence.
	for cat, want := range rowTarget {
		got := 0.0
		for _, v := range joint[cat] {
			got += v
		}
		if math.Abs(got-want) > 0.25 {
			return nil, fmt.Errorf("services: %s: IPF row %q converged to %v, want %v", svc, cat, got, want)
		}
	}

	// Re-insert the pinned copy column.
	for cat, cycles := range pinned {
		if cycles <= 0 {
			continue
		}
		if joint[cat] == nil {
			joint[cat] = make(map[leafFunc]float64)
		}
		joint[cat][copyLeaf] = cycles
	}
	return joint, nil
}
