package services

import (
	"fmt"

	"repro/internal/fleetdata"
)

// OffloadableCategories are the Table 3 functionality categories the
// paper's §6 case studies actually accelerate: compression (the zstd
// offload), serialization/deserialization (the Thrift study), and
// prediction/ranking (remote inference). A topology node named after a
// characterized service uses their combined share as its default
// offloadable fraction α.
var OffloadableCategories = []string{
	fleetdata.FuncCompression,
	fleetdata.FuncSerialization,
	fleetdata.FuncPrediction,
}

// OffloadableShare returns the fraction (0..1) of the service's CPU
// cycles spent in OffloadableCategories, per the Fig 9 functionality
// breakdown.
func OffloadableShare(svc fleetdata.Service) (float64, error) {
	b, ok := fleetdata.FunctionalityBreakdowns[svc]
	if !ok {
		return 0, fmt.Errorf("services: no functionality breakdown for %q", svc)
	}
	sum := 0.0
	for _, cat := range OffloadableCategories {
		sum += b.Share(cat)
	}
	return sum / 100, nil
}
