package services

import (
	"bytes"
	"compress/flate"
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/proflabel"
	"repro/internal/rpc"
)

// This file makes the calibrated Table 3 weights executable: Burn drives
// real, CPU-bound work through each of a service's functionality
// categories for a wall-time budget proportional to the category's
// calibrated share, with every region carrying {service, functionality}
// pprof labels. Collecting a CPU profile across a Burn and bucketing the
// samples by label (internal/liveprof) must therefore reproduce the
// service's calibrated functionality breakdown — the live-measurement
// analog of the synthetic-trace fidelity checks in internal/profiler: the
// paper's Strobelight attributes real cycles to functionalities, and this
// is the closed loop proving our attribution pipeline does too.
//
// Each category's work is the genuine article, not a spin loop: secure IO
// encrypts through the AES-CTR kernel, compression runs DEFLATE,
// serialization round-trips the RPC codec, IO pre/post exercises the
// size-class allocator and bulk copies, prediction multiplies real
// matrices, logging formats into a buffer, and thread-pool management
// contends on channels and atomics. The leaf functions under each region
// are consequently the right ones for the measured Table 2 breakdown too
// (flate for ZSTD, crypto/aes for SSL, sha256 for Hashing, runtime
// malloc/memmove for Memory, ...).

// MarkerFor returns the functionality label value Burn uses for a Table 3
// category name ("" for unknown categories): the same funcKeys marker the
// synthetic traces embed as func.* frames. Misc's "misc" marker matches no
// bucketer rule and therefore buckets to Miscellaneous — the fallback.
func MarkerFor(category string) string { return funcKeys[category] }

// BurnConfig sizes one Burn run.
type BurnConfig struct {
	// Duration is the total wall-time budget across all categories
	// (default 500ms). Each category receives Duration·share/100.
	Duration time.Duration
	// Slice is the round-robin time slice (default 2ms): categories run
	// interleaved in Slice-sized chunks so scheduler preemption and
	// sampling noise spread evenly instead of biasing late categories.
	Slice time.Duration
	// Seed varies the generated payloads.
	Seed uint64
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.Slice <= 0 {
		c.Slice = 2 * time.Millisecond
	}
	return c
}

// BurnStats reports what one Burn run executed.
type BurnStats struct {
	// Spent is the wall time actually consumed per functionality category
	// (Table 3 names).
	Spent map[string]time.Duration
	// Rounds is the number of round-robin passes over the categories.
	Rounds int
}

// MeasuredShares converts the per-category spend to percentages summing
// to ~100, directly comparable to the service's calibrated breakdown.
func (b BurnStats) MeasuredShares() fleetdata.Breakdown {
	var total time.Duration
	for _, d := range b.Spent {
		total += d
	}
	out := make(fleetdata.Breakdown, len(b.Spent))
	if total <= 0 {
		return out
	}
	for cat, d := range b.Spent {
		out[cat] = 100 * float64(d) / float64(total)
	}
	return out
}

// burnState owns the buffers and substrate one Burn run works on; every
// category worker reuses it so steady-state burning allocates only where
// the real path allocates (logging's fmt, the codec's message copies).
type burnState struct {
	seed    uint64
	arena   *kernels.Arena
	cipher  *kernels.Cipher
	iv      []byte
	payload []byte // compressible input block
	scratch []byte // staging for copies / encrypt output
	comp    []byte // compression destination
	plain   *rpc.Pipeline
	msg     rpc.Message
	feats   []float64
	weights []float64 // prediction matrix, row-major
	logBuf  bytes.Buffer
	ch      chan uint64
	flag    atomic.Uint64
	sortBuf []int
	sink    uint64 // data dependency keeping work live
}

const burnBlock = 8 << 10

func newBurnState(name fleetdata.Service, seed uint64) (*burnState, error) {
	st := &burnState{seed: seed, arena: kernels.NewArena()}
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(seed) + byte(i)*7
	}
	var err error
	if st.cipher, err = kernels.NewCipher(key); err != nil {
		return nil, err
	}
	st.iv = make([]byte, 16)
	for i := range st.iv {
		st.iv[i] = byte(seed>>uint(i%8)) ^ byte(i)
	}
	st.payload = kernels.CompressibleData(burnBlock, seed)
	st.scratch = make([]byte, burnBlock)
	st.comp = make([]byte, 0, 2*burnBlock)
	if st.plain, err = rpc.NewPipeline(); err != nil {
		return nil, err
	}
	st.msg = rpc.Message{
		Method:  string(name) + ".burn",
		Headers: map[string]string{"svc": string(name)},
		Payload: st.payload[:2048],
	}
	st.feats = make([]float64, 64)
	st.weights = make([]float64, 64*64)
	for i := range st.feats {
		st.feats[i] = float64((seed+uint64(i)*2654435761)%1000) / 1000
	}
	for i := range st.weights {
		st.weights[i] = float64((seed+uint64(i)*0x9e3779b97f4a7c15)%2000)/1000 - 1
	}
	st.ch = make(chan uint64, 64)
	st.sortBuf = make([]int, 512)
	return st, nil
}

// burnFunc runs one category's work until deadline, returning an error
// only on substrate failure (never on deadline). ctx carries the slice's
// {service, functionality} labels so workers that re-enter labeled code
// (the serialization worker's pipeline stages) merge with them instead of
// replacing them.
type burnFunc func(ctx context.Context, st *burnState, deadline time.Time) error

// burnWorkers maps marker keys to their category work.
var burnWorkers = map[string]burnFunc{
	"io":            burnIO,
	"ioprep":        burnIOPrep,
	"compression":   burnCompression,
	"serialization": burnSerialization,
	"feature":       burnFeature,
	"prediction":    burnPrediction,
	"app":           burnApp,
	"logging":       burnLogging,
	"threadpool":    burnThreadPool,
	"misc":          burnMisc,
}

func burnIO(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		// Secure IO: encrypt (and symmetric-decrypt) a block, as the wire
		// path does around every response.
		if err := st.cipher.EncryptTo(st.scratch, st.iv, st.payload); err != nil {
			return err
		}
		if err := st.cipher.EncryptTo(st.scratch, st.iv, st.scratch); err != nil {
			return err
		}
		st.sink += uint64(st.scratch[0])
	}
	return nil
}

func burnIOPrep(_ context.Context, st *burnState, deadline time.Time) error {
	sizes := [...]int{256, 1024, 4096, 8192}
	i := 0
	for time.Now().Before(deadline) {
		size := sizes[i%len(sizes)]
		i++
		block, err := st.arena.Alloc(size)
		if err != nil {
			return err
		}
		block = block[:size]
		kernels.Copy(block, st.payload[:size])
		kernels.Set(st.scratch[:size], byte(i))
		st.sink += uint64(block[size-1])
		if err := st.arena.FreeSized(block, size); err != nil {
			return err
		}
	}
	return nil
}

func burnCompression(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		out, err := kernels.CompressAppend(st.comp[:0], st.payload, flate.BestSpeed)
		if err != nil {
			return err
		}
		st.sink += uint64(len(out))
	}
	return nil
}

func burnSerialization(ctx context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		wire, err := st.plain.EncodeCtx(ctx, st.msg, nil)
		if err != nil {
			return err
		}
		dec, err := st.plain.DecodeCtx(ctx, wire, nil)
		if err != nil {
			return err
		}
		st.sink += uint64(len(dec.Payload))
	}
	return nil
}

func burnFeature(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		// Feature extraction stand-in: normalize and transform the vector.
		var norm float64
		for _, v := range st.feats {
			norm += v * v
		}
		norm = math.Sqrt(norm) + 1e-9
		for i, v := range st.feats {
			st.feats[i] = math.Abs(v/norm) + 1e-6
		}
		st.sink += uint64(norm * 1000)
	}
	return nil
}

func burnPrediction(_ context.Context, st *burnState, deadline time.Time) error {
	n := len(st.feats)
	for time.Now().Before(deadline) {
		// Inference stand-in: dense layer + logistic activation.
		var out float64
		for r := 0; r < n; r++ {
			row := st.weights[r*n : r*n+n]
			var acc float64
			for c, v := range row {
				acc += v * st.feats[c]
			}
			out += 1 / (1 + math.Exp(-acc))
		}
		st.sink += uint64(out)
	}
	return nil
}

func burnApp(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		sum := kernels.Hash(st.payload)
		st.sink += uint64(sum[0])
	}
	return nil
}

func burnLogging(_ context.Context, st *burnState, deadline time.Time) error {
	seq := 0
	for time.Now().Before(deadline) {
		if st.logBuf.Len() > 1<<20 {
			st.logBuf.Reset()
		}
		seq++
		fmt.Fprintf(&st.logBuf, "ts=%d level=info svc=%s seq=%d bytes=%d checksum=%08x\n",
			seq*31, st.msg.Method, seq, len(st.payload), st.sink)
		st.sink += uint64(st.logBuf.Len())
	}
	return nil
}

func burnThreadPool(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		// Dispatch/synchronization overhead: channel round-trips and
		// atomic handoffs, the cost the paper files under thread-pool
		// management.
		for i := 0; i < 32; i++ {
			st.ch <- st.sink
			st.flag.Add(1)
		}
		for i := 0; i < 32; i++ {
			st.sink += <-st.ch
			st.flag.Add(^uint64(0))
		}
	}
	return nil
}

func burnMisc(_ context.Context, st *burnState, deadline time.Time) error {
	for time.Now().Before(deadline) {
		for i := range st.sortBuf {
			st.sortBuf[i] = int(st.seed+uint64(i)*2654435761) % 4096
		}
		sort.Ints(st.sortBuf)
		st.seed = st.seed*6364136223846793005 + 1442695040888963407
		st.sink += uint64(st.sortBuf[0])
	}
	return nil
}

// Burn executes real CPU work through every functionality category of the
// service, wall-time-weighted by the calibrated Table 3 breakdown, under
// {service, functionality} CPU-attribution labels. It returns the actual
// per-category spend. ctx cancellation stops the run early (the stats
// reflect what ran). Time-budgeted scheduling makes the *shares* robust:
// a loaded or race-instrumented machine slows every category alike.
func (s *Service) Burn(ctx context.Context, cfg BurnConfig) (BurnStats, error) {
	cfg = cfg.withDefaults()
	weights := fleetdata.FunctionalityBreakdowns[s.Name]
	if len(weights) == 0 {
		return BurnStats{}, fmt.Errorf("services: no functionality breakdown for %s", s.Name)
	}
	st, err := newBurnState(s.Name, cfg.Seed)
	if err != nil {
		return BurnStats{}, err
	}

	// Fixed category order (descending share) so runs are reproducible.
	cats := weights.Categories()
	total := weights.Sum()
	type sched struct {
		cat       string
		marker    string
		work      burnFunc
		labels    proflabel.Set
		remaining time.Duration
	}
	plan := make([]*sched, 0, len(cats))
	for _, cat := range cats {
		marker, ok := funcKeys[cat]
		if !ok {
			return BurnStats{}, fmt.Errorf("services: no burn marker for category %q", cat)
		}
		work, ok := burnWorkers[marker]
		if !ok {
			return BurnStats{}, fmt.Errorf("services: no burn worker for marker %q", marker)
		}
		plan = append(plan, &sched{
			cat:    cat,
			marker: marker,
			work:   work,
			labels: proflabel.Labels(
				proflabel.KeyService, string(s.Name),
				proflabel.KeyFunctionality, marker),
			remaining: time.Duration(float64(cfg.Duration) * weights.Share(cat) / total),
		})
	}

	stats := BurnStats{Spent: make(map[string]time.Duration, len(plan))}
	for {
		ran := false
		for _, p := range plan {
			if p.remaining <= 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return stats, nil //nolint — cancellation is a clean early stop
			}
			slice := cfg.Slice
			if slice > p.remaining {
				slice = p.remaining
			}
			var werr error
			t0 := time.Now()
			proflabel.Do(ctx, p.labels, func(lctx context.Context) {
				werr = p.work(lctx, st, t0.Add(slice))
			})
			elapsed := time.Since(t0)
			p.remaining -= elapsed
			stats.Spent[p.cat] += elapsed
			if werr != nil {
				return stats, werr
			}
			ran = true
		}
		if !ran {
			break
		}
		stats.Rounds++
	}
	return stats, nil
}
