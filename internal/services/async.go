package services

import (
	"context"
	"fmt"

	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/rpc"
)

// Async serving variants of the characterized services: the request's
// bytes are split by the service's Fig 9 functionality breakdown — the
// non-offloadable share is processed on the engine worker (hashing as the
// application stand-in, as elsewhere in this package), and the
// offloadable share (compression + serialization + prediction, the §6
// case-study categories) is submitted to an accelerator while the request
// parks. The continuation produces the response digest, so a client can
// verify the async path did exactly the work the sync path would have.

// asyncResume is the shared continuation for every service handler: it
// digests the full payload from the pooled request state. Package-level
// so parking allocates no closure.
var asyncResume rpc.ResumeFunc = func(ctx context.Context, ac *rpc.AsyncCall) (rpc.Message, error) {
	req := ac.Request()
	var sum [32]byte
	kernels.Labeled(ctx, kernels.Hashing, func() {
		sum = kernels.Hash(req.Payload)
	})
	return rpc.Message{Method: req.Method, Payload: sum[:]}, nil
}

// AsyncOffloadHandler builds the async serving handler for svc: the
// offloadable fraction α of each request's bytes (OffloadableShare, from
// the Fig 9 breakdown) rides the accelerator; the rest is digested on the
// worker before parking. Requests small enough that α rounds to zero
// bytes respond inline without touching the device.
func AsyncOffloadHandler(svc fleetdata.Service, dev rpc.Offloader) (rpc.AsyncHandler, error) {
	if dev == nil {
		return nil, fmt.Errorf("services: nil offload device for %s", svc)
	}
	share, err := OffloadableShare(svc)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, req rpc.Message, ac *rpc.AsyncCall) (rpc.Message, error) {
		n := len(req.Payload)
		offBytes := int(float64(n) * share)
		// Host-side stage: the service's non-offloadable share.
		kernels.Labeled(ctx, kernels.Hashing, func() {
			_ = kernels.Hash(req.Payload[:n-offBytes])
		})
		if offBytes == 0 {
			var sum [32]byte
			kernels.Labeled(ctx, kernels.Hashing, func() {
				sum = kernels.Hash(req.Payload)
			})
			return rpc.Message{Method: req.Method, Payload: sum[:]}, nil
		}
		if err := ac.Park(dev, uint64(offBytes), asyncResume); err != nil {
			return rpc.Message{}, err
		}
		return rpc.Message{}, nil
	}, nil
}
