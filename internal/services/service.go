package services

import (
	"fmt"

	"repro/internal/cpuarch"
	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Service is one synthesized microservice: its fitted joint cycle
// distribution plus the granularity distributions it exposes.
type Service struct {
	Name  fleetdata.Service
	joint map[string]map[leafFunc]float64 // funcCat → leaf → percent of cycles
}

// New synthesizes a service from the fleetdata reference datasets.
func New(name fleetdata.Service) (*Service, error) {
	if !name.Valid() {
		return nil, fmt.Errorf("services: unknown service %q", name)
	}
	joint, err := fitJoint(name)
	if err != nil {
		return nil, err
	}
	return &Service{Name: name, joint: joint}, nil
}

// Fleet synthesizes all seven characterized services in figure order.
func Fleet() ([]*Service, error) {
	out := make([]*Service, 0, len(fleetdata.Services))
	for _, name := range fleetdata.Services {
		s, err := New(name)
		if err != nil {
			return nil, fmt.Errorf("services: synthesizing %s: %w", name, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// defaultIPC holds representative GenC per-category IPC values for
// instruction-weight synthesis in services without a published scaling
// study (Fig 8 publishes Cache1's).
var defaultIPC = map[string]float64{
	fleetdata.LeafMemory:  1.00,
	fleetdata.LeafKernel:  0.54,
	fleetdata.LeafHashing: 1.30,
	fleetdata.LeafSync:    0.70,
	fleetdata.LeafZSTD:    1.20,
	fleetdata.LeafMath:    1.80,
	fleetdata.LeafSSL:     1.42,
	fleetdata.LeafCLib:    1.60,
	fleetdata.LeafMisc:    1.00,
}

// categoryIPC returns the per-category IPC for a service on a generation:
// Cache1 uses the published Fig 8 table; other services use the GenC
// defaults scaled by Cache1's generation-over-generation factors, so the
// whole fleet inherits the published scaling shape.
func categoryIPC(svc fleetdata.Service, category string, gen cpuarch.Generation) float64 {
	if v, err := cpuarch.Cache1LeafIPC.IPC(category, gen); err == nil && svc == fleetdata.Cache1 {
		return v
	}
	base, ok := defaultIPC[category]
	if !ok {
		base = 1.0
	}
	// Scale by the published Cache1 factor when the category is covered;
	// otherwise assume the fleet-typical small improvement.
	factor := 1.0
	if f, err := cpuarch.Cache1LeafIPC.ScalingFactor(category, gen, cpuarch.GenC); err == nil {
		factor = f
	} else {
		switch gen {
		case cpuarch.GenA:
			factor = 1.15
		case cpuarch.GenB:
			factor = 1.05
		}
	}
	return base / factor
}

// Profile emits the service's synthesized call traces as a profiler
// Profile, scaled to totalCycles, with instruction weights derived from
// the generation's per-category IPC. This is the reproduction's stand-in
// for attaching Strobelight to a production host.
func (s *Service) Profile(gen cpuarch.Generation, totalCycles uint64) (*profiler.Profile, error) {
	if totalCycles == 0 {
		return nil, fmt.Errorf("services: zero total cycles")
	}
	p := profiler.NewProfile(s.Name)
	for funcCat, row := range s.joint {
		key, ok := funcKeys[funcCat]
		if !ok {
			return nil, fmt.Errorf("services: no marker key for functionality %q", funcCat)
		}
		for lf, pct := range row {
			if pct <= 0 {
				continue
			}
			cycles := uint64(pct / 100 * float64(totalCycles))
			if cycles == 0 {
				continue
			}
			ipc := categoryIPC(s.Name, lf.category, gen)
			stack := trace.Stack{
				"thread.worker",
				trace.Frame("func." + key),
				trace.Frame(lf.frame),
			}
			err := p.Add(trace.Sample{
				Stack:        stack,
				Cycles:       cycles,
				Instructions: uint64(float64(cycles) * ipc),
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// SizeCDF returns the service's published granularity distribution for a
// kernel kind, when the paper characterizes one (Figs 15, 19, 21, 22).
func (s *Service) SizeCDF(kind kernels.Kind) (*dist.CDF, error) {
	var c *dist.CDF
	switch kind {
	case kernels.Encryption:
		c = fleetdata.EncryptionSizes[s.Name]
	case kernels.Compression:
		c = fleetdata.CompressionSizes[s.Name]
	case kernels.MemoryCopy:
		c = fleetdata.CopySizes[s.Name]
	case kernels.Allocation:
		c = fleetdata.AllocSizes[s.Name]
	}
	if c == nil {
		return nil, fmt.Errorf("services: %s has no published %v size distribution", s.Name, kind)
	}
	return c, nil
}

// MeasureSizes plays the role of the paper's bpftrace instrumentation: it
// samples n invocation sizes for the kernel kind from the service's
// distribution and returns the observed histogram, from which callers
// derive an empirical CDF.
func (s *Service) MeasureSizes(kind kernels.Kind, n int, seed uint64) (*dist.Histogram, error) {
	cdf, err := s.SizeCDF(kind)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("services: sample count %d, want > 0", n)
	}
	sampler, err := dist.NewSampler(cdf, dist.NewRand(seed))
	if err != nil {
		return nil, err
	}
	h, err := dist.NewHistogram(cdf.Layout())
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		h.Observe(sampler.Sample())
	}
	return h, nil
}

// FunctionalityShare returns the service's Fig 9 percentage for a Table 3
// category.
func (s *Service) FunctionalityShare(category string) float64 {
	return fleetdata.FunctionalityBreakdowns[s.Name].Share(category)
}
