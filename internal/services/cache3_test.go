package services

import (
	"testing"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
)

// Cache3 (case study 2) must synthesize like the seven characterized
// services, with its encryption-heavy profile intact.
func TestCache3Synthesizes(t *testing.T) {
	s, err := New(fleetdata.Cache3)
	if err != nil {
		t.Fatalf("New(Cache3): %v", err)
	}
	p, err := s.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	shares := p.FunctionalityBreakdown(profiler.NewFunctionalityBucketer())
	if got := profiler.ShareOf(shares, fleetdata.FuncIO); got < 44 || got > 46 {
		t.Errorf("Cache3 IO share = %v%%, want ~45", got)
	}
	leaf := p.LeafBreakdown(profiler.NewLeafTagger())
	if got := profiler.ShareOf(leaf, fleetdata.LeafSSL); got < 7 || got > 9 {
		t.Errorf("Cache3 SSL share = %v%%, want ~8", got)
	}
	if got := profiler.ShareOf(leaf, fleetdata.LeafZSTD); got != 0 {
		t.Errorf("Cache3 has no compression tier; ZSTD share = %v%%", got)
	}
	// Cache3 encrypts but is excluded from the seven-service fleet.
	if !usesEncryption(fleetdata.Cache3) {
		t.Error("Cache3 must encrypt")
	}
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fleet {
		if f.Name == fleetdata.Cache3 {
			t.Error("Fleet() must contain only the seven characterized services")
		}
	}
}
