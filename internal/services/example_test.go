package services_test

import (
	"fmt"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
	"repro/internal/services"
)

// Synthesize Cache1 and run the paper's two-stage characterization
// pipeline over it.
func Example() {
	cache1, err := services.New(fleetdata.Cache1)
	if err != nil {
		panic(err)
	}
	profile, err := cache1.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		panic(err)
	}

	functionality := profile.FunctionalityBreakdown(profiler.NewFunctionalityBucketer())
	fmt.Printf("I/O: %.0f%% of cycles\n", profiler.ShareOf(functionality, fleetdata.FuncIO))

	leaves := profile.LeafBreakdown(profiler.NewLeafTagger())
	fmt.Printf("kernel leaves: %.0f%% of cycles at IPC %.2f\n",
		profiler.ShareOf(leaves, fleetdata.LeafKernel),
		profiler.IPCOf(leaves, fleetdata.LeafKernel))
	// Output:
	// I/O: 38% of cycles
	// kernel leaves: 22% of cycles at IPC 0.54
}
