package services

import (
	"compress/flate"
	"context"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/proflabel"
	"repro/internal/record"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// CPU-attribution label sets for the Exercise stages outside the rpc
// pipeline (which labels its own stages): IO pre/post-processing around
// the size-class allocator and payload staging, and the application-logic
// stand-in around hashing. Precomputed so the request loop pays only the
// proflabel gate when profiling is off.
var (
	lblIOPrepAlloc = proflabel.Labels(proflabel.KeyFunctionality, "ioprep", proflabel.KeyKernel, "allocation")
	lblIOPrepCopy  = proflabel.Labels(proflabel.KeyFunctionality, "ioprep", proflabel.KeyKernel, "memory-copy")
	lblAppHash     = proflabel.Labels(proflabel.KeyFunctionality, "app", proflabel.KeyKernel, "hashing")
	lblIOPrepFree  = proflabel.Labels(proflabel.KeyFunctionality, "ioprep", proflabel.KeyKernel, "free")
)

// This file makes the synthetic fleet execute real work: each service can
// drive genuine requests through the RPC orchestration path (serialize →
// compress → encrypt), the size-class allocator, and the memory kernels,
// with payload and copy sizes drawn from the service's published
// granularity distributions. The examples and benches use this to
// demonstrate that the substrate is executable, not just a cycle ledger.

// ExerciseStats summarizes one Exercise run.
type ExerciseStats struct {
	Requests     int
	Pipeline     rpc.PipelineStats
	Alloc        kernels.AllocStats
	BytesCopied  uint64
	BytesHashed  uint64
	WireBytes    uint64
	PayloadBytes uint64
}

// metricPrefix maps a service name to a metric-name prefix (lowercase,
// [a-z0-9_] only) for the per-service RPC instrument bundle.
func metricPrefix(name fleetdata.Service) string {
	b := []byte("svc_" + string(name))
	for i := 4; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// usesCompression reports whether the service compresses RPC payloads
// (Fig 9: Web, Feed1, Feed2, Ads1, Ads2, Cache1 have compression cycles).
func usesCompression(name fleetdata.Service) bool {
	return fleetdata.FunctionalityBreakdowns[name].Share(fleetdata.FuncCompression) > 0
}

// usesEncryption reports whether the service encrypts I/O (the Cache tiers
// serve a high encrypted QPS; Fig 2 gives them SSL leaf cycles).
func usesEncryption(name fleetdata.Service) bool {
	return fleetdata.LeafBreakdowns[name].Share(fleetdata.LeafSSL) > 0 || name == fleetdata.Cache3
}

// Exercise processes n requests through the service's real orchestration
// path. Payload sizes follow the service's copy-size distribution when
// published (falling back to allocation sizes). The returned stats expose
// the concrete work performed.
func (s *Service) Exercise(n int, seed uint64) (ExerciseStats, error) {
	return s.ExerciseInstrumented(n, seed, nil, nil)
}

// ExerciseInstrumented is Exercise with optional telemetry: with a registry
// attached, the sender pipeline's per-stage latencies feed
// <service>_stage_* histograms, and with a tracer each request becomes a
// span with child spans per pipeline stage. Either may be nil; with both
// nil it is Exercise.
func (s *Service) ExerciseInstrumented(n int, seed uint64, reg *telemetry.Registry, tracer *telemetry.Tracer) (ExerciseStats, error) {
	return s.ExerciseRecorded(n, seed, reg, tracer, nil)
}

// ExerciseRecorded is ExerciseInstrumented with an optional flight
// recorder: each request is captured with its live arrival time, payload
// size, and copy granularity, so a run's request stream can be replayed
// later. A nil recorder costs one nil check inside Record — the loop
// itself carries no recording branches.
func (s *Service) ExerciseRecorded(n int, seed uint64, reg *telemetry.Registry, tracer *telemetry.Tracer, rec *record.Recorder) (ExerciseStats, error) {
	if n <= 0 {
		return ExerciseStats{}, fmt.Errorf("services: request count %d, want > 0", n)
	}

	sizeCDF, err := s.SizeCDF(kernels.MemoryCopy)
	if err != nil {
		sizeCDF, err = s.SizeCDF(kernels.Allocation)
		if err != nil {
			return ExerciseStats{}, fmt.Errorf("services: %s has no size distribution to exercise", s.Name)
		}
	}
	sampler, err := dist.NewSampler(sizeCDF, dist.NewRand(seed))
	if err != nil {
		return ExerciseStats{}, err
	}

	var opts []rpc.PipelineOption
	if usesCompression(s.Name) {
		opts = append(opts, rpc.WithCompression(flate.BestSpeed))
	}
	if usesEncryption(s.Name) {
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(seed) + byte(i)
		}
		opts = append(opts, rpc.WithEncryption(key))
	}
	sender, err := rpc.NewPipeline(opts...)
	if err != nil {
		return ExerciseStats{}, err
	}
	receiver, err := rpc.NewPipeline(opts...)
	if err != nil {
		return ExerciseStats{}, err
	}
	if reg != nil {
		mx, err := rpc.NewMetrics(reg, metricPrefix(s.Name))
		if err != nil {
			return ExerciseStats{}, err
		}
		sender.Instrument(mx)
		receiver.Instrument(mx)
	}

	arena := kernels.NewArena()
	stats := ExerciseStats{Requests: n}
	// Payload staging draws from the kernels scratch pool: one buffer per
	// run in steady state instead of a fresh CompressibleData slice per
	// request, matching the allocation discipline of the RPC hot path.
	const maxPayload = 64 << 10
	staging := kernels.GetScratch(maxPayload)[:maxPayload]
	defer kernels.PutScratch(staging)

	// Each request runs under the service's CPU-attribution label (a no-op
	// unless proflabel.Enable is in effect); the labeled ctx flows into the
	// pipeline so stage labels merge with it.
	baseCtx := context.Background()
	svcLabels := proflabel.ServiceSet(string(s.Name))

	var reqErr error
	for i := 0; i < n; i++ {
		var reqSize uint64
		proflabel.Do(baseCtx, svcLabels, func(ctx context.Context) {
			size := sampler.Sample()
			if size == 0 {
				size = 1
			}
			if size > maxPayload {
				size = maxPayload
			}

			// IO pre-processing: allocate a buffer through the size-class
			// allocator and fill it with a realistic payload staged in the
			// pooled buffer.
			var block []byte
			proflabel.Do(ctx, lblIOPrepAlloc, func(context.Context) {
				block, reqErr = arena.Alloc(int(size))
			})
			if reqErr != nil {
				return
			}
			proflabel.Do(ctx, lblIOPrepCopy, func(context.Context) {
				payload := staging[:size]
				kernels.FillCompressible(payload, seed+uint64(i))
				block = block[:size]
				stats.BytesCopied += uint64(kernels.Copy(block, payload))
			})
			stats.PayloadBytes += size
			reqSize = size

			// Orchestration: serialize (+compress/+encrypt) and decode on the
			// "server" side.
			msg := rpc.Message{
				Method:  string(s.Name) + ".request",
				Headers: map[string]string{"seq": fmt.Sprint(i)},
				Payload: block,
			}
			sp := tracer.Start(string(s.Name) + ".request")
			wire, err := sender.EncodeCtx(ctx, msg, sp)
			if err != nil {
				sp.End()
				reqErr = err
				return
			}
			stats.WireBytes += uint64(len(wire))
			decoded, err := receiver.DecodeCtx(ctx, wire, sp)
			if err != nil {
				sp.End()
				reqErr = err
				return
			}

			// Application logic stand-in: hash the payload (key-value digest).
			var t0 time.Time
			if sp != nil {
				t0 = time.Now()
			}
			proflabel.Do(ctx, lblAppHash, func(context.Context) {
				sum := kernels.Hash(decoded.Payload)
				staging[0] = sum[0] // keep the hash live; overwritten by the next fill
			})
			if sp != nil {
				sp.ChildDone("hash", t0, time.Since(t0))
			}
			stats.BytesHashed += uint64(len(decoded.Payload))
			sp.End()

			// IO post-processing: return the buffer.
			proflabel.Do(ctx, lblIOPrepFree, func(context.Context) {
				reqErr = arena.FreeSized(block, int(size))
			})
		})
		outcome := record.OutcomeOK
		if reqErr != nil {
			outcome = record.OutcomeError
		}
		rec.Record(string(s.Name), reqSize, reqSize, outcome)
		if reqErr != nil {
			return ExerciseStats{}, reqErr
		}
	}
	stats.Pipeline = sender.Stats()
	stats.Alloc = arena.Stats()
	return stats, nil
}
