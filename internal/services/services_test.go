package services

import (
	"math"
	"testing"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/profiler"
	"repro/internal/telemetry"
)

func mustService(t *testing.T, name fleetdata.Service) *Service {
	t.Helper()
	s, err := New(name)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return s
}

func TestNewUnknownService(t *testing.T) {
	if _, err := New(fleetdata.Service("Nope")); err == nil {
		t.Error("unknown service: want error")
	}
}

func TestFleetSynthesizesAllSeven(t *testing.T) {
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 7 {
		t.Fatalf("fleet size = %d, want 7", len(fleet))
	}
	for i, s := range fleet {
		if s.Name != fleetdata.Services[i] {
			t.Errorf("fleet[%d] = %s, want %s", i, s.Name, fleetdata.Services[i])
		}
	}
}

// The synthesized profile's functionality breakdown must reproduce Fig 9
// within rounding — the characterization pipeline must not distort the
// reference marginals.
func TestProfileReproducesFunctionalityBreakdown(t *testing.T) {
	bucketer := profiler.NewFunctionalityBucketer()
	for _, name := range fleetdata.Services {
		s := mustService(t, name)
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shares := p.FunctionalityBreakdown(bucketer)
		want := fleetdata.FunctionalityBreakdowns[name]
		for cat, pct := range want {
			got := profiler.ShareOf(shares, cat)
			if math.Abs(got-pct) > 0.6 {
				t.Errorf("%s %s = %.2f%%, fleetdata says %.2f%%", name, cat, got, pct)
			}
		}
	}
}

// The same profile's leaf breakdown must simultaneously reproduce Fig 2.
func TestProfileReproducesLeafBreakdown(t *testing.T) {
	tagger := profiler.NewLeafTagger()
	for _, name := range fleetdata.Services {
		s := mustService(t, name)
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shares := p.LeafBreakdown(tagger)
		want := fleetdata.LeafBreakdowns[name]
		for cat, pct := range want {
			got := profiler.ShareOf(shares, cat)
			if math.Abs(got-pct) > 0.6 {
				t.Errorf("%s %s = %.2f%%, fleetdata says %.2f%%", name, cat, got, pct)
			}
		}
	}
}

// Memory sub-breakdown (Fig 3) must survive the pipeline.
func TestProfileReproducesMemoryBreakdown(t *testing.T) {
	for _, name := range []fleetdata.Service{fleetdata.Web, fleetdata.Cache1, fleetdata.Cache2} {
		s := mustService(t, name)
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		shares := p.LeafFunctionBreakdown("mem", profiler.MemoryLabels, "Other")
		want := fleetdata.MemoryBreakdowns[name]
		for cat, pct := range want {
			got := profiler.ShareOf(shares, cat)
			if math.Abs(got-pct) > 1.5 {
				t.Errorf("%s %s = %.2f%% of memory cycles, fleetdata says %.2f%%", name, cat, got, pct)
			}
		}
	}
}

// The kernel, synchronization, and C-library sub-breakdowns (Figs 5-7)
// must also survive the pipeline for every service.
func TestProfileReproducesAllSubBreakdowns(t *testing.T) {
	cases := []struct {
		domain   string
		labels   map[string]string
		fallback string
		ref      map[fleetdata.Service]fleetdata.Breakdown
	}{
		{"kernel", profiler.KernelLabels, fleetdata.KernMisc, fleetdata.KernelBreakdowns},
		{"sync", profiler.SyncLabels, "Other", fleetdata.SyncBreakdowns},
		{"clib", profiler.CLibLabels, fleetdata.CLibMisc, fleetdata.CLibBreakdowns},
	}
	for _, name := range fleetdata.Services {
		s := mustService(t, name)
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			shares := p.LeafFunctionBreakdown(tc.domain, tc.labels, tc.fallback)
			for cat, pct := range tc.ref[name] {
				got := profiler.ShareOf(shares, cat)
				if math.Abs(got-pct) > 2.0 {
					t.Errorf("%s %s/%s = %.2f%%, fleetdata says %.2f%%", name, tc.domain, cat, got, pct)
				}
			}
		}
	}
}

// Copy origins (Fig 4) are pinned exactly in the joint; the profiler's
// attribution must recover them.
func TestProfileReproducesCopyOrigins(t *testing.T) {
	bucketer := profiler.NewFunctionalityBucketer()
	for _, name := range fleetdata.Services {
		s := mustService(t, name)
		p, err := s.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		shares := p.CopyOrigins("mem.copy", bucketer)
		want := fleetdata.CopyOrigins[name]
		for cat, pct := range want {
			got := profiler.ShareOf(shares, cat)
			if math.Abs(got-pct) > 1.5 {
				t.Errorf("%s copies from %s = %.2f%%, fleetdata says %.2f%%", name, cat, got, pct)
			}
		}
	}
}

// Kernel IPC must be the lowest leaf-category IPC in Cache1's profile and
// must scale poorly across generations (Fig 8's finding).
func TestProfileIPCShape(t *testing.T) {
	s := mustService(t, fleetdata.Cache1)
	tagger := profiler.NewLeafTagger()

	genC, err := s.Profile(cpuarch.GenC, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	sharesC := genC.LeafBreakdown(tagger)
	kernelIPC := profiler.IPCOf(sharesC, fleetdata.LeafKernel)
	for _, cat := range []string{fleetdata.LeafMemory, fleetdata.LeafZSTD, fleetdata.LeafSSL, fleetdata.LeafCLib} {
		if got := profiler.IPCOf(sharesC, cat); got <= kernelIPC {
			t.Errorf("%s IPC %v should exceed kernel IPC %v", cat, got, kernelIPC)
		}
	}

	genA, err := s.Profile(cpuarch.GenA, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	sharesA := genA.LeafBreakdown(tagger)
	kernelScaling := kernelIPC / profiler.IPCOf(sharesA, fleetdata.LeafKernel)
	clibScaling := profiler.IPCOf(sharesC, fleetdata.LeafCLib) / profiler.IPCOf(sharesA, fleetdata.LeafCLib)
	if kernelScaling > 1.2 {
		t.Errorf("kernel IPC scaling = %v, should be poor", kernelScaling)
	}
	if clibScaling < 1.3 {
		t.Errorf("C-library IPC scaling = %v, should be strong", clibScaling)
	}
}

func TestProfileZeroCycles(t *testing.T) {
	s := mustService(t, fleetdata.Web)
	if _, err := s.Profile(cpuarch.GenC, 0); err == nil {
		t.Error("zero cycles: want error")
	}
}

func TestSizeCDFs(t *testing.T) {
	cache1 := mustService(t, fleetdata.Cache1)
	if _, err := cache1.SizeCDF(kernels.Encryption); err != nil {
		t.Errorf("Cache1 encryption CDF: %v", err)
	}
	if _, err := cache1.SizeCDF(kernels.Compression); err != nil {
		t.Errorf("Cache1 compression CDF: %v", err)
	}
	web := mustService(t, fleetdata.Web)
	if _, err := web.SizeCDF(kernels.Encryption); err == nil {
		t.Error("Web has no published encryption CDF: want error")
	}
	if _, err := web.SizeCDF(kernels.Hashing); err == nil {
		t.Error("no hashing CDF exists: want error")
	}
}

// MeasureSizes (the bpftrace stand-in) must recover the published CDF.
func TestMeasureSizesMatchesPublishedCDF(t *testing.T) {
	s := mustService(t, fleetdata.Feed1)
	h, err := s.MeasureSizes(kernels.Compression, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := h.CDF()
	if err != nil {
		t.Fatal(err)
	}
	published, _ := s.SizeCDF(kernels.Compression)
	got := measured.FractionAtLeast(425)
	want := published.FractionAtLeast(425)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("measured fraction ≥ 425 B = %v, published = %v", got, want)
	}
	if _, err := s.MeasureSizes(kernels.Compression, 0, 1); err == nil {
		t.Error("zero samples: want error")
	}
}

func TestFunctionalityShare(t *testing.T) {
	s := mustService(t, fleetdata.Feed1)
	if got := s.FunctionalityShare(fleetdata.FuncCompression); got != 15 {
		t.Errorf("Feed1 compression share = %v, want 15", got)
	}
}

// Exercise must genuinely run the orchestration path: compression shrinks
// wire bytes for compressing services, encryption hides plaintext, the
// allocator round-trips every block.
func TestExerciseRunsRealWork(t *testing.T) {
	for _, name := range []fleetdata.Service{fleetdata.Web, fleetdata.Cache1} {
		s := mustService(t, name)
		stats, err := s.Exercise(200, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Requests != 200 {
			t.Errorf("%s requests = %d", name, stats.Requests)
		}
		if stats.Pipeline.Serialized != 200 || stats.Pipeline.Deserialized != 0 {
			// Sender serializes; the receiver pipeline deserializes but we
			// report the sender's stats.
			t.Errorf("%s pipeline stats = %+v", name, stats.Pipeline)
		}
		if stats.Alloc.Allocs != 200 || stats.Alloc.Frees != 200 {
			t.Errorf("%s allocator stats = %+v", name, stats.Alloc)
		}
		if stats.Alloc.ClassLookups != 0 {
			t.Errorf("%s used un-sized frees: %+v", name, stats.Alloc)
		}
		if stats.BytesCopied == 0 || stats.BytesHashed == 0 {
			t.Errorf("%s did no real work: %+v", name, stats)
		}
	}

	web := mustService(t, fleetdata.Web)
	stats, _ := web.Exercise(200, 7)
	if stats.Pipeline.Compressions != 200 {
		t.Errorf("Web should compress every request, got %d", stats.Pipeline.Compressions)
	}
	if stats.Pipeline.Encryptions != 0 {
		t.Errorf("Web should not encrypt, got %d", stats.Pipeline.Encryptions)
	}

	cache1 := mustService(t, fleetdata.Cache1)
	stats, _ = cache1.Exercise(200, 7)
	if stats.Pipeline.Encryptions != 200 {
		t.Errorf("Cache1 should encrypt every request, got %d", stats.Pipeline.Encryptions)
	}
	// Compressible payloads + compression ⇒ wire bytes below payload
	// bytes despite framing overhead.
	if stats.WireBytes >= stats.PayloadBytes {
		t.Errorf("Cache1 wire bytes %d should be below payload bytes %d (compression)",
			stats.WireBytes, stats.PayloadBytes)
	}
}

func TestExerciseErrors(t *testing.T) {
	s := mustService(t, fleetdata.Web)
	if _, err := s.Exercise(0, 1); err == nil {
		t.Error("zero requests: want error")
	}
}

// ExerciseInstrumented must populate per-service stage histograms and one
// span per request with pipeline-stage children, without changing the
// work performed.
func TestExerciseInstrumented(t *testing.T) {
	s := mustService(t, fleetdata.Web)
	plain, err := s.Exercise(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer("web")
	instrumented, err := s.ExerciseInstrumented(50, 7, reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Errorf("instrumentation changed the work:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
	// Web compresses but does not encrypt: serialize/compress on the send
	// side, decompress/deserialize on the receive side, 50 each.
	for _, name := range []string{"serialize", "compress", "decompress", "deserialize"} {
		h, err := reg.Histogram("svc_web_stage_"+name+"_seconds", "")
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Count(); got != 50 {
			t.Errorf("stage %s count = %d, want 50", name, got)
		}
	}
	spans := tracer.Spans()
	roots, children := 0, 0
	for _, sp := range spans {
		if sp.ParentID == 0 {
			roots++
		} else {
			children++
		}
	}
	if roots != 50 {
		t.Errorf("root spans = %d, want 50", roots)
	}
	// Per request: serialize, compress, decompress, deserialize, hash.
	if children != 250 {
		t.Errorf("child spans = %d, want 250", children)
	}
}

func TestExerciseDeterministic(t *testing.T) {
	s := mustService(t, fleetdata.Cache2)
	a, err := s.Exercise(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Exercise(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.PayloadBytes != b.PayloadBytes || a.BytesCopied != b.BytesCopied {
		t.Error("same seed produced different work")
	}
}
