package config

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

const caseStudy1 = `
# Case study 1: AES-NI for Cache1
name     = aesni-cache1
C        = 2.0e9
alpha    = 0.165844
n        = 298951
o0       = 10
Q        = 0
L        = 3
A        = 6
threading = sync
strategy  = on-chip
`

func TestParseCaseStudy1(t *testing.T) {
	sc, err := ParseString(caseStudy1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "aesni-cache1" {
		t.Errorf("name = %q", sc.Name)
	}
	if sc.Params.C != 2.0e9 || sc.Params.Alpha != 0.165844 || sc.Params.N != 298951 {
		t.Errorf("params = %+v", sc.Params)
	}
	if sc.Params.O0 != 10 || sc.Params.L != 3 || sc.Params.A != 6 {
		t.Errorf("overheads = %+v", sc.Params)
	}
	if sc.Threading != core.Sync || sc.Strategy != core.OnChip {
		t.Errorf("design = %v/%v", sc.Threading, sc.Strategy)
	}

	// The parsed scenario drives the model to the paper's 15.7% estimate.
	m := core.MustNew(sc.Params)
	pct, err := m.SpeedupPercent(sc.Threading)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 15.6 || pct > 15.9 {
		t.Errorf("speedup = %v%%, want ~15.7", pct)
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := ParseString("C=1e9\nalpha=0.1\nn=100\n")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.A != 1 || sc.Threading != core.Sync || sc.Strategy != core.OnChip {
		t.Errorf("defaults = %+v %v %v", sc.Params, sc.Threading, sc.Strategy)
	}
	if sc.Params.O0 != 0 || sc.Params.Q != 0 || sc.Params.L != 0 || sc.Params.O1 != 0 {
		t.Errorf("overhead defaults = %+v", sc.Params)
	}
}

func TestParseInfiniteA(t *testing.T) {
	sc, err := ParseString("C=1e9\nalpha=0.5\nn=1\nA=inf\n")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sc.Params.A, 1) {
		t.Errorf("A = %v, want +Inf", sc.Params.A)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"missing C", "alpha=0.1\nn=1\n"},
		{"missing alpha", "C=1e9\nn=1\n"},
		{"missing n", "C=1e9\nalpha=0.1\n"},
		{"unknown key", "C=1e9\nalpha=0.1\nn=1\nbogus=3\n"},
		{"duplicate key", "C=1e9\nC=2e9\nalpha=0.1\nn=1\n"},
		{"no equals", "C 1e9\nalpha=0.1\nn=1\n"},
		{"bad number", "C=abc\nalpha=0.1\nn=1\n"},
		{"bad threading", "C=1e9\nalpha=0.1\nn=1\nthreading=magic\n"},
		{"bad strategy", "C=1e9\nalpha=0.1\nn=1\nstrategy=quantum\n"},
		{"invalid params", "C=1e9\nalpha=2\nn=1\n"},
		{"A below 1", "C=1e9\nalpha=0.1\nn=1\nA=0.5\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.doc); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	doc := "# full-line comment\n\nC=1e9 # trailing comment\nalpha=0.1\n\n\nn=5\n"
	sc, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.C != 1e9 || sc.Params.N != 5 {
		t.Errorf("params = %+v", sc.Params)
	}
}

func TestParseThreadingAliases(t *testing.T) {
	cases := map[string]core.Threading{
		"sync":                  core.Sync,
		"Sync-OS":               core.SyncOS,
		"syncos":                core.SyncOS,
		"ASYNC":                 core.AsyncSameThread,
		"async-distinct-thread": core.AsyncDistinctThread,
		"async-no-response":     core.AsyncNoResponse,
	}
	for in, want := range cases {
		got, err := ParseThreading(in)
		if err != nil || got != want {
			t.Errorf("ParseThreading(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseThreading("nope"); err == nil {
		t.Error("unknown threading: want error")
	}
}

func TestParseStrategyAliases(t *testing.T) {
	cases := map[string]core.Strategy{
		"on-chip": core.OnChip, "onchip": core.OnChip,
		"Off-Chip": core.OffChip, "remote": core.Remote,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown strategy: want error")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	orig, err := ParseString(caseStudy1)
	if err != nil {
		t.Fatal(err)
	}
	doc := Render(orig)
	back, err := ParseString(doc)
	if err != nil {
		t.Fatalf("re-parse rendered config: %v\n%s", err, doc)
	}
	if back != orig {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestRenderRoundTripAllThreadings(t *testing.T) {
	for _, th := range core.Threadings {
		sc := Scenario{
			Params:    core.Params{C: 1e9, Alpha: 0.2, N: 10, A: 2},
			Threading: th,
			Strategy:  core.OffChip,
		}
		back, err := ParseString(Render(sc))
		if err != nil {
			t.Errorf("%v: %v", th, err)
			continue
		}
		if back.Threading != th {
			t.Errorf("threading %v round-tripped to %v", th, back.Threading)
		}
	}
}

func TestRenderInfiniteA(t *testing.T) {
	sc := Scenario{
		Params:    core.Params{C: 1e9, Alpha: 0.2, N: 10, A: math.Inf(1)},
		Threading: core.Sync,
		Strategy:  core.OnChip,
	}
	doc := Render(sc)
	if !strings.Contains(doc, "A = inf") {
		t.Errorf("rendered doc missing A = inf:\n%s", doc)
	}
	back, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Params.A, 1) {
		t.Errorf("A round-tripped to %v", back.Params.A)
	}
}
