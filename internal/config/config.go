// Package config parses the key=value parameter files consumed by
// cmd/accelerometer, mirroring the paper artifact's workflow: "(a) identify
// model parameters for the accelerator under test, (b) input these model
// parameters into a configuration file, and (c) run the Accelerometer model
// for these model parameters to estimate speedup" (Appendix A.5).
//
// The file format is deliberately plain: one "key = value" pair per line,
// '#' comments, and blank lines. Keys are the Table 5 parameter names plus
// a threading design and an acceleration strategy:
//
//	# Case study 1: AES-NI for Cache1
//	C        = 2.0e9
//	alpha    = 0.165844
//	n        = 298951
//	o0       = 10
//	Q        = 0
//	L        = 3
//	o1       = 0
//	A        = 6
//	threading = sync
//	strategy  = on-chip
package config

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Scenario is a fully parsed model configuration.
type Scenario struct {
	Name      string // optional "name = ..." entry
	Params    core.Params
	Threading core.Threading
	Strategy  core.Strategy
}

// threadingNames maps config values to threading designs. Both the paper's
// names and hyphenless aliases are accepted.
var threadingNames = map[string]core.Threading{
	"sync":                  core.Sync,
	"sync-os":               core.SyncOS,
	"syncos":                core.SyncOS,
	"async":                 core.AsyncSameThread,
	"async-same-thread":     core.AsyncSameThread,
	"async-distinct-thread": core.AsyncDistinctThread,
	"async-distinct":        core.AsyncDistinctThread,
	"async-no-response":     core.AsyncNoResponse,
}

// strategyNames maps config values to acceleration strategies.
var strategyNames = map[string]core.Strategy{
	"on-chip":  core.OnChip,
	"onchip":   core.OnChip,
	"off-chip": core.OffChip,
	"offchip":  core.OffChip,
	"remote":   core.Remote,
}

// ParseThreading resolves a threading-design name.
func ParseThreading(s string) (core.Threading, error) {
	t, ok := threadingNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("config: unknown threading %q (want sync, sync-os, async, async-distinct-thread, or async-no-response)", s)
	}
	return t, nil
}

// ParseStrategy resolves an acceleration-strategy name.
func ParseStrategy(s string) (core.Strategy, error) {
	st, ok := strategyNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("config: unknown strategy %q (want on-chip, off-chip, or remote)", s)
	}
	return st, nil
}

// Parse reads a scenario from r. Unknown keys are errors (they are almost
// always typos of model parameters). Missing keys fall back to: Q=o0=L=o1=0,
// A=1, threading=sync, strategy=on-chip; C, alpha, and n are required.
func Parse(r io.Reader) (Scenario, error) {
	sc := Scenario{
		Params:    core.Params{A: 1},
		Threading: core.Sync,
		Strategy:  core.OnChip,
	}
	seen := map[string]bool{}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("config: line %d: want key = value, got %q", lineNo, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if seen[key] {
			return Scenario{}, fmt.Errorf("config: line %d: duplicate key %q", lineNo, key)
		}
		seen[key] = true

		var err error
		switch key {
		case "name":
			sc.Name = value
		case "c":
			sc.Params.C, err = parseFloat(value)
		case "alpha", "α":
			sc.Params.Alpha, err = parseFloat(value)
		case "n":
			sc.Params.N, err = parseFloat(value)
		case "o0":
			sc.Params.O0, err = parseFloat(value)
		case "q":
			sc.Params.Q, err = parseFloat(value)
		case "l":
			sc.Params.L, err = parseFloat(value)
		case "o1":
			sc.Params.O1, err = parseFloat(value)
		case "a":
			if strings.EqualFold(value, "inf") || value == "∞" {
				sc.Params.A = math.Inf(1)
			} else {
				sc.Params.A, err = parseFloat(value)
			}
		case "threading":
			sc.Threading, err = ParseThreading(value)
		case "strategy":
			sc.Strategy, err = ParseStrategy(value)
		default:
			return Scenario{}, fmt.Errorf("config: line %d: unknown key %q", lineNo, key)
		}
		if err != nil {
			return Scenario{}, fmt.Errorf("config: line %d: key %q: %w", lineNo, key, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return Scenario{}, fmt.Errorf("config: read: %w", err)
	}

	for _, req := range []string{"c", "alpha", "n"} {
		if !seen[req] {
			return Scenario{}, fmt.Errorf("config: missing required key %q", req)
		}
	}
	if err := sc.Params.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (Scenario, error) {
	return Parse(strings.NewReader(s))
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q", s)
	}
	return v, nil
}

// Render writes a scenario back out in the config format; round-trips
// through Parse.
func Render(sc Scenario) string {
	var sb strings.Builder
	if sc.Name != "" {
		fmt.Fprintf(&sb, "name = %s\n", sc.Name)
	}
	p := sc.Params
	fmt.Fprintf(&sb, "C = %g\nalpha = %g\nn = %g\no0 = %g\nQ = %g\nL = %g\no1 = %g\n",
		p.C, p.Alpha, p.N, p.O0, p.Q, p.L, p.O1)
	if math.IsInf(p.A, 1) {
		sb.WriteString("A = inf\n")
	} else {
		fmt.Fprintf(&sb, "A = %g\n", p.A)
	}
	fmt.Fprintf(&sb, "threading = %s\nstrategy = %s\n",
		strings.ToLower(sc.Threading.String()), sc.Strategy.String())
	return sb.String()
}
