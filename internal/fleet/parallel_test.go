package fleet

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// TestFleetWorkerCountIndependence checks the load-bearing property of the
// worker pool: the aggregate Result is byte-identical whether shards run
// sequentially (MaxWorkers=1), with the automatic bound (0), or wildly
// oversubscribed — parallelism changes wall-clock only.
func TestFleetWorkerCountIndependence(t *testing.T) {
	base := Config{Shards: 8, Seed: 99, RequestsPerService: 50, MaxWorkers: 1}
	first, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(first.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		cfg := base
		cfg.MaxWorkers = workers
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("MaxWorkers=%d: %v", workers, err)
		}
		got, err := json.Marshal(r.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("MaxWorkers=%d: aggregate diverges from sequential run", workers)
		}
	}
}

// TestFleetRejectsNegativeWorkers checks Validate's MaxWorkers bound.
func TestFleetRejectsNegativeWorkers(t *testing.T) {
	if _, err := Run(Config{Shards: 1, MaxWorkers: -1}); err == nil {
		t.Fatal("MaxWorkers=-1: want error, got nil")
	}
}

// TestFleetParallelSpeedup is the wall-clock smoke test: with 8 shards and
// at least 4 cores, the pooled run must beat the sequential one by ≥1.5×.
// Scheduling noise makes a single timing unreliable, so each attempt times
// both modes back to back and any one attempt clearing the bar passes.
// Skipped in -short mode and on small machines, where the speedup cannot
// physically materialize.
func TestFleetParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if ncpu := runtime.GOMAXPROCS(0); ncpu < 4 {
		t.Skipf("need >= 4 usable cores for a 1.5x bar, have %d", ncpu)
	}

	// Enough per-service work that each shard runs for tens of
	// milliseconds — long enough to dwarf pool setup and scheduler jitter.
	cfg := Config{Shards: 8, Seed: 7, RequestsPerService: 4000}

	const (
		attempts = 3
		wantGain = 1.5
	)
	var best float64
	for i := 0; i < attempts; i++ {
		seqStart := time.Now()
		cfg.MaxWorkers = 1
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		seq := time.Since(seqStart)

		parStart := time.Now()
		cfg.MaxWorkers = 0 // min(GOMAXPROCS, Shards)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		par := time.Since(parStart)

		gain := float64(seq) / float64(par)
		if gain > best {
			best = gain
		}
		t.Logf("attempt %d: sequential %v, parallel %v, speedup %.2fx", i, seq, par, gain)
		if gain >= wantGain {
			return
		}
	}
	t.Errorf("parallel fleet never reached %.1fx over sequential (best %.2fx in %d attempts)",
		wantGain, best, attempts)
}
