package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/record"
)

// recordingConfig is sized so the full run fits the recorder ring with
// room to spare (8 services x 40 requests).
func recordingConfig() Config {
	return Config{Seed: 42, RequestsPerService: 40, Shards: 4}
}

// Attaching a recorder never changes the fleet result — the sim
// observer is read-only — and the captured trace holds exactly one
// event per completed request, for every service, regardless of shard
// scheduling.
func TestFleetRecorderDoesNotPerturb(t *testing.T) {
	plain, err := Run(recordingConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := record.NewRecorder(1 << 12)
	cfg := recordingConfig()
	cfg.Recorder = rec
	recorded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, recorded) {
		t.Error("attaching a recorder changed the fleet result")
	}

	tr := rec.Snapshot()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Events), plain.Aggregate.Completed; got != want {
		t.Errorf("recorded %d events for %d completed requests", got, want)
	}
	if got, want := len(tr.Services), len(FleetServices); got != want {
		t.Errorf("recorded %d services, want %d", got, want)
	}
	for _, e := range tr.Events {
		if e.PayloadBytes == 0 || e.Granularity == 0 || e.Granularity > e.PayloadBytes {
			t.Fatalf("implausible event %+v", e)
		}
	}
}

// The recorded trace is deterministic: two identical runs, even with
// different shard counts (hence different worker interleavings),
// canonicalize to byte-identical trace files.
func TestFleetRecordingDeterministic(t *testing.T) {
	encode := func(shards int) []byte {
		rec := record.NewRecorder(1 << 12)
		cfg := recordingConfig()
		cfg.Shards = shards
		cfg.Recorder = rec
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		data, err := rec.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := encode(4)
	b := encode(4)
	if !bytes.Equal(a, b) {
		t.Error("same config recorded different traces")
	}
	c := encode(8)
	if !bytes.Equal(a, c) {
		t.Error("shard count leaked into the recorded trace")
	}
}

// benchmarkFleet runs the full sharded fleet loop with or without a
// recorder attached; bench_record.sh gates the recorder's overhead on the
// delta between the two.
func benchmarkFleet(b *testing.B, rec *record.Recorder) {
	cfg := recordingConfig()
	cfg.Recorder = rec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetRecorderOff(b *testing.B) { benchmarkFleet(b, nil) }

func BenchmarkFleetRecorderOn(b *testing.B) { benchmarkFleet(b, record.NewRecorder(1<<14)) }

// A fleet-recorded trace replays through the simulator deterministically
// end to end: record -> encode -> decode -> ReplaySim twice agree.
func TestFleetRecordReplayRoundTrip(t *testing.T) {
	rec := record.NewRecorder(1 << 12)
	cfg := recordingConfig()
	cfg.Recorder = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := rec.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := record.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := record.ReplaySim(tr, record.SimReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := record.ReplaySim(tr, record.SimReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("replaying the fleet trace twice diverged")
	}
	if a.Aggregate.Completed != len(tr.Events) {
		t.Errorf("replay completed %d of %d recorded events", a.Aggregate.Completed, len(tr.Events))
	}
}
