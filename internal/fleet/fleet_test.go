package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func testAccel() *sim.Accel {
	return &sim.Accel{
		Threading: core.Sync,
		Strategy:  core.OffChip,
		A:         10,
		O0:        500,
		L:         300,
		Servers:   2,
	}
}

func testConfig(shards int, batch float64) Config {
	return Config{
		Shards:             shards,
		Seed:               42,
		RequestsPerService: 120,
		Batch:              batch,
		Accel:              testAccel(),
	}
}

// Golden determinism property: the same seed and shard count must yield a
// byte-identical aggregated Result, goroutine scheduling notwithstanding.
func TestFleetDeterminismGolden(t *testing.T) {
	first, err := Run(testConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(first.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(testConfig(3, 1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(again.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: aggregate bytes diverged:\n got %s\nwant %s", i, got, want)
		}
		if !reflect.DeepEqual(again.Services, first.Services) {
			t.Fatalf("run %d: per-service results diverged", i)
		}
	}
}

// The aggregate must not depend on how services are sharded: shards only
// change driver parallelism.
func TestFleetShardCountIndependence(t *testing.T) {
	base, err := Run(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 5, 8, 13} {
		r, err := Run(testConfig(shards, 1))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := json.Marshal(r.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: aggregate differs from shards=1:\n got %s\nwant %s", shards, got, want)
		}
		for i := range r.Services {
			if r.Services[i].Service != base.Services[i].Service {
				t.Fatalf("shards=%d: service order changed at %d", shards, i)
			}
			if !reflect.DeepEqual(r.Services[i].Result, base.Services[i].Result) {
				t.Errorf("shards=%d: %s result differs from shards=1 run",
					shards, r.Services[i].Service)
			}
		}
	}
}

func TestFleetCoversEightServices(t *testing.T) {
	r, err := Run(testConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Services) != 8 {
		t.Fatalf("fleet ran %d services, want 8", len(r.Services))
	}
	seen := map[int]int{}
	for _, sr := range r.Services {
		if sr.Result.Completed != 120 {
			t.Errorf("%s completed %d requests, want 120", sr.Service, sr.Result.Completed)
		}
		seen[sr.Shard]++
	}
	if len(seen) != 4 {
		t.Errorf("round-robin used %d shards, want all 4", len(seen))
	}
	if r.Aggregate.Completed != 8*120 {
		t.Errorf("aggregate completed %d, want %d", r.Aggregate.Completed, 8*120)
	}
}

// Batching amortizes fixed offload costs, so fleet throughput must not
// drop and should strictly rise in this overhead-dominated regime.
func TestFleetBatchAmortizes(t *testing.T) {
	unb, err := Run(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Run(testConfig(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !(bat.Aggregate.ThroughputQPS > unb.Aggregate.ThroughputQPS) {
		t.Errorf("batched fleet QPS %v not above unbatched %v",
			bat.Aggregate.ThroughputQPS, unb.Aggregate.ThroughputQPS)
	}
	if bat.Aggregate.Completed != unb.Aggregate.Completed {
		t.Errorf("batching changed completed count: %d vs %d",
			bat.Aggregate.Completed, unb.Aggregate.Completed)
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Shards: -1}); err == nil {
		t.Error("negative shards: want error")
	}
	if _, err := Run(Config{Batch: 0.5}); err == nil {
		t.Error("fractional batch: want error")
	}
}

func TestFleetTelemetryExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig(2, 1)
	cfg.Telemetry = reg
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fleet_requests_total", "fleet_offloads_total", "fleet_service_latency_cycles"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("telemetry export missing %q:\n%s", want, out)
		}
	}
	if r.Aggregate.Completed == 0 {
		t.Error("aggregate empty with telemetry attached")
	}
}
