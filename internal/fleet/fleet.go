// Package fleet drives the paper's synthetic microservice fleet through
// the simulator as one sharded run: the eight characterized services
// (the seven of §2.1 plus Cache3 from case study 2) are assigned
// round-robin to N worker shards, every shard simulates its services
// independently, and the per-service Results are merged — in the fixed
// service order, never the completion order — into one fleet-level
// aggregate via sim.MergeResults.
//
// Determinism is the load-bearing property: a service's workload depends
// only on (base seed, service index), and aggregation order depends only
// on the service list, so the aggregate Result is byte-identical across
// runs and across shard counts. Shards change wall-clock parallelism of
// the driver itself, nothing else. The golden test in fleet_test.go and
// EXPERIMENTS.md pin this down.
//
// The Batch factor models the client-side rpc.Batcher: coalescing b
// requests into one offload exchange amortizes the fixed per-offload
// costs, so the simulated o0 and L scale by 1/b (the simulator analog of
// core.Model.Batched, which divides o0/L/q/o1 in the closed-form model).
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/proflabel"
	"repro/internal/record"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// FleetServices lists the simulated fleet in fixed aggregation order: the
// paper's seven characterized services plus the Cache3 tier of case
// study 2 (eight total).
var FleetServices = append(append([]fleetdata.Service{}, fleetdata.Services...), fleetdata.Cache3)

// kindPreference orders the kernel kinds a service may offload; each
// service uses the first kind it publishes a granularity CDF for
// (encryption and compression are the paper's case-study kernels, memory
// copy and allocation the fleet-wide ones of Figs 21-22).
var kindPreference = []kernels.Kind{
	kernels.Encryption, kernels.Compression, kernels.MemoryCopy, kernels.Allocation,
}

// kindCb maps kernel kinds to host cycles per byte for the simulated
// kernel. Encryption's 5.5 c/B is the paper's Table 6 calibration; the
// others are the reproduction's stand-in costs (compression is an order
// of magnitude costlier per byte than bulk copies).
var kindCb = map[kernels.Kind]float64{
	kernels.Encryption:  5.5,
	kernels.Compression: 8,
	kernels.MemoryCopy:  1,
	kernels.Allocation:  2,
}

// Config configures one sharded fleet run.
type Config struct {
	Shards             int     // worker shards (≥1); services are assigned service-index mod Shards
	Seed               uint64  // base seed; service i derives its workload seed from (Seed, i)
	RequestsPerService int     // requests each service completes
	Batch              float64 // rpc batch factor b ≥ 1 (0 means 1); scales o0 and L by 1/b

	// MaxWorkers bounds the goroutines executing shards concurrently.
	// 0 picks min(GOMAXPROCS, Shards) — enough to saturate the cores
	// without oversubscribing them; 1 degrades to sequential execution.
	// The aggregate Result is identical for every value (see the package
	// comment); only driver wall-clock changes.
	MaxWorkers int

	// Per-service simulator sizing. Zero values take the defaults:
	// 2 cores, 2 threads, 2 GHz, 20000 non-kernel cycles, 4 kernel
	// invocations per request.
	Cores           int
	Threads         int
	HostHz          float64
	NonKernelCycles float64
	KernelsPerReq   int

	// Accel configures the accelerator every service offloads to. Nil
	// simulates the unaccelerated fleet. Batch scaling applies to a copy;
	// the caller's struct is never mutated.
	Accel *sim.Accel

	// Telemetry, when non-nil, registers fleet-level instruments:
	// fleet_requests_total, fleet_offloads_total, and
	// fleet_service_latency_cycles (per-service mean latencies).
	Telemetry *telemetry.Registry

	// Recorder, when non-nil, captures every completed request (arrival
	// time converted from simulated cycles to nanoseconds, service name,
	// per-request kernel bytes, mean offload granularity) into the
	// flight recorder, from which a trace can be replayed through
	// record.ReplaySim on byte-identical arrivals. Nil disables
	// recording; the run's Result is identical either way because sim
	// observers are read-only.
	Recorder *record.Recorder
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Batch == 0 { //modelcheck:ignore floatcmp — zero-value means unset; negatives must reach Validate
		c.Batch = 1
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Threads == 0 {
		c.Threads = c.Cores
	}
	if c.HostHz == 0 { //modelcheck:ignore floatcmp — zero-value means unset; negatives must reach Validate
		c.HostHz = 2e9
	}
	if c.NonKernelCycles == 0 { //modelcheck:ignore floatcmp — zero-value means unset; negatives must reach Validate
		c.NonKernelCycles = 20000
	}
	if c.KernelsPerReq == 0 {
		c.KernelsPerReq = 4
	}
	if c.RequestsPerService == 0 {
		c.RequestsPerService = 200
	}
	return c
}

// Validate checks the resolved configuration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("fleet: shards = %d, want >= 1", c.Shards)
	}
	if err := core.ValidateBatch(c.Batch); err != nil {
		return err
	}
	if c.RequestsPerService < 1 {
		return fmt.Errorf("fleet: requests per service = %d, want >= 1", c.RequestsPerService)
	}
	if c.MaxWorkers < 0 {
		return fmt.Errorf("fleet: max workers = %d, want >= 0", c.MaxWorkers)
	}
	return nil
}

// ServiceResult is one service's simulation outcome.
type ServiceResult struct {
	Service fleetdata.Service
	Kind    kernels.Kind // offloaded kernel kind
	Shard   int          // shard that ran it
	Result  sim.Result
}

// Result is the outcome of a sharded fleet run.
type Result struct {
	Shards    int
	Batch     float64
	Aggregate sim.Result      // merge of all services, in FleetServices order
	PerShard  []sim.Result    // merge of each shard's services, in shard order
	Services  []ServiceResult // per-service results, in FleetServices order
}

// serviceKind resolves the kernel kind and granularity CDF a service
// offloads. Cache3 publishes no CDF of its own; as an encryption-heavy
// cache tier (its case-study kernel is encryption at α = 0.19154) it
// borrows Cache1's Fig 15 encryption distribution.
func serviceKind(svc *services.Service) (kernels.Kind, *dist.CDF, error) {
	for _, k := range kindPreference {
		if cdf, err := svc.SizeCDF(k); err == nil {
			return k, cdf, nil
		}
	}
	if svc.Name == fleetdata.Cache3 {
		return kernels.Encryption, fleetdata.EncryptionSizes[fleetdata.Cache1], nil
	}
	return 0, nil, fmt.Errorf("fleet: %s publishes no granularity distribution", svc.Name)
}

// seedFor derives service i's workload seed from the base seed. The mix
// constant is the splitmix64 increment, so nearby service indices get
// well-separated streams.
func seedFor(base uint64, i int) uint64 {
	return base + uint64(i+1)*0x9e3779b97f4a7c15
}

// Run simulates the fleet across cfg.Shards worker shards and returns the
// per-service, per-shard, and aggregate results. The aggregate is
// independent of the shard count (see the package comment).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	type job struct {
		index  int
		svc    *services.Service
		kind   kernels.Kind
		cdf    *dist.CDF
		labels proflabel.Set // {service, kernel} CPU-attribution labels
	}
	jobs := make([]job, 0, len(FleetServices))
	for i, name := range FleetServices {
		svc, err := services.New(name)
		if err != nil {
			return nil, err
		}
		kind, cdf, err := serviceKind(svc)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{index: i, svc: svc, kind: kind, cdf: cdf,
			labels: proflabel.Labels(
				proflabel.KeyService, string(name),
				proflabel.KeyKernel, kind.String())})
	}

	// Amortize the fixed per-offload costs over the batch factor. Copy
	// the accel so the caller's struct is untouched.
	var accel *sim.Accel
	if cfg.Accel != nil {
		a := *cfg.Accel
		a.O0 /= cfg.Batch
		a.L /= cfg.Batch
		accel = &a
	}

	out := &Result{
		Shards:   cfg.Shards,
		Batch:    cfg.Batch,
		Services: make([]ServiceResult, len(jobs)),
		PerShard: make([]sim.Result, cfg.Shards),
	}
	errs := make([]error, cfg.Shards)

	// runShard simulates every service assigned to one shard. Each shard
	// writes only its own errs slot and its own Services indices (service
	// index mod Shards == shard), so concurrent shards never share a slot.
	// Each service's simulation runs under its {service, kernel} CPU
	// labels, so a profile of a fleet run attributes worker cycles to the
	// service being simulated.
	runShard := func(shard int) {
		for _, j := range jobs {
			if j.index%cfg.Shards != shard {
				continue
			}
			proflabel.Do(context.Background(), j.labels, func(context.Context) {
				cb, ok := kindCb[j.kind]
				if !ok {
					errs[shard] = fmt.Errorf("fleet: no per-byte cost for kind %v", j.kind)
					return
				}
				wl, err := sim.NewSampledWorkload(cfg.NonKernelCycles, cfg.KernelsPerReq,
					core.LinearKernel(cb), j.cdf, cfg.RequestsPerService, seedFor(cfg.Seed, j.index))
				if err != nil {
					errs[shard] = err
					return
				}
				// With a recorder attached, every completed request lands in
				// the flight recorder: arrival in wall-equivalent nanoseconds,
				// the request's total kernel bytes as payload, and the mean
				// invocation size as offload granularity g. Observers are
				// read-only, so the Result is identical with or without one.
				var observer func(sim.ObservedRequest)
				if cfg.Recorder != nil {
					name := string(j.svc.Name)
					observer = func(o sim.ObservedRequest) {
						req := wl.Request(o.Index)
						var total uint64
						for _, inv := range req.Kernels {
							total += inv.Bytes
						}
						g := total
						if len(req.Kernels) > 0 {
							g = total / uint64(len(req.Kernels))
						}
						cfg.Recorder.RecordAt(record.CyclesToNanos(o.Arrival, cfg.HostHz),
							name, total, g, record.OutcomeOK)
					}
				}
				s, err := sim.New(sim.Config{
					Cores:    cfg.Cores,
					Threads:  cfg.Threads,
					HostHz:   cfg.HostHz,
					Requests: cfg.RequestsPerService,
					Accel:    accel,
					Observer: observer,
				}, wl)
				if err != nil {
					errs[shard] = err
					return
				}
				res, err := s.Run()
				if err != nil {
					errs[shard] = err
					return
				}
				out.Services[j.index] = ServiceResult{
					Service: j.svc.Name, Kind: j.kind, Shard: shard, Result: res,
				}
			})
			if errs[shard] != nil {
				return
			}
		}
	}

	// Shards drain through a bounded worker pool: at most MaxWorkers
	// (default min(GOMAXPROCS, Shards)) goroutines execute shards at once,
	// so a high shard count parallelizes across the available cores without
	// oversubscribing them, and MaxWorkers=1 reproduces sequential
	// execution exactly.
	workers := cfg.MaxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range shardCh {
				runShard(shard)
			}
		}()
	}
	for shard := 0; shard < cfg.Shards; shard++ {
		shardCh <- shard
	}
	close(shardCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Aggregate in fixed service order so the result is identical for
	// every shard count; per-shard merges likewise follow service order
	// within the shard.
	all := make([]sim.Result, len(out.Services))
	for i, sr := range out.Services {
		all[i] = sr.Result
	}
	agg, err := sim.MergeResults(all)
	if err != nil {
		return nil, err
	}
	out.Aggregate = agg
	for shard := 0; shard < cfg.Shards; shard++ {
		var members []sim.Result
		for _, sr := range out.Services {
			if sr.Shard == shard {
				members = append(members, sr.Result)
			}
		}
		if len(members) > 0 {
			m, err := sim.MergeResults(members)
			if err != nil {
				return nil, err
			}
			out.PerShard[shard] = m
		}
	}

	if cfg.Telemetry != nil {
		if err := exportTelemetry(cfg.Telemetry, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// exportTelemetry registers and populates fleet-level instruments.
func exportTelemetry(reg *telemetry.Registry, r *Result) error {
	req, err := reg.Counter("fleet_requests_total", "requests completed across the fleet")
	if err != nil {
		return err
	}
	off, err := reg.Counter("fleet_offloads_total", "kernel offloads across the fleet")
	if err != nil {
		return err
	}
	lat, err := reg.Histogram("fleet_service_latency_cycles", "per-service mean request latency")
	if err != nil {
		return err
	}
	req.Add(uint64(r.Aggregate.Completed))
	off.Add(uint64(r.Aggregate.Offloads))
	for _, sr := range r.Services {
		lat.Record(sr.Result.MeanLatency)
	}
	return nil
}
