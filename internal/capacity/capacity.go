// Package capacity turns Accelerometer projections into fleet-level
// provisioning decisions. The paper motivates the model with exactly this
// problem: deploying custom hardware requires "carefully planning capacity
// to provision the hardware to match projected load", and a model that
// identifies performance bounds early protects that investment (§3).
//
// Given a service's installed base, its projected speedup, and the
// accelerator's characteristics, this package computes the servers freed
// at constant load, the number of accelerator devices needed to keep
// queuing within a utilization target, and the break-even device cost.
package capacity

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Plan describes one provisioning scenario.
type Plan struct {
	// Servers is the service's installed base running the unaccelerated
	// binary.
	Servers int
	// Speedup is the projected per-server throughput speedup factor.
	Speedup float64
	// OffloadsPerServer is n: offloads per second on one server.
	OffloadsPerServer float64
	// ServiceCycles is the accelerator's per-offload execution time in
	// accelerator cycles (αC/(A·n) in model terms).
	ServiceCycles float64
	// AcceleratorHz is the accelerator's clock in cycles per second.
	AcceleratorHz float64
	// TargetUtilization bounds each device's utilization so queuing stays
	// acceptable (e.g. 0.6); must be in (0, 1).
	TargetUtilization float64
	// DevicesPerServer is how many accelerator devices one server can
	// host (1 for a PCIe card; 0 means the accelerator is on-chip or
	// remote and needs no per-server device accounting).
	DevicesPerServer int
}

// Validate checks the plan.
func (p Plan) Validate() error {
	switch {
	case p.Servers < 1:
		return fmt.Errorf("capacity: servers = %d, want >= 1", p.Servers)
	case !(p.Speedup > 0) || math.IsInf(p.Speedup, 0) || math.IsNaN(p.Speedup):
		return fmt.Errorf("capacity: speedup = %v, want finite > 0", p.Speedup)
	case p.OffloadsPerServer < 0:
		return fmt.Errorf("capacity: negative offload rate %v", p.OffloadsPerServer)
	case p.ServiceCycles < 0:
		return fmt.Errorf("capacity: negative service time %v", p.ServiceCycles)
	case p.OffloadsPerServer > 0 && !(p.AcceleratorHz > 0):
		return fmt.Errorf("capacity: accelerator frequency = %v, want > 0", p.AcceleratorHz)
	case p.OffloadsPerServer > 0 && (p.TargetUtilization <= 0 || p.TargetUtilization >= 1):
		return fmt.Errorf("capacity: target utilization = %v, want within (0,1)", p.TargetUtilization)
	case p.DevicesPerServer < 0:
		return fmt.Errorf("capacity: negative devices per server %d", p.DevicesPerServer)
	}
	return nil
}

// Result is the provisioning outcome.
type Result struct {
	// ServersAfter is the installed base needed to serve the same load
	// with acceleration: ceil(servers / speedup).
	ServersAfter int
	// ServersFreed is the reduction of the installed base.
	ServersFreed int
	// DevicesPerServerNeeded is the accelerator devices one server needs
	// to keep per-device utilization at or below the target.
	DevicesPerServerNeeded int
	// DevicesTotal is devices across the post-acceleration fleet.
	DevicesTotal int
	// DeviceUtilization is the per-device utilization with that count.
	DeviceUtilization float64
	// Feasible reports whether the per-server device budget accommodates
	// the needed devices (always true when DevicesPerServer is 0).
	Feasible bool
}

// Provision computes the provisioning outcome for a plan.
func Provision(p Plan) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	after := int(math.Ceil(float64(p.Servers) / p.Speedup))
	if after < 1 {
		after = 1
	}
	res := Result{
		ServersAfter: after,
		ServersFreed: p.Servers - after,
		Feasible:     true,
	}
	if p.OffloadsPerServer <= 0 || p.ServiceCycles <= 0 || p.DevicesPerServer == 0 {
		// No discrete device to provision (on-chip or remote acceleration,
		// or an ideal accelerator).
		return res, nil
	}

	// Each accelerated server's offload stream speeds up with it: a server
	// doing `speedup` times the work issues `speedup·n` offloads/sec.
	perServerRate := p.OffloadsPerServer * p.Speedup
	perDeviceCapacity := p.AcceleratorHz / p.ServiceCycles * p.TargetUtilization
	if perDeviceCapacity <= 0 {
		return Result{}, fmt.Errorf("capacity: accelerator cannot serve any offloads")
	}
	devices := int(math.Ceil(perServerRate / perDeviceCapacity))
	if devices < 1 {
		devices = 1
	}
	res.DevicesPerServerNeeded = devices
	res.DevicesTotal = devices * after
	res.DeviceUtilization = perServerRate / (float64(devices) * p.AcceleratorHz / p.ServiceCycles)
	if p.DevicesPerServer > 0 && devices > p.DevicesPerServer {
		res.Feasible = false
	}
	return res, nil
}

// BreakEvenDeviceCost returns the maximum cost of one accelerator device
// (in the same currency as serverCost) at which the deployment pays for
// itself: the freed servers' value must cover the devices' cost.
func BreakEvenDeviceCost(res Result, serverCost float64) (float64, error) {
	if serverCost <= 0 {
		return 0, fmt.Errorf("capacity: server cost = %v, want > 0", serverCost)
	}
	if res.DevicesTotal == 0 {
		return math.Inf(1), nil
	}
	return float64(res.ServersFreed) * serverCost / float64(res.DevicesTotal), nil
}

// FromProjection builds a plan from a model projection: speedup and
// offload rate come from the projection's effective parameters, and the
// accelerator's per-offload service time from αC/(A·n).
func FromProjection(pr core.Projection, servers int, acceleratorHz, targetUtil float64, devicesPerServer int) (Plan, error) {
	p := Plan{
		Servers:           servers,
		Speedup:           pr.Speedup,
		OffloadsPerServer: pr.Params.N,
		AcceleratorHz:     acceleratorHz,
		TargetUtilization: targetUtil,
		DevicesPerServer:  devicesPerServer,
	}
	if pr.Params.N > 0 && !math.IsInf(pr.Params.A, 1) {
		p.ServiceCycles = pr.Params.Alpha * pr.Params.C / pr.Params.A / pr.Params.N
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
