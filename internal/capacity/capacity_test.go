package capacity

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func validPlan() Plan {
	return Plan{
		Servers:           10000,
		Speedup:           1.157, // AES-NI case study
		OffloadsPerServer: 298951,
		ServiceCycles:     185, // ~1109 host cycles / A=6
		AcceleratorHz:     2.0e9,
		TargetUtilization: 0.6,
		DevicesPerServer:  1,
	}
}

func TestPlanValidate(t *testing.T) {
	if err := validPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Plan)
	}{
		{"zero servers", func(p *Plan) { p.Servers = 0 }},
		{"zero speedup", func(p *Plan) { p.Speedup = 0 }},
		{"NaN speedup", func(p *Plan) { p.Speedup = math.NaN() }},
		{"negative rate", func(p *Plan) { p.OffloadsPerServer = -1 }},
		{"negative service", func(p *Plan) { p.ServiceCycles = -1 }},
		{"zero hz with offloads", func(p *Plan) { p.AcceleratorHz = 0 }},
		{"util 0", func(p *Plan) { p.TargetUtilization = 0 }},
		{"util 1", func(p *Plan) { p.TargetUtilization = 1 }},
		{"negative devices", func(p *Plan) { p.DevicesPerServer = -1 }},
	}
	for _, tc := range cases {
		p := validPlan()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestProvisionServersFreed(t *testing.T) {
	res, err := Provision(validPlan())
	if err != nil {
		t.Fatal(err)
	}
	// 10000 / 1.157 = 8643.04… → 8644 servers after, 1356 freed.
	if res.ServersAfter != 8644 {
		t.Errorf("servers after = %d, want 8644", res.ServersAfter)
	}
	if res.ServersFreed != 1356 {
		t.Errorf("servers freed = %d, want 1356", res.ServersFreed)
	}
	if !res.Feasible {
		t.Error("AES-NI plan should be feasible")
	}
}

func TestProvisionDeviceCount(t *testing.T) {
	res, err := Provision(validPlan())
	if err != nil {
		t.Fatal(err)
	}
	// Accelerated offload rate 298951·1.157 ≈ 345,886/sec; one device
	// serves 2e9/185·0.6 ≈ 6.49M offloads/sec at 60% utilization — one
	// device per server is plenty.
	if res.DevicesPerServerNeeded != 1 {
		t.Errorf("devices per server = %d, want 1", res.DevicesPerServerNeeded)
	}
	if res.DevicesTotal != res.ServersAfter {
		t.Errorf("devices total = %d, want %d", res.DevicesTotal, res.ServersAfter)
	}
	if res.DeviceUtilization <= 0 || res.DeviceUtilization > 0.6 {
		t.Errorf("device utilization = %v, want within (0, 0.6]", res.DeviceUtilization)
	}
}

func TestProvisionNeedsMultipleDevices(t *testing.T) {
	p := validPlan()
	p.ServiceCycles = 20000 // much slower device
	p.OffloadsPerServer = 200000
	res, err := Provision(p)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity per device = 2e9/20000·0.6 = 60k offloads/sec; accelerated
	// rate ≈ 231k → 4 devices, above the 1-per-server budget.
	if res.DevicesPerServerNeeded < 2 {
		t.Errorf("devices per server = %d, want several", res.DevicesPerServerNeeded)
	}
	if res.Feasible {
		t.Error("plan exceeding the device budget must be infeasible")
	}
}

func TestProvisionOnChip(t *testing.T) {
	p := Plan{Servers: 1000, Speedup: 1.1}
	res, err := Provision(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DevicesTotal != 0 || !res.Feasible {
		t.Errorf("on-chip plan: %+v", res)
	}
	if res.ServersFreed != 1000-910 {
		t.Errorf("servers freed = %d, want 90", res.ServersFreed)
	}
}

func TestProvisionSpeedupBelowOne(t *testing.T) {
	// A regression (speedup < 1) needs MORE servers.
	p := Plan{Servers: 100, Speedup: 0.8}
	res, err := Provision(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersAfter != 125 || res.ServersFreed != -25 {
		t.Errorf("regression provisioning = %+v", res)
	}
}

func TestBreakEvenDeviceCost(t *testing.T) {
	res := Result{ServersFreed: 1356, DevicesTotal: 8644}
	cost, err := BreakEvenDeviceCost(res, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1356.0 * 10000 / 8644
	if math.Abs(cost-want) > 1e-9 {
		t.Errorf("break-even cost = %v, want %v", cost, want)
	}
	if _, err := BreakEvenDeviceCost(res, 0); err == nil {
		t.Error("zero server cost: want error")
	}
	free, err := BreakEvenDeviceCost(Result{ServersFreed: 10}, 1000)
	if err != nil || !math.IsInf(free, 1) {
		t.Errorf("no devices: %v, %v", free, err)
	}
}

func TestFromProjection(t *testing.T) {
	w := core.Workload{
		C: 2.3e9, KernelFrac: 0.15, Invocation: 15008,
		Sizes: dist.MustCDF(dist.CompressionLayout, []float64{
			0, 0.085, 0.08, 0.13, 0.09, 0.145, 0.18, 0.10, 0.09, 0.06, 0.03, 0.01,
		}),
	}
	pr, err := core.Project(w, core.LinearKernel(5.6), core.Offload{
		Strategy: core.OffChip, Thread: core.AsyncSameThread, A: 27, L: 2300, SelectiveOffload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FromProjection(pr, 5000, 1.0e9, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Speedup != pr.Speedup || plan.OffloadsPerServer != pr.Params.N { //modelcheck:ignore floatcmp — fields are copied, not recomputed; identity is the contract
		t.Errorf("plan = %+v", plan)
	}
	if plan.ServiceCycles <= 0 {
		t.Errorf("service cycles = %v, want > 0", plan.ServiceCycles)
	}
	res, err := Provision(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersFreed <= 0 {
		t.Errorf("a ~10%% speedup over 5000 servers should free servers: %+v", res)
	}

	// Ideal accelerator: no finite service time, no devices.
	w2 := w
	pr2, err := core.Project(w2, core.LinearKernel(5.6), core.Offload{
		Strategy: core.OnChip, Thread: core.Sync, A: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := FromProjection(pr2, 100, 1e9, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.ServiceCycles != 0 {
		t.Errorf("ideal accelerator service cycles = %v, want 0", plan2.ServiceCycles)
	}
}
