package rpc

import (
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// This file wires the telemetry layer into the RPC substrate. Each
// instrumented Call produces one span with a child span per pipeline stage
// — serialize, compress, encrypt, frame-write, net-wait (network plus
// server time), decrypt, decompress, deserialize — and on the server side
// a handler span joined to the client's trace via span IDs carried in the
// message headers. Stage latencies also feed log-bucketed histograms so
// p50/p95/p99/p999 per stage are available without a trace. This is the
// measured counterpart of the per-functionality cycle attribution the
// paper's Strobelight profiler provides (§2.2): the stage boundaries are
// exactly the "data center tax" categories acceleration decisions target.
//
// Everything here is optional: a client, server, or pipeline without an
// Instrumentation attached takes the uninstrumented code path, which adds
// one nil check and no allocations (see BenchmarkCallDisabled).

// Header keys carrying trace context across the wire. They ride in
// Message.Headers like application headers, so no wire-format change is
// needed and uninstrumented peers ignore them.
const (
	HeaderTraceID    = "x-trace-id"
	HeaderParentSpan = "x-parent-span"
)

// stage enumerates the instrumented pipeline stages.
type stage int

const (
	stageSerialize stage = iota
	stageCompress
	stageEncrypt
	stageDecrypt
	stageDecompress
	stageDeserialize
	numStages
)

// stageNames index by stage; these names appear as span names and metric
// suffixes.
var stageNames = [numStages]string{
	"serialize", "compress", "encrypt", "decrypt", "decompress", "deserialize",
}

// Metrics bundles the RPC layer's instruments, registered under a common
// prefix. All fields are nil-safe; a zero Metrics records nothing.
type Metrics struct {
	Calls       *telemetry.Counter
	CallErrors  *telemetry.Counter
	CallLatency *telemetry.Histogram // seconds per Call, client side
	FrameWrite  *telemetry.Histogram // seconds writing the request frame
	NetWait     *telemetry.Histogram // seconds from frame sent to response read
	Handler     *telemetry.Histogram // seconds in the server handler
	BytesSent   *telemetry.Counter
	BytesRecv   *telemetry.Counter

	// Batching instruments: flush count and coalescing factor per batched
	// exchange (client side counts flushes sent, server side batches served).
	BatchFlushes *telemetry.Counter
	BatchSize    *telemetry.Histogram // requests coalesced per batched exchange

	stages [numStages]*telemetry.Histogram
}

// stageHist returns the histogram for a stage constant; nil-safe so
// pipeline hot paths need no metrics check.
func (m *Metrics) stageHist(st stage) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.stages[st]
}

// StageLatency returns the latency histogram for the named pipeline stage
// (one of serialize, compress, encrypt, decrypt, decompress, deserialize),
// or nil if unknown.
func (m *Metrics) StageLatency(name string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	for i, n := range stageNames {
		if n == name {
			return m.stages[i]
		}
	}
	return nil
}

// NewMetrics registers the RPC instrument bundle under
// <prefix>_... metric names (e.g. rpc_client_call_latency_seconds).
func NewMetrics(reg *telemetry.Registry, prefix string) (*Metrics, error) {
	m := &Metrics{}
	var err error
	counter := func(dst **telemetry.Counter, name, help string) {
		if err != nil {
			return
		}
		*dst, err = reg.Counter(prefix+"_"+name, help)
	}
	hist := func(dst **telemetry.Histogram, name, help string) {
		if err != nil {
			return
		}
		*dst, err = reg.Histogram(prefix+"_"+name, help)
	}
	counter(&m.Calls, "calls_total", "RPC calls issued")
	counter(&m.CallErrors, "call_errors_total", "RPC calls that returned an error")
	hist(&m.CallLatency, "call_latency_seconds", "end-to-end Call latency")
	hist(&m.FrameWrite, "frame_write_seconds", "time writing request frames")
	hist(&m.NetWait, "net_wait_seconds", "time from request sent to response frame read (network + server)")
	hist(&m.Handler, "handler_seconds", "server handler execution time")
	counter(&m.BytesSent, "bytes_sent_total", "wire bytes written")
	counter(&m.BytesRecv, "bytes_received_total", "wire bytes read")
	counter(&m.BatchFlushes, "batch_flushes_total", "batched exchanges")
	hist(&m.BatchSize, "batch_size_requests", "requests coalesced per batched exchange")
	for i := range m.stages {
		hist(&m.stages[i], "stage_"+stageNames[i]+"_seconds", "pipeline stage latency: "+stageNames[i])
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Instrumentation attaches observability to a Client or Server. Either
// field may be nil: Metrics alone gives histograms/counters, Tracer alone
// gives spans.
type Instrumentation struct {
	Tracer  *telemetry.Tracer
	Metrics *Metrics
}

// enabled reports whether any sink is attached.
func (ins *Instrumentation) enabled() bool {
	return ins != nil && (ins.Tracer != nil || ins.Metrics != nil)
}

// stageCategory maps an instrumented stage name to its tail-tax
// attribution bucket: the codec stages are the rpc tax proper, frame and
// network time are transport, and the handler is service work.
func stageCategory(name string) string {
	switch name {
	case "frame-write", "net-wait":
		return telemetry.CatTransport
	case "handler":
		return telemetry.CatWork
	default:
		return telemetry.CatRPC
	}
}

// observeStage records one timed stage into a histogram (nil-safe) and as
// a completed, category-stamped child span (nil-safe).
func observeStage(h *telemetry.Histogram, sp *telemetry.Span, name string, start time.Time) {
	d := time.Since(start)
	h.Record(d.Seconds())
	sp.ChildDoneCat(name, stageCategory(name), start, d)
}

// WithTraceContext returns a copy of m whose headers carry sp's trace and
// span IDs, so an instrumented downstream Client joins sp's trace with sp
// as the parent — the linkage topology handlers plant on mid-request
// fan-out. A nil span returns m unchanged.
func WithTraceContext(m Message, sp *telemetry.Span) Message {
	if sp == nil {
		return m
	}
	return withTraceContext(m, sp)
}

// withTraceContext returns a copy of m whose headers carry sp's trace and
// span IDs. The caller's header map is not mutated.
func withTraceContext(m Message, sp *telemetry.Span) Message {
	headers := make(map[string]string, len(m.Headers)+2)
	for k, v := range m.Headers {
		headers[k] = v
	}
	headers[HeaderTraceID] = strconv.FormatUint(sp.TraceID(), 16)
	headers[HeaderParentSpan] = strconv.FormatUint(sp.SpanID(), 16)
	m.Headers = headers
	return m
}

// traceContext extracts the trace and parent-span IDs planted by
// withTraceContext; zeros when absent or malformed.
func traceContext(m Message) (traceID, parentID uint64) {
	if m.Headers == nil {
		return 0, 0
	}
	traceID, _ = strconv.ParseUint(m.Headers[HeaderTraceID], 16, 64)     //modelcheck:ignore errdrop — malformed ids degrade to a fresh trace
	parentID, _ = strconv.ParseUint(m.Headers[HeaderParentSpan], 16, 64) //modelcheck:ignore errdrop — malformed ids degrade to a fresh trace
	return traceID, parentID
}
