package rpc

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// Pool-safety tests: many goroutines drive pooled Call/CallBatch paths at
// once and verify every payload byte-exactly. A double release, a buffer
// handed to two owners, or a decode that aliases pooled memory shows up
// either as a -race report or as a corrupted payload here.

// poolPayload builds a deterministic payload for (goroutine, iteration):
// the size walks the pool's class boundaries (so adjacent size classes are
// in flight simultaneously) and every byte encodes its owner and position.
func poolPayload(g, i int) []byte {
	sizes := []int{1, 63, 64, 65, 512, 4095, 4096, 4097, 16 << 10}
	n := sizes[(g+i)%len(sizes)]
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(g*31 + i*7 + j)
	}
	return p
}

// TestPoolSafetyConcurrentCalls runs several clients (each on its own
// connection — a Client is sequential by contract) against one server,
// each looping echo calls with class-boundary payloads. The server and all
// clients share the package-level buffer pools, so cross-goroutine buffer
// reuse is constant; any aliasing corrupts a payload.
func TestPoolSafetyConcurrentCalls(t *testing.T) {
	echo := func(_ context.Context, req Message) (Message, error) { return req, nil }
	srv, err := NewServer(echo, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		clientConn, serverConn := net.Pipe()
		go srv.ServeConn(context.Background(), serverConn)
		client, err := NewClient(clientConn, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })

		wg.Add(1)
		go func(g int, client *Client) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				want := poolPayload(g, i)
				resp, err := client.CallContext(ctx, Message{Method: fmt.Sprintf("echo/%d", g), Payload: want})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(resp.Payload, want) {
					t.Errorf("goroutine %d iter %d: payload corrupted (%d bytes, want %d)",
						g, i, len(resp.Payload), len(want))
					return
				}
			}
		}(g, client)
	}
	wg.Wait()
}

// TestPoolSafetyConcurrentBatch drives the batch envelope's pooled path
// from concurrent callers coalesced by a Batcher: batch encode reserves and
// backfills length prefixes inside one pooled buffer, and batch decode
// hands sub-message views out of another, so this covers the pool's
// multi-owner choreography end to end.
func TestPoolSafetyConcurrentBatch(t *testing.T) {
	echo := func(_ context.Context, req Message) (Message, error) { return req, nil }
	srv, err := NewServer(echo, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	b, err := NewBatcher(client, BatcherConfig{MaxBatch: 8, Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				want := poolPayload(g, i)
				resp, err := b.CallContext(ctx, Message{Method: fmt.Sprintf("echo/%d", g), Payload: want})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(resp.Payload, want) {
					t.Errorf("goroutine %d iter %d: batched payload corrupted", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolSafetyPipelineStages runs the full compress+encrypt pipeline
// concurrently on per-goroutine Pipelines (a Pipeline is single-owner) so
// the shared kernels pools — flate writers, flate readers, and the rpc
// buffer classes — see concurrent traffic from every stage at once.
func TestPoolSafetyPipelineStages(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 32)
	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			enc, err := NewPipeline(WithCompression(6), WithEncryption(key))
			if err != nil {
				t.Error(err)
				return
			}
			dec, err := NewPipeline(WithCompression(6), WithEncryption(key))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				want := poolPayload(g, i)
				wire, err := enc.Encode(Message{Method: "m", Payload: want})
				if err != nil {
					t.Errorf("goroutine %d iter %d: encode: %v", g, i, err)
					return
				}
				m, err := dec.Decode(wire)
				putBuf(wire)
				if err != nil {
					t.Errorf("goroutine %d iter %d: decode: %v", g, i, err)
					return
				}
				if !bytes.Equal(m.Payload, want) {
					t.Errorf("goroutine %d iter %d: pipeline payload corrupted", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
