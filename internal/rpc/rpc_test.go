package rpc

import (
	"bytes"
	"compress/flate"
	"context"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	var c Codec
	m := Message{
		Method:  "cache.get",
		Headers: map[string]string{"key": "user:42", "tier": "cache1"},
		Payload: []byte("payload bytes"),
	}
	data, err := c.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := c.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestCodecEmptyMessage(t *testing.T) {
	var c Codec
	data, err := c.Marshal(Message{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "" || got.Headers != nil || got.Payload != nil {
		t.Errorf("empty round trip = %+v", got)
	}
}

func TestCodecDeterministic(t *testing.T) {
	var c Codec
	m := Message{Headers: map[string]string{"b": "2", "a": "1", "c": "3"}}
	first, _ := c.Marshal(m)
	for i := 0; i < 10; i++ {
		again, _ := c.Marshal(m)
		if !bytes.Equal(first, again) {
			t.Fatal("marshal is not deterministic across map iteration orders")
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	var c Codec
	data, _ := c.Marshal(Message{Method: "m", Payload: []byte("hello")})

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := c.Unmarshal(flipped); err == nil {
		t.Error("bit flip: want error")
	}
	if _, err := c.Unmarshal(data[:5]); err == nil {
		t.Error("truncated: want error")
	}
	if _, err := c.Unmarshal(nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestCodecLimits(t *testing.T) {
	var c Codec
	if _, err := c.Marshal(Message{Method: strings.Repeat("x", maxMethodLen+1)}); err == nil {
		t.Error("oversized method: want error")
	}
	big := map[string]string{"k": strings.Repeat("v", maxHeaderVal+1)}
	if _, err := c.Marshal(Message{Headers: big}); err == nil {
		t.Error("oversized header: want error")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	var c Codec
	f := func(method string, payload []byte, hk, hv string) bool {
		if len(method) > maxMethodLen || len(hk) > maxMethodLen || len(hv) > maxHeaderVal {
			return true
		}
		m := Message{Method: method, Payload: payload}
		if hk != "" {
			m.Headers = map[string]string{hk: hv}
		}
		data, err := c.Marshal(m)
		if err != nil {
			return false
		}
		got, err := c.Unmarshal(data)
		if err != nil {
			return false
		}
		if got.Method != m.Method || !bytes.Equal(got.Payload, m.Payload) {
			return false
		}
		if hk != "" && got.Headers[hk] != hv {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPipelinePlain(t *testing.T) {
	p, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	m := Message{Method: "x", Payload: []byte("data")}
	enc, err := p.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "x" || string(got.Payload) != "data" {
		t.Errorf("round trip = %+v", got)
	}
	st := p.Stats()
	if st.Serialized != 1 || st.Deserialized != 1 || st.Compressions != 0 || st.Encryptions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPipelineCompressed(t *testing.T) {
	p, err := NewPipeline(WithCompression(flate.BestSpeed))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 512)
	enc, err := p.Encode(Message{Method: "feed.stories", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(payload) {
		t.Errorf("compressible payload did not shrink: %d -> %d", len(payload), len(enc))
	}
	got, err := p.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("payload mismatch")
	}
	st := p.Stats()
	if st.Compressions != 1 || st.Decompression != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPipelineEncrypted(t *testing.T) {
	key := make([]byte, 32)
	p, err := NewPipeline(WithEncryption(key))
	if err != nil {
		t.Fatal(err)
	}
	m := Message{Method: "cache.get", Payload: []byte("secret")}
	enc, err := p.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte("secret")) {
		t.Error("plaintext visible on the wire")
	}
	// Decode through a separate pipeline with the same key (fresh state).
	p2, _ := NewPipeline(WithEncryption(key))
	got, err := p2.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "secret" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestPipelineEncryptedDistinctIVs(t *testing.T) {
	p, _ := NewPipeline(WithEncryption(make([]byte, 16)))
	m := Message{Payload: []byte("same plaintext")}
	a, _ := p.Encode(m)
	b, _ := p.Encode(m)
	if bytes.Equal(a, b) {
		t.Error("two encryptions of the same message must differ (fresh IVs)")
	}
}

func TestPipelineFull(t *testing.T) {
	key := make([]byte, 16)
	mk := func() *Pipeline {
		p, err := NewPipeline(WithCompression(flate.DefaultCompression), WithEncryption(key))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sender, receiver := mk(), mk()
	m := Message{Method: "m", Payload: bytes.Repeat([]byte("z"), 4096)}
	enc, err := sender.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Error("full pipeline round trip failed")
	}
}

func TestPipelineFlagMismatch(t *testing.T) {
	plain, _ := NewPipeline()
	compressed, _ := NewPipeline(WithCompression(flate.BestSpeed))
	enc, _ := compressed.Encode(Message{Payload: []byte("x")})
	if _, err := plain.Decode(enc); err == nil {
		t.Error("decoding compressed frame with plain pipeline: want error")
	}
	// Bare codec also refuses transformed frames.
	encPlain, _ := plain.Encode(Message{Payload: []byte("x")})
	var c Codec
	if _, err := c.Unmarshal(encPlain); err != nil {
		t.Errorf("bare codec should accept untransformed pipeline output: %v", err)
	}
}

func TestPipelineOptionErrors(t *testing.T) {
	if _, err := NewPipeline(WithCompression(42)); err == nil {
		t.Error("bad level: want error")
	}
	if _, err := NewPipeline(WithEncryption(make([]byte, 5))); err == nil {
		t.Error("bad key: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("frame = %q", got)
	}
}

func TestFrameEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty frame = %v", got)
	}
}

func TestReadFrameRejectsHuge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("huge frame length: want error")
	}
}

func TestClientServerOverPipe(t *testing.T) {
	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		return Message{
			Method:  req.Method,
			Payload: append([]byte("echo:"), req.Payload...),
		}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)

	client, err := NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Call(Message{Method: "ping", Payload: []byte("hi")})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp.Payload) != "echo:hi" {
		t.Errorf("response = %q", resp.Payload)
	}
}

func TestClientServerEncryptedOverTCP(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	newPipe := func() (*Pipeline, error) {
		return NewPipeline(WithCompression(flate.BestSpeed), WithEncryption(key))
	}
	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		return Message{Method: req.Method, Payload: req.Payload}, nil
	}, newPipe)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := newPipe()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cp)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("req"), 1000)
	for i := 0; i < 5; i++ {
		resp, err := client.Call(Message{Method: "kv.get", Payload: payload})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp.Payload, payload) {
			t.Fatalf("call %d payload mismatch", i)
		}
	}
	_ = client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func TestServerHandlerError(t *testing.T) {
	srv, _ := NewServer(func(_ context.Context, req Message) (Message, error) {
		return Message{}, errFromString("boom")
	}, nil)
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, _ := NewClient(clientConn, nil)
	defer client.Close()
	_, err := client.Call(Message{Method: "x"})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Call error = %v, want remote boom", err)
	}
}

func TestNewServerNilHandler(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil handler: want error")
	}
}

func TestNewClientNilConn(t *testing.T) {
	if _, err := NewClient(nil, nil); err == nil {
		t.Error("nil conn: want error")
	}
}

type errFromString string

func (e errFromString) Error() string { return string(e) }
