package rpc

import (
	"compress/flate"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// startEchoServer serves an echo handler over a real TCP listener and
// returns a connected client plus a shutdown func. handler may be nil.
func startEchoServer(t *testing.T, handler Handler, ins *Instrumentation, opts ...PipelineOption) (*Client, func()) {
	t.Helper()
	if handler == nil {
		handler = func(_ context.Context, m Message) (Message, error) { return m, nil }
	}
	newPipe := func() (*Pipeline, error) { return NewPipeline(opts...) }
	srv, err := NewServer(handler, newPipe)
	if err != nil {
		t.Fatal(err)
	}
	if ins != nil {
		srv.Instrument(ins)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPipe()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, p)
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		_ = client.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func TestCallContextHonorsCancellation(t *testing.T) {
	block := make(chan struct{})
	client, shutdown := startEchoServer(t, func(_ context.Context, m Message) (Message, error) {
		<-block
		return m, nil
	}, nil)
	defer shutdown()
	defer close(block)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.CallContext(ctx, Message{Method: "hang"})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to unblock the call", elapsed)
	}
}

func TestCallContextHonorsDeadline(t *testing.T) {
	block := make(chan struct{})
	client, shutdown := startEchoServer(t, func(_ context.Context, m Message) (Message, error) {
		<-block
		return m, nil
	}, nil)
	defer shutdown()
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := client.CallContext(ctx, Message{Method: "hang"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

func TestCallContextPreCanceled(t *testing.T) {
	client, shutdown := startEchoServer(t, nil, nil)
	defer shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.CallContext(ctx, Message{Method: "x"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v", err)
	}
}

// After a deadline-bounded call, the connection must remain usable for
// later calls (the deadline is cleared on return).
func TestCallContextClearsDeadline(t *testing.T) {
	client, shutdown := startEchoServer(t, nil, nil)
	defer shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if _, err := client.CallContext(ctx, Message{Method: "one"}); err != nil {
		t.Fatal(err)
	}
	cancel()
	// This plain Call would fail if the (now-expired) context's wakeup
	// deadline or the call deadline leaked onto the connection.
	time.Sleep(10 * time.Millisecond)
	if _, err := client.Call(Message{Method: "two"}); err != nil {
		t.Fatalf("call after deadline-bounded call: %v", err)
	}
}

// A full instrumented round trip must populate client metrics, stage
// histograms on both sides, and a joined trace with nested stage spans.
func TestInstrumentedCallEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	clientMx, err := NewMetrics(reg, "rpc_client")
	if err != nil {
		t.Fatal(err)
	}
	serverMx, err := NewMetrics(reg, "rpc_server")
	if err != nil {
		t.Fatal(err)
	}
	clientTr := telemetry.NewTracer("client")
	serverTr := telemetry.NewTracer("server")

	key := make([]byte, 16)
	opts := []PipelineOption{WithCompression(flate.BestSpeed), WithEncryption(key)}
	client, shutdown := startEchoServer(t, nil,
		&Instrumentation{Tracer: serverTr, Metrics: serverMx}, opts...)
	client.Instrument(&Instrumentation{Tracer: clientTr, Metrics: clientMx})

	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := client.Call(Message{Method: "echo", Payload: []byte("ping")}); err != nil {
			t.Fatal(err)
		}
	}
	shutdown()

	if got := clientMx.Calls.Value(); got != calls {
		t.Errorf("calls_total = %d, want %d", got, calls)
	}
	if got := clientMx.CallErrors.Value(); got != 0 {
		t.Errorf("call_errors_total = %d, want 0", got)
	}
	if got := clientMx.CallLatency.Count(); got != calls {
		t.Errorf("call_latency count = %d, want %d", got, calls)
	}
	if clientMx.BytesSent.Value() == 0 || clientMx.BytesRecv.Value() == 0 {
		t.Error("byte counters did not advance")
	}
	for _, name := range []string{"serialize", "compress", "encrypt", "decrypt", "decompress", "deserialize"} {
		if got := clientMx.StageLatency(name).Count(); got != calls {
			t.Errorf("client stage %s count = %d, want %d", name, got, calls)
		}
		if got := serverMx.StageLatency(name).Count(); got != calls {
			t.Errorf("server stage %s count = %d, want %d", name, got, calls)
		}
	}
	if got := serverMx.Handler.Count(); got != calls {
		t.Errorf("handler histogram count = %d, want %d", got, calls)
	}

	// Trace linkage: every server span must join a client trace and every
	// client call span must have stage children.
	clientSpans := clientTr.Spans()
	serverSpans := serverTr.Spans()
	callSpans := map[uint64]telemetry.SpanData{} // span id -> root call span
	traces := map[uint64]bool{}
	for _, s := range clientSpans {
		if s.ParentID == 0 {
			callSpans[s.SpanID] = s
			traces[s.TraceID] = true
		}
	}
	if len(callSpans) != calls {
		t.Fatalf("client root spans = %d, want %d", len(callSpans), calls)
	}
	children := map[uint64]int{}
	for _, s := range clientSpans {
		if s.ParentID != 0 {
			children[s.ParentID]++
		}
	}
	for id := range callSpans {
		// serialize, compress, encrypt, frame-write, net-wait, decrypt,
		// decompress, deserialize = 8 stage children.
		if children[id] != 8 {
			t.Errorf("call span %d has %d stage children, want 8", id, children[id])
		}
	}
	// Server spans: one joined handler span per call (parented on the
	// client's call span) plus response-encode and frame-write children.
	var handlerSpans []telemetry.SpanData
	for _, s := range serverSpans {
		if !traces[s.TraceID] {
			t.Errorf("server span %q trace %d not started by client", s.Name, s.TraceID)
		}
		if s.Name == "rpc.Server/echo" {
			handlerSpans = append(handlerSpans, s)
			if _, ok := callSpans[s.ParentID]; !ok {
				t.Errorf("server span %q parent %d is not a client call span", s.Name, s.ParentID)
			}
		}
	}
	if len(handlerSpans) != calls {
		t.Fatalf("server handler spans = %d, want %d", len(handlerSpans), calls)
	}
}

// Handler errors must count as call errors on the client.
func TestInstrumentedCallErrorCounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	mx, err := NewMetrics(reg, "rpc_client")
	if err != nil {
		t.Fatal(err)
	}
	client, shutdown := startEchoServer(t, func(_ context.Context, m Message) (Message, error) {
		return Message{}, errors.New("boom")
	}, nil)
	defer shutdown()
	client.Instrument(&Instrumentation{Metrics: mx})
	if _, err := client.Call(Message{Method: "fail"}); err == nil {
		t.Fatal("expected remote error")
	}
	if got := mx.CallErrors.Value(); got != 1 {
		t.Errorf("call_errors_total = %d, want 1", got)
	}
}

// Trace headers must not leak into an uninstrumented client's requests,
// and instrumented requests must not mutate the caller's header map.
func TestTraceContextHeaderHygiene(t *testing.T) {
	var seen map[string]string
	client, shutdown := startEchoServer(t, func(_ context.Context, m Message) (Message, error) {
		seen = m.Headers
		return m, nil
	}, nil)
	defer shutdown()

	if _, err := client.Call(Message{Method: "plain"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := seen[HeaderTraceID]; ok {
		t.Error("uninstrumented call leaked trace headers")
	}

	client.Instrument(&Instrumentation{Tracer: telemetry.NewTracer("client")})
	mine := map[string]string{"app": "v"}
	if _, err := client.Call(Message{Method: "traced", Headers: mine}); err != nil {
		t.Fatal(err)
	}
	if _, ok := seen[HeaderTraceID]; !ok {
		t.Error("instrumented call missing trace header")
	}
	if seen["app"] != "v" {
		t.Error("application header lost")
	}
	if _, ok := mine[HeaderTraceID]; ok {
		t.Error("caller's header map was mutated")
	}
}
