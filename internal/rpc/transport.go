package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Framing: each wire message is a 4-byte little-endian length prefix
// followed by the pipeline-encoded bytes.

// maxFrame bounds a frame so a corrupt peer cannot force huge allocations.
const maxFrame = 80 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("rpc: frame %d bytes exceeds %d", len(data), maxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("rpc: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame length %d exceeds %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("rpc: read frame body: %w", err)
	}
	return buf, nil
}

// Handler processes one request message and returns the response.
type Handler func(Message) (Message, error)

// Server serves the RPC protocol over accepted connections. Each
// connection gets its own pipeline configuration (compression/encryption
// settings must match the client's).
type Server struct {
	handler     Handler
	newPipeline func() (*Pipeline, error)

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// NewServer returns a server that decodes with pipelines from newPipeline
// and dispatches to handler.
func NewServer(handler Handler, newPipeline func() (*Pipeline, error)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	return &Server{handler: handler, newPipeline: newPipeline}, nil
}

// Serve accepts connections until the listener closes. It returns nil on
// clean shutdown via Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		if !s.track() {
			// Close() raced with Accept: it may already be draining the
			// WaitGroup, so this connection must not be added to it.
			conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
			return nil
		}
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ServeConn handles a single pre-established connection (e.g. one end of
// net.Pipe) until it closes.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track() {
		conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
		return
	}
	defer s.wg.Done()
	s.serveConn(conn)
}

// track registers one in-flight connection with the WaitGroup. It reports
// false once the server is closed: Close sets closed under mu before it
// waits, so a successful Add here can never race a concurrent Wait.
func (s *Server) track() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	pipeline, err := s.newPipeline()
	if err != nil {
		return
	}
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := pipeline.Decode(frame)
		if err != nil {
			return
		}
		resp, err := s.handler(req)
		if err != nil {
			resp = Message{
				Method:  req.Method,
				Headers: map[string]string{"error": err.Error()},
			}
		}
		out, err := pipeline.Encode(resp)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Client issues requests over one connection. It is safe for sequential
// use; callers needing concurrency should pool clients.
type Client struct {
	conn     net.Conn
	pipeline *Pipeline
}

// NewClient wraps a connection with a pipeline.
func NewClient(conn net.Conn, pipeline *Pipeline) (*Client, error) {
	if conn == nil {
		return nil, errors.New("rpc: nil connection")
	}
	if pipeline == nil {
		var err error
		pipeline, err = NewPipeline()
		if err != nil {
			return nil, err
		}
	}
	return &Client{conn: conn, pipeline: pipeline}, nil
}

// Call sends a request and waits for the response. A response carrying an
// "error" header is surfaced as an error.
func (c *Client) Call(req Message) (Message, error) {
	data, err := c.pipeline.Encode(req)
	if err != nil {
		return Message{}, err
	}
	if err := WriteFrame(c.conn, data); err != nil {
		return Message{}, err
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		return Message{}, fmt.Errorf("rpc: read response: %w", err)
	}
	resp, err := c.pipeline.Decode(frame)
	if err != nil {
		return Message{}, err
	}
	if msg, ok := resp.Headers["error"]; ok {
		return resp, fmt.Errorf("rpc: remote error: %s", msg)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Stats returns the client pipeline's counters.
func (c *Client) Stats() PipelineStats { return c.pipeline.Stats() }
