package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Framing: each wire message is a 4-byte little-endian length prefix
// followed by the pipeline-encoded bytes.

// maxFrame bounds a frame so a corrupt peer cannot force huge allocations.
const maxFrame = 80 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("rpc: frame %d bytes exceeds %d", len(data), maxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("rpc: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame length %d exceeds %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("rpc: read frame body: %w", err)
	}
	return buf, nil
}

// Handler processes one request message and returns the response.
type Handler func(Message) (Message, error)

// Server serves the RPC protocol over accepted connections. Each
// connection gets its own pipeline configuration (compression/encryption
// settings must match the client's).
type Server struct {
	handler     Handler
	newPipeline func() (*Pipeline, error)
	ins         *Instrumentation

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// Instrument attaches telemetry to the server: each handled request
// produces a handler span joined to the caller's trace (when the request
// carries trace headers) and per-stage decode/encode histograms. Call
// before Serve.
func (s *Server) Instrument(ins *Instrumentation) { s.ins = ins }

// NewServer returns a server that decodes with pipelines from newPipeline
// and dispatches to handler.
func NewServer(handler Handler, newPipeline func() (*Pipeline, error)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	return &Server{handler: handler, newPipeline: newPipeline}, nil
}

// Serve accepts connections until the listener closes. It returns nil on
// clean shutdown via Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		if !s.track() {
			// Close() raced with Accept: it may already be draining the
			// WaitGroup, so this connection must not be added to it.
			conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
			return nil
		}
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ServeConn handles a single pre-established connection (e.g. one end of
// net.Pipe) until it closes.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track() {
		conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
		return
	}
	defer s.wg.Done()
	s.serveConn(conn)
}

// track registers one in-flight connection with the WaitGroup. It reports
// false once the server is closed: Close sets closed under mu before it
// waits, so a successful Add here can never race a concurrent Wait.
func (s *Server) track() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	pipeline, err := s.newPipeline()
	if err != nil {
		return
	}
	ins := s.ins
	if ins != nil {
		pipeline.Instrument(ins.Metrics)
	}
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := pipeline.Decode(frame)
		if err != nil {
			return
		}

		// Join the caller's trace (decode happens before the trace IDs are
		// known, so decode stages are visible in the stage histograms but
		// not as children of this span).
		var sp *telemetry.Span
		var t0 time.Time
		obs := ins.enabled()
		if obs {
			if ins.Tracer != nil {
				traceID, parentID := traceContext(req)
				sp = ins.Tracer.Join("rpc.Server/"+req.Method, traceID, parentID, time.Now())
			}
			t0 = time.Now()
		}
		resp, err := s.handler(req)
		if obs {
			var h *telemetry.Histogram
			if ins.Metrics != nil {
				h = ins.Metrics.Handler
			}
			observeStage(h, sp, "handler", t0)
		}
		if err != nil {
			resp = Message{
				Method:  req.Method,
				Headers: map[string]string{"error": err.Error()},
			}
		}
		out, err := pipeline.EncodeSpan(resp, sp)
		if err != nil {
			sp.End()
			return
		}
		if obs {
			t0 = time.Now()
		}
		werr := WriteFrame(conn, out)
		if obs {
			var h *telemetry.Histogram
			if ins.Metrics != nil {
				h = ins.Metrics.FrameWrite
				ins.Metrics.BytesSent.Add(uint64(len(out)))
				ins.Metrics.BytesRecv.Add(uint64(len(frame)))
			}
			observeStage(h, sp, "frame-write", t0)
		}
		sp.End()
		if werr != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Client issues requests over one connection. It is safe for sequential
// use; callers needing concurrency should pool clients.
type Client struct {
	conn     net.Conn
	pipeline *Pipeline
	ins      *Instrumentation
}

// Instrument attaches telemetry to the client: each Call produces a span
// with child spans per pipeline stage, stage and call-latency histograms,
// and trace-context headers on outgoing requests. Pass nil to detach.
func (c *Client) Instrument(ins *Instrumentation) {
	c.ins = ins
	if ins != nil {
		c.pipeline.Instrument(ins.Metrics)
	} else {
		c.pipeline.Instrument(nil)
	}
}

// NewClient wraps a connection with a pipeline.
func NewClient(conn net.Conn, pipeline *Pipeline) (*Client, error) {
	if conn == nil {
		return nil, errors.New("rpc: nil connection")
	}
	if pipeline == nil {
		var err error
		pipeline, err = NewPipeline()
		if err != nil {
			return nil, err
		}
	}
	return &Client{conn: conn, pipeline: pipeline}, nil
}

// Call sends a request and waits for the response. A response carrying an
// "error" header is surfaced as an error. It blocks until the server
// responds or the connection breaks; use CallContext to bound the wait.
func (c *Client) Call(req Message) (Message, error) {
	return c.call(req)
}

// CallContext is Call with context deadline and cancellation support: the
// context's deadline bounds the whole exchange, and cancellation unblocks
// an in-flight read or write, so a vanished server cannot block the caller
// forever. The connection's I/O deadline is restored on return, leaving
// the client reusable after a deadline-free follow-up call.
func (c *Client) CallContext(ctx context.Context, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("rpc: call aborted: %w", err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("rpc: set deadline: %w", err)
		}
		//modelcheck:ignore errdrop — best-effort deadline reset on a conn that may already be dead
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			// Force any in-flight read/write to fail immediately.
			//modelcheck:ignore errdrop — best-effort wakeup; the blocked I/O surfaces the error
			_ = c.conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	resp, err := c.call(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("rpc: call aborted: %w", ctxErr)
		}
	}
	return resp, err
}

// call runs one request/response exchange, instrumented when telemetry is
// attached. The uninstrumented path performs no extra work beyond nil
// checks.
func (c *Client) call(req Message) (Message, error) {
	ins := c.ins
	obs := ins.enabled()
	var sp *telemetry.Span
	var callStart time.Time
	if obs {
		if ins.Tracer != nil {
			sp = ins.Tracer.Start("rpc.Call/" + req.Method)
			req = withTraceContext(req, sp)
		}
		if ins.Metrics != nil {
			ins.Metrics.Calls.Inc()
		}
		callStart = time.Now()
	}

	resp, err := c.exchange(req, ins, sp, obs)

	if obs {
		if ins.Metrics != nil {
			ins.Metrics.CallLatency.Record(time.Since(callStart).Seconds())
			if err != nil {
				ins.Metrics.CallErrors.Inc()
			}
		}
		sp.End()
	}
	return resp, err
}

// exchange performs encode → frame-write → net-wait → decode.
func (c *Client) exchange(req Message, ins *Instrumentation, sp *telemetry.Span, obs bool) (Message, error) {
	data, err := c.pipeline.EncodeSpan(req, sp)
	if err != nil {
		return Message{}, err
	}

	var t0 time.Time
	if obs {
		t0 = time.Now()
	}
	if err := WriteFrame(c.conn, data); err != nil {
		return Message{}, err
	}
	if obs {
		var h *telemetry.Histogram
		if ins.Metrics != nil {
			h = ins.Metrics.FrameWrite
			ins.Metrics.BytesSent.Add(uint64(len(data)))
		}
		observeStage(h, sp, "frame-write", t0)
		t0 = time.Now()
	}

	frame, err := ReadFrame(c.conn)
	if err != nil {
		return Message{}, fmt.Errorf("rpc: read response: %w", err)
	}
	if obs {
		var h *telemetry.Histogram
		if ins.Metrics != nil {
			h = ins.Metrics.NetWait
			ins.Metrics.BytesRecv.Add(uint64(len(frame)))
		}
		observeStage(h, sp, "net-wait", t0)
	}

	resp, err := c.pipeline.DecodeSpan(frame, sp)
	if err != nil {
		return Message{}, err
	}
	if msg, ok := resp.Headers["error"]; ok {
		return resp, fmt.Errorf("rpc: remote error: %s", msg)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Stats returns the client pipeline's counters.
func (c *Client) Stats() PipelineStats { return c.pipeline.Stats() }
