package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/proflabel"
	"repro/internal/telemetry"
)

// Framing: each wire message is a 4-byte little-endian length prefix
// followed by the pipeline-encoded bytes.

// maxFrame bounds a frame so a corrupt peer cannot force huge allocations.
const maxFrame = 80 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	return writeFrame(w, data, &hdr)
}

// writeFrame is WriteFrame with caller-owned header scratch. Passing hdr[:]
// to an io.Writer forces the array to the heap, so the hot loops hand in a
// header that lives for the whole connection — one escape per connection
// instead of one per frame.
func writeFrame(w io.Writer, data []byte, hdr *[4]byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("rpc: frame %d bytes exceeds %d", len(data), maxFrame)
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("rpc: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame. The returned slice comes from
// the package buffer pool; the caller owns it and may release it with
// putBuf once every view of it is dead (the client/server loops do, right
// after pipeline decode copies the message out). Callers that keep the
// frame simply forgo reuse.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	return readFrame(r, &hdr)
}

// readFrame is ReadFrame with caller-owned header scratch; see writeFrame.
func readFrame(r io.Reader, hdr *[4]byte) ([]byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame length %d exceeds %d", n, maxFrame)
	}
	buf := getBufN(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(buf)
		return nil, fmt.Errorf("rpc: read frame body: %w", err)
	}
	return buf, nil
}

// Handler processes one request message and returns the response. The
// context is the connection's serve context: it is cancelled when the
// serve context passed to Serve/ServeConn is cancelled, so long-running
// handlers can abort instead of stranding the shutdown.
type Handler func(ctx context.Context, req Message) (Message, error)

// Server serves the RPC protocol over accepted connections. Each
// connection gets its own pipeline configuration (compression/encryption
// settings must match the client's).
type Server struct {
	handler     Handler
	asyncH      AsyncHandler // async mode: requests dispatched to eng
	eng         *Engine
	spawn       bool // blocking mode: one goroutine per in-flight request
	newPipeline func() (*Pipeline, error)
	ins         *Instrumentation

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]context.CancelFunc
	wg     sync.WaitGroup
}

// Instrument attaches telemetry to the server: each handled request
// produces a handler span joined to the caller's trace (when the request
// carries trace headers) and per-stage decode/encode histograms. Call
// before Serve.
func (s *Server) Instrument(ins *Instrumentation) { s.ins = ins }

// NewServer returns a server that decodes with pipelines from newPipeline
// and dispatches to handler.
func NewServer(handler Handler, newPipeline func() (*Pipeline, error)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	return &Server{handler: handler, newPipeline: newPipeline}, nil
}

// NewAsyncServer returns a server that dispatches every request to eng's
// completion-queue worker pool: handler runs the host-side stage, may
// park the request on an accelerator (AsyncCall.Park), and a completion
// worker writes the response whenever it is ready — out of order with
// respect to other requests on the same connection. Responses echo the
// request's HeaderCID so a MuxClient can run many calls in flight on one
// connection; clients that issue one call at a time need no changes.
// Batch envelopes are not accepted in this mode (the engine is itself the
// concurrency layer).
func NewAsyncServer(handler AsyncHandler, eng *Engine, newPipeline func() (*Pipeline, error)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil async handler")
	}
	if eng == nil {
		return nil, errors.New("rpc: nil engine")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	return &Server{asyncH: handler, eng: eng, newPipeline: newPipeline}, nil
}

// NewConcurrentServer returns a server that runs handler on a fresh
// goroutine per request — the paper's blocking Sync threading design at
// high concurrency: N in-flight requests cost N goroutines, each blocked
// for the full offload latency. It exists as the measured baseline the
// async engine is compared against (async_model_test.go, BENCH_async);
// responses are serialized through the same connection writer and echo
// HeaderCID, so the same MuxClient drives both modes.
func NewConcurrentServer(handler Handler, newPipeline func() (*Pipeline, error)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	return &Server{handler: handler, spawn: true, newPipeline: newPipeline}, nil
}

// Serve accepts connections until the listener closes, the server is
// Closed, or ctx is cancelled. Cancellation is forceful and propagates to
// in-flight connections: every connection's handler context is cancelled
// and its conn closed, unblocking blocked reads and in-flight (including
// batched) handlers. Close, by contrast, stays graceful — it stops
// accepting and lets existing connections finish naturally. Serve waits
// for in-flight connections to drain before returning; it returns nil
// after Close and ctx's error after cancellation.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, s.cancelConns)
		defer stop()
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				return fmt.Errorf("rpc: accept: %w", err)
			}
			s.wg.Wait()
			return ctx.Err()
		}
		connCtx, ok := s.trackConn(ctx, conn)
		if !ok {
			// Close() or cancellation raced with Accept: the WaitGroup may
			// already be draining, so this connection must not be added.
			conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
			s.wg.Wait()
			return ctx.Err()
		}
		go func() {
			defer s.wg.Done()
			s.serveConn(connCtx, conn)
		}()
	}
}

// ServeConn handles a single pre-established connection (e.g. one end of
// net.Pipe) until it closes or ctx is cancelled.
func (s *Server) ServeConn(ctx context.Context, conn net.Conn) {
	if ctx == nil {
		ctx = context.Background()
	}
	connCtx, ok := s.trackConn(ctx, conn)
	if !ok {
		conn.Close() //modelcheck:ignore errdrop — connection abandoned during shutdown
		return
	}
	defer s.wg.Done()
	s.serveConn(connCtx, conn)
}

// trackConn registers one in-flight connection: it joins the WaitGroup and
// derives the connection's handler context from parent. It reports false
// once the server is closed: Close sets closed under mu before it waits,
// so a successful Add here can never race a concurrent Wait.
func (s *Server) trackConn(parent context.Context, conn net.Conn) (context.Context, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	ctx, cancel := context.WithCancel(parent)
	if s.conns == nil {
		s.conns = make(map[net.Conn]context.CancelFunc)
	}
	s.conns[conn] = cancel
	s.wg.Add(1)
	return ctx, true
}

// forgetConn drops a finished connection and releases its context.
func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	cancel := s.conns[conn]
	delete(s.conns, conn)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelConns is the forceful-shutdown path taken when a Serve context is
// cancelled: stop accepting, then cancel every in-flight connection's
// context. Each connection's AfterFunc closes its conn, so blocked reads
// return immediately.
func (s *Server) cancelConns() {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	cancels := make([]context.CancelFunc, 0, len(s.conns))
	for _, cancel := range s.conns {
		cancels = append(cancels, cancel)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close() //modelcheck:ignore errdrop — best-effort listener teardown on cancellation
	}
	for _, cancel := range cancels {
		cancel()
	}
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer s.forgetConn(conn)
	defer conn.Close()
	// trackConn always derives a cancellable context, so a cancelled serve
	// context (or forgetConn itself, harmlessly, on the way out) closes the
	// conn and unblocks a ReadFrame in progress.
	stop := context.AfterFunc(ctx, func() {
		conn.Close() //modelcheck:ignore errdrop — forced close on cancellation
	})
	defer stop()
	pipeline, err := s.newPipeline()
	if err != nil {
		return
	}
	ins := s.ins
	if ins != nil {
		pipeline.Instrument(ins.Metrics)
	}
	// Async and concurrent modes complete responses out of order on other
	// goroutines, so they get a dedicated mutex-guarded writer with its own
	// encode pipeline (Pipeline is not safe for concurrent encode+decode;
	// the read loop keeps `pipeline` for decode only). reqWG tracks
	// spawned blocking handlers so a graceful close drains them.
	var cw *connWriter
	var reqWG sync.WaitGroup
	if s.eng != nil || s.spawn {
		encPipe, err := s.newPipeline()
		if err != nil {
			return
		}
		if ins != nil {
			encPipe.Instrument(ins.Metrics)
		}
		cw = &connWriter{conn: conn, enc: encPipe}
		defer reqWG.Wait()
	}
	var hdr [4]byte // frame-header scratch, reused across the connection
	for {
		frame, err := readFrame(conn, &hdr)
		if err != nil {
			return
		}
		frameLen := len(frame)
		req, err := pipeline.DecodeCtx(ctx, frame, nil)
		putBuf(frame) // Decode copied the message out; the frame is dead
		if err != nil {
			return
		}
		if cw != nil {
			if ins.enabled() && ins.Metrics != nil {
				ins.Metrics.BytesRecv.Add(uint64(frameLen))
			}
			s.serveOneAsync(ctx, cw, req, &reqWG)
			continue
		}

		var resp Message
		var sp *telemetry.Span
		if req.Method == BatchMethod {
			resp = s.handleBatch(ctx, req)
		} else {
			resp, sp = s.handleOne(ctx, req)
		}
		out, err := pipeline.EncodeCtx(ctx, resp, sp)
		if req.Method == BatchMethod {
			// The batch-envelope payload is pooled by handleBatch and was
			// copied into the encoded frame (or is dead on error).
			putBuf(resp.Payload)
		}
		if err != nil {
			sp.End()
			return
		}
		obs := ins.enabled()
		var t0 time.Time
		if obs {
			t0 = time.Now()
		}
		outLen := len(out)
		var werr error
		proflabel.Do(ctx, plFrameIO, func(context.Context) {
			werr = writeFrame(conn, out, &hdr)
		})
		putBuf(out) // the frame write flushed; the encode buffer is dead
		if obs {
			var h *telemetry.Histogram
			if ins.Metrics != nil {
				h = ins.Metrics.FrameWrite
				ins.Metrics.BytesSent.Add(uint64(outLen))
				ins.Metrics.BytesRecv.Add(uint64(frameLen))
			}
			observeStage(h, sp, "frame-write", t0)
		}
		sp.End()
		if werr != nil {
			return
		}
	}
}

// handleOne dispatches one request to the handler: it joins the caller's
// trace, times the handler, and maps a handler error onto an error-header
// response (error isolation — a failing request never tears down the
// connection or, in a batch, its siblings). The returned span is still
// open so the caller can attribute response encoding to it; the caller
// must End it. (Decode happens before the trace IDs are known, so decode
// stages are visible in the stage histograms but not as span children.)
func (s *Server) handleOne(ctx context.Context, req Message) (Message, *telemetry.Span) {
	ins := s.ins
	var sp *telemetry.Span
	var t0 time.Time
	obs := ins.enabled()
	if obs {
		if ins.Tracer != nil {
			traceID, parentID := traceContext(req)
			sp = ins.Tracer.Join("rpc.Server/"+req.Method, traceID, parentID, time.Now())
			sp.SetCategory(telemetry.CatRPC)
			// The handler sees its own span so it can hang work and
			// downstream-call children off this request's trace.
			ctx = telemetry.ContextWithSpan(ctx, sp)
		}
		t0 = time.Now()
	}
	resp, err := s.handler(ctx, req)
	if obs {
		var h *telemetry.Histogram
		if ins.Metrics != nil {
			h = ins.Metrics.Handler
		}
		observeStage(h, sp, "handler", t0)
	}
	if err != nil {
		resp = Message{
			Method:  req.Method,
			Headers: map[string]string{"error": err.Error()},
		}
	}
	return resp, sp
}

// serveOneAsync routes one decoded request in async or concurrent mode.
// Engine mode hands the request to the completion-queue workers (blocking
// only on queue backpressure); concurrent mode spawns the blocking
// handler on its own goroutine. Both respond through cw, echoing the
// caller's correlation id so responses may complete out of order.
func (s *Server) serveOneAsync(ctx context.Context, cw *connWriter, req Message, reqWG *sync.WaitGroup) {
	if req.Method == BatchMethod {
		resp := Message{
			Method:  BatchMethod,
			Headers: map[string]string{"error": "rpc: batch envelope not supported in async mode"},
		}
		if cid := req.Headers[HeaderCID]; cid != "" {
			resp.Headers[HeaderCID] = cid
		}
		//modelcheck:ignore errdrop — a failed error-response write is terminal for the conn, surfaced by the read loop
		_ = cw.respond(ctx, resp, nil)
		return
	}
	if s.eng != nil {
		s.eng.dispatch(ctx, s.asyncH, cw, req, s.ins)
		return
	}
	reqWG.Add(1)
	go func() {
		defer reqWG.Done()
		resp, sp := s.handleOne(ctx, req)
		if cid := req.Headers[HeaderCID]; cid != "" {
			if resp.Headers == nil {
				resp.Headers = make(map[string]string, 1)
			}
			resp.Headers[HeaderCID] = cid
		}
		//modelcheck:ignore errdrop — a failed response write is terminal for the conn, surfaced by the read loop
		_ = cw.respond(ctx, resp, sp)
	}()
}

// Close stops accepting and waits for in-flight connections to finish.
// Close is graceful: existing connections run to completion with their
// handler contexts intact. Cancel the Serve context instead to force
// in-flight work to abort.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Client issues requests over one connection. It is safe for sequential
// use; callers needing concurrency should pool clients or attach a
// Batcher, which coalesces concurrent callers into batched exchanges.
type Client struct {
	conn     net.Conn
	pipeline *Pipeline
	ins      *Instrumentation
	hdr      [4]byte // frame-header scratch, reused across calls
}

// Instrument attaches telemetry to the client: each Call produces a span
// with child spans per pipeline stage, stage and call-latency histograms,
// and trace-context headers on outgoing requests. Pass nil to detach.
func (c *Client) Instrument(ins *Instrumentation) {
	c.ins = ins
	if ins != nil {
		c.pipeline.Instrument(ins.Metrics)
	} else {
		c.pipeline.Instrument(nil)
	}
}

// NewClient wraps a connection with a pipeline.
func NewClient(conn net.Conn, pipeline *Pipeline) (*Client, error) {
	if conn == nil {
		return nil, errors.New("rpc: nil connection")
	}
	if pipeline == nil {
		var err error
		pipeline, err = NewPipeline()
		if err != nil {
			return nil, err
		}
	}
	return &Client{conn: conn, pipeline: pipeline}, nil
}

// Call sends a request and waits for the response. A response carrying an
// "error" header is surfaced as an error. It blocks until the server
// responds or the connection breaks; use CallContext to bound the wait.
func (c *Client) Call(req Message) (Message, error) {
	return c.call(context.Background(), req)
}

// CallContext is Call with context deadline and cancellation support: the
// context's deadline bounds the whole exchange, and cancellation unblocks
// an in-flight read or write, so a vanished server cannot block the caller
// forever. The connection's I/O deadline is restored on return, leaving
// the client reusable after a deadline-free follow-up call.
func (c *Client) CallContext(ctx context.Context, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("rpc: call aborted: %w", err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("rpc: set deadline: %w", err)
		}
		//modelcheck:ignore errdrop — best-effort deadline reset on a conn that may already be dead
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			// Force any in-flight read/write to fail immediately.
			//modelcheck:ignore errdrop — best-effort wakeup; the blocked I/O surfaces the error
			_ = c.conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	resp, err := c.call(ctx, req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("rpc: call aborted: %w", ctxErr)
		}
		// The connection deadline is enforced by the runtime poller, which
		// can fire marginally before the context's own timer marks ctx
		// expired; classify by the deadline itself so the caller always
		// sees DeadlineExceeded for a deadline-bounded call that ran out.
		if deadline, ok := ctx.Deadline(); ok && !time.Now().Before(deadline) {
			return Message{}, fmt.Errorf("rpc: call aborted: %w", context.DeadlineExceeded)
		}
	}
	return resp, err
}

// call runs one request/response exchange, instrumented when telemetry is
// attached. The uninstrumented path performs no extra work beyond nil
// checks. ctx carries CPU-attribution labels into the pipeline stages (it
// is not consulted for cancellation here — CallContext arms cancellation
// via the connection deadline before delegating).
func (c *Client) call(ctx context.Context, req Message) (Message, error) {
	ins := c.ins
	obs := ins.enabled()
	var sp *telemetry.Span
	var callStart time.Time
	if obs {
		if ins.Tracer != nil {
			// A request already carrying trace context (planted by a
			// handler issuing a mid-request downstream call) continues
			// that trace; a bare request roots a fresh one. Either way
			// this call's own span becomes the downstream parent.
			if traceID, parentID := traceContext(req); traceID != 0 {
				sp = ins.Tracer.Join("rpc.Call/"+req.Method, traceID, parentID, time.Now())
			} else {
				sp = ins.Tracer.Start("rpc.Call/" + req.Method)
			}
			req = withTraceContext(req, sp)
		}
		if ins.Metrics != nil {
			ins.Metrics.Calls.Inc()
		}
		callStart = time.Now()
	}

	resp, err := c.exchange(ctx, req, ins, sp, obs)

	if obs {
		if ins.Metrics != nil {
			ins.Metrics.CallLatency.Record(time.Since(callStart).Seconds())
			if err != nil {
				ins.Metrics.CallErrors.Inc()
			}
		}
		sp.End()
	}
	return resp, err
}

// exchange performs encode → frame-write → net-wait → decode. Pooled
// buffer ownership: the encode output is released once the frame write
// flushes, and the response frame once decode has copied the message out.
func (c *Client) exchange(ctx context.Context, req Message, ins *Instrumentation, sp *telemetry.Span, obs bool) (Message, error) {
	data, err := c.pipeline.EncodeCtx(ctx, req, sp)
	if err != nil {
		return Message{}, err
	}

	var t0 time.Time
	if obs {
		t0 = time.Now()
	}
	dataLen := len(data)
	var werr error
	proflabel.Do(ctx, plFrameIO, func(context.Context) {
		werr = writeFrame(c.conn, data, &c.hdr)
	})
	putBuf(data) // the frame write flushed; the encode buffer is dead
	if werr != nil {
		return Message{}, werr
	}
	if obs {
		var h *telemetry.Histogram
		if ins.Metrics != nil {
			h = ins.Metrics.FrameWrite
			ins.Metrics.BytesSent.Add(uint64(dataLen))
		}
		observeStage(h, sp, "frame-write", t0)
		t0 = time.Now()
	}

	frame, err := readFrame(c.conn, &c.hdr)
	if err != nil {
		return Message{}, fmt.Errorf("rpc: read response: %w", err)
	}
	if obs {
		var h *telemetry.Histogram
		if ins.Metrics != nil {
			h = ins.Metrics.NetWait
			ins.Metrics.BytesRecv.Add(uint64(len(frame)))
		}
		observeStage(h, sp, "net-wait", t0)
	}

	resp, err := c.pipeline.DecodeCtx(ctx, frame, sp)
	putBuf(frame) // decode copied the message out; the frame is dead
	if err != nil {
		return Message{}, err
	}
	if msg, ok := resp.Headers["error"]; ok {
		return resp, fmt.Errorf("rpc: remote error: %s", msg)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Stats returns the client pipeline's counters.
func (c *Client) Stats() PipelineStats { return c.pipeline.Stats() }
