package rpc

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed is returned by ClientPool.CallContext after Close.
var ErrPoolClosed = errors.New("rpc: client pool closed")

// ClientPool multiplexes concurrent callers over a fixed set of
// clients, each on its own connection. A single Client is deliberately
// not safe for concurrent use (see Call); the pool is the documented
// alternative for callers that need mid-request fan-out without the
// Batcher's coalescing latency — the topology driver issues every
// downstream edge's calls through one.
//
// CallContext checks a client out (blocking while all are busy, so the
// pool also bounds per-edge concurrency), runs the call, and returns it.
// A client whose call failed is still returned: the error surfaces to
// the caller and subsequent calls on a broken connection fail fast.
type ClientPool struct {
	free    chan *Client
	clients []*Client

	mu     sync.Mutex
	closed bool
}

// NewClientPool dials size clients and pools them. On any dial error the
// already-dialed clients are closed and the error returned.
func NewClientPool(size int, dial func() (*Client, error)) (*ClientPool, error) {
	if size <= 0 {
		return nil, errors.New("rpc: client pool size must be positive")
	}
	if dial == nil {
		return nil, errors.New("rpc: nil dial function")
	}
	p := &ClientPool{free: make(chan *Client, size)}
	for i := 0; i < size; i++ {
		c, err := dial()
		if err != nil {
			_ = p.Close() //modelcheck:ignore errdrop — the dial error is primary; unwind is best-effort
			return nil, err
		}
		if c == nil {
			_ = p.Close() //modelcheck:ignore errdrop — the dial error is primary; unwind is best-effort
			return nil, errors.New("rpc: dial returned nil client")
		}
		p.clients = append(p.clients, c)
		p.free <- c
	}
	return p, nil
}

// Size returns the number of pooled clients.
func (p *ClientPool) Size() int { return len(p.clients) }

// CallContext checks out a client, performs the call, and returns the
// client to the pool. It blocks while every client is checked out,
// honoring ctx while waiting and during the call itself.
func (p *ClientPool) CallContext(ctx context.Context, req Message) (Message, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return Message{}, ErrPoolClosed
	}
	select {
	case c := <-p.free:
		// Re-check under mu: Close may have won the race between the
		// closed check above and this checkout, leaving c a stale client
		// whose connection is already shut. Returning it would surface a
		// confusing transport error (or worse, a call on a recycled
		// connection) instead of the pool's terminal state.
		p.mu.Lock()
		closed = p.closed
		p.mu.Unlock()
		if closed {
			p.free <- c // keep the pool drainable for other racers
			return Message{}, ErrPoolClosed
		}
		defer func() { p.free <- c }()
		return c.CallContext(ctx, req)
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close closes every pooled client, unblocking any in-flight calls with
// a connection error. Close is idempotent; the first error wins.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
