package rpc

import (
	"testing"
	"time"
)

// BenchmarkStageDisabled measures the uninstrumented pipeline's per-stage
// cost: observeStage with a nil histogram and a nil span — exactly what
// every stage pays when no Instrumentation is attached. The contract in
// this file's package comment ("one nil check and no allocations") is a
// CI gate: scripts/bench_tailtrace.sh fails if this path ever allocates.
func BenchmarkStageDisabled(b *testing.B) {
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		observeStage(nil, nil, "serialize", start)
	}
}
