package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
)

// ErrClientClosed is returned by MuxClient calls issued after Close.
var ErrClientClosed = errors.New("rpc: mux client closed")

// MuxClient multiplexes many in-flight calls over one connection: each
// request carries a correlation id (HeaderCID) and a background reader
// matches responses back to callers, so completions may arrive in any
// order. It is the client half of the async serving path — where Client
// supports one outstanding exchange and ClientPool scales by connection
// count, MuxClient scales in-flight count on a single connection, which
// is what lets a soak park 100k requests without 100k sockets or
// goroutines (use Go, the callback form, to also avoid 100k blocked
// caller goroutines).
//
// The write side (encode pipeline + frame writes) is mutex-serialized;
// the read side lives on one goroutine with its own decode pipeline.
type MuxClient struct {
	conn net.Conn

	wmu sync.Mutex // guards enc, hdr, and frame writes
	enc *Pipeline
	hdr [4]byte

	mu      sync.Mutex // guards pending, nextID, closed, readErr
	pending map[uint64]*muxPending
	nextID  uint64
	closed  bool
	readErr error

	waiters    sync.Pool
	readerDone chan struct{}
}

// muxPending is one registered in-flight call: ch for blocking callers
// (CallContext), cb for callback callers (Go). Pooled for CallContext;
// callback registrations are recycled by the reader after delivery.
type muxPending struct {
	ch chan muxResult
	cb func(Message, error)
}

type muxResult struct {
	m   Message
	err error
}

// NewMuxClient wraps conn. newPipeline is called twice (encode and decode
// sides must be separate — Pipeline is not concurrency-safe); nil means
// default pipelines, which must match the server's.
func NewMuxClient(conn net.Conn, newPipeline func() (*Pipeline, error)) (*MuxClient, error) {
	if conn == nil {
		return nil, errors.New("rpc: nil connection")
	}
	if newPipeline == nil {
		newPipeline = func() (*Pipeline, error) { return NewPipeline() }
	}
	enc, err := newPipeline()
	if err != nil {
		return nil, err
	}
	dec, err := newPipeline()
	if err != nil {
		return nil, err
	}
	c := &MuxClient{
		conn:       conn,
		enc:        enc,
		pending:    make(map[uint64]*muxPending),
		readerDone: make(chan struct{}),
	}
	c.waiters.New = func() any {
		return &muxPending{ch: make(chan muxResult, 1)}
	}
	go c.readLoop(dec)
	return c, nil
}

// register allocates a correlation id and records the in-flight call.
func (c *MuxClient) register(cb func(Message, error)) (uint64, *muxPending, error) {
	p := c.waiters.Get().(*muxPending)
	p.cb = cb
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		c.waiters.Put(p)
		if err == nil {
			err = ErrClientClosed
		}
		return 0, nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = p
	c.mu.Unlock()
	return id, p, nil
}

// deregister removes a pending call; it reports whether this caller won
// the race against the reader's delivery.
func (c *MuxClient) deregister(id uint64) bool {
	c.mu.Lock()
	_, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return ok
}

// send tags req with the correlation id and writes one frame. The headers
// map is copied — the caller's message is not mutated.
func (c *MuxClient) send(ctx context.Context, req Message, id uint64) error {
	headers := make(map[string]string, len(req.Headers)+1)
	for k, v := range req.Headers {
		headers[k] = v
	}
	headers[HeaderCID] = strconv.FormatUint(id, 16)
	req.Headers = headers

	c.wmu.Lock()
	data, err := c.enc.EncodeCtx(ctx, req, nil)
	if err != nil {
		c.wmu.Unlock()
		return err
	}
	err = writeFrame(c.conn, data, &c.hdr)
	putBuf(data) // the frame write flushed; the encode buffer is dead
	c.wmu.Unlock()
	return err
}

// CallContext issues one call and blocks until its response arrives, ctx
// is done, or the connection fails. Any number of CallContexts may be in
// flight concurrently.
func (c *MuxClient) CallContext(ctx context.Context, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("rpc: call aborted: %w", err)
	}
	id, p, err := c.register(nil)
	if err != nil {
		return Message{}, err
	}
	if err := c.send(ctx, req, id); err != nil {
		if c.deregister(id) {
			c.waiters.Put(p)
		}
		return Message{}, err
	}
	select {
	case r := <-p.ch:
		c.waiters.Put(p)
		return r.m, r.err
	case <-ctx.Done():
		if !c.deregister(id) {
			// The reader won the race and is delivering: drain so the
			// waiter can be pooled again.
			<-p.ch
			c.waiters.Put(p)
		}
		// A deregistered call's response, if it ever arrives, is dropped
		// by the reader as unsolicited.
		return Message{}, fmt.Errorf("rpc: call aborted: %w", ctx.Err())
	}
}

// Go issues one call and returns once it is written; cb fires exactly
// once with the response (or transport error) on the reader goroutine, so
// it must be fast and must not call back into blocking client methods.
// This is the O(1)-goroutines way to hold huge in-flight counts open.
func (c *MuxClient) Go(ctx context.Context, req Message, cb func(Message, error)) error {
	if cb == nil {
		return errors.New("rpc: nil callback")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("rpc: call aborted: %w", err)
	}
	id, p, err := c.register(cb)
	if err != nil {
		return err
	}
	if err := c.send(ctx, req, id); err != nil {
		if c.deregister(id) {
			p.cb = nil
			c.waiters.Put(p)
		}
		return err
	}
	return nil
}

// InFlight returns the number of calls awaiting responses.
func (c *MuxClient) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// readLoop decodes response frames and routes them by correlation id.
func (c *MuxClient) readLoop(dec *Pipeline) {
	var hdr [4]byte
	for {
		frame, err := readFrame(c.conn, &hdr)
		if err != nil {
			c.fail(fmt.Errorf("rpc: read response: %w", err))
			return
		}
		resp, err := dec.DecodeCtx(context.Background(), frame, nil)
		putBuf(frame) // decode copied the message out; the frame is dead
		if err != nil {
			c.fail(err)
			return
		}
		id, perr := strconv.ParseUint(resp.Headers[HeaderCID], 16, 64)
		if perr != nil {
			// Untagged or mangled response: with concurrent calls in
			// flight there is no ordering to fall back on; drop it.
			continue
		}
		c.mu.Lock()
		p := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if p == nil {
			continue // caller gave up (deregistered) before the response
		}
		var callErr error
		if msg, ok := resp.Headers["error"]; ok {
			callErr = fmt.Errorf("rpc: remote error: %s", msg)
		}
		if p.cb != nil {
			cb := p.cb
			p.cb = nil
			cb(resp, callErr)
			c.waiters.Put(p)
		} else {
			p.ch <- muxResult{m: resp, err: callErr}
		}
	}
}

// fail poisons the client and delivers err to every in-flight call.
func (c *MuxClient) fail(err error) {
	c.mu.Lock()
	if c.closed {
		err = ErrClientClosed
	}
	c.readErr = err
	stranded := c.pending
	c.pending = make(map[uint64]*muxPending)
	c.mu.Unlock()
	close(c.readerDone)
	for _, p := range stranded {
		if p.cb != nil {
			cb := p.cb
			p.cb = nil
			cb(Message{}, err)
			c.waiters.Put(p)
		} else {
			p.ch <- muxResult{err: err}
		}
	}
}

// Close closes the connection; in-flight calls fail with ErrClientClosed.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readerDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone // reader delivers failures to stragglers, then exits
	return err
}
