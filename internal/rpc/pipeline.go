package rpc

import (
	"compress/flate"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/kernels"
	"repro/internal/proflabel"
	"repro/internal/telemetry"
)

// CPU-attribution label sets for the pipeline stages, precomputed at init.
// Each stage carries the Table 3 functionality marker key its cycles
// belong to plus the kernel family it invokes, so a CPU profile collected
// under proflabel.Enable attributes pipeline cycles exactly along the
// paper's "data center tax" category boundaries. Encryption counts as
// secure IO (the paper's SSL cycles sit on the I/O path).
var (
	plSerialize  = proflabel.Labels(proflabel.KeyFunctionality, "serialization", proflabel.KeyKernel, "serialization")
	plCompress   = proflabel.Labels(proflabel.KeyFunctionality, "compression", proflabel.KeyKernel, "compression")
	plEncrypt    = proflabel.Labels(proflabel.KeyFunctionality, "io", proflabel.KeyKernel, "encryption")
	plDecompress = proflabel.Labels(proflabel.KeyFunctionality, "compression", proflabel.KeyKernel, "decompression")
	plFrameIO    = proflabel.Labels(proflabel.KeyFunctionality, "io")
)

// Pipeline encodes messages through the full orchestration path the paper
// characterizes: serialize → compress → encrypt. Each stage is optional and
// instrumented, so the synthetic fleet can attribute bytes and invocations
// to each functionality.
type Pipeline struct {
	codec         Codec
	compress      bool
	compressLevel int
	cipher        *kernels.Cipher
	iv            []byte

	stats   PipelineStats
	mx      *Metrics    // optional stage histograms; nil leaves stages untimed
	methods methodCache // interned method names for allocation-free decode
}

// PipelineStats counts the work done by each stage.
type PipelineStats struct {
	Serialized    uint64 // messages marshaled
	Deserialized  uint64 // messages unmarshaled
	BytesIn       uint64 // pre-transform serialized bytes
	BytesOut      uint64 // post-transform wire bytes
	Compressions  uint64
	Encryptions   uint64
	Decryptions   uint64
	Decompression uint64
}

// PipelineOption configures a Pipeline.
type PipelineOption func(*Pipeline) error

// WithCompression enables DEFLATE compression at the given flate level.
func WithCompression(level int) PipelineOption {
	return func(p *Pipeline) error {
		if level != flate.DefaultCompression && (level < flate.HuffmanOnly || level > flate.BestCompression) {
			return fmt.Errorf("rpc: invalid compression level %d", level)
		}
		p.compress = true
		p.compressLevel = level
		return nil
	}
}

// WithEncryption enables AES-CTR encryption with the given key. The IV for
// each message is derived from a per-message counter, mirroring a session
// nonce.
func WithEncryption(key []byte) PipelineOption {
	return func(p *Pipeline) error {
		c, err := kernels.NewCipher(key)
		if err != nil {
			return err
		}
		p.cipher = c
		p.iv = make([]byte, 16)
		return nil
	}
}

// NewPipeline builds a pipeline with the given options.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{compressLevel: flate.BestSpeed}
	for _, opt := range opts {
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Stats returns a snapshot of the pipeline's counters.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// Instrument attaches stage-latency histograms to the pipeline. Pass nil
// to detach. Client.Instrument and Server.Instrument call this for the
// pipelines they own; standalone pipelines (e.g. services.Exercise) attach
// directly.
func (p *Pipeline) Instrument(mx *Metrics) { p.mx = mx }

// nextIV derives a fresh IV from the encryption counter.
func (p *Pipeline) nextIV() []byte {
	binary.LittleEndian.PutUint64(p.iv, p.stats.Encryptions+p.stats.Decryptions+1)
	sum := sha256.Sum256(p.iv)
	copy(p.iv, sum[:16])
	return p.iv
}

// Encode runs a message through serialize → compress → encrypt and returns
// the wire bytes.
//
// The returned slice comes from the package buffer pool: the caller owns
// it exclusively and may release it with putBuf once the bytes are dead
// (the client/server hot paths do, after the frame write flushes). Callers
// that never release simply forgo reuse — the GC reclaims the buffer.
func (p *Pipeline) Encode(m Message) ([]byte, error) { return p.EncodeSpan(m, nil) }

// EncodeSpan is Encode with per-stage observability: each stage's latency
// is recorded as a child span of sp (when non-nil) and into the attached
// stage histograms (when Instrument was called). With neither attached it
// is identical to Encode.
func (p *Pipeline) EncodeSpan(m Message, sp *telemetry.Span) ([]byte, error) {
	return p.EncodeCtx(context.Background(), m, sp)
}

// EncodeCtx is EncodeSpan with CPU-attribution labels: while profiling
// labels are enabled (proflabel.Enable), each stage runs under its
// functionality/kernel label set merged with any labels already on ctx
// (e.g. the caller's service label), so sampled cycles attribute to the
// exact tax category. Disabled — the steady state — each stage pays one
// atomic load.
func (p *Pipeline) EncodeCtx(ctx context.Context, m Message, sp *telemetry.Span) ([]byte, error) {
	obs := p.mx != nil || sp != nil
	var t0 time.Time

	var flags byte
	if p.compress {
		flags |= flagCompressed
	}
	if p.cipher != nil {
		flags |= flagEncrypted
	}
	if obs {
		t0 = time.Now()
	}
	// Every intermediate below is pooled and owned by this call: each stage
	// appends into a fresh pooled buffer and releases its input, so one
	// message in steady state recycles the serialize, compress, and encrypt
	// staging instead of allocating them (the paper's Table 2 allocation +
	// memcpy taxes, removed from the harness's own hot path).
	var data []byte
	var err error
	proflabel.Do(ctx, plSerialize, func(context.Context) {
		var size int
		if size, err = wireSize(m); err != nil {
			return
		}
		data, err = appendMessage(getBuf(size), m, flags)
	})
	if err != nil {
		return nil, err
	}
	if obs {
		observeStage(p.mx.stageHist(stageSerialize), sp, "serialize", t0)
	}
	p.stats.Serialized++
	p.stats.BytesIn += uint64(len(data))

	if p.compress {
		if obs {
			t0 = time.Now()
		}
		proflabel.Do(ctx, plCompress, func(context.Context) {
			var out []byte
			out, err = kernels.CompressAppend(getBuf(len(data)+64), data, p.compressLevel)
			if err != nil {
				return
			}
			putBuf(data)
			data = out
		})
		if err != nil {
			putBuf(data)
			return nil, err
		}
		if obs {
			observeStage(p.mx.stageHist(stageCompress), sp, "compress", t0)
		}
		p.stats.Compressions++
	}
	if p.cipher != nil {
		// The IV must be carried on the wire. IV and ciphertext are written
		// into one pooled buffer: the IV occupies the first 16 bytes and the
		// ciphertext is produced directly behind it, so the encrypt path
		// performs no join copy and no per-message output allocation.
		if obs {
			t0 = time.Now()
		}
		proflabel.Do(ctx, plEncrypt, func(context.Context) {
			iv := p.nextIV()
			out := getBufN(len(iv) + len(data))
			copy(out, iv)
			if err = p.cipher.EncryptTo(out[len(iv):], iv, data); err != nil {
				putBuf(out)
				return
			}
			p.stats.Encryptions++
			putBuf(data)
			data = out
		})
		if err != nil {
			putBuf(data)
			return nil, err
		}
		if obs {
			observeStage(p.mx.stageHist(stageEncrypt), sp, "encrypt", t0)
		}
	}
	p.stats.BytesOut += uint64(len(data))
	return data, nil
}

// Decode inverts Encode: decrypt → decompress → deserialize. The input is
// only read, never retained: the returned Message owns fresh memory, so a
// pooled frame buffer may be released as soon as Decode returns.
func (p *Pipeline) Decode(data []byte) (Message, error) { return p.DecodeSpan(data, nil) }

// DecodeSpan is Decode with per-stage observability; see EncodeSpan.
func (p *Pipeline) DecodeSpan(data []byte, sp *telemetry.Span) (Message, error) {
	return p.DecodeCtx(context.Background(), data, sp)
}

// DecodeCtx is DecodeSpan with CPU-attribution labels; see EncodeCtx.
func (p *Pipeline) DecodeCtx(ctx context.Context, data []byte, sp *telemetry.Span) (Message, error) {
	obs := p.mx != nil || sp != nil
	var t0 time.Time

	// owned tracks the newest intermediate this call drew from the buffer
	// pool (never the caller's input); each stage releases its predecessor,
	// and the final deserialize releases the last one after copying out.
	var owned []byte
	release := func() {
		if owned != nil {
			putBuf(owned)
			owned = nil
		}
	}

	if p.cipher != nil {
		if len(data) < 16 {
			return Message{}, fmt.Errorf("%w: encrypted frame too short", ErrCorrupt)
		}
		if obs {
			t0 = time.Now()
		}
		var err error
		proflabel.Do(ctx, plEncrypt, func(context.Context) {
			iv, body := data[:16], data[16:]
			dec := getBufN(len(body))
			if err = p.cipher.EncryptTo(dec, iv, body); err != nil { // CTR is symmetric
				putBuf(dec)
				return
			}
			p.stats.Decryptions++
			owned, data = dec, dec
		})
		if err != nil {
			return Message{}, err
		}
		if obs {
			observeStage(p.mx.stageHist(stageDecrypt), sp, "decrypt", t0)
		}
	}
	if p.compress {
		if obs {
			t0 = time.Now()
		}
		var err error
		proflabel.Do(ctx, plDecompress, func(context.Context) {
			var out []byte
			if out, err = kernels.DecompressAppend(getBuf(2*len(data)), data); err != nil {
				return
			}
			release()
			p.stats.Decompression++
			owned, data = out, out
		})
		if err != nil {
			release()
			return Message{}, fmt.Errorf("%w: decompression failed: %v", ErrCorrupt, err)
		}
		if obs {
			observeStage(p.mx.stageHist(stageDecompress), sp, "decompress", t0)
		}
	}
	if obs {
		t0 = time.Now()
	}
	var m Message
	var flags byte
	var err error
	proflabel.Do(ctx, plSerialize, func(context.Context) {
		m, flags, err = unmarshalInterned(data, &p.methods)
	})
	release() // the Message copied everything it keeps
	if err != nil {
		return Message{}, err
	}
	if obs {
		observeStage(p.mx.stageHist(stageDeserialize), sp, "deserialize", t0)
	}
	wantFlags := byte(0)
	if p.compress {
		wantFlags |= flagCompressed
	}
	if p.cipher != nil {
		wantFlags |= flagEncrypted
	}
	if flags != wantFlags {
		return Message{}, fmt.Errorf("%w: flags %#x do not match pipeline config %#x", ErrCorrupt, flags, wantFlags)
	}
	p.stats.Deserialized++
	return m, nil
}
