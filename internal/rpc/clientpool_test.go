package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startPoolServer runs an echo server and returns its address plus a
// gate the handler blocks on when gate is non-nil (used to pin calls
// in flight) and a counter of concurrently-executing handlers.
func startPoolServer(t *testing.T, gate chan struct{}, inFlight *atomic.Int64) string {
	t.Helper()
	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		if inFlight != nil {
			inFlight.Add(1)
			defer inFlight.Add(-1)
		}
		if gate != nil {
			<-gate
		}
		return Message{Method: req.Method, Payload: req.Payload}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	return lis.Addr().String()
}

func dialPool(t *testing.T, addr string, size int) *ClientPool {
	t.Helper()
	p, err := NewClientPool(size, func() (*Client, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return NewClient(conn, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestClientPoolConcurrent hammers one pool from many goroutines — far
// more than pooled clients — and checks every response round-trips
// intact. A single Client is not concurrent-safe, so this passing under
// -race is the pool's core guarantee.
func TestClientPoolConcurrent(t *testing.T) {
	addr := startPoolServer(t, nil, nil)
	p := dialPool(t, addr, 3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				payload := []byte{byte(g), byte(i)}
				resp, err := p.CallContext(context.Background(), Message{Method: "echo", Payload: payload})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Payload, payload) {
					errs <- errors.New("cross-wired response")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClientPoolBoundsConcurrency: with every client checked out and the
// handlers gated, an extra call must block until ctx expires, and the
// server must never see more concurrent handlers than pooled clients.
func TestClientPoolBoundsConcurrency(t *testing.T) {
	gate := make(chan struct{})
	var inFlight atomic.Int64
	addr := startPoolServer(t, gate, &inFlight)
	p := dialPool(t, addr, 2)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.CallContext(context.Background(), Message{Method: "hold"}); err != nil {
				t.Errorf("held call: %v", err)
			}
		}()
	}
	// Wait until both clients are checked out and executing.
	deadline := time.Now().Add(2 * time.Second)
	for inFlight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("handlers in flight = %d, want 2", inFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The third caller finds no free client and honors its context.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.CallContext(ctx, Message{Method: "blocked"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked call err = %v, want deadline exceeded", err)
	}
	if n := inFlight.Load(); n != 2 {
		t.Fatalf("pool leaked concurrency: %d handlers in flight with 2 clients", n)
	}
	close(gate)
	wg.Wait()
}

func TestClientPoolClose(t *testing.T) {
	addr := startPoolServer(t, nil, nil)
	p := dialPool(t, addr, 2)
	if _, err := p.CallContext(context.Background(), Message{Method: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := p.CallContext(context.Background(), Message{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("call after Close = %v, want ErrPoolClosed", err)
	}
}

func TestClientPoolConstructorErrors(t *testing.T) {
	if _, err := NewClientPool(0, func() (*Client, error) { return nil, nil }); err == nil {
		t.Fatal("accepted size 0")
	}
	if _, err := NewClientPool(2, nil); err == nil {
		t.Fatal("accepted nil dial")
	}
	// A dial error mid-fill closes the clients already dialed.
	addr := startPoolServer(t, nil, nil)
	var dialed []*Client
	boom := errors.New("boom")
	_, err := NewClientPool(3, func() (*Client, error) {
		if len(dialed) == 2 {
			return nil, boom
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		c, err := NewClient(conn, nil)
		if err != nil {
			return nil, err
		}
		dialed = append(dialed, c)
		return c, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(dialed) != 2 {
		t.Fatalf("dialed %d clients before the failure, want 2", len(dialed))
	}
	for i, c := range dialed {
		if _, err := c.CallContext(context.Background(), Message{Method: "x"}); err == nil {
			t.Fatalf("client %d still usable after constructor unwound", i)
		}
	}
	// A nil client from dial is rejected, not pooled.
	if _, err := NewClientPool(1, func() (*Client, error) { return nil, nil }); err == nil {
		t.Fatal("accepted nil client from dial")
	}
}

// TestClientPoolCheckoutCloseRace pins the checkout-vs-Close window
// deterministically: a caller passes the closed check, then blocks on the
// free channel because every client is checked out; Close runs; a client
// is returned. The checkout that then wins the free channel has lost the
// race to Close and must report ErrPoolClosed — not issue a call on the
// stale, already-closed client.
func TestClientPoolCheckoutCloseRace(t *testing.T) {
	addr := startPoolServer(t, nil, nil)
	p := dialPool(t, addr, 1)

	// Check the only client out by hand, so CallContext must wait.
	var held *Client
	select {
	case held = <-p.free:
	default:
		t.Fatal("pool unexpectedly empty")
	}

	type result struct {
		err error
	}
	done := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := p.CallContext(context.Background(), Message{Method: "late"})
		done <- result{err: err}
	}()
	<-started
	// Give the goroutine time to pass the closed check and block on free.
	// (If it has not blocked yet the test still exercises the same window:
	// Close completes before the checkout either way.)
	time.Sleep(10 * time.Millisecond)

	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p.free <- held // simulate the in-flight holder returning its client

	r := <-done
	if !errors.Is(r.err, ErrPoolClosed) {
		t.Fatalf("checkout that lost the race to Close = %v, want ErrPoolClosed", r.err)
	}
	// The client handed back stays available for draining; later callers
	// keep failing fast.
	if _, err := p.CallContext(context.Background(), Message{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("call after Close = %v, want ErrPoolClosed", err)
	}
}
