package rpc

import (
	"context"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
)

// Async soak: park ASYNC_SOAK_N (default 100k) requests on a simulated
// accelerator simultaneously — every one of them in flight at once, no
// completions until the device is flushed — and pin the property the
// completion-queue engine exists for:
//
//   - peak goroutine count while N requests are parked is a small
//     constant (engine workers + conn loops), not O(N): measured at N/10
//     and N, the two peaks must match within a fixed slack;
//   - parked state is pooled: allocations per request stay under a fixed
//     budget (the precise allocs/op gate lives in BenchmarkAsyncParkResume
//     and BENCH_async.json; the soak bound catches O(N) regressions like
//     an un-pooled continuation or a goroutine per offload).
//
// scripts/check.sh runs this under -race; scripts/bench_async.sh runs it
// standalone as the CI goroutine-ceiling gate.

// soakN returns the configured soak size.
func soakN(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("ASYNC_SOAK_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1000 {
			t.Fatalf("invalid ASYNC_SOAK_N=%q (want integer >= 1000)", s)
		}
		return n
	}
	return 100_000
}

// runParkSoak parks n requests at once and returns the goroutine count
// observed while all n were parked, minus the pre-soak baseline, plus the
// heap allocations per request over the issue phase.
func runParkSoak(t *testing.T, n int) (peakDelta int, allocsPerReq float64) {
	t.Helper()
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	eng, err := NewEngine(EngineConfig{Workers: 8, Queue: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := NewAsyncServer(parkingHandler(dev), eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	defer srv.Close()                       // errors swallowed per the teardown rule
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewMuxClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close() // errors swallowed per the teardown rule

	return soakIssueAndMeasure(t, client, dev, eng, n)
}

// soakIssueAndMeasure issues n fire-and-callback calls, waits for all of
// them to be parked, samples the goroutine peak, then flushes the device
// and waits for every response.
func soakIssueAndMeasure(t *testing.T, client *MuxClient, dev *kernels.SimAccel, eng *Engine, n int) (int, float64) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	var failures atomic.Int64
	wg.Add(n)
	cb := func(_ Message, err error) {
		if err != nil {
			failures.Add(1)
		}
		wg.Done()
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	baseline := runtime.NumGoroutine()

	payload := []byte("soak")
	for i := 0; i < n; i++ {
		if err := client.Go(ctx, Message{Method: "park", Payload: payload}, cb); err != nil {
			t.Fatalf("issue %d/%d: %v", i, n, err)
		}
	}
	// Every request must be parked inside the device simultaneously.
	deadline := time.Now().Add(2 * time.Minute)
	for eng.Stats().Parked < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests parked in time (engine %+v, device %+v)",
				eng.Stats().Parked, n, eng.Stats(), dev.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	peak := runtime.NumGoroutine()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	allocsPerReq := float64(after.Mallocs-before.Mallocs) / float64(n)

	dev.Flush()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("flushed responses did not drain: engine %+v, client in-flight %d",
			eng.Stats(), client.InFlight())
	}
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d soak calls failed", f, n)
	}
	return peak - baseline, allocsPerReq
}

// TestAsyncSoak100kInFlight is the headline soak (see file comment).
func TestAsyncSoak100kInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	n := soakN(t)

	smallPeak, smallAllocs := runParkSoak(t, n/10)
	time.Sleep(50 * time.Millisecond) // let the first run's conn loops unwind
	bigPeak, bigAllocs := runParkSoak(t, n)
	t.Logf("parked %d: +%d goroutines, %.1f allocs/req; parked %d: +%d goroutines, %.1f allocs/req",
		n/10, smallPeak, smallAllocs, n, bigPeak, bigAllocs)

	// Ceiling: the engine pool (8) + server conn loop + client reader +
	// device dispatcher + test scaffolding. 64 leaves room for runtime
	// helper goroutines without ever tolerating O(N).
	const ceiling = 64
	if bigPeak > ceiling {
		t.Fatalf("%d in-flight offloads cost +%d goroutines, want <= %d (O(workers), not O(N))",
			n, bigPeak, ceiling)
	}
	// Constant in offload count: 10x the in-flight requests must not move
	// the goroutine peak by more than scheduler noise.
	if diff := bigPeak - smallPeak; diff > 16 && bigPeak > 2*smallPeak {
		t.Fatalf("goroutine peak grew with offload count: +%d at n=%d vs +%d at n=%d",
			bigPeak, n, smallPeak, n/10)
	}
	// Pooled continuation state: the soak bound is deliberately loose
	// (it includes client-side registration and both codecs); the tight
	// per-request gate is BenchmarkAsyncParkResume via BENCH_async.json.
	const allocBudget = 96
	if bigAllocs > allocBudget {
		t.Fatalf("parked requests cost %.1f allocs each, budget %d — continuation state no longer pooled?",
			bigAllocs, allocBudget)
	}
}
