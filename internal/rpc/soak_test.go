package rpc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Soak test: a connect storm of clients with attached Batchers hammering
// one server with concurrent CallContext calls, random cancellations, and
// linger-timeout flushes. Run under -race (scripts/check.sh does) this is
// the batching layer's data-race canary. Invariants checked:
//
//   - every successful call's response matches its own request (no
//     dropped, duplicated, or cross-wired responses inside batches);
//   - every failed call failed for a legitimate reason (its own
//     cancellation or shutdown), never silently;
//   - after teardown the goroutine count returns to baseline (no leaked
//     flushers, connection loops, or handler goroutines).
func TestBatcherSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		// Echo with the method stamped into the payload so a cross-wired
		// response cannot masquerade as a correct one.
		return Message{Method: req.Method, Payload: append([]byte(req.Method+"|"), req.Payload...)}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), lis) }()

	const (
		conns        = 4
		goroutines   = 4 // callers per connection
		callsPerGoro = 30
	)
	var succeeded, cancelled atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(conn, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBatcher(client, BatcherConfig{MaxBatch: 8, Linger: 200 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, client *Client, b *Batcher) {
			defer wg.Done()
			var callers sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				callers.Add(1)
				go func(g int) {
					defer callers.Done()
					rng := rand.New(rand.NewSource(int64(c*100 + g))) //modelcheck:ignore seedhygiene — deterministic per-goroutine stream for reproducibility
					for i := 0; i < callsPerGoro; i++ {
						method := fmt.Sprintf("m/%d.%d.%d", c, g, i)
						payload := make([]byte, rng.Intn(64))
						rng.Read(payload) //modelcheck:ignore errdrop — math/rand Read never fails
						ctx := context.Background()
						cancel := context.CancelFunc(func() {})
						if rng.Intn(4) == 0 {
							// Random cancellation racing the linger timeout.
							ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(600))*time.Microsecond)
						}
						resp, err := b.CallContext(ctx, Message{Method: method, Payload: payload})
						cancel()
						if err != nil {
							cancelled.Add(1)
							continue
						}
						want := append([]byte(method+"|"), payload...)
						if resp.Method != method || !bytes.Equal(resp.Payload, want) {
							t.Errorf("call %s: response cross-wired or corrupted: %+v", method, resp)
						}
						succeeded.Add(1)
					}
				}(g)
			}
			callers.Wait()
			if err := b.Close(); err != nil {
				t.Errorf("batcher close: %v", err)
			}
			if err := client.Close(); err != nil {
				t.Errorf("client close: %v", err)
			}
		}(c, client, b)
	}
	wg.Wait()

	total := int64(conns * goroutines * callsPerGoro)
	if got := succeeded.Load() + cancelled.Load(); got != total {
		t.Errorf("accounted for %d calls, want %d (dropped responses?)", got, total)
	}
	if succeeded.Load() == 0 {
		t.Error("soak made no successful calls; cancellation rate swamped the test")
	}
	t.Logf("soak: %d succeeded, %d cancelled/timed out", succeeded.Load(), cancelled.Load())

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}

	// Goroutine-leak delta: poll until the count settles back to baseline
	// (allow a small slack for runtime background goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
