package rpc

import (
	"bytes"
	"compress/flate"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// The server must handle many concurrent connections, each with its own
// pipeline state, without cross-talk.
func TestServerConcurrentClients(t *testing.T) {
	key := make([]byte, 16)
	newPipe := func() (*Pipeline, error) {
		return NewPipeline(WithCompression(flate.BestSpeed), WithEncryption(key))
	}
	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		// Echo the client id back so cross-talk is detectable.
		return Message{
			Method:  req.Method,
			Headers: map[string]string{"client": req.Headers["client"]},
			Payload: req.Payload,
		}, nil
	}, newPipe)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()

	const clients = 8
	const callsPerClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			p, err := newPipe()
			if err != nil {
				errs <- err
				return
			}
			client, err := NewClient(conn, p)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			payload := bytes.Repeat([]byte{byte(id)}, 512)
			for i := 0; i < callsPerClient; i++ {
				resp, err := client.Call(Message{
					Method:  "echo",
					Headers: map[string]string{"client": fmt.Sprint(id)},
					Payload: payload,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", id, i, err)
					return
				}
				if resp.Headers["client"] != fmt.Sprint(id) || !bytes.Equal(resp.Payload, payload) {
					errs <- fmt.Errorf("client %d: cross-talk detected", id)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// Closing the server must be idempotent-safe for Serve and reject reuse.
func TestServerCloseSemantics(t *testing.T) {
	srv, _ := NewServer(func(_ context.Context, m Message) (Message, error) { return m, nil }, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	// Complete one call so Serve is definitely accepting before Close.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(Message{Method: "ping"}); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	_ = client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
	// A closed server refuses to serve again.
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	if err := srv.Serve(context.Background(), lis2); err == nil {
		t.Error("Serve on closed server: want error")
	}
}

// A server connection fed garbage frames must drop the connection rather
// than crash or hang.
func TestServerDropsCorruptConnection(t *testing.T) {
	srv, _ := NewServer(func(_ context.Context, m Message) (Message, error) { return m, nil }, nil)
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	if err := WriteFrame(clientConn, []byte("definitely not a message")); err != nil {
		t.Fatal(err)
	}
	// The server should close the connection; the next read must fail.
	buf := make([]byte, 4)
	if _, err := clientConn.Read(buf); err == nil {
		t.Error("expected connection to be dropped after corrupt frame")
	}
	_ = clientConn.Close()
}

// Hammering Close while clients are still connecting must never race the
// connection WaitGroup (Add-after-Wait) or leak served connections past
// Close's return. Run under -race this exercises the track()/Close
// handshake; scripts/check.sh keeps it in the standing gate.
func TestServerCloseDuringConnectStorm(t *testing.T) {
	for round := 0; round < 6; round++ {
		srv, err := NewServer(func(_ context.Context, m Message) (Message, error) { return m, nil }, nil)
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), lis) }()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.Dial("tcp", lis.Addr().String())
					if err != nil {
						return // listener closed; storm is over
					}
					client, err := NewClient(conn, nil)
					if err != nil {
						_ = conn.Close()
						return
					}
					// A connection can land in the accept backlog right as
					// the listener closes and then never be served; the
					// context deadline keeps such calls from blocking
					// forever. Calls may fail mid-shutdown; only the race
					// matters.
					ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
					_, callErr := client.CallContext(ctx, Message{Method: "ping"})
					_ = callErr //modelcheck:ignore errdrop — failures expected once Close lands
					cancel()
					_ = client.Close()
				}
			}()
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		// Serve returns nil on clean shutdown, or the already-closed error
		// when Close won the race before Serve entered its accept loop.
		if err := <-done; err != nil && !strings.Contains(err.Error(), "already closed") {
			t.Fatalf("round %d: Serve: %v", round, err)
		}
		close(stop)
		wg.Wait()
	}
}
