package rpc

import (
	"bytes"
	"compress/flate"
	"fmt"
	"net"
	"sync"
	"testing"
)

// The server must handle many concurrent connections, each with its own
// pipeline state, without cross-talk.
func TestServerConcurrentClients(t *testing.T) {
	key := make([]byte, 16)
	newPipe := func() (*Pipeline, error) {
		return NewPipeline(WithCompression(flate.BestSpeed), WithEncryption(key))
	}
	srv, err := NewServer(func(req Message) (Message, error) {
		// Echo the client id back so cross-talk is detectable.
		return Message{
			Method:  req.Method,
			Headers: map[string]string{"client": req.Headers["client"]},
			Payload: req.Payload,
		}, nil
	}, newPipe)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	const clients = 8
	const callsPerClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			p, err := newPipe()
			if err != nil {
				errs <- err
				return
			}
			client, err := NewClient(conn, p)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			payload := bytes.Repeat([]byte{byte(id)}, 512)
			for i := 0; i < callsPerClient; i++ {
				resp, err := client.Call(Message{
					Method:  "echo",
					Headers: map[string]string{"client": fmt.Sprint(id)},
					Payload: payload,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", id, i, err)
					return
				}
				if resp.Headers["client"] != fmt.Sprint(id) || !bytes.Equal(resp.Payload, payload) {
					errs <- fmt.Errorf("client %d: cross-talk detected", id)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// Closing the server must be idempotent-safe for Serve and reject reuse.
func TestServerCloseSemantics(t *testing.T) {
	srv, _ := NewServer(func(m Message) (Message, error) { return m, nil }, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	// Complete one call so Serve is definitely accepting before Close.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(Message{Method: "ping"}); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
	// A closed server refuses to serve again.
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	if err := srv.Serve(lis2); err == nil {
		t.Error("Serve on closed server: want error")
	}
}

// A server connection fed garbage frames must drop the connection rather
// than crash or hang.
func TestServerDropsCorruptConnection(t *testing.T) {
	srv, _ := NewServer(func(m Message) (Message, error) { return m, nil }, nil)
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(serverConn)
	if err := WriteFrame(clientConn, []byte("definitely not a message")); err != nil {
		t.Fatal(err)
	}
	// The server should close the connection; the next read must fail.
	buf := make([]byte, 4)
	if _, err := clientConn.Read(buf); err == nil {
		t.Error("expected connection to be dropped after corrupt frame")
	}
	clientConn.Close()
}
