package rpc

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz layer: the codec, the framing, and the batch envelope are the three
// parsers facing untrusted bytes. Each target checks the invariant that
// matters for that layer — accepted inputs must round-trip exactly, and no
// input may panic or over-allocate. Seed corpora live in
// testdata/fuzz/<Target>/ so `go test` exercises them on every run, and
// scripts/check.sh gives each target a short -fuzztime smoke.

// mustMarshal is a test helper for building seed inputs.
func mustMarshal(f *testing.F, m Message) []byte {
	f.Helper()
	data, err := Codec{}.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReadFrame checks the framing layer: whatever ReadFrame accepts,
// WriteFrame must reproduce byte-identically from the consumed prefix, and
// the returned frame must respect the size bound.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(nil))
	f.Add(frame([]byte("hello")))
	f.Add(frame(mustMarshal(f, Message{Method: "cache.get", Payload: []byte("k")})))
	// Buffer-pool class boundaries: frames landing exactly on, and one byte
	// past, a size class exercise getBuf's round-up and putBuf's floor.
	f.Add(frame(bytes.Repeat([]byte{0xc1}, 64)))
	f.Add(frame(bytes.Repeat([]byte{0xc2}, 65)))
	f.Add(frame(bytes.Repeat([]byte{0xc3}, 4096)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // length exceeds maxFrame
	f.Add([]byte{5, 0, 0, 0, 'a', 'b'})   // truncated body
	f.Add([]byte{1, 0})                   // truncated header
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(got) > maxFrame {
			t.Fatalf("accepted frame of %d bytes beyond maxFrame", len(got))
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, got); err != nil {
			t.Fatalf("re-framing accepted frame: %v", err)
		}
		consumed := data[:4+len(got)]
		if !bytes.Equal(buf.Bytes(), consumed) {
			t.Errorf("re-framed bytes differ from consumed prefix:\n got %x\nwant %x", buf.Bytes(), consumed)
		}
	})
}

// FuzzCodecRoundTrip checks the message codec: any frame unmarshalWithFlags
// accepts must survive a marshal/unmarshal cycle semantically unchanged,
// and re-marshaling must be a fixed point (deterministic encoding).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(mustMarshal(f, Message{}))
	f.Add(mustMarshal(f, Message{Method: "cache.get", Payload: []byte("payload")}))
	f.Add(mustMarshal(f, Message{
		Method:  "feed.rank",
		Headers: map[string]string{"x-trace-id": "abc123", "tier": "feed1"},
		Payload: bytes.Repeat([]byte("z"), 100),
	}))
	f.Add([]byte("not a frame"))
	// Pooled encode/decode boundaries: payloads sized to the buffer pool's
	// class edges drive appendMessage and the interned unmarshal through
	// exact-fit and spill-to-next-class buffers.
	f.Add(mustMarshal(f, Message{Method: "pool.fit", Payload: bytes.Repeat([]byte{0xd1}, 64)}))
	f.Add(mustMarshal(f, Message{Method: "pool.spill", Payload: bytes.Repeat([]byte{0xd2}, 4097)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, flags, err := unmarshalWithFlags(data)
		if err != nil {
			return
		}
		re, err := marshalWithFlags(m, flags)
		if err != nil {
			t.Fatalf("re-marshaling accepted message: %v", err)
		}
		m2, flags2, err := unmarshalWithFlags(re)
		if err != nil {
			t.Fatalf("decoding re-marshaled message: %v", err)
		}
		if flags2 != flags || !reflect.DeepEqual(m2, m) {
			t.Errorf("round trip changed message:\n got %+v flags %#x\nwant %+v flags %#x", m2, flags2, m, flags)
		}
		// Deterministic encoding is a fixed point after one canonicalizing
		// marshal (the input itself may order headers differently).
		re2, err := marshalWithFlags(m2, flags2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re2, re) {
			t.Error("marshal is not a fixed point on its own output")
		}
	})
}

// FuzzBatchPayloadRoundTrip checks the batch envelope parser: any payload
// decodeBatchPayload accepts must re-encode into an envelope that decodes
// to the same messages.
func FuzzBatchPayloadRoundTrip(f *testing.F) {
	seed := func(msgs ...Message) []byte {
		p, err := encodeBatchPayload(msgs)
		if err != nil {
			f.Fatal(err)
		}
		return p
	}
	f.Add(seed(Message{Method: "echo", Payload: []byte("one")}))
	f.Add(seed(
		Message{Method: "cache.get", Headers: map[string]string{"key": "user:42"}},
		Message{Method: "cache.put", Payload: []byte("value")},
		Message{},
	))
	f.Add([]byte{0, 0, 0, 0})       // zero count
	f.Add([]byte{1, 0, 0, 0, 0xff}) // bad member length
	// Members straddling buffer-pool class boundaries: the envelope encoder
	// backfills length prefixes inside one pooled buffer, so members that
	// force mid-envelope growth across a class edge are the risky shape.
	f.Add(seed(
		Message{Method: "pool.a", Payload: bytes.Repeat([]byte{0xe1}, 63)},
		Message{Method: "pool.b", Payload: bytes.Repeat([]byte{0xe2}, 65)},
		Message{Method: "pool.c", Payload: bytes.Repeat([]byte{0xe3}, 4096)},
	))
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := decodeBatchPayload(data)
		if err != nil {
			return
		}
		if len(msgs) == 0 || len(msgs) > maxBatchMessages {
			t.Fatalf("accepted batch of %d messages", len(msgs))
		}
		re, err := encodeBatchPayload(msgs)
		if err != nil {
			t.Fatalf("re-encoding accepted batch: %v", err)
		}
		msgs2, err := decodeBatchPayload(re)
		if err != nil {
			t.Fatalf("decoding re-encoded batch: %v", err)
		}
		if !reflect.DeepEqual(msgs2, msgs) {
			t.Errorf("batch round trip changed messages:\n got %+v\nwant %+v", msgs2, msgs)
		}
	})
}
