package rpc

import (
	"math/bits"
	"sync"
)

// Size-classed buffer pool for the RPC hot path. The paper's Table 2 puts
// memory allocation among the dominant "kernel" overheads at hyperscale,
// and its §5 case study models accelerating exactly this size-class lookup
// + free-list discipline; here the measurement harness applies the same
// cure to itself so steady-state Call/CallBatch traffic allocates nothing
// for framing, serialization, or the compression/encryption staging
// buffers (see BenchmarkCallDisabled and scripts/bench_alloc.sh).
//
// Ownership rules (documented for every hot-path call site and in the
// README's "Performance: pooling & parallel fleet" section):
//
//   - getBuf(n) returns a zero-length slice with cap >= n. The caller owns
//     it exclusively until it calls putBuf.
//   - putBuf(b) ends ownership; b must not be referenced afterwards. It is
//     always safe to NOT return a buffer — it is then reclaimed by the GC
//     like any other slice — so public APIs (Pipeline.Encode, ReadFrame)
//     may hand pooled buffers to callers that never release them.
//   - A buffer is released only after every view of it is dead: frames
//     after Decode copies out (Message owns fresh payload/string memory),
//     encode outputs after the frame write flushes, batch envelopes after
//     the member messages are re-marshaled or copied.
//
// Buffers of class c always have cap >= 1<<c, so a recycled buffer never
// shrinks a later request's capacity. Oversized buffers (beyond maxPooled)
// are never retained: a corrupt peer forcing one maxFrame read must not
// pin 80 MB in the pool.

const (
	// minPoolShift..maxPoolShift bound the pooled size classes:
	// 64 B .. 1 MiB in powers of two. Smaller requests round up to 64 B;
	// larger ones fall through to plain make.
	minPoolShift = 6
	maxPoolShift = 20
	numClasses   = maxPoolShift - minPoolShift + 1

	// maxPooled is the largest capacity putBuf will retain.
	maxPooled = 1 << maxPoolShift
)

// pooledBuf is the container sync.Pool stores. Pooling the container
// separately from the bytes keeps getBuf/putBuf allocation-free: putting a
// bare []byte into a sync.Pool would box the three-word slice header into
// an interface (one allocation per put, defeating the pool).
type pooledBuf struct{ b []byte }

var (
	// bufClasses[i] holds *pooledBuf whose b has cap >= 1<<(minPoolShift+i).
	bufClasses [numClasses]sync.Pool
	// emptyBufs recycles spent containers (b == nil) between put and get.
	emptyBufs = sync.Pool{New: func() any { return new(pooledBuf) }}
)

// classFor returns the class index whose buffers can hold n bytes.
func classFor(n int) int {
	if n <= 1<<minPoolShift {
		return 0
	}
	return bits.Len(uint(n-1)) - minPoolShift
}

// getBuf returns a zero-length buffer with cap >= n, recycled when a
// buffer of a suitable class is pooled. See the ownership rules above.
func getBuf(n int) []byte {
	if n > maxPooled {
		return make([]byte, 0, n)
	}
	cls := classFor(n)
	if v := bufClasses[cls].Get(); v != nil {
		pb := v.(*pooledBuf)
		b := pb.b
		pb.b = nil
		emptyBufs.Put(pb)
		return b[:0]
	}
	return make([]byte, 0, 1<<(minPoolShift+cls))
}

// getBufN returns a length-n pooled buffer — getBuf(n) resliced to n for
// the fill-in-place paths (frame reads, in-place crypto) that address the
// full length immediately. Ownership is getBuf's: the caller holds the
// buffer exclusively until it calls putBuf.
func getBufN(n int) []byte {
	return getBuf(n)[:n]
}

// putBuf returns a buffer to its size class. The buffer must not be used
// after this call. Undersized or oversized buffers are dropped (the GC
// reclaims them), so any []byte — pooled origin or not — is acceptable.
func putBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolShift || c > maxPooled {
		return
	}
	// File under the largest class the capacity fully covers, so a get on
	// that class never receives a too-small buffer.
	cls := bits.Len(uint(c)) - 1 - minPoolShift
	pb := emptyBufs.Get().(*pooledBuf)
	pb.b = b
	bufClasses[cls].Put(pb)
}
