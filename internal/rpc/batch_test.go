package rpc

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/telemetry"
)

func TestBatchPayloadRoundTrip(t *testing.T) {
	msgs := []Message{
		{Method: "cache.get", Headers: map[string]string{"key": "user:42"}},
		{Method: "cache.put", Payload: []byte("value")},
		{},
	}
	payload, err := encodeBatchPayload(msgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, msgs)
	}
}

func TestBatchPayloadRejectsCorrupt(t *testing.T) {
	if _, err := encodeBatchPayload(nil); err == nil {
		t.Error("empty batch: want encode error")
	}
	if _, err := decodeBatchPayload([]byte{0, 0, 0, 0}); err == nil {
		t.Error("zero count: want error")
	}
	if _, err := decodeBatchPayload([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("member length beyond payload: want error")
	}
	good, err := encodeBatchPayload([]Message{{Method: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBatchPayload(append(good, 0x00)); err == nil {
		t.Error("trailing bytes: want error")
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := decodeBatchPayload(flipped); err == nil {
		t.Error("corrupt member checksum: want error")
	}
}

// echoBatchServer serves an echo handler that fails methods with a "fail"
// prefix; the returned client is connected over net.Pipe.
func echoBatchServer(t *testing.T) *Client {
	t.Helper()
	srv, err := NewServer(batchTestHandler, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// batchTestHandler is the deterministic handler the equivalence tests are
// written against: "fail/..." methods error, everything else echoes the
// payload back reversed.
func batchTestHandler(_ context.Context, req Message) (Message, error) {
	if strings.HasPrefix(req.Method, "fail/") {
		return Message{}, fmt.Errorf("boom:%s", req.Method)
	}
	rev := make([]byte, len(req.Payload))
	for i, b := range req.Payload {
		rev[len(rev)-1-i] = b
	}
	return Message{Method: req.Method, Payload: rev}, nil
}

func TestCallBatchEcho(t *testing.T) {
	client := echoBatchServer(t)
	reqs := make([]Message, 5)
	for i := range reqs {
		reqs[i] = Message{Method: fmt.Sprintf("m%d", i), Payload: []byte{byte(i), byte(i + 1)}}
	}
	resps, errs, err := client.CallBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if errs[i] != nil {
			t.Errorf("req %d: unexpected error %v", i, errs[i])
		}
		want := []byte{byte(i + 1), byte(i)}
		if resp.Method != reqs[i].Method || !bytes.Equal(resp.Payload, want) {
			t.Errorf("req %d: resp = %+v, want method %q payload %v", i, resp, reqs[i].Method, want)
		}
	}
}

func TestCallBatchErrorIsolation(t *testing.T) {
	client := echoBatchServer(t)
	reqs := []Message{
		{Method: "ok/0", Payload: []byte("a")},
		{Method: "fail/1"},
		{Method: "ok/2", Payload: []byte("b")},
	}
	resps, errs, err := client.CallBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy siblings errored: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "boom:fail/1") {
		t.Errorf("errs[1] = %v, want remote boom", errs[1])
	}
	if string(resps[0].Payload) != "a" || string(resps[2].Payload) != "b" {
		t.Errorf("sibling responses corrupted: %+v", resps)
	}
}

func TestCallBatchEmpty(t *testing.T) {
	client := echoBatchServer(t)
	if _, _, err := client.CallBatch(nil); err == nil {
		t.Error("empty batch: want error")
	}
}

// Satellite property: a batch of N requests must be observationally
// equivalent to N sequential calls — same responses, same per-request
// error mapping, and each server handler span parented on its own
// caller's span.
func TestBatchEquivalenceProperty(t *testing.T) {
	srv, err := NewServer(batchTestHandler, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientTr := telemetry.NewTracer("client")
	serverTr := telemetry.NewTracer("server")
	srv.Instrument(&Instrumentation{Tracer: serverTr})

	seqClient := echoBatchServer(t)

	batConn, batServerConn := net.Pipe()
	go srv.ServeConn(context.Background(), batServerConn)
	batClient, err := NewClient(batConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer batClient.Close()
	batClient.Instrument(&Instrumentation{Tracer: clientTr})

	iter := 0
	f := func(payloads [][]byte, failMask uint8) bool {
		iter++
		if len(payloads) == 0 {
			payloads = [][]byte{nil}
		}
		if len(payloads) > 8 {
			payloads = payloads[:8]
		}
		clientTr.Reset()
		serverTr.Reset()
		reqs := make([]Message, len(payloads))
		for i, p := range payloads {
			method := fmt.Sprintf("ok/%d.%d", iter, i)
			if failMask&(1<<i) != 0 {
				method = fmt.Sprintf("fail/%d.%d", iter, i)
			}
			reqs[i] = Message{Method: method, Payload: p}
		}

		// Batched side: concurrent callers coalesced by a Batcher sized to
		// the request count, so everything rides one envelope.
		b, err := NewBatcher(batClient, BatcherConfig{MaxBatch: len(reqs), Linger: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		resps := make([]Message, len(reqs))
		errs := make([]error, len(reqs))
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = b.CallContext(context.Background(), reqs[i])
			}(i)
		}
		wg.Wait()
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}

		for i, req := range reqs {
			seqResp, seqErr := seqClient.Call(req)
			if (errs[i] == nil) != (seqErr == nil) {
				t.Logf("req %d: batched err %v, sequential err %v", i, errs[i], seqErr)
				return false
			}
			if seqErr != nil {
				if errs[i].Error() != seqErr.Error() {
					t.Logf("req %d: error text diverged: %q vs %q", i, errs[i], seqErr)
					return false
				}
				continue
			}
			if resps[i].Method != seqResp.Method || !bytes.Equal(resps[i].Payload, seqResp.Payload) {
				t.Logf("req %d: batched %+v, sequential %+v", i, resps[i], seqResp)
				return false
			}
		}

		// Trace linkage: every member's server span must be parented on
		// that member's own client call span — batching must not collapse
		// or cross-wire the per-request traces.
		clientSpans := map[string]telemetry.SpanData{}
		for _, sd := range clientTr.Spans() {
			clientSpans[sd.Name] = sd
		}
		serverSpans := map[string]telemetry.SpanData{}
		for _, sd := range serverTr.Spans() {
			serverSpans[sd.Name] = sd
		}
		for _, req := range reqs {
			call, ok := clientSpans["rpc.Call/"+req.Method]
			if !ok {
				t.Logf("no client span for %q", req.Method)
				return false
			}
			sd, ok := serverSpans["rpc.Server/"+req.Method]
			if !ok {
				t.Logf("no server span for %q", req.Method)
				return false
			}
			if sd.TraceID != call.TraceID || sd.ParentID != call.SpanID {
				t.Logf("span linkage broken for %q: server %+v, caller %+v", req.Method, sd, call)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Per-request spans must link server handler spans to each member's own
// client-side call span, even when the Batcher coalesced them into one
// envelope exchange.
func TestBatcherTraceParentLinkage(t *testing.T) {
	srv, err := NewServer(batchTestHandler, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientTr := telemetry.NewTracer("client")
	serverTr := telemetry.NewTracer("server")
	srv.Instrument(&Instrumentation{Tracer: serverTr})

	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(&Instrumentation{Tracer: clientTr})

	const n = 4
	b, err := NewBatcher(client, BatcherConfig{MaxBatch: n, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.CallContext(context.Background(), Message{Method: fmt.Sprintf("ok/%d", i)}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	clientSpans := map[string]telemetry.SpanData{}
	for _, sd := range clientTr.Spans() {
		clientSpans[sd.Name] = sd
	}
	serverSpans := map[string]telemetry.SpanData{}
	for _, sd := range serverTr.Spans() {
		serverSpans[sd.Name] = sd
	}
	for i := 0; i < n; i++ {
		call, ok := clientSpans[fmt.Sprintf("rpc.Call/ok/%d", i)]
		if !ok {
			t.Fatalf("missing client span for call %d; have %v", i, clientSpans)
		}
		srvSp, ok := serverSpans[fmt.Sprintf("rpc.Server/ok/%d", i)]
		if !ok {
			t.Fatalf("missing server span for call %d", i)
		}
		if srvSp.TraceID != call.TraceID {
			t.Errorf("call %d: server span in trace %x, caller trace %x", i, srvSp.TraceID, call.TraceID)
		}
		if srvSp.ParentID != call.SpanID {
			t.Errorf("call %d: server span parent %x, caller span %x", i, srvSp.ParentID, call.SpanID)
		}
	}
}

func TestBatcherFlushOnMaxBatch(t *testing.T) {
	client := echoBatchServer(t)
	const n = 4
	b, err := NewBatcher(client, BatcherConfig{MaxBatch: n, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i), 0xAA}
			resp, err := b.CallContext(context.Background(), Message{Method: "ok/x", Payload: payload})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if want := []byte{0xAA, byte(i)}; !bytes.Equal(resp.Payload, want) {
				t.Errorf("call %d: payload %v, want %v", i, resp.Payload, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestBatcherLingerFlush(t *testing.T) {
	client := echoBatchServer(t)
	b, err := NewBatcher(client, BatcherConfig{MaxBatch: 1000, Linger: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// A lone caller must not wait for a full batch.
	resp, err := b.CallContext(context.Background(), Message{Method: "ok/solo", Payload: []byte("xy")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "yx" {
		t.Errorf("payload = %q", resp.Payload)
	}
}

func TestBatcherFlushOnMaxBytes(t *testing.T) {
	client := echoBatchServer(t)
	b, err := NewBatcher(client, BatcherConfig{MaxBatch: 1000, MaxBytes: 8, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// One 8-byte payload crosses MaxBytes alone, so it flushes without
	// waiting for the hour-long linger.
	resp, err := b.CallContext(context.Background(), Message{Method: "ok/big", Payload: []byte("12345678")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "87654321" {
		t.Errorf("payload = %q", resp.Payload)
	}
}

func TestBatcherClose(t *testing.T) {
	client := echoBatchServer(t)
	b, err := NewBatcher(client, BatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if _, err := b.CallContext(context.Background(), Message{Method: "ok/late"}); err != ErrBatcherClosed {
		t.Errorf("call after close: %v, want ErrBatcherClosed", err)
	}
}

// A request cancelled while still queued is dropped from its batch; the
// server never sees it and its siblings proceed.
func TestBatcherCancelledQueuedCallDropped(t *testing.T) {
	var served sync.Map
	srv, err := NewServer(func(_ context.Context, req Message) (Message, error) {
		served.Store(req.Method, true)
		return Message{Method: req.Method, Payload: req.Payload}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientConn, serverConn := net.Pipe()
	go srv.ServeConn(context.Background(), serverConn)
	client, err := NewClient(clientConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	b, err := NewBatcher(client, BatcherConfig{MaxBatch: 2, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.CallContext(ctx, Message{Method: "doomed"})
		errc <- err
	}()
	// Wait for the doomed call to be queued, then cancel it while the
	// batch is still one short of flushing.
	waitFor(t, time.Second, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.pending) == 1
	})
	cancel()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}

	// The second call fills the batch and flushes it; only it reaches the
	// server.
	resp, err := b.CallContext(context.Background(), Message{Method: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != "survivor" {
		t.Errorf("resp = %+v", resp)
	}
	if _, ok := served.Load("doomed"); ok {
		t.Error("cancelled queued request reached the server")
	}
	if _, ok := served.Load("survivor"); !ok {
		t.Error("surviving request never reached the server")
	}
}

// Satellite regression (ROADMAP deferred item): cancelling the context
// passed to Serve must propagate to in-flight connections and unblock
// batched handlers blocked inside the handler.
func TestServeContextCancelUnblocksBatchedHandlers(t *testing.T) {
	const n = 3
	started := make(chan struct{}, n)
	srv, err := NewServer(func(ctx context.Context, req Message) (Message, error) {
		started <- struct{}{}
		<-ctx.Done() // block until serve-context cancellation propagates
		return Message{}, ctx.Err()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	b, err := NewBatcher(client, BatcherConfig{MaxBatch: n, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	callErrs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := b.CallContext(context.Background(), Message{Method: fmt.Sprintf("block/%d", i)})
			callErrs <- err
		}(i)
	}
	// All members of the batch must be inside the handler before we cancel.
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d handlers started", i, n)
		}
	}
	cancel()

	for i := 0; i < n; i++ {
		select {
		case err := <-callErrs:
			if err == nil {
				t.Error("batched call succeeded across a cancelled serve context")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("batched call still blocked after serve-context cancellation")
		}
	}
	select {
	case err := <-serveDone:
		if err != context.Canceled {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
