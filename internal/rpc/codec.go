// Package rpc is the reproduction's RPC substrate: a binary message codec
// with optional compression and encryption layers, length-prefixed framing,
// and a minimal client/server.
//
// The paper's thesis is that hyperscale microservices spend most of their
// cycles orchestrating RPCs — serializing, compressing, encrypting, and
// moving bytes — rather than in application logic. The synthetic fleet
// therefore runs on a real RPC path: every simulated request is genuinely
// serialized (this package), optionally DEFLATE-compressed and AES-CTR
// encrypted (internal/kernels), and framed over a transport, so the
// profiler attributes cycles to the same operations the paper measures.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Message is one RPC request or response.
type Message struct {
	Method  string
	Headers map[string]string
	Payload []byte
}

// Wire format (all integers little-endian):
//
//	magic   uint16 = 0xACC3
//	version uint8  = 1
//	flags   uint8  (bit 0: compressed, bit 1: encrypted)
//	method  uint16 length + bytes
//	headers uint16 count, then per header: uint16 len + bytes (key),
//	        uint32 len + bytes (value)
//	payload uint32 length + bytes
//	crc32   uint32 over everything before it
const (
	wireMagic   uint16 = 0xACC3
	wireVersion byte   = 1

	flagCompressed byte = 1 << 0
	flagEncrypted  byte = 1 << 1
)

// Limits defending against corrupt frames.
const (
	maxMethodLen  = 1 << 10
	maxHeaders    = 1 << 10
	maxHeaderVal  = 1 << 16
	maxPayloadLen = 64 << 20
)

// Codec marshals and unmarshals Messages. The zero value is ready to use.
type Codec struct{}

// ErrCorrupt reports a frame that failed structural validation or its
// checksum.
var ErrCorrupt = errors.New("rpc: corrupt message")

// Marshal encodes a message. The flags byte is zero; layered transforms
// (compression, encryption) are applied by Pipeline and recorded there.
func (Codec) Marshal(m Message) ([]byte, error) {
	return marshalWithFlags(m, 0)
}

func marshalWithFlags(m Message, flags byte) ([]byte, error) {
	size, err := wireSize(m)
	if err != nil {
		return nil, err
	}
	return appendMessage(make([]byte, 0, size), m, flags)
}

// wireSize computes the encoded size of m, validating the per-field limits
// on the way.
func wireSize(m Message) (int, error) {
	if len(m.Method) > maxMethodLen {
		return 0, fmt.Errorf("rpc: method name %d bytes exceeds %d", len(m.Method), maxMethodLen)
	}
	if len(m.Headers) > maxHeaders {
		return 0, fmt.Errorf("rpc: %d headers exceed %d", len(m.Headers), maxHeaders)
	}
	if len(m.Payload) > maxPayloadLen {
		return 0, fmt.Errorf("rpc: payload %d bytes exceeds %d", len(m.Payload), maxPayloadLen)
	}
	size := 2 + 1 + 1 + 2 + len(m.Method) + 2
	for k, v := range m.Headers {
		if len(k) > maxMethodLen || len(v) > maxHeaderVal {
			return 0, fmt.Errorf("rpc: oversized header %q", k)
		}
		size += 2 + len(k) + 4 + len(v)
	}
	return size + 4 + len(m.Payload) + 4, nil
}

// appendMessage appends m's wire encoding to buf and returns the extended
// slice. The pooled hot paths pass a buffer pre-sized with wireSize so the
// appends never reallocate; an undersized buf still encodes correctly.
func appendMessage(buf []byte, m Message, flags byte) ([]byte, error) {
	if _, err := wireSize(m); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding

	start := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion, flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Method)))
	buf = append(buf, m.Method...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		v := m.Headers[k]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf, nil
}

// Unmarshal decodes a message produced by Marshal.
func (Codec) Unmarshal(data []byte) (Message, error) {
	m, flags, err := unmarshalWithFlags(data)
	if err != nil {
		return Message{}, err
	}
	if flags != 0 {
		return Message{}, fmt.Errorf("%w: transformed frame given to bare codec (flags %#x)", ErrCorrupt, flags)
	}
	return m, nil
}

func unmarshalWithFlags(data []byte) (Message, byte, error) {
	return unmarshalInterned(data, nil)
}

// methodCache interns method-name strings so steady-state decoding of a
// connection's (small, repeating) method vocabulary allocates no string per
// message. It is not safe for concurrent use; each Pipeline — per-client or
// per-connection, both single-goroutine — owns one. The size cap keeps an
// adversarial peer streaming unique method names from growing it without
// bound: once full, extra methods fall back to a plain string copy.
type methodCache struct{ m map[string]string }

// maxInternedMethods bounds one cache; a service's method vocabulary is
// tiny, so the cap only matters under hostile traffic.
const maxInternedMethods = 256

// intern returns a string equal to b, reusing a prior copy when cached.
// The map lookup with a string(b) key compiles to a no-allocation probe.
func (c *methodCache) intern(b []byte) string {
	if c == nil {
		return string(b)
	}
	if s, ok := c.m[string(b)]; ok {
		return s
	}
	if len(c.m) >= maxInternedMethods {
		return string(b)
	}
	if c.m == nil {
		c.m = make(map[string]string, 8)
	}
	s := string(b)
	c.m[s] = s
	return s
}

// unmarshalInterned is unmarshalWithFlags with an optional method-name
// intern cache (nil skips interning).
func unmarshalInterned(data []byte, mc *methodCache) (Message, byte, error) {
	r := reader{data: data}
	if len(data) < 14 {
		return Message{}, 0, fmt.Errorf("%w: frame too short (%d bytes)", ErrCorrupt, len(data))
	}
	// Checksum first.
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return Message{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r.data = body

	if magic, err := r.u16(); err != nil || magic != wireMagic {
		return Message{}, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver, err := r.u8()
	if err != nil || ver != wireVersion {
		return Message{}, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	flags, err := r.u8()
	if err != nil {
		return Message{}, 0, ErrCorrupt
	}

	mlen, err := r.u16()
	if err != nil || int(mlen) > maxMethodLen {
		return Message{}, 0, fmt.Errorf("%w: bad method length", ErrCorrupt)
	}
	method, err := r.bytes(int(mlen))
	if err != nil {
		return Message{}, 0, ErrCorrupt
	}

	hcount, err := r.u16()
	if err != nil || int(hcount) > maxHeaders {
		return Message{}, 0, fmt.Errorf("%w: bad header count", ErrCorrupt)
	}
	var headers map[string]string
	if hcount > 0 {
		headers = make(map[string]string, hcount)
	}
	for i := 0; i < int(hcount); i++ {
		klen, err := r.u16()
		if err != nil {
			return Message{}, 0, ErrCorrupt
		}
		k, err := r.bytes(int(klen))
		if err != nil {
			return Message{}, 0, ErrCorrupt
		}
		vlen, err := r.u32()
		if err != nil || vlen > maxHeaderVal {
			return Message{}, 0, ErrCorrupt
		}
		v, err := r.bytes(int(vlen))
		if err != nil {
			return Message{}, 0, ErrCorrupt
		}
		headers[string(k)] = string(v)
	}

	plen, err := r.u32()
	if err != nil || plen > maxPayloadLen {
		return Message{}, 0, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	payload, err := r.bytes(int(plen))
	if err != nil {
		return Message{}, 0, ErrCorrupt
	}
	if r.remaining() != 0 {
		return Message{}, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}

	m := Message{Method: mc.intern(method), Headers: headers}
	if len(payload) > 0 {
		m.Payload = append([]byte(nil), payload...)
	}
	return m, flags, nil
}

// reader is a bounds-checked cursor over a byte slice.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrCorrupt
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}
