package rpc

import (
	"sync"
	"testing"
)

// TestClassFor pins the size-class mapping: gets round a request up to the
// smallest class that holds it, so a pooled buffer can never come back too
// small for the request that received it.
func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 0},
		{65, 1},
		{128, 1},
		{129, 2},
		{4096, 6},
		{4097, 7},
		{1 << 20, maxPoolShift - minPoolShift},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
		if c.n > 0 && 1<<(minPoolShift+classFor(c.n)) < c.n {
			t.Errorf("classFor(%d): class capacity %d is smaller than the request",
				c.n, 1<<(minPoolShift+classFor(c.n)))
		}
	}
}

// TestGetBufCapacity checks getBuf's contract: zero length, capacity at
// least the request, for sizes spanning every class plus the oversize
// escape hatch.
func TestGetBufCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 100, 4096, 64 << 10, 1 << 20, maxPooled + 1, 3 << 20} {
		b := getBuf(n)
		if len(b) != 0 {
			t.Errorf("getBuf(%d): len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Errorf("getBuf(%d): cap = %d, want >= %d", n, cap(b), n)
		}
		putBuf(b)
	}
}

// TestPutBufFloorClass checks that a buffer whose capacity is not an exact
// class size is filed under the class it can actually satisfy: after
// putBuf(cap=100), a getBuf(100) must not hand that 100-byte buffer back,
// because class(100) promises 128 bytes.
func TestPutBufFloorClass(t *testing.T) {
	odd := make([]byte, 0, 100)
	putBuf(odd)
	got := getBuf(100)
	if cap(got) < 100 {
		t.Errorf("getBuf(100) after putBuf(cap=100): cap = %d, want >= 100", cap(got))
	}
	putBuf(got)
}

// TestPutBufRejectsOutOfRange checks that undersized and oversized buffers
// are dropped rather than pooled (and that passing them is safe): pooling a
// >1MiB buffer would pin large memory forever, and a sub-minimum buffer
// could never satisfy any class.
func TestPutBufRejectsOutOfRange(t *testing.T) {
	putBuf(nil)
	putBuf(make([]byte, 0, 8))
	putBuf(make([]byte, 0, maxPooled*2))
	// The pool must still behave after the rejects.
	b := getBuf(512)
	if cap(b) < 512 {
		t.Errorf("getBuf(512): cap = %d, want >= 512", cap(b))
	}
	putBuf(b)
}

// TestBufPoolReuse checks that a released buffer is actually recycled: the
// point of the pool. sync.Pool may drop entries under GC pressure, so the
// test retries a few times before declaring failure.
func TestBufPoolReuse(t *testing.T) {
	const size = 1 << 14 // a class unlikely to see concurrent traffic from other tests
	for attempt := 0; attempt < 8; attempt++ {
		b := getBuf(size)
		b = append(b, 0xab)
		first := &b[:cap(b)][cap(b)-1]
		putBuf(b)
		c := getBuf(size)
		same := cap(c) == cap(b) && &c[:cap(c)][cap(c)-1] == first //modelcheck:ignore poolcheck — reads only capacity and backing-array identity to detect recycling, never contents
		putBuf(c)
		if same {
			return
		}
	}
	t.Skip("pool never returned the released buffer (GC cleared it); reuse is best-effort")
}

// TestBufPoolConcurrent hammers get/put from many goroutines under the race
// detector: each goroutine writes a distinct byte pattern and verifies it
// before release, so any aliasing between concurrently-owned buffers is
// caught as a data race or a corrupted pattern.
func TestBufPoolConcurrent(t *testing.T) {
	sizes := []int{63, 64, 65, 512, 4096, 4097, 64 << 10}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := sizes[i%len(sizes)]
				b := getBuf(n)[:n]
				for j := range b {
					b[j] = id
				}
				for j := range b {
					if b[j] != id {
						t.Errorf("goroutine %d: buffer aliased, byte %d = %#x", id, j, b[j])
						return
					}
				}
				putBuf(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
