package rpc

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
)

// Benchmarks behind scripts/bench_async.sh → BENCH_async.json:
//
//   - BenchmarkAsyncParkResume: allocs/op for one full park/resume round
//     trip (client call + server pre-stage + device + continuation +
//     response). The allocs/op floor is the pooled-continuation gate.
//   - BenchmarkServingAsyncHighInflight vs
//     BenchmarkServingBlockingHighInflight: the same engine worker pool
//     (8), the same device latency, 256 calls in flight. The blocking arm
//     occupies a worker for the whole offload (the paper's Sync threading
//     design on a bounded pool); the async arm parks. Throughput ratio is
//     the gate: async must beat blocking once in-flight count exceeds the
//     worker pool.

// benchAsyncEnv starts an engine-backed server with handler h and returns
// a mux client; cleanup is registered on b.
func benchAsyncEnv(b *testing.B, h AsyncHandler, workers int) *MuxClient {
	b.Helper()
	eng, err := NewEngine(EngineConfig{Workers: workers, Queue: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() }) // errors swallowed per the teardown rule
	srv, err := NewAsyncServer(h, eng, nil)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	b.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewMuxClient(conn, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() }) // errors swallowed per the teardown rule
	return client
}

// driveInFlight pushes b.N calls through client keeping `window` in
// flight, using the callback API so the driver itself stays at two
// goroutines regardless of the window.
func driveInFlight(b *testing.B, client *MuxClient, window int, payload []byte) {
	b.Helper()
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	var failures atomic.Int64
	wg.Add(b.N)
	ctx := context.Background()
	req := Message{Method: "bench", Payload: payload}
	cb := func(_ Message, err error) {
		if err != nil {
			failures.Add(1)
		}
		<-sem
		wg.Done()
	}
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		if err := client.Go(ctx, req, cb); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	if f := failures.Load(); f != 0 {
		b.Fatalf("%d of %d calls failed", f, b.N)
	}
}

// BenchmarkAsyncParkResume measures one serial park/resume round trip;
// its allocs/op is the pooled-continuation CI gate.
func BenchmarkAsyncParkResume(b *testing.B) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{}) // zero latency: pure path cost
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	client := benchAsyncEnv(b, parkingHandler(dev), 2)
	payload := []byte("park-resume-payload")
	ctx := context.Background()
	req := Message{Method: "bench", Payload: payload}
	if _, err := client.CallContext(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallContext(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	benchOffloadLatency = 200 * time.Microsecond
	benchInFlight       = 256
	benchWorkers        = 8
)

// BenchmarkServingAsyncHighInflight: workers park; in-flight offloads are
// limited by the window, not the pool.
func BenchmarkServingAsyncHighInflight(b *testing.B) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: benchOffloadLatency})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	client := benchAsyncEnv(b, parkingHandler(dev), benchWorkers)
	if _, err := client.CallContext(context.Background(), Message{Method: "warm", Payload: []byte("w")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	driveInFlight(b, client, benchInFlight, []byte("hi"))
}

// BenchmarkServingBlockingHighInflight: the identical stack, but the
// handler waits out the offload on the worker (Sync threading design), so
// at most `workers` offloads make progress regardless of the window.
func BenchmarkServingBlockingHighInflight(b *testing.B) {
	dev, err := kernels.NewSimAccel(kernels.SimAccelConfig{Latency: benchOffloadLatency})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	h := func(ctx context.Context, req Message, _ *AsyncCall) (Message, error) {
		done := make(chan error, 1)
		if err := dev.Submit(ctx, uint64(len(req.Payload)), kernels.CompleterFunc(func(err error) { done <- err })); err != nil {
			return Message{}, err
		}
		if err := <-done; err != nil {
			return Message{}, err
		}
		return Message{Method: req.Method, Payload: req.Payload}, nil
	}
	client := benchAsyncEnv(b, h, benchWorkers)
	if _, err := client.CallContext(context.Background(), Message{Method: "warm", Payload: []byte("w")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	driveInFlight(b, client, benchInFlight, []byte("hi"))
}
