package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/telemetry"
)

// echoResume is the canonical zero-closure continuation: it rebuilds the
// response from the pooled request state only.
var echoResume ResumeFunc = func(_ context.Context, ac *AsyncCall) (Message, error) {
	req := ac.Request()
	return Message{Method: req.Method, Payload: append([]byte("resumed|"), req.Payload...)}, nil
}

// parkingHandler parks every request on dev for its payload length.
func parkingHandler(dev Offloader) AsyncHandler {
	return func(_ context.Context, _ Message, ac *AsyncCall) (Message, error) {
		if err := ac.Park(dev, uint64(len(ac.Request().Payload)), echoResume); err != nil {
			return Message{}, err
		}
		return Message{}, nil
	}
}

// startAsyncTestServer serves h through eng on a loopback listener.
func startAsyncTestServer(t *testing.T, h AsyncHandler, eng *Engine) string {
	t.Helper()
	srv, err := NewAsyncServer(h, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	return lis.Addr().String()
}

func dialMux(t *testing.T, addr string) *MuxClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMuxClient(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) // errors swallowed per the teardown rule
	return c
}

func newTestEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() }) // errors swallowed per the teardown rule
	return eng
}

func newTestAccel(t *testing.T, cfg kernels.SimAccelConfig) *kernels.SimAccel {
	t.Helper()
	dev, err := kernels.NewSimAccel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() }) // errors swallowed per the teardown rule
	return dev
}

// TestAsyncServerParkResume drives many concurrent calls through the full
// park/resume path and checks every response round-trips against its own
// request — completions land out of order (device deadlines scale with
// payload size), so this also proves correlation-id routing.
func TestAsyncServerParkResume(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: time.Millisecond, BytesPerSec: 1 << 20})
	eng := newTestEngine(t, EngineConfig{Workers: 4})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)

	const calls = 64
	var wg sync.WaitGroup
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i)}, (calls-i)*32) // bigger payload => later completion
			resp, err := client.CallContext(context.Background(), Message{Method: fmt.Sprintf("m%d", i), Payload: payload})
			if err != nil {
				errCh <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			want := append([]byte("resumed|"), payload...)
			if resp.Method != fmt.Sprintf("m%d", i) || !bytes.Equal(resp.Payload, want) {
				errCh <- fmt.Errorf("call %d: cross-wired response method=%q len=%d", i, resp.Method, len(resp.Payload))
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := eng.Stats()
	if st.Served != calls {
		t.Fatalf("engine served %d, want %d", st.Served, calls)
	}
	if st.Parked != 0 || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("engine not drained: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("engine errors = %d, want 0", st.Errors)
	}
	if got := client.InFlight(); got != 0 {
		t.Fatalf("client in-flight = %d, want 0", got)
	}
}

// TestAsyncServerInlineResponse: a handler that never parks responds
// synchronously from the worker, no device involved.
func TestAsyncServerInlineResponse(t *testing.T) {
	eng := newTestEngine(t, EngineConfig{Workers: 2})
	h := func(_ context.Context, req Message, _ *AsyncCall) (Message, error) {
		return Message{Method: req.Method, Payload: append([]byte("inline|"), req.Payload...)}, nil
	}
	addr := startAsyncTestServer(t, h, eng)
	client := dialMux(t, addr)
	resp, err := client.CallContext(context.Background(), Message{Method: "x", Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "inline|hi" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}

// TestAsyncServerScratch: the pooled continuation's scratch word carries
// handler state to the resume without allocating.
func TestAsyncServerScratch(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{})
	eng := newTestEngine(t, EngineConfig{})
	var resume ResumeFunc = func(_ context.Context, ac *AsyncCall) (Message, error) {
		return Message{Method: ac.Request().Method, Payload: []byte(fmt.Sprintf("scratch=%d", ac.Scratch))}, nil
	}
	h := func(_ context.Context, req Message, ac *AsyncCall) (Message, error) {
		ac.Scratch = uint64(len(req.Payload)) * 7
		if err := ac.Park(dev, 0, resume); err != nil {
			return Message{}, err
		}
		return Message{}, nil
	}
	addr := startAsyncTestServer(t, h, eng)
	client := dialMux(t, addr)
	resp, err := client.CallContext(context.Background(), Message{Method: "s", Payload: []byte("abcd")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "scratch=28" {
		t.Fatalf("payload = %q, want scratch=28", resp.Payload)
	}
}

// TestAsyncServerHandlerError: a handler error maps onto a remote-error
// response; an armed offload alongside the error is discarded.
func TestAsyncServerHandlerError(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{})
	eng := newTestEngine(t, EngineConfig{})
	h := func(_ context.Context, _ Message, ac *AsyncCall) (Message, error) {
		if err := ac.Park(dev, 0, echoResume); err != nil {
			return Message{}, err
		}
		return Message{}, errors.New("handler exploded")
	}
	addr := startAsyncTestServer(t, h, eng)
	client := dialMux(t, addr)
	_, err := client.CallContext(context.Background(), Message{Method: "boom"})
	if err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("err = %v, want remote handler error", err)
	}
	if st := dev.Stats(); st.Submitted != 0 {
		t.Fatalf("discarded offload was submitted anyway: %+v", st)
	}
	if st := eng.Stats(); st.Errors != 1 || st.Parked != 0 {
		t.Fatalf("engine stats = %+v, want 1 error, 0 parked", st)
	}
}

// TestAsyncServerSubmitError: a device that rejects the submission (here:
// closed) surfaces as a remote error and the continuation is not leaked.
func TestAsyncServerSubmitError(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{})
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t, EngineConfig{})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)
	_, err := client.CallContext(context.Background(), Message{Method: "x", Payload: []byte("p")})
	if err == nil || !strings.Contains(err.Error(), "accelerator closed") {
		t.Fatalf("err = %v, want accelerator-closed remote error", err)
	}
	if st := eng.Stats(); st.Parked != 0 || st.InFlight != 0 {
		t.Fatalf("engine leaked continuation state: %+v", st)
	}
}

// TestAsyncServerDeviceClosedMidFlight: the device closes while requests
// are parked — every parked continuation resumes with an error response
// (completion-after-close is an error delivery, not a hang or a leak).
func TestAsyncServerDeviceClosedMidFlight(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: time.Hour})
	eng := newTestEngine(t, EngineConfig{Workers: 2})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)

	const calls = 8
	var wg sync.WaitGroup
	var remoteErrs atomic.Int64
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.CallContext(context.Background(), Message{Method: "parked"})
			if err != nil && strings.Contains(err.Error(), "accelerator closed") {
				remoteErrs.Add(1)
			}
		}()
	}
	waitFor(t, 10*time.Second, func() bool { return eng.Stats().Parked == calls })
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := remoteErrs.Load(); got != calls {
		t.Fatalf("%d of %d parked calls surfaced the device-closed error", got, calls)
	}
	if st := eng.Stats(); st.Parked != 0 || st.InFlight != 0 {
		t.Fatalf("engine not drained after device close: %+v", st)
	}
}

// TestEngineCloseFailsPending: an engine closed with a continuation still
// inside the device fails that continuation with ErrEngineClosed when the
// completion eventually arrives (completion after Close).
func TestEngineCloseFailsPending(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: time.Hour})
	eng, err := NewEngine(EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)

	done := make(chan error, 1)
	go func() {
		_, err := client.CallContext(context.Background(), Message{Method: "stuck"})
		done <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return eng.Stats().Parked == 1 })
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	dev.Flush() // device completes; the closed engine must fail the call
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "engine closed") {
			t.Fatalf("err = %v, want engine-closed remote error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked call never resolved after engine close")
	}
}

// TestAsyncServerRejectsBatch: the batch envelope is refused in async
// mode with an error response, not a hang.
func TestAsyncServerRejectsBatch(t *testing.T) {
	eng := newTestEngine(t, EngineConfig{})
	addr := startAsyncTestServer(t, func(_ context.Context, req Message, _ *AsyncCall) (Message, error) {
		return req, nil
	}, eng)
	client := dialMux(t, addr)
	_, err := client.CallContext(context.Background(), Message{Method: BatchMethod})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("batch call = %v, want not-supported error", err)
	}
}

// TestConcurrentServerOutOfOrder: the spawn-per-request blocking server
// also supports out-of-order completion through the shared conn writer —
// a gated first request must not block a second one on the same conn.
func TestConcurrentServerOutOfOrder(t *testing.T) {
	gate := make(chan struct{})
	srv, err := NewConcurrentServer(func(_ context.Context, req Message) (Message, error) {
		if req.Method == "slow" {
			<-gate
		}
		return Message{Method: req.Method, Payload: req.Payload}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	client := dialMux(t, lis.Addr().String())
	// Cleanups run LIFO: the gate must open before the client closes its
	// conn and the server drains its spawned handlers, or teardown wedges
	// on a failure path that never reached close(gate).
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(openGate)

	slowDone := make(chan error, 1)
	if err := client.Go(context.Background(), Message{Method: "slow"}, func(_ Message, err error) {
		slowDone <- err
	}); err != nil {
		t.Fatal(err)
	}
	// The fast call completes while the slow one is still gated.
	resp, err := client.CallContext(context.Background(), Message{Method: "fast", Payload: []byte("f")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != "fast" || string(resp.Payload) != "f" {
		t.Fatalf("fast response = %+v", resp)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before its gate opened (err=%v)", err)
	default:
	}
	openGate()
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatalf("slow call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow call never completed")
	}
}

// TestMuxClientContextCancel: a cancelled caller unblocks immediately;
// the late response is dropped as unsolicited and the client remains
// usable.
func TestMuxClientContextCancel(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: 50 * time.Millisecond})
	eng := newTestEngine(t, EngineConfig{})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := client.CallContext(ctx, Message{Method: "slow", Payload: []byte("x")})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// A follow-up call on the same client still works (the stale response
	// arrives first and must be discarded, not cross-wired).
	resp, err := client.CallContext(context.Background(), Message{Method: "ok", Payload: []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "resumed|y" {
		t.Fatalf("follow-up payload = %q (stale response cross-wired?)", resp.Payload)
	}
}

// TestMuxClientClose: Close fails in-flight calls and later calls
// deterministically.
func TestMuxClientClose(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: time.Hour})
	eng := newTestEngine(t, EngineConfig{})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)

	done := make(chan error, 1)
	go func() {
		_, err := client.CallContext(context.Background(), Message{Method: "parked"})
		done <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return client.InFlight() == 1 })
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call succeeded across Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never failed after Close")
	}
	if _, err := client.CallContext(context.Background(), Message{Method: "late"}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after Close = %v, want ErrClientClosed", err)
	}
	if err := client.Go(context.Background(), Message{}, func(Message, error) {}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Go after Close = %v, want ErrClientClosed", err)
	}
}

// TestMuxClientValidation covers the synchronous argument errors.
func TestMuxClientValidation(t *testing.T) {
	if _, err := NewMuxClient(nil, nil); err == nil {
		t.Fatal("nil conn accepted")
	}
	c1, c2 := net.Pipe()
	defer c2.Close()
	client, err := NewMuxClient(c1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Go(context.Background(), Message{}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.CallContext(ctx, Message{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx = %v, want context.Canceled", err)
	}
	if err := client.Go(ctx, Message{}, func(Message, error) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Go with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestEngineInstrument registers the async gauges and checks they move.
func TestEngineInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := NewEngine(EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() }) // errors swallowed per the teardown rule
	if err := eng.Instrument(reg); err != nil {
		t.Fatal(err)
	}
	if err := eng.Instrument(nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: 2 * time.Millisecond})
	addr := startAsyncTestServer(t, parkingHandler(dev), eng)
	client := dialMux(t, addr)
	if _, err := client.CallContext(context.Background(), Message{Method: "m", Payload: []byte("z")}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{"async_inflight_offloads", "async_parked_continuations", "async_completion_queue_depth", "async_served_total", "async_errors_total"} {
		if !strings.Contains(text, name) {
			t.Fatalf("exposition missing %s:\n%s", name, text)
		}
	}
	if !strings.Contains(text, "async_served_total 1") {
		t.Fatalf("served counter not incremented:\n%s", text)
	}
}

// TestEngineConfigValidation rejects negative sizing.
func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewEngine(EngineConfig{Queue: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	if _, err := NewAsyncServer(nil, nil, nil); err == nil {
		t.Fatal("nil async handler accepted")
	}
	eng := newTestEngine(t, EngineConfig{})
	if _, err := NewAsyncServer(func(context.Context, Message, *AsyncCall) (Message, error) {
		return Message{}, nil
	}, nil, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	_ = eng
	if _, err := NewConcurrentServer(nil, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

// TestAsyncTracedWaits drives the park/resume path with a tracer attached
// and checks the engine's wait instrumentation end to end: the handler
// sees its request span via ac.Span() (and a live ac.Context()), the
// tracer records the queue-wait / park-wait / resume-wait / handler child
// spans with their tail-tax categories, and EngineStats accumulates both
// cumulative wait counters.
func TestAsyncTracedWaits(t *testing.T) {
	dev := newTestAccel(t, kernels.SimAccelConfig{Latency: 2 * time.Millisecond})
	eng := newTestEngine(t, EngineConfig{Workers: 2})

	sawSpan := make(chan bool, 1)
	h := func(_ context.Context, _ Message, ac *AsyncCall) (Message, error) {
		select {
		case sawSpan <- ac.Span() != nil && ac.Context() != nil:
		default:
		}
		if err := ac.Park(dev, uint64(len(ac.Request().Payload)), echoResume); err != nil {
			return Message{}, err
		}
		return Message{}, nil
	}
	srv, err := NewAsyncServer(h, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer("async-test")
	srv.Instrument(&Instrumentation{Tracer: tracer})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis) //modelcheck:ignore errdrop — Serve's error is the normal shutdown path
	t.Cleanup(func() { srv.Close() })       // errors swallowed per the teardown rule
	c := dialMux(t, lis.Addr().String())

	if _, err := c.CallContext(context.Background(), Message{Method: "traced", Payload: []byte("pp")}); err != nil {
		t.Fatal(err)
	}
	if ok := <-sawSpan; !ok {
		t.Fatal("handler saw a nil ac.Span() or ac.Context() on an instrumented server")
	}

	cats := map[string]string{}
	for _, sp := range tracer.Spans() {
		cats[sp.Name] = sp.Category
	}
	for name, wantCat := range map[string]string{
		"queue-wait":  telemetry.CatQueue,
		"park-wait":   telemetry.CatDevice,
		"resume-wait": telemetry.CatQueue,
		"handler":     telemetry.CatWork,
	} {
		if got, ok := cats[name]; !ok || got != wantCat {
			t.Errorf("span %q: category %q (recorded %v), want %q", name, got, ok, wantCat)
		}
	}
	st := eng.Stats()
	if st.QueueWaitNanos == 0 {
		t.Error("EngineStats.QueueWaitNanos = 0 after a served request")
	}
	if st.ParkWaitNanos < uint64(time.Millisecond) {
		t.Errorf("EngineStats.ParkWaitNanos = %d, want >= the 2ms device latency's order", st.ParkWaitNanos)
	}
}
