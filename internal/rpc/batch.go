package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Request batching (paper §3, §2.4): most offloads in the granularity CDFs
// carry payloads far below the break-even size, so the fixed per-exchange
// interface cost (o0 + L in the model; here encode, frame write, and a
// network round trip) dominates. A Batcher coalesces concurrent callers
// into one multi-message envelope frame: the pipeline (serialize →
// compress → encrypt) and the round trip run once per batch instead of
// once per request, raising the effective granularity to the batch's
// summed payload while amortizing the fixed cost across its members —
// exactly the batched-offload variant in internal/core.
//
// Wire shape: the envelope is an ordinary Message with the reserved
// method BatchMethod whose payload concatenates the member messages:
//
//	count uint32, then per message: uint32 length + Codec-marshaled bytes
//
// Because the envelope is a normal message, batching needs no framing or
// pipeline changes, and a fleet with batching disabled produces
// byte-identical wire traffic to one that has never heard of it.

// BatchMethod is the reserved method name of a batch envelope. Application
// handlers never see it: the server unpacks the envelope and dispatches
// the member messages individually.
const BatchMethod = "rpc.batch"

// maxBatchMessages bounds a batch so a corrupt envelope cannot force huge
// allocations or unbounded handler fan-out.
const maxBatchMessages = 4096

// encodeBatchPayload packs messages into an envelope payload. Each member
// is marshaled directly into the envelope — the length prefix is reserved
// and backfilled — so no per-member intermediate buffer or join copy
// exists. The returned buffer comes from the package buffer pool; the
// caller owns it and may release it with putBuf once the envelope has been
// copied onward (CallBatch and the server batch path do).
func encodeBatchPayload(msgs []Message) ([]byte, error) {
	if len(msgs) == 0 {
		return nil, errors.New("rpc: empty batch")
	}
	if len(msgs) > maxBatchMessages {
		return nil, fmt.Errorf("rpc: batch of %d messages exceeds %d", len(msgs), maxBatchMessages)
	}
	size := 4
	for _, m := range msgs {
		n, err := wireSize(m)
		if err != nil {
			return nil, err
		}
		size += 4 + n
	}
	buf := binary.LittleEndian.AppendUint32(getBuf(size), uint32(len(msgs)))
	for _, m := range msgs {
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // length prefix, backfilled below
		var err error
		buf, err = appendMessage(buf, m, 0)
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	return buf, nil
}

// decodeBatchPayload unpacks an envelope payload produced by
// encodeBatchPayload, validating every member frame.
func decodeBatchPayload(data []byte) ([]Message, error) {
	r := reader{data: data}
	count, err := r.u32()
	if err != nil || count == 0 || count > maxBatchMessages {
		return nil, fmt.Errorf("%w: bad batch count", ErrCorrupt)
	}
	msgs := make([]Message, 0, count)
	for i := 0; i < int(count); i++ {
		n, err := r.u32()
		if err != nil || int(n) > r.remaining() {
			return nil, fmt.Errorf("%w: bad batch member length", ErrCorrupt)
		}
		sub, err := r.bytes(int(n))
		if err != nil {
			return nil, ErrCorrupt
		}
		m, flags, err := unmarshalWithFlags(sub)
		if err != nil {
			return nil, err
		}
		if flags != 0 {
			return nil, fmt.Errorf("%w: transformed frame inside batch (flags %#x)", ErrCorrupt, flags)
		}
		msgs = append(msgs, m)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, r.remaining())
	}
	return msgs, nil
}

// handleBatch unpacks a batch envelope, fans the member requests out to
// handler goroutines, and re-envelopes the responses in request order.
// Per-request trace linkage survives batching — each member carries its
// own trace headers, so handleOne joins each to its caller's span — and
// errors stay isolated: a failing member becomes an error-header response
// in its slot without disturbing its siblings.
func (s *Server) handleBatch(ctx context.Context, env Message) Message {
	batchErr := func(err error) Message {
		return Message{Method: BatchMethod, Headers: map[string]string{"error": err.Error()}}
	}
	subs, err := decodeBatchPayload(env.Payload)
	putBuf(env.Payload) // the members own fresh copies; the envelope is dead
	if err != nil {
		return batchErr(err)
	}
	ins := s.ins
	if ins.enabled() && ins.Metrics != nil {
		ins.Metrics.BatchFlushes.Inc()
		ins.Metrics.BatchSize.Record(float64(len(subs)))
	}
	resps := make([]Message, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, sp := s.handleOne(ctx, subs[i])
			sp.End()
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	payload, err := encodeBatchPayload(resps)
	if err != nil {
		return batchErr(err)
	}
	return Message{Method: BatchMethod, Payload: payload}
}

// CallBatch sends reqs as one batched exchange and returns the responses
// and per-request errors, both indexed like reqs (a response carrying an
// "error" header surfaces as that request's error). The third return is
// an exchange-level error — encode, transport, or envelope failure — that
// voids the whole batch. The envelope runs through the pipeline and the
// wire once, so serialization, compression, encryption, framing, and the
// round trip are all paid once per batch.
func (c *Client) CallBatch(reqs []Message) ([]Message, []error, error) {
	if len(reqs) == 0 {
		return nil, nil, errors.New("rpc: empty batch")
	}
	ins := c.ins
	obs := ins.enabled()
	var sp *telemetry.Span
	if obs {
		if ins.Tracer != nil {
			sp = ins.Tracer.Start("rpc.CallBatch")
		}
		if ins.Metrics != nil {
			ins.Metrics.BatchFlushes.Inc()
			ins.Metrics.BatchSize.Record(float64(len(reqs)))
		}
	}
	payload, err := encodeBatchPayload(reqs)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	env := Message{Method: BatchMethod, Payload: payload}
	resp, err := c.exchange(context.Background(), env, ins, sp, obs)
	putBuf(payload) // the exchange serialized the envelope; it is dead
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	subs, err := decodeBatchPayload(resp.Payload)
	putBuf(resp.Payload) // the members own fresh copies; the envelope is dead
	if err != nil {
		return nil, nil, err
	}
	if len(subs) != len(reqs) {
		return nil, nil, fmt.Errorf("rpc: batch response carries %d messages, want %d", len(subs), len(reqs))
	}
	errs := make([]error, len(subs))
	for i, m := range subs {
		if msg, ok := m.Headers["error"]; ok {
			errs[i] = fmt.Errorf("rpc: remote error: %s", msg)
		}
	}
	return subs, errs, nil
}

// ErrBatcherClosed is returned for calls pending or submitted after
// Batcher.Close.
var ErrBatcherClosed = errors.New("rpc: batcher closed")

// BatcherConfig tunes when a Batcher flushes. Zero values take defaults.
type BatcherConfig struct {
	MaxBatch int           // flush at this many pending requests (default 16)
	MaxBytes int           // flush when pending payload bytes reach this (default 256 KiB)
	Linger   time.Duration // flush a partial batch after this long (default 500µs)
}

func (cfg BatcherConfig) withDefaults() BatcherConfig {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxBatch > maxBatchMessages {
		cfg.MaxBatch = maxBatchMessages
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 10
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 500 * time.Microsecond
	}
	return cfg
}

// callResult carries one request's outcome from the flusher to its caller.
type callResult struct {
	resp Message
	err  error
}

// batchCall is one caller parked in the pending queue.
type batchCall struct {
	req   Message
	ctx   context.Context
	sp    *telemetry.Span
	start time.Time       // zero when uninstrumented
	done  chan callResult // buffered(1): the flusher never blocks delivering
}

// Batcher coalesces concurrent CallContext requests on one Client into
// batched exchanges. A batch flushes when it reaches MaxBatch requests or
// MaxBytes of pending payload, or when the oldest pending request has
// lingered for the Linger timeout — so a lone caller is delayed at most
// Linger, while a burst amortizes the fixed exchange cost across the
// whole batch.
//
// The Batcher owns the client's exchange path: while a Batcher is
// attached, issue all traffic through it rather than calling the Client
// directly (the underlying Client is not safe for concurrent use; the
// single flusher goroutine is what serializes the wire).
type Batcher struct {
	client *Client
	cfg    BatcherConfig

	mu         sync.Mutex
	pending    []*batchCall
	pendingB   int // payload bytes pending
	timerArmed bool
	closed     bool

	kick    chan struct{} // buffered(1): coalesced flush signal
	stop    chan struct{}
	stopped chan struct{}
	timer   *time.Timer
}

// NewBatcher starts a batcher on client. Close it to release the flusher
// goroutine; Close does not close the client.
func NewBatcher(client *Client, cfg BatcherConfig) (*Batcher, error) {
	if client == nil {
		return nil, errors.New("rpc: nil client")
	}
	b := &Batcher{
		client:  client,
		cfg:     cfg.withDefaults(),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	b.timer = time.NewTimer(time.Hour)
	if !b.timer.Stop() {
		<-b.timer.C
	}
	go b.flushLoop()
	return b, nil
}

// CallContext submits one request for batched delivery and blocks until
// its response arrives, the batch fails, or ctx is done. A request whose
// context is cancelled while still queued is dropped from its batch; one
// cancelled after its batch is sent returns the context error but the
// batch itself proceeds for its siblings.
func (b *Batcher) CallContext(ctx context.Context, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("rpc: call aborted: %w", err)
	}
	ins := b.client.ins
	obs := ins.enabled()
	c := &batchCall{req: req, ctx: ctx, done: make(chan callResult, 1)}
	if obs {
		if ins.Tracer != nil {
			c.sp = ins.Tracer.Start("rpc.Call/" + req.Method)
			c.req = withTraceContext(req, c.sp)
		}
		if ins.Metrics != nil {
			ins.Metrics.Calls.Inc()
		}
		c.start = time.Now()
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		c.sp.End()
		return Message{}, ErrBatcherClosed
	}
	b.pending = append(b.pending, c)
	b.pendingB += len(c.req.Payload)
	full := len(b.pending) >= b.cfg.MaxBatch || b.pendingB >= b.cfg.MaxBytes
	if full {
		b.kickLocked()
	} else if !b.timerArmed {
		b.timerArmed = true
		b.timer.Reset(b.cfg.Linger)
	}
	b.mu.Unlock()

	select {
	case res := <-c.done:
		return res.resp, res.err
	case <-ctx.Done():
		// The flusher may deliver concurrently; it owns metrics/span
		// completion either way, and the buffered channel keeps it from
		// blocking on this abandoned call.
		return Message{}, fmt.Errorf("rpc: call aborted: %w", ctx.Err())
	}
}

// kickLocked signals the flusher; callers hold b.mu.
func (b *Batcher) kickLocked() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// take grabs the current pending batch.
func (b *Batcher) take() []*batchCall {
	b.mu.Lock()
	defer b.mu.Unlock()
	calls := b.pending
	b.pending = nil
	b.pendingB = 0
	// The linger timer belongs to the batch just taken; a call arriving
	// after this point re-arms it.
	if b.timerArmed {
		b.timerArmed = false
		if !b.timer.Stop() {
			select {
			case <-b.timer.C:
			default:
			}
		}
	}
	return calls
}

// flushLoop is the single goroutine that drains pending calls into
// batched exchanges.
func (b *Batcher) flushLoop() {
	defer close(b.stopped)
	for {
		select {
		case <-b.stop:
			b.failPending(ErrBatcherClosed)
			return
		case <-b.kick:
		case <-b.timer.C:
			b.mu.Lock()
			b.timerArmed = false
			b.mu.Unlock()
		}
		b.flush(b.take())
		// A call that arrived while flush was on the wire may have seen a
		// full batch and kicked already (coalesced into the buffered chan);
		// a partial batch re-arms the timer itself, so nothing is stranded.
	}
}

// flush sends one batch and delivers each member's result. Requests whose
// contexts were cancelled while queued are dropped here — after this
// point a request is on the wire and runs to completion server-side.
func (b *Batcher) flush(calls []*batchCall) {
	if len(calls) == 0 {
		return
	}
	live := calls[:0]
	for _, c := range calls {
		if err := c.ctx.Err(); err != nil {
			b.deliver(c, Message{}, fmt.Errorf("rpc: call aborted: %w", err))
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]Message, len(live))
	for i, c := range live {
		reqs[i] = c.req
	}
	resps, errs, err := b.client.CallBatch(reqs)
	if err != nil {
		for _, c := range live {
			b.deliver(c, Message{}, err)
		}
		return
	}
	for i, c := range live {
		b.deliver(c, resps[i], errs[i])
	}
}

// deliver completes one call: it records the caller-side latency and
// error metrics, ends the call span, and hands the result over. The
// buffered channel makes delivery non-blocking even when the caller
// abandoned the call.
func (b *Batcher) deliver(c *batchCall, resp Message, err error) {
	if !c.start.IsZero() {
		if ins := b.client.ins; ins != nil && ins.Metrics != nil {
			ins.Metrics.CallLatency.Record(time.Since(c.start).Seconds())
			if err != nil {
				ins.Metrics.CallErrors.Inc()
			}
		}
	}
	c.sp.End()
	c.done <- callResult{resp: resp, err: err}
}

// failPending errors out every queued call during shutdown.
func (b *Batcher) failPending(err error) {
	for _, c := range b.take() {
		b.deliver(c, Message{}, err)
	}
}

// Close stops the flusher and fails any still-queued calls with
// ErrBatcherClosed. It does not close the underlying Client.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.stopped
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.stopped
	return nil
}
