package rpc

// Completion-queue async serving: the execution of the paper's Async
// threading designs (§4). The blocking path ties one goroutine to every
// in-flight request for its whole lifetime — including the offload
// latency L during which the host does nothing. Here, a handler that
// reaches its offload point *arms* the offload (AsyncCall.Park) and
// returns; the engine submits the work to the accelerator, the request's
// state stays behind in a pooled continuation struct, and a small fixed
// pool of completion workers resumes continuations as the device
// completion queue drains. N in-flight offloads therefore cost O(workers)
// goroutines and zero per-request goroutine stacks — the property the
// 100k soak and BENCH_async gates pin.
//
// Pooled-state ownership (poolcheck discipline applies to the buffers,
// and the same rules are documented here for the continuations): an
// AsyncCall is owned by exactly one party at a time — the worker running
// its handler, then (if parked) the device, then the worker running its
// resume. finish is the single release point; after it, the struct is
// back in the pool and must not be touched.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/telemetry"
)

// HeaderCID is the correlation-id header: a client that multiplexes many
// in-flight calls over one connection (MuxClient) tags each request, and
// the async server echoes the tag on the response so completions can
// return out of order. Absent on a request, the response carries no tag —
// pooled one-call-at-a-time clients keep working unchanged.
const HeaderCID = "x-cid"

// ErrEngineClosed is reported to requests dispatched to, or completed on,
// an engine that has been closed.
var ErrEngineClosed = errors.New("rpc: async engine closed")

// Offloader is the device side of the async path: SimAccel satisfies it.
// Submit must either return an error synchronously (keeping request-state
// ownership with the caller) or arrange for c.Complete to fire exactly
// once.
type Offloader interface {
	Submit(ctx context.Context, g uint64, c kernels.Completer) error
}

// AsyncHandler is the async counterpart of Handler: it runs the
// host-side stage of a request on an engine worker. To finish
// synchronously, return the response. To offload, call ac.Park to arm the
// submission and return; the engine submits after the handler returns,
// parks the continuation, and runs the resume function when the device
// completes. The returned Message is ignored when the call is parked.
type AsyncHandler func(ctx context.Context, req Message, ac *AsyncCall) (Message, error)

// ResumeFunc is a parked request's continuation: it runs on an engine
// worker after the offload completes and produces the response. Keep
// resume functions as package-level funcs where possible — a closure per
// request is an allocation the pooled continuation exists to avoid.
type ResumeFunc func(ctx context.Context, ac *AsyncCall) (Message, error)

// AsyncCall states. Ownership transfers at each step; the state field is
// only ever read/written by the single current owner, except the
// stateParked→stateResumed transition which happens on the device's
// dispatcher goroutine (made safe because the worker stops touching the
// struct the moment it hands it to Offloader.Submit).
const (
	stateNew     = iota // dispatched, handler not yet run
	stateResumed        // offload complete, resume pending
)

// AsyncCall is the pooled continuation: everything a parked request needs
// to resume — decoded request, connection writer, correlation id, armed
// offload, and a scratch word for handler→resume data. It doubles as the
// device Completer so parking allocates nothing.
type AsyncCall struct {
	eng   *Engine
	h     AsyncHandler
	cw    *connWriter
	ctx   context.Context
	req   Message
	cid   string
	sp    *telemetry.Span
	state int32

	// Wait timestamps: enqT is stamped at each enqueue (dispatch and
	// Complete), parkT when the worker hands the call to the device,
	// doneT when the device doorbell fires. They feed the queue-wait /
	// park-wait child spans and the engine's cumulative wait counters.
	enqT  time.Time
	parkT time.Time
	doneT time.Time

	// Armed offload (set by Park, consumed by the engine worker).
	dev    Offloader
	g      uint64
	resume ResumeFunc
	offErr error

	// Scratch carries a handler-computed value to the resume function
	// without a per-request allocation (e.g. a partial digest index).
	Scratch uint64
}

// Request returns the decoded request message. The message (headers map
// and payload) stays valid until the response is written: the resume
// function may read it.
func (ac *AsyncCall) Request() Message { return ac.req }

// Context returns the connection's serve context.
func (ac *AsyncCall) Context() context.Context { return ac.ctx }

// Span returns the request's server-side span (nil when the server is
// uninstrumented), so handlers and resume functions can hang work and
// downstream-call children off the request's trace.
func (ac *AsyncCall) Span() *telemetry.Span { return ac.sp }

// Park arms an offload of g bytes on dev: after the handler returns, the
// engine submits the work and parks this call; resume runs on a
// completion worker once the device finishes (its error, if any, is
// surfaced to the client instead). Calling Park a second time before the
// handler returns re-arms with the new parameters. If the handler returns
// an error, the armed offload is discarded.
func (ac *AsyncCall) Park(dev Offloader, g uint64, resume ResumeFunc) error {
	if dev == nil {
		return errors.New("rpc: Park with nil offloader")
	}
	if resume == nil {
		return errors.New("rpc: Park with nil resume")
	}
	ac.dev = dev
	ac.g = g
	ac.resume = resume
	return nil
}

// Complete is the device-side doorbell (kernels.Completer): it records the
// offload's outcome and enqueues the continuation for a completion
// worker. It runs on the device dispatcher goroutine and does not block
// beyond the engine queue.
func (ac *AsyncCall) Complete(err error) {
	e := ac.eng
	ac.offErr = err
	ac.doneT = time.Now()
	ac.state = stateResumed
	e.inFlight.Add(-1)
	e.enqueue(ac)
}

// EngineConfig configures a completion-queue engine.
type EngineConfig struct {
	// Workers is the fixed completion/dispatch pool size (default 4).
	// This — not the in-flight offload count — is the engine's goroutine
	// cost.
	Workers int
	// Queue is the work-queue capacity (default 1024). A full queue
	// applies backpressure to connection readers and the device
	// dispatcher rather than growing without bound.
	Queue int
}

// EngineStats is a point-in-time snapshot of engine state.
type EngineStats struct {
	Workers    int
	InFlight   int64  // offloads submitted to a device, completion pending
	Parked     int64  // continuations parked (in device or awaiting a worker)
	QueueDepth int64  // calls waiting for a worker
	Served     uint64 // requests fully served through the engine
	Errors     uint64 // handler/offload/resume errors surfaced to clients

	// QueueWaitNanos accumulates time calls spent waiting for an engine
	// worker — submit→pickup for new requests plus completion→resume for
	// parked ones. Invisible in per-stage histograms, this is the
	// queueing share the tail-tax report attributes.
	QueueWaitNanos uint64
	// ParkWaitNanos accumulates park→completion device time: wall time
	// the accelerator covered while no host thread was held.
	ParkWaitNanos uint64
}

// Engine is the completion-queue core: a bounded work queue feeding a
// fixed worker pool that runs handler pre-stages and parked-continuation
// resumes. One engine can back many servers (each server contributes its
// own AsyncHandler via dispatch).
type Engine struct {
	workers int
	q       chan *AsyncCall
	quit    chan struct{}
	wg      sync.WaitGroup
	calls   sync.Pool
	once    sync.Once

	// cmu makes enqueue-vs-Close deterministic: enqueuers hold the read
	// lock across the closed check and the queue send, so once Close has
	// taken the write lock and flipped closed, no call can slip into the
	// queue behind the final drain.
	cmu    sync.RWMutex
	closed bool

	inFlight  *telemetry.Gauge
	parked    *telemetry.Gauge
	qDepth    *telemetry.Gauge
	served    *telemetry.Counter
	errors    *telemetry.Counter
	queueWait *telemetry.Counter // nanoseconds waiting for a worker
	parkWait  *telemetry.Counter // nanoseconds parked on a device
}

// NewEngine starts a completion-queue engine with cfg.Workers workers.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Workers < 0 || cfg.Queue < 0 {
		return nil, fmt.Errorf("rpc: invalid engine config %+v", cfg)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Queue == 0 {
		cfg.Queue = 1024
	}
	e := &Engine{
		workers:   cfg.Workers,
		q:         make(chan *AsyncCall, cfg.Queue),
		quit:      make(chan struct{}),
		inFlight:  &telemetry.Gauge{},
		parked:    &telemetry.Gauge{},
		qDepth:    &telemetry.Gauge{},
		served:    &telemetry.Counter{},
		errors:    &telemetry.Counter{},
		queueWait: &telemetry.Counter{},
		parkWait:  &telemetry.Counter{},
	}
	e.calls.New = func() any { return new(AsyncCall) }
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e, nil
}

// Instrument registers the engine's gauges and counters on reg under
// async_* names. Call before serving traffic: metric pointers are swapped,
// not merged.
func (e *Engine) Instrument(reg *telemetry.Registry) error {
	if reg == nil {
		return errors.New("rpc: nil registry")
	}
	var err error
	if e.inFlight, err = reg.Gauge("async_inflight_offloads", "offloads submitted to the accelerator, completion pending"); err != nil {
		return err
	}
	if e.parked, err = reg.Gauge("async_parked_continuations", "requests parked with no goroutine, waiting on offload completion"); err != nil {
		return err
	}
	if e.qDepth, err = reg.Gauge("async_completion_queue_depth", "continuations and new requests waiting for an engine worker"); err != nil {
		return err
	}
	if e.served, err = reg.Counter("async_served_total", "requests fully served through the async engine"); err != nil {
		return err
	}
	if e.errors, err = reg.Counter("async_errors_total", "async requests that surfaced an error to the client"); err != nil {
		return err
	}
	if e.queueWait, err = reg.Counter("async_queue_wait_nanos_total", "cumulative nanoseconds calls waited for an engine worker"); err != nil {
		return err
	}
	if e.parkWait, err = reg.Counter("async_park_wait_nanos_total", "cumulative park-to-completion nanoseconds covered by the device"); err != nil {
		return err
	}
	return nil
}

// Stats returns a snapshot of the engine's live state.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Workers:    e.workers,
		InFlight:   e.inFlight.Value(),
		Parked:     e.parked.Value(),
		QueueDepth: e.qDepth.Value(),
		Served:     e.served.Value(),
		Errors:     e.errors.Value(),

		QueueWaitNanos: e.queueWait.Value(),
		ParkWaitNanos:  e.parkWait.Value(),
	}
}

// Close stops the workers and fails queued work with ErrEngineClosed.
// Devices may still deliver completions afterwards (completion after
// Close): those continuations are failed the same way instead of being
// enqueued. Close does not wait for parked continuations still inside a
// device — close the device first to drain them.
func (e *Engine) Close() error {
	e.once.Do(func() {
		e.cmu.Lock()
		e.closed = true
		e.cmu.Unlock()
		close(e.quit)
		e.wg.Wait()
		// No enqueuer can add work anymore (closed is set), so this drain
		// resolves everything the exited workers left behind.
		for {
			select {
			case ac := <-e.q:
				e.qDepth.Add(-1)
				e.failClosed(ac)
			default:
				return
			}
		}
	})
	return nil
}

// getCall checks a pooled continuation out; fields are zeroed at return
// time (putCall), so a fresh checkout starts clean.
func (e *Engine) getCall() *AsyncCall {
	return e.calls.Get().(*AsyncCall)
}

// putCall zeroes the continuation and returns it to the pool. This is the
// only release point; the caller must not touch ac afterwards.
func (e *Engine) putCall(ac *AsyncCall) {
	*ac = AsyncCall{}
	e.calls.Put(ac)
}

// dispatch hands one decoded request to the engine. It blocks when the
// queue is full (backpressure on the connection reader) and fails the
// request immediately if the engine is closed.
func (e *Engine) dispatch(ctx context.Context, h AsyncHandler, cw *connWriter, req Message, ins *Instrumentation) {
	ac := e.getCall()
	ac.eng = e
	ac.h = h
	ac.cw = cw
	ac.ctx = ctx
	ac.req = req
	ac.state = stateNew
	if req.Headers != nil {
		ac.cid = req.Headers[HeaderCID]
	}
	if ins.enabled() && ins.Tracer != nil {
		traceID, parentID := traceContext(req)
		ac.sp = ins.Tracer.Join("rpc.AsyncServer/"+req.Method, traceID, parentID, time.Now())
		ac.sp.SetCategory(telemetry.CatRPC)
	}
	e.enqueue(ac)
}

// enqueue queues a continuation for a worker, or fails it immediately if
// the engine closed. Used by both dispatch (new requests) and Complete
// (resumes). The send may block on a full queue — that is the engine's
// backpressure on connection readers and device dispatchers — and is safe
// under the read lock because workers drain the queue until Close, and
// Close cannot pass the write lock while a send is in progress.
func (e *Engine) enqueue(ac *AsyncCall) {
	e.cmu.RLock()
	if e.closed {
		e.cmu.RUnlock()
		e.failClosed(ac)
		return
	}
	ac.enqT = time.Now() // before the send: a worker may pick it up immediately
	e.q <- ac
	e.qDepth.Add(1)
	e.cmu.RUnlock()
}

// failClosed resolves a continuation that can no longer be processed
// because the engine closed: the client gets an error response.
func (e *Engine) failClosed(ac *AsyncCall) {
	if ac.state == stateResumed {
		e.parked.Add(-1)
	}
	e.finish(ac, Message{}, ErrEngineClosed)
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case ac := <-e.q:
			e.qDepth.Add(-1)
			e.process(ac)
		case <-e.quit:
			return
		}
	}
}

// process runs one queue item: the handler pre-stage for a new request
// (submitting its armed offload, if any), or the resume for a completed
// offload.
func (e *Engine) process(ac *AsyncCall) {
	pickup := time.Now()
	queueWait := pickup.Sub(ac.enqT)
	e.queueWait.Add(uint64(queueWait))
	if ac.state == stateResumed {
		// The pickup closes two waits: park→completion on the device,
		// then completion→resume back in the engine queue.
		e.parkWait.Add(uint64(ac.doneT.Sub(ac.parkT)))
		if ac.sp != nil {
			ac.sp.ChildDoneCat("park-wait", telemetry.CatDevice, ac.parkT, ac.doneT.Sub(ac.parkT))
			ac.sp.ChildDoneCat("resume-wait", telemetry.CatQueue, ac.doneT, queueWait)
		}
		e.parked.Add(-1)
		if ac.offErr != nil {
			e.finish(ac, Message{}, fmt.Errorf("rpc: offload failed: %w", ac.offErr))
			return
		}
		resp, err := ac.resume(ac.ctx, ac)
		e.finish(ac, resp, err)
		return
	}

	if ac.sp != nil {
		ac.sp.ChildDoneCat("queue-wait", telemetry.CatQueue, ac.enqT, queueWait)
	}
	resp, err := ac.h(ac.ctx, ac.req, ac)
	if ac.sp != nil {
		ac.sp.ChildDoneCat("handler", telemetry.CatWork, pickup, time.Since(pickup))
	}
	if err != nil || ac.dev == nil {
		ac.dev = nil
		e.finish(ac, resp, err)
		return
	}

	// The handler armed an offload: submit and park. Ownership transfers
	// to the device the moment Submit accepts — the worker must not touch
	// ac after a successful Submit, because the completion (and recycling)
	// may already be running on another worker.
	dev := ac.dev
	ac.dev = nil
	ac.parkT = time.Now()
	e.parked.Add(1)
	e.inFlight.Add(1)
	if serr := dev.Submit(ac.ctx, ac.g, ac); serr != nil {
		// Synchronous rejection: ownership stayed here.
		e.parked.Add(-1)
		e.inFlight.Add(-1)
		e.finish(ac, Message{}, fmt.Errorf("rpc: offload submit: %w", serr))
	}
}

// finish writes the response (mapping an error onto an error-header
// response, echoing the correlation id) and recycles the continuation.
func (e *Engine) finish(ac *AsyncCall, resp Message, err error) {
	if err != nil {
		e.errors.Inc()
		resp = Message{
			Method:  ac.req.Method,
			Headers: map[string]string{"error": err.Error()},
		}
	}
	if ac.cid != "" {
		if resp.Headers == nil {
			resp.Headers = make(map[string]string, 1)
		}
		resp.Headers[HeaderCID] = ac.cid
	}
	// A write error means the connection died; the continuation still
	// completes and recycles, it just has no one to tell.
	//modelcheck:ignore errdrop — response write failure is terminal for the conn, not the engine
	_ = ac.cw.respond(ac.ctx, resp, ac.sp)
	e.served.Inc()
	e.putCall(ac)
}

// connWriter serializes response writes on one connection. Async
// completions finish in any order on any worker, so encode+write must be
// atomic per response; the encode pipeline is owned by this writer (the
// connection's read side uses a separate pipeline — Pipeline is not safe
// for concurrent use).
type connWriter struct {
	mu   sync.Mutex
	conn io.Writer
	enc  *Pipeline
	hdr  [4]byte
}

// respond encodes and writes one response frame. sp (optional) receives
// the encode stage timings and is ended here — the response write is the
// end of the request's server-side span.
func (cw *connWriter) respond(ctx context.Context, m Message, sp *telemetry.Span) error {
	cw.mu.Lock()
	out, err := cw.enc.EncodeCtx(ctx, m, sp)
	if err != nil {
		cw.mu.Unlock()
		sp.End()
		return err
	}
	werr := writeFrame(cw.conn, out, &cw.hdr)
	putBuf(out) // the frame write flushed; the encode buffer is dead
	cw.mu.Unlock()
	sp.End()
	return werr
}
