package debugserver_test

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/debugserver"
	"repro/internal/record"
)

// The dashboard reports the flight recorder as off when none is wired.
func TestDashboardRecorderOff(t *testing.T) {
	s := startServer(t, debugserver.Config{})
	code, body := get(t, client(t), s.URL()+"/")
	if code != http.StatusOK {
		t.Fatalf("/ = %d", code)
	}
	if !strings.Contains(body, "recorder     off") {
		t.Errorf("dashboard missing disabled-recorder line:\n%s", body)
	}
}

// With a recorder wired, the dashboard shows ring occupancy, totals,
// drops, and — after a dump — the last anomaly-dump path and any dump
// failure.
func TestDashboardRecorderStatus(t *testing.T) {
	rec := record.NewRecorder(4)
	for i := 0; i < 6; i++ {
		rec.RecordAt(int64(i)*1000, "cache1", 64, 64, record.OutcomeOK)
	}
	dump := filepath.Join(t.TempDir(), "anomaly-000.trace")
	if _, err := rec.WriteFile(dump); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, debugserver.Config{Recorder: rec})
	code, body := get(t, client(t), s.URL()+"/")
	if code != http.StatusOK {
		t.Fatalf("/ = %d", code)
	}
	for _, want := range []string{
		"recorder     on: 4/4 events buffered",
		"6 total, 2 dropped, 1 services",
		"last dump " + dump,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q:\n%s", want, body)
		}
	}

	// A failed dump surfaces on the dashboard too.
	if _, err := rec.WriteFile(filepath.Join(t.TempDir(), "no", "dir.trace")); err == nil {
		t.Fatal("unwritable dump path: want error")
	}
	_, body = get(t, client(t), s.URL()+"/")
	if !strings.Contains(body, "last dump error:") {
		t.Errorf("dashboard missing dump error:\n%s", body)
	}
}
