package debugserver_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/debugserver"
	"repro/internal/fleetdata"
	"repro/internal/pprofx"
	"repro/internal/proflabel"
	"repro/internal/rpc"
	"repro/internal/services"
	"repro/internal/telemetry"
)

// client returns an HTTP client whose idle connections the test closes
// before goroutine accounting.
func client(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

func get(t *testing.T, c *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //modelcheck:ignore errdrop — test cleanup; read errors already surfaced by ReadAll
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func startServer(t *testing.T, cfg debugserver.Config) *debugserver.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := debugserver.Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

// TestMetricsMatchFileExport is the endpoint's proof of equivalence: while
// a service is serving real requests, /healthz answers 200, and once the
// workload settles, /metrics serves byte-for-byte what the -metrics-out
// file export writes from the same registry.
func TestMetricsMatchFileExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := startServer(t, debugserver.Config{Registry: reg})
	c := client(t)

	svc, err := services.New(fleetdata.Cache1)
	if err != nil {
		t.Fatal(err)
	}
	serving := make(chan error, 1)
	go func() {
		_, err := svc.ExerciseInstrumented(400, 7, reg, nil)
		serving <- err
	}()

	// Liveness while the fleet is doing real work.
	code, body := get(t, c, s.URL()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz during serving = %d %q, want 200 ok", code, body)
	}
	if err := <-serving; err != nil {
		t.Fatalf("Exercise: %v", err)
	}

	// Registry is now quiescent: scrape and file export must agree.
	code, scraped := get(t, c, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := telemetry.WriteMetricsFile(path, reg); err != nil {
		t.Fatal(err)
	}
	fileOut, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if scraped != string(fileOut) {
		t.Errorf("/metrics and WriteMetricsFile diverge:\nscrape %d bytes, file %d bytes", len(scraped), len(fileOut))
	}
	if !strings.Contains(scraped, "svc_cache1") {
		t.Errorf("/metrics missing service stage metrics:\n%.400s", scraped)
	}
}

func TestHealthzUnhealthy(t *testing.T) {
	s := startServer(t, debugserver.Config{Healthy: func() bool { return false }})
	code, _ := get(t, client(t), s.URL()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503", code)
	}
}

func TestDashboard(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctr, err := reg.Counter("demo_total", "demo")
	if err != nil {
		t.Fatal(err)
	}
	ctr.Inc()
	s := startServer(t, debugserver.Config{
		Registry:  reg,
		Dashboard: func(w io.Writer) { fmt.Fprintln(w, "fleet: 8 services") }, //modelcheck:ignore errdrop — write errors surface through the HTTP response
	})
	code, body := get(t, client(t), s.URL()+"/")
	if code != http.StatusOK {
		t.Fatalf("/ = %d", code)
	}
	for _, want := range []string{"uptime", "goroutines", "demo_total", "fleet: 8 services", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q:\n%s", want, body)
		}
	}
	if code, _ := get(t, client(t), s.URL()+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

// TestCPUProfileEndpointLabeled scrapes a real 1-second CPU profile while
// a service burns labeled work, and checks the profile parses with pprofx
// and carries attribution labels — the full live pipeline over HTTP.
func TestCPUProfileEndpointLabeled(t *testing.T) {
	if testing.Short() {
		t.Skip("1s profile scrape in -short mode")
	}
	s := startServer(t, debugserver.Config{})
	c := client(t)

	svc, err := services.New(fleetdata.Cache2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	burning := make(chan error, 1)
	go func() {
		_, err := svc.Burn(ctx, services.BurnConfig{Duration: 10 * time.Second})
		burning <- err
	}()

	code, body := get(t, c, s.URL()+"/debug/pprof/profile?seconds=1")
	cancel()
	if err := <-burning; err != nil {
		t.Fatalf("Burn: %v", err)
	}
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/profile = %d: %.200s", code, body)
	}
	if proflabel.Enabled() {
		t.Error("labels still enabled after profile scrape ended")
	}

	p, err := pprofx.Parse([]byte(body))
	if err != nil {
		t.Fatalf("scraped profile does not parse: %v", err)
	}
	var labeled bool
	for _, smp := range p.Samples {
		if smp.Labels[proflabel.KeyService] == string(fleetdata.Cache2) {
			labeled = true
			break
		}
	}
	if !labeled {
		t.Error("scraped CPU profile carries no service labels")
	}
}

// TestShutdownUnblocksInFlightAndLeaksNoGoroutines is the leak regression
// test: across repeated start/serve/shutdown cycles — including one with a
// long CPU-profile scrape still in flight — the process goroutine count
// returns to its baseline, and shutdown never waits out the scrape window.
func TestShutdownUnblocksInFlightAndLeaksNoGoroutines(t *testing.T) {
	tr := &http.Transport{}
	c := &http.Client{Transport: tr, Timeout: 2 * time.Minute}

	// settle polls until the goroutine count drops to target (or the
	// deadline passes) so transient teardown goroutines don't flake the
	// delta check.
	settle := func(target int) int {
		deadline := time.Now().Add(5 * time.Second)
		for {
			tr.CloseIdleConnections()
			n := runtime.NumGoroutine()
			if n <= target || time.Now().After(deadline) {
				return n
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	tr.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		s, err := debugserver.Start(debugserver.Config{Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		if code, _ := get(t, c, s.URL()+"/healthz"); code != http.StatusOK {
			t.Fatalf("round %d: healthz = %d", round, code)
		}

		// Leave a 60-second profile scrape in flight; shutdown must cancel
		// it through the request context rather than wait for it.
		scrapeDone := make(chan struct{})
		go func() {
			resp, err := c.Get(s.URL() + "/debug/pprof/profile?seconds=60")
			if err == nil {
				io.Copy(io.Discard, resp.Body) //modelcheck:ignore errdrop — draining a cancelled scrape
				resp.Body.Close()              //modelcheck:ignore errdrop — draining a cancelled scrape
			}
			close(scrapeDone)
		}()
		time.Sleep(150 * time.Millisecond) // let the scrape reach its sampling window

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		t0 := time.Now()
		err = s.Shutdown(ctx)
		elapsed := time.Since(t0)
		cancel()
		if err != nil {
			t.Fatalf("round %d: Shutdown: %v", round, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("round %d: shutdown took %v; in-flight scrape was not unblocked", round, elapsed)
		}
		select {
		case <-scrapeDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: in-flight scrape still blocked after shutdown", round)
		}
	}

	final := settle(baseline)
	if final > baseline {
		t.Errorf("goroutine leak: baseline %d, after 3 cycles %d", baseline, final)
	}
}

func TestStartErrors(t *testing.T) {
	if _, err := debugserver.Start(debugserver.Config{}); err == nil {
		t.Error("empty addr should fail")
	}
	if _, err := debugserver.Start(debugserver.Config{Addr: "127.0.0.1:999999"}); err == nil {
		t.Error("invalid port should fail")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, err := debugserver.Start(debugserver.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestDashboardAsyncPanel: the completion-queue serving path's counters
// render on the dashboard when an engine stats source is attached, and
// the panel reads "off" otherwise.
func TestDashboardAsyncPanel(t *testing.T) {
	s := startServer(t, debugserver.Config{})
	if _, body := get(t, client(t), s.URL()+"/"); !strings.Contains(body, "async        off") {
		t.Errorf("dashboard without an engine should show the async panel off:\n%s", body)
	}

	stats := rpc.EngineStats{Workers: 4, InFlight: 7, Parked: 9, QueueDepth: 2, Served: 123, Errors: 1}
	s2 := startServer(t, debugserver.Config{Async: func() rpc.EngineStats { return stats }})
	_, body := get(t, client(t), s2.URL()+"/")
	for _, want := range []string{"4 workers", "7 in-flight offloads", "9 parked", "queue depth 2", "123 served", "1 errors"} {
		if !strings.Contains(body, want) {
			t.Errorf("async panel missing %q:\n%s", want, body)
		}
	}
}

// TestDashboardTailTracePanel: the tail-tax attribution table renders on
// the dashboard when a span source is attached, and the panel reads
// "off" otherwise.
func TestDashboardTailTracePanel(t *testing.T) {
	s := startServer(t, debugserver.Config{})
	if _, body := get(t, client(t), s.URL()+"/"); !strings.Contains(body, "tailtrace    off") {
		t.Errorf("dashboard without a span source should show the tailtrace panel off:\n%s", body)
	}

	ts := func(n int64) time.Time { return time.Unix(0, n) }
	spans := []telemetry.SpanData{
		{TraceID: 1, SpanID: 1, Name: "topo.request", Process: "client", Start: ts(0), Duration: 100},
		{TraceID: 1, SpanID: 2, ParentID: 1, Name: "topo.work", Process: "Front", Category: telemetry.CatWork, Start: ts(10), Duration: 80},
	}
	s2 := startServer(t, debugserver.Config{TailSpans: func() []telemetry.SpanData { return spans }})
	_, body := get(t, client(t), s2.URL()+"/")
	for _, want := range []string{"tailtrace    tail-tax attribution: 1 requests", "tailtrace      mean", "tailtrace      p99", "work"} {
		if !strings.Contains(body, want) {
			t.Errorf("tailtrace panel missing %q:\n%s", want, body)
		}
	}
}
