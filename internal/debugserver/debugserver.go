// Package debugserver is the repository's opt-in observability endpoint:
// a private HTTP server exposing the telemetry registry in Prometheus text
// form (/metrics), the standard Go profiling handlers (/debug/pprof/*) with
// CPU-attribution labels enabled for the duration of a CPU profile, a
// liveness probe (/healthz), and a plain-text live dashboard (/). The fleet
// binaries wire it behind a -debug-addr flag, off by default — the paper's
// always-on observability (Strobelight scraping production hosts, §2.2)
// mapped onto Go's native equivalents.
//
// The server owns nothing it serves: it reads a telemetry.Registry
// maintained by the workload and reports process-level runtime stats, so
// starting it perturbs the measured system only when something scrapes it.
package debugserver

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/proflabel"
	"repro/internal/record"
	"repro/internal/rpc"
	"repro/internal/tailtrace"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Config configures a debug server.
type Config struct {
	// Addr is the listen address (e.g. "localhost:6060"; ":0" picks a free
	// port, reported by Server.Addr).
	Addr string
	// Registry backs /metrics and the dashboard's metric listing. Optional:
	// with no registry, /metrics serves an empty exposition.
	Registry *telemetry.Registry
	// Healthy backs /healthz. Optional: with no callback the probe always
	// reports healthy while the server runs.
	Healthy func() bool
	// Dashboard, when set, appends workload-specific lines to the
	// plain-text dashboard at /.
	Dashboard func(w io.Writer)
	// Recorder, when set, adds the flight recorder's status to the
	// dashboard: ring occupancy, drop count, and the last anomaly-dump
	// path. A nil recorder renders as "off".
	Recorder *record.Recorder
	// Topology, when set, adds the multi-tier topology runner's live
	// state to the dashboard: per-tier request counts, latency quantiles,
	// and hop-by-hop tail amplification. A nil runner renders as "off".
	Topology *topology.Runner
	// Async, when set, adds the completion-queue serving path's live
	// counters to the dashboard: in-flight offloads, parked
	// continuations, queue depth, served and errored requests. The
	// callback shape fits both a single rpc.Engine's Stats and a
	// topology Runner's aggregated AsyncStats. Nil renders as "off".
	Async func() rpc.EngineStats
	// TailSpans, when set, adds the tail-tax attribution panel to the
	// dashboard: the callback's spans (typically a traced topology
	// Runner's Spans) are assembled into per-request trace trees and the
	// quantile-sliced critical-path attribution is rendered live. Nil
	// renders as "off". The analysis runs per dashboard request, so
	// scraping this page costs O(spans) — acceptable for a human-paced
	// debug endpoint.
	TailSpans func() []telemetry.SpanData
}

// Server is a running debug endpoint.
type Server struct {
	cfg      Config
	ln       net.Listener
	srv      *http.Server
	baseCtx  context.Context
	cancel   context.CancelFunc
	start    time.Time
	served   atomic.Uint64 // requests served, shown on the dashboard
	shutdown atomic.Bool
	done     chan error // Serve's exit status
}

// Start listens on cfg.Addr and serves the debug mux in a background
// goroutine until Shutdown.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("debugserver: empty listen address")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: listen %s: %w", cfg.Addr, err)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		baseCtx: baseCtx,
		cancel:  cancel,
		start:   time.Now(),
		done:    make(chan error, 1),
	}
	s.srv = &http.Server{
		Handler: s.mux(),
		// Request contexts derive from baseCtx so Shutdown can release
		// in-flight handlers (a blocked scrape must not wedge shutdown).
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns "http://<addr>".
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops the server: it signals every in-flight request through
// its context, closes the listener, and waits (bounded by ctx) for
// handlers and the serve loop to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.shutdown.CompareAndSwap(false, true) {
		return nil
	}
	// Release handlers first: dashboards and scrapes are fast, but a
	// streaming CPU profile (/debug/pprof/profile?seconds=30) blocks its
	// handler and would hold graceful shutdown for the full window.
	s.cancel()
	err := s.srv.Shutdown(ctx)
	select {
	case serveErr := <-s.done:
		if err == nil {
			err = serveErr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// counted wraps a handler to tally served requests for the dashboard.
func (s *Server) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.served.Add(1)
		h(w, r)
	}
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.counted(s.handleHealthz))
	mux.HandleFunc("/metrics", s.counted(s.handleMetrics))
	mux.HandleFunc("/", s.counted(s.handleDashboard))
	// The standard pprof handlers on the private mux (net/http/pprof's
	// init only touches http.DefaultServeMux, which this server never
	// serves). The CPU profile handler additionally enables attribution
	// labels for its collection window so scraped profiles carry
	// service/functionality/kernel labels.
	mux.HandleFunc("/debug/pprof/", s.counted(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.counted(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.counted(s.labeledCPUProfile))
	mux.HandleFunc("/debug/pprof/symbol", s.counted(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.counted(pprof.Trace))
	return mux
}

func (s *Server) labeledCPUProfile(w http.ResponseWriter, r *http.Request) {
	// Overlapping scrapes are fine: labels stay on until the last window
	// ends only if toggled per-request naively; keep it simple — enable
	// for the window, restore the prior state after.
	wasEnabled := proflabel.Enabled()
	proflabel.Enable()
	defer func() {
		if !wasEnabled {
			proflabel.Disable()
		}
	}()
	pprof.Profile(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Healthy != nil && !s.cfg.Healthy() {
		http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n") //modelcheck:ignore errdrop — a failed probe write means the prober is gone
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.cfg.Registry == nil {
		return
	}
	if err := s.cfg.Registry.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is abort the body.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	// The page is assembled in memory (infallible writes) and flushed in
	// one shot: a dashboard reader that disconnects mid-render is not an
	// error worth plumbing.
	var out strings.Builder
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&out, "accelerometer debug endpoint\n")
	fmt.Fprintf(&out, "uptime       %s\n", time.Since(s.start).Round(time.Second))
	fmt.Fprintf(&out, "goroutines   %d\n", runtime.NumGoroutine())
	fmt.Fprintf(&out, "heap         %.1f MiB in use, %d GC cycles\n",
		float64(ms.HeapInuse)/(1<<20), ms.NumGC)
	fmt.Fprintf(&out, "labels       enabled=%v\n", proflabel.Enabled())
	fmt.Fprintf(&out, "requests     %d served by this endpoint\n", s.served.Load())
	writeRecorderStatus(&out, s.cfg.Recorder)
	writeTopologyStatus(&out, s.cfg.Topology)
	writeAsyncStatus(&out, s.cfg.Async)
	writeTailTraceStatus(&out, s.cfg.TailSpans)
	fmt.Fprintf(&out, "\nendpoints: /metrics /healthz /debug/pprof/\n")

	if s.cfg.Registry != nil {
		var sb strings.Builder
		if err := s.cfg.Registry.WritePrometheus(&sb); err == nil {
			names := metricNames(sb.String())
			fmt.Fprintf(&out, "\nmetrics (%d): %s\n", len(names), strings.Join(names, " "))
		}
	}
	if s.cfg.Dashboard != nil {
		fmt.Fprintln(&out)
		s.cfg.Dashboard(&out)
	}
	io.WriteString(w, out.String()) //modelcheck:ignore errdrop — client disconnects are not actionable here
}

// writeRecorderStatus renders the flight recorder's state as dashboard
// lines: off when no recorder is attached, otherwise ring occupancy and
// the most recent anomaly dump (path, size, and any dump failure). The
// builder keeps the writes infallible, like the rest of the dashboard.
func writeRecorderStatus(w *strings.Builder, rec *record.Recorder) {
	st := rec.State()
	if !st.Recording {
		fmt.Fprintf(w, "recorder     off\n")
		return
	}
	fmt.Fprintf(w, "recorder     on: %d/%d events buffered (~%.1f KiB), %d total, %d dropped, %d services\n",
		st.Buffered, st.Capacity, float64(st.ApproxBytes)/(1<<10), st.Total, st.Dropped, st.Services)
	if st.LastDumpPath != "" {
		fmt.Fprintf(w, "recorder     last dump %s (%d bytes)\n", st.LastDumpPath, st.LastDumpBytes)
	}
	if st.LastErr != nil {
		fmt.Fprintf(w, "recorder     last dump error: %v\n", st.LastErr)
	}
}

// writeTopologyStatus renders the topology runner's per-tier state as
// dashboard lines: one summary line plus one line per tier ordered root
// to leaves, each with its latency quantiles and the tail-amplification
// ratio against its slowest child.
func writeTopologyStatus(w *strings.Builder, r *topology.Runner) {
	if r == nil {
		fmt.Fprintf(w, "topology     off\n")
		return
	}
	rep := r.Report()
	fmt.Fprintf(w, "topology     %s: %d tiers, %d e2e requests (p50 %.3gms, p99 %.3gms)\n",
		rep.Name, len(rep.Tiers), rep.E2ERequests, rep.E2EP50Nanos/1e6, rep.E2EP99Nanos/1e6)
	for _, ts := range rep.Tiers {
		fmt.Fprintf(w, "topology     %-10s depth=%d requests=%d errors=%d p50=%.3gms p99=%.3gms amp=%.2fx\n",
			ts.Node, ts.Depth, ts.Requests, ts.Errors, ts.P50Nanos/1e6, ts.P99Nanos/1e6, ts.Amplification)
	}
}

// writeAsyncStatus renders the completion-queue serving path's live
// counters as a dashboard line: off when no engine is attached.
func writeAsyncStatus(w *strings.Builder, stats func() rpc.EngineStats) {
	if stats == nil {
		fmt.Fprintf(w, "async        off\n")
		return
	}
	st := stats()
	fmt.Fprintf(w, "async        %d workers: %d in-flight offloads, %d parked, queue depth %d, %d served, %d errors\n",
		st.Workers, st.InFlight, st.Parked, st.QueueDepth, st.Served, st.Errors)
}

// writeTailTraceStatus renders the live tail-tax attribution: one line
// per latency slice (mean/p50/p99/p999) with each category's share of
// that slice's critical path, prefixed like the other panels.
func writeTailTraceStatus(w *strings.Builder, spans func() []telemetry.SpanData) {
	if spans == nil {
		fmt.Fprintf(w, "tailtrace    off\n")
		return
	}
	rep := tailtrace.Analyze(spans(), tailtrace.Options{})
	if rep.Requests == 0 {
		fmt.Fprintf(w, "tailtrace    on: no complete traces yet\n")
		return
	}
	var sb strings.Builder
	rep.RenderText(&sb)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		fmt.Fprintf(w, "tailtrace    %s\n", strings.TrimRight(line, " "))
	}
}

// metricNames extracts the distinct metric names from a Prometheus text
// exposition (the TYPE headers).
func metricNames(exposition string) []string {
	seen := map[string]bool{}
	var names []string
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 3 && !seen[fields[2]] {
			seen[fields[2]] = true
			names = append(names, fields[2])
		}
	}
	sort.Strings(names)
	return names
}
