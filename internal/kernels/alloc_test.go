package kernels

import (
	"testing"
	"testing/quick"
)

func TestSizeClassesAscending(t *testing.T) {
	a := NewArena()
	classes := a.SizeClasses()
	if len(classes) == 0 {
		t.Fatal("no size classes")
	}
	if classes[0] != 8 {
		t.Errorf("smallest class = %d, want 8", classes[0])
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Fatalf("classes not ascending at %d: %v", i, classes)
		}
	}
	if last := classes[len(classes)-1]; last != 256<<10 {
		t.Errorf("largest class = %d, want 256K", last)
	}
}

func TestAllocRoundsUpToClass(t *testing.T) {
	a := NewArena()
	b, err := a.Alloc(10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if len(b) != 10 {
		t.Errorf("len = %d, want 10", len(b))
	}
	if cap(b) != 16 {
		t.Errorf("cap = %d, want 16 (next class above 10)", cap(b))
	}
}

func TestAllocExactClass(t *testing.T) {
	a := NewArena()
	b, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if cap(b) != 64 {
		t.Errorf("cap = %d, want 64", cap(b))
	}
}

func TestAllocErrors(t *testing.T) {
	a := NewArena()
	if _, err := a.Alloc(0); err == nil {
		t.Error("Alloc(0): want error")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("Alloc(-5): want error")
	}
	if _, err := a.Alloc(512 << 10); err != ErrTooLarge {
		t.Errorf("huge alloc: got %v, want ErrTooLarge", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := NewArena()
	b, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b); err != nil {
		t.Fatalf("Free: %v", err)
	}
	c, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.FreeListHits != 1 {
		t.Errorf("FreeListHits = %d, want 1 (second alloc reuses)", s.FreeListHits)
	}
	if s.ClassLookups != 1 {
		t.Errorf("ClassLookups = %d, want 1 (un-sized free looks up)", s.ClassLookups)
	}
	_ = c
}

func TestFreeSizedSkipsLookup(t *testing.T) {
	a := NewArena()
	b, _ := a.Alloc(100)
	if err := a.FreeSized(b, 100); err != nil {
		t.Fatalf("FreeSized: %v", err)
	}
	s := a.Stats()
	if s.ClassLookups != 0 {
		t.Errorf("ClassLookups = %d, want 0 (sized free skips lookup)", s.ClassLookups)
	}
	if s.SizedFrees != 1 {
		t.Errorf("SizedFrees = %d, want 1", s.SizedFrees)
	}
}

func TestFreeRejectsForeignBlock(t *testing.T) {
	a := NewArena()
	if err := a.Free(make([]byte, 0, 100)); err == nil {
		t.Error("capacity 100 is not a class: want error")
	}
	b, _ := a.Alloc(64)
	if err := a.FreeSized(b, 32); err == nil {
		t.Error("wrong sized free: want error")
	}
}

func TestByteAccounting(t *testing.T) {
	a := NewArena()
	b, _ := a.Alloc(64)
	if got := a.Stats().BytesLive; got != 64 {
		t.Errorf("BytesLive after alloc = %d, want 64", got)
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.BytesLive != 0 || s.BytesFreeList != 64 {
		t.Errorf("after free: live=%d freelist=%d", s.BytesLive, s.BytesFreeList)
	}
}

func TestChurn(t *testing.T) {
	a := NewArena()
	delta, err := a.Churn(100, 128, false)
	if err != nil {
		t.Fatalf("Churn: %v", err)
	}
	if delta.Allocs != 100 || delta.Frees != 100 {
		t.Errorf("delta = %+v", delta)
	}
	if delta.ClassLookups != 100 {
		t.Errorf("un-sized churn lookups = %d, want 100", delta.ClassLookups)
	}
	if delta.FreeListHits != 99 {
		t.Errorf("FreeListHits = %d, want 99 (first alloc misses)", delta.FreeListHits)
	}

	delta, err = a.Churn(50, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	if delta.ClassLookups != 0 || delta.SizedFrees != 50 {
		t.Errorf("sized churn delta = %+v", delta)
	}
}

func TestChurnErrors(t *testing.T) {
	a := NewArena()
	if _, err := a.Churn(1, 512<<10, false); err == nil {
		t.Error("oversized churn: want error")
	}
}

// Property: alloc/free round-trips preserve the invariant
// BytesLive + BytesFreeList == total class-rounded bytes ever missed.
func TestAllocFreeInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena()
		var blocks [][]byte
		var sz []int
		for _, raw := range sizes {
			size := int(raw)%4096 + 1
			b, err := a.Alloc(size)
			if err != nil {
				return false
			}
			blocks = append(blocks, b)
			sz = append(sz, size)
		}
		for i, b := range blocks {
			var err error
			if i%2 == 0 {
				err = a.Free(b)
			} else {
				err = a.FreeSized(b, sz[i])
			}
			if err != nil {
				return false
			}
		}
		s := a.Stats()
		return s.BytesLive == 0 && s.Allocs == uint64(len(blocks)) && s.Frees == uint64(len(blocks))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
