package kernels

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Pooled kernel scratch. The paper's whole argument is that orchestration
// overheads — allocation among them (§2.3.1, Table 2) — dominate cycles at
// hyperscale; a flate.Writer alone drags ~600 KB of window and Huffman
// state into existence per NewWriter. This file keeps that state in
// sync.Pools so repeated kernel invocations within a service run reuse it:
// CompressAppend/DecompressAppend are the allocation-lean entry points the
// RPC pipeline and the fleet drive, and the historical Compress/Decompress
// wrappers now delegate to them.
//
// Ownership: the dst slice passed in is appended to and returned like
// append(); the pooled flate state never escapes a call.

// flateLevels spans flate.HuffmanOnly (-2) .. flate.BestCompression (9).
const flateLevels = flate.BestCompression - flate.HuffmanOnly + 1

// compressor bundles a flate.Writer with the slice sink it writes into, so
// one pool Get restores both without allocating.
type compressor struct {
	w    *flate.Writer
	sink sliceWriter
}

// sliceWriter appends writes to a byte slice.
type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// compressorPools holds one pool per flate level (index level - HuffmanOnly).
var compressorPools [flateLevels]sync.Pool

// CompressAppend DEFLATE-compresses src at the given level, appends the
// compressed bytes to dst, and returns the extended slice (append
// semantics: the result may alias dst's backing array). The flate encoder
// state is pooled per level, so steady-state compression allocates only
// when dst needs to grow.
func CompressAppend(dst, src []byte, level int) ([]byte, error) {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("kernels: compress: invalid level %d", level)
	}
	pool := &compressorPools[level-flate.HuffmanOnly]
	c, _ := pool.Get().(*compressor)
	if c == nil {
		w, err := flate.NewWriter(io.Discard, level)
		if err != nil {
			return nil, fmt.Errorf("kernels: compress: %w", err)
		}
		c = &compressor{w: w}
	}
	c.sink.buf = dst
	c.w.Reset(&c.sink)
	if _, err := c.w.Write(src); err != nil {
		return nil, fmt.Errorf("kernels: compress write: %w", err)
	}
	if err := c.w.Close(); err != nil {
		return nil, fmt.Errorf("kernels: compress close: %w", err)
	}
	out := c.sink.buf
	c.sink.buf = nil // never retain caller memory in the pool
	pool.Put(c)
	return out, nil
}

// decompressor bundles a flate reader with the bytes.Reader feeding it.
type decompressor struct {
	br bytes.Reader
	fr io.ReadCloser
}

var decompressorPool sync.Pool

// DecompressAppend inflates DEFLATE-compressed src, appends the plaintext
// to dst, and returns the extended slice (append semantics). The flate
// decoder state is pooled, so steady-state decompression allocates only
// when dst needs to grow.
func DecompressAppend(dst, src []byte) ([]byte, error) {
	d, _ := decompressorPool.Get().(*decompressor)
	if d == nil {
		d = &decompressor{}
		d.br.Reset(nil)
		d.fr = flate.NewReader(&d.br)
	}
	d.br.Reset(src)
	if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return nil, fmt.Errorf("kernels: decompress reset: %w", err)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)] // grow without exposing the byte
		}
		n, err := d.fr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("kernels: decompress: %w", err)
		}
	}
	d.br.Reset(nil) // never retain caller memory in the pool
	decompressorPool.Put(d)
	return dst, nil
}

// scratchPool recycles the staging buffers handed out by GetScratch; see
// putScratch's cap filter.
var scratchPool sync.Pool

// maxScratch bounds the staging buffers the pool retains (1 MiB).
const maxScratch = 1 << 20

// GetScratch returns a zero-length staging buffer with cap >= n for
// memcpy-style kernels (payload staging, copy destinations). Pair with
// PutScratch when the bytes are dead; losing a buffer is safe, the GC
// reclaims it.
func GetScratch(n int) []byte {
	if v := scratchPool.Get(); v != nil {
		s := v.(*scratchBuf)
		b := s.b
		s.b = nil
		emptyScratch.Put(s)
		if cap(b) >= n {
			return b[:0]
		}
	}
	if n < 512 {
		n = 512
	}
	return make([]byte, 0, n)
}

// PutScratch returns a staging buffer to the pool. The buffer must not be
// used afterwards. Oversized buffers are dropped so one huge request does
// not pin memory.
func PutScratch(b []byte) {
	if cap(b) == 0 || cap(b) > maxScratch {
		return
	}
	s, _ := emptyScratch.Get().(*scratchBuf)
	if s == nil {
		s = new(scratchBuf)
	}
	s.b = b
	scratchPool.Put(s)
}

// scratchBuf is the pooled container; pooling it separately from the bytes
// keeps Get/PutScratch allocation-free (a bare []byte in a sync.Pool would
// box the slice header on every put).
type scratchBuf struct{ b []byte }

var emptyScratch sync.Pool
