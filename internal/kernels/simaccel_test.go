package kernels

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitCompleter records a single completion and signals it on a channel.
type waitCompleter struct {
	ch chan error
}

func newWaitCompleter() *waitCompleter {
	return &waitCompleter{ch: make(chan error, 1)}
}

func (w *waitCompleter) Complete(err error) { w.ch <- err }

func (w *waitCompleter) wait(t *testing.T) error {
	t.Helper()
	select {
	case err := <-w.ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("completion never delivered")
		return nil
	}
}

func TestSimAccelCompletesAfterLatency(t *testing.T) {
	d, err := NewSimAccel(SimAccelConfig{Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	start := time.Now()
	c := newWaitCompleter()
	if err := d.Submit(context.Background(), 0, c); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.wait(t); err != nil {
		t.Fatalf("completion error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("completed after %v, want >= 2ms", elapsed)
	}
	st := d.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Errors != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 1 submitted/completed, 0 errors/in-flight", st)
	}
}

func TestSimAccelGranularityTerm(t *testing.T) {
	// 1 MiB/s: a 4 KiB job owes ~4ms of transfer on top of zero latency.
	d, err := NewSimAccel(SimAccelConfig{BytesPerSec: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	start := time.Now()
	c := newWaitCompleter()
	if err := d.Submit(context.Background(), 4<<10, c); err != nil {
		t.Fatal(err)
	}
	if err := c.wait(t); err != nil {
		t.Fatalf("completion error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("4 KiB at 1 MiB/s completed after %v, want >= ~4ms", elapsed)
	}
}

func TestSimAccelCompletionOrder(t *testing.T) {
	// A later submit with a shorter deadline must complete first: the
	// second job's deadline precedes the already-waiting first job's.
	d, err := NewSimAccel(SimAccelConfig{BytesPerSec: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(2)
	record := func(id int) Completer {
		return CompleterFunc(func(err error) {
			defer wg.Done()
			if err != nil {
				t.Errorf("job %d: %v", id, err)
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	if err := d.Submit(context.Background(), 8<<10, record(1)); err != nil { // ~8ms
		t.Fatal(err)
	}
	if err := d.Submit(context.Background(), 1<<10, record(2)); err != nil { // ~1ms
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("completion order = %v, want [2 1]", order)
	}
}

func TestSimAccelSubmitRejectsCancelledContext(t *testing.T) {
	d, err := NewSimAccel(SimAccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := newWaitCompleter()
	err = d.Submit(ctx, 0, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx = %v, want context.Canceled", err)
	}
	select {
	case <-c.ch:
		t.Fatal("completer fired for a rejected submit")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSimAccelCancelledMidOffload(t *testing.T) {
	// Cancel the context while the job is in flight: the device still
	// finishes, but the completion carries the context's error.
	d, err := NewSimAccel(SimAccelConfig{Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := newWaitCompleter()
	if err := d.Submit(ctx, 0, c); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := c.wait(t); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-offload cancellation delivered %v, want context.Canceled", err)
	}
	if st := d.Stats(); st.Errors != 1 {
		t.Fatalf("stats.Errors = %d, want 1", st.Errors)
	}
}

func TestSimAccelCloseCompletesPending(t *testing.T) {
	d, err := NewSimAccel(SimAccelConfig{Latency: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	completers := make([]*waitCompleter, n)
	for i := range completers {
		completers[i] = newWaitCompleter()
		if err := d.Submit(context.Background(), 0, completers[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.InFlight(); got != n {
		t.Fatalf("InFlight = %d, want %d", got, n)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, c := range completers {
		if err := c.wait(t); !errors.Is(err, ErrAccelClosed) {
			t.Fatalf("job %d completion = %v, want ErrAccelClosed", i, err)
		}
	}
	// Submit after Close is rejected synchronously.
	if err := d.Submit(context.Background(), 0, newWaitCompleter()); !errors.Is(err, ErrAccelClosed) {
		t.Fatalf("Submit after Close = %v, want ErrAccelClosed", err)
	}
	// Idempotent.
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSimAccelFlush(t *testing.T) {
	d, err := NewSimAccel(SimAccelConfig{Latency: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 64
	completers := make([]*waitCompleter, n)
	for i := range completers {
		completers[i] = newWaitCompleter()
		if err := d.Submit(context.Background(), 0, completers[i]); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	for i, c := range completers {
		if err := c.wait(t); err != nil {
			t.Fatalf("flushed job %d completion = %v, want nil", i, err)
		}
	}
	if got := d.InFlight(); got != 0 {
		t.Fatalf("InFlight after Flush = %d, want 0", got)
	}
}

func TestSimAccelNilCompleter(t *testing.T) {
	d, err := NewSimAccel(SimAccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Submit(context.Background(), 0, nil); err == nil {
		t.Fatal("Submit with nil completer succeeded")
	}
}

func TestSimAccelConfigValidation(t *testing.T) {
	if _, err := NewSimAccel(SimAccelConfig{Latency: -time.Second}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := NewSimAccel(SimAccelConfig{BytesPerSec: -1}); err == nil {
		t.Fatal("negative throughput accepted")
	}
}

func TestSimAccelManyInFlight(t *testing.T) {
	// A pile of pending jobs all drain, in deadline order, without a
	// dispatcher wake per submit.
	d, err := NewSimAccel(SimAccelConfig{Latency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(n)
	var mu sync.Mutex
	failures := 0
	for i := 0; i < n; i++ {
		err := d.Submit(context.Background(), 0, CompleterFunc(func(err error) {
			defer wg.Done()
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if failures != 0 {
		t.Fatalf("%d of %d completions failed", failures, n)
	}
	if st := d.Stats(); st.Submitted != n || st.Completed != n {
		t.Fatalf("stats = %+v, want %d submitted and completed", st, n)
	}
}
