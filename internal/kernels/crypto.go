package kernels

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
)

// Cryptographic kernels. Case study 1 (§4) accelerates AES encryption in
// Cache1 with the AES-NI instruction; we use the standard library's AES in
// CTR mode as the executable encryption kernel (on amd64 it uses AES-NI
// itself, which is exactly the on-chip accelerated path; the pure-Go
// fallback corresponds to the unaccelerated path). SHA-256 grounds the
// "Hashing" leaf category of Table 2.

// Cipher wraps an AES key schedule for repeated CTR encryptions, mirroring
// how a service holds a session key across requests.
type Cipher struct {
	block cipher.Block
}

// NewCipher builds a Cipher from a 16-, 24-, or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("kernels: cipher: %w", err)
	}
	return &Cipher{block: block}, nil
}

// Encrypt CTR-encrypts src with the given 16-byte IV into a fresh slice.
// CTR is symmetric, so the same call decrypts.
func (c *Cipher) Encrypt(iv, src []byte) ([]byte, error) {
	if len(iv) != aes.BlockSize {
		return nil, fmt.Errorf("kernels: IV length %d, want %d", len(iv), aes.BlockSize)
	}
	dst := make([]byte, len(src))
	cipher.NewCTR(c.block, iv).XORKeyStream(dst, src)
	return dst, nil
}

// EncryptTo CTR-encrypts src into dst (they may not overlap unless equal),
// letting callers reuse a pooled destination instead of allocating one per
// message. dst must be at least len(src) bytes. CTR is symmetric, so the
// same call decrypts.
func (c *Cipher) EncryptTo(dst, iv, src []byte) error {
	if len(iv) != aes.BlockSize {
		return fmt.Errorf("kernels: IV length %d, want %d", len(iv), aes.BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("kernels: encrypt destination %d bytes, need %d", len(dst), len(src))
	}
	cipher.NewCTR(c.block, iv).XORKeyStream(dst[:len(src)], src)
	return nil
}

// EncryptInPlace CTR-encrypts buf in place, avoiding the output allocation.
func (c *Cipher) EncryptInPlace(iv, buf []byte) error {
	if len(iv) != aes.BlockSize {
		return fmt.Errorf("kernels: IV length %d, want %d", len(iv), aes.BlockSize)
	}
	cipher.NewCTR(c.block, iv).XORKeyStream(buf, buf)
	return nil
}

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) [32]byte {
	return sha256.Sum256(data)
}
