package kernels

import (
	"fmt"
	"time"
)

// Calibration of host cost per kernel. The Accelerometer model charges the
// host Cb cycles per byte of offload data (Table 5); real kernels also have
// a fixed per-invocation cost that dominates at small granularities — the
// very effect that makes small offloads unprofitable (eqns 2/4/7). Cost
// captures both terms, and Calibration maps each kernel kind to its cost.

// Cost models host cycles for one kernel invocation on g bytes as
// FixedCycles + CyclesPerByte*g.
type Cost struct {
	FixedCycles   float64
	CyclesPerByte float64
}

// Cycles returns the modeled host cycles for one invocation on g bytes.
func (c Cost) Cycles(g uint64) float64 {
	return c.FixedCycles + c.CyclesPerByte*float64(g)
}

// Valid reports whether the cost has non-negative terms and a positive
// per-byte component.
func (c Cost) Valid() bool {
	return c.FixedCycles >= 0 && c.CyclesPerByte > 0
}

// Calibration maps kernel kinds to their host cost model.
type Calibration map[Kind]Cost

// Cost returns the cost model for a kind.
func (c Calibration) Cost(k Kind) (Cost, error) {
	cost, ok := c[k]
	if !ok {
		return Cost{}, fmt.Errorf("kernels: no calibration for %v", k)
	}
	return cost, nil
}

// DefaultCalibration returns host cost models representative of the paper's
// GenC (Skylake, 2.5 GHz) platform. The values are consistent with the
// paper's Table 6/7 parameters: e.g. software encryption at ~5.5 cycles/B
// reproduces αC/n ≈ 1.1k cycles for Cache1's typical encryption sizes, and
// compression at 5.6 cycles/B reproduces both Feed1's ~23k cycles per
// offload at its multi-KiB granularities and the paper's 425 B off-chip
// Sync break-even (L = 2300, A = 27 ⇒ g = 2300/(5.6·(1−1/27)) ≈ 426 B).
func DefaultCalibration() Calibration {
	return Calibration{
		MemoryCopy:    {FixedCycles: 30, CyclesPerByte: 1.0},
		MemorySet:     {FixedCycles: 25, CyclesPerByte: 0.8},
		MemoryCompare: {FixedCycles: 30, CyclesPerByte: 1.0},
		MemoryMove:    {FixedCycles: 35, CyclesPerByte: 1.1},
		Allocation:    {FixedCycles: 180, CyclesPerByte: 0.35},
		Free:          {FixedCycles: 220, CyclesPerByte: 0.1},
		Compression:   {FixedCycles: 600, CyclesPerByte: 5.6},
		Decompression: {FixedCycles: 400, CyclesPerByte: 2.5},
		Encryption:    {FixedCycles: 120, CyclesPerByte: 5.5},
		Hashing:       {FixedCycles: 100, CyclesPerByte: 3.5},
		Serialization: {FixedCycles: 150, CyclesPerByte: 2.0},
	}
}

// MeasureCost empirically derives a Cost for an operation by timing it at
// two sizes and solving the linear model. op receives a scratch buffer of
// the requested size and must process all of it. hz converts wall time to
// cycles (use the platform's BusyHz). This is the reproduction's analog of
// the paper's parameter micro-benchmarks; it is used from benchmarks, not
// from deterministic tests.
func MeasureCost(op func(buf []byte), small, large, iters int, hz float64) (Cost, error) {
	if small <= 0 || large <= small || iters <= 0 || hz <= 0 {
		return Cost{}, fmt.Errorf("kernels: invalid MeasureCost args (small=%d large=%d iters=%d hz=%v)",
			small, large, iters, hz)
	}
	cyclesAt := func(size int) float64 {
		buf := make([]byte, size)
		op(buf) // warm up
		start := time.Now()
		for i := 0; i < iters; i++ {
			op(buf)
		}
		elapsed := time.Since(start).Seconds()
		return elapsed * hz / float64(iters)
	}
	cSmall := cyclesAt(small)
	cLarge := cyclesAt(large)
	perByte := (cLarge - cSmall) / float64(large-small)
	if perByte <= 0 {
		// Timing noise at tiny workloads; fall back to amortized per-byte
		// cost with no fixed term rather than a nonsensical negative slope.
		return Cost{FixedCycles: 0, CyclesPerByte: cLarge / float64(large)}, nil
	}
	fixed := cSmall - perByte*float64(small)
	if fixed < 0 {
		fixed = 0
	}
	return Cost{FixedCycles: fixed, CyclesPerByte: perByte}, nil
}
