package kernels

import (
	"bytes"
	"compress/flate"
	"testing"
	"testing/quick"
)

func TestCompressRoundTrip(t *testing.T) {
	src := CompressibleData(4096, 1)
	comp, err := Compress(src, flate.DefaultCompression)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(comp) >= len(src) {
		t.Errorf("compressible data did not shrink: %d -> %d", len(src), len(comp))
	}
	out, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Error("round trip mismatch")
	}
}

func TestCompressEmpty(t *testing.T) {
	comp, err := Compress(nil, flate.BestSpeed)
	if err != nil {
		t.Fatalf("Compress(nil): %v", err)
	}
	out, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("round trip of empty = %d bytes", len(out))
	}
}

func TestCompressInvalidLevel(t *testing.T) {
	if _, err := Compress([]byte("x"), 42); err == nil {
		t.Error("invalid level: want error")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage input: want error")
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		comp, err := Compress(src, flate.BestSpeed)
		if err != nil {
			return false
		}
		out, err := Decompress(comp)
		return err == nil && bytes.Equal(out, src)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompressibleData(t *testing.T) {
	d := CompressibleData(1000, 3)
	if len(d) != 1000 {
		t.Fatalf("len = %d", len(d))
	}
	other := CompressibleData(1000, 4)
	if bytes.Equal(d, other) {
		t.Error("different seeds yielded identical data")
	}
	same := CompressibleData(1000, 3)
	if !bytes.Equal(d, same) {
		t.Error("same seed must be deterministic")
	}
}

func TestCipherRoundTrip(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	iv := make([]byte, 16)
	plain := []byte("a secret cache value")
	enc, err := c.Encrypt(iv, plain)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Equal(enc, plain) {
		t.Error("ciphertext equals plaintext")
	}
	dec, err := c.Encrypt(iv, enc) // CTR is symmetric
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, plain) {
		t.Error("decrypt mismatch")
	}
}

func TestCipherInPlace(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	buf := []byte("hello")
	orig := append([]byte(nil), buf...)
	if err := c.EncryptInPlace(iv, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Error("in-place encryption did nothing")
	}
	if err := c.EncryptInPlace(iv, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Error("in-place round trip mismatch")
	}
}

func TestCipherErrors(t *testing.T) {
	if _, err := NewCipher(make([]byte, 7)); err == nil {
		t.Error("bad key size: want error")
	}
	c, _ := NewCipher(make([]byte, 16))
	if _, err := c.Encrypt(make([]byte, 8), []byte("x")); err == nil {
		t.Error("bad IV size: want error")
	}
	if err := c.EncryptInPlace(make([]byte, 8), []byte("x")); err == nil {
		t.Error("bad IV size in place: want error")
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	a := Hash([]byte("payload"))
	b := Hash([]byte("payload"))
	if a != b {
		t.Error("hash not deterministic")
	}
	c := Hash([]byte("payloae"))
	if a == c {
		t.Error("hash collision on 1-byte change")
	}
}
