package kernels

import (
	"bytes"
	"compress/flate"
	"sync"
	"testing"
)

// TestCompressAppendRoundTrip checks that the pooled compress/decompress
// pair inverts exactly at every flate level, including repeated calls that
// exercise the pooled encoder/decoder state.
func TestCompressAppendRoundTrip(t *testing.T) {
	src := CompressibleData(8<<10, 7)
	for level := flate.HuffmanOnly; level <= flate.BestCompression; level++ {
		for rep := 0; rep < 3; rep++ { // rep > 0 hits pooled state
			comp, err := CompressAppend(nil, src, level)
			if err != nil {
				t.Fatalf("level %d rep %d: compress: %v", level, rep, err)
			}
			got, err := DecompressAppend(nil, comp)
			if err != nil {
				t.Fatalf("level %d rep %d: decompress: %v", level, rep, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("level %d rep %d: round trip mismatch (%d bytes, want %d)",
					level, rep, len(got), len(src))
			}
		}
	}
}

// TestCompressAppendToExistingDst checks append semantics: both directions
// must extend a non-empty dst without disturbing the prefix.
func TestCompressAppendToExistingDst(t *testing.T) {
	src := CompressibleData(4<<10, 3)
	prefix := []byte("hdr:")

	comp, err := CompressAppend(append([]byte(nil), prefix...), src, flate.BestSpeed)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if !bytes.HasPrefix(comp, prefix) {
		t.Fatalf("compress clobbered the dst prefix: %q", comp[:len(prefix)])
	}

	plain, err := DecompressAppend(append([]byte(nil), prefix...), comp[len(prefix):])
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.HasPrefix(plain, prefix) {
		t.Fatalf("decompress clobbered the dst prefix: %q", plain[:len(prefix)])
	}
	if !bytes.Equal(plain[len(prefix):], src) {
		t.Fatal("round trip through prefixed dst mismatch")
	}
}

// TestCompressAppendInvalidLevel checks level validation.
func TestCompressAppendInvalidLevel(t *testing.T) {
	for _, level := range []int{flate.HuffmanOnly - 1, flate.BestCompression + 1} {
		if _, err := CompressAppend(nil, []byte("x"), level); err == nil {
			t.Errorf("level %d: want error, got nil", level)
		}
	}
}

// TestDecompressAppendCorrupt checks that garbage input surfaces an error
// and does not poison the pooled decoder for the next caller.
func TestDecompressAppendCorrupt(t *testing.T) {
	if _, err := DecompressAppend(nil, []byte{0xff, 0x00, 0xba, 0xad}); err == nil {
		t.Fatal("corrupt input: want error, got nil")
	}
	// The pool must still serve valid streams afterwards.
	comp, err := CompressAppend(nil, []byte("recovery"), flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressAppend(nil, comp)
	if err != nil {
		t.Fatalf("decompress after corrupt call: %v", err)
	}
	if string(got) != "recovery" {
		t.Fatalf("got %q, want %q", got, "recovery")
	}
}

// TestEncryptToMatchesEncrypt checks that the pooled-destination variant
// produces exactly the bytes of the allocating one, and that CTR symmetry
// holds through EncryptTo (the pipeline decrypts with it).
func TestEncryptToMatchesEncrypt(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 32)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{7}, 16)
	src := CompressibleData(1000, 9)

	want, err := c.Encrypt(iv, src)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src)+5) // longer than src is allowed
	if err := c.EncryptTo(dst, iv, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:len(src)], want) {
		t.Fatal("EncryptTo output differs from Encrypt")
	}

	dec := make([]byte, len(src))
	if err := c.EncryptTo(dec, iv, dst[:len(src)]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("EncryptTo(EncryptTo(x)) != x — CTR symmetry broken")
	}
}

// TestEncryptToValidation checks the defensive checks: wrong IV size and a
// too-short destination must fail before touching dst.
func TestEncryptToValidation(t *testing.T) {
	c, err := NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EncryptTo(make([]byte, 8), make([]byte, 15), make([]byte, 8)); err == nil {
		t.Error("short IV: want error, got nil")
	}
	if err := c.EncryptTo(make([]byte, 7), make([]byte, 16), make([]byte, 8)); err == nil {
		t.Error("short dst: want error, got nil")
	}
}

// TestFillCompressibleMatchesCompressibleData pins the two payload
// generators to the same byte stream, so pooled-staging callers see
// identical content to allocating ones (fleet determinism depends on it).
func TestFillCompressibleMatchesCompressibleData(t *testing.T) {
	for _, n := range []int{1, 63, 1024, 64 << 10} {
		for _, seed := range []uint64{0, 1, 12345} {
			want := CompressibleData(n, seed)
			got := make([]byte, n)
			for i := range got {
				got[i] = 0xee // prove every byte is overwritten
			}
			FillCompressible(got, seed)
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d seed=%d: FillCompressible diverges from CompressibleData", n, seed)
			}
		}
	}
}

// TestScratchPool checks the GetScratch/PutScratch contract: zero length,
// sufficient capacity, tolerance of degenerate puts, and reuse across the
// put/get cycle.
func TestScratchPool(t *testing.T) {
	for _, n := range []int{0, 1, 512, 64 << 10, maxScratch, maxScratch + 1} {
		b := GetScratch(n)
		if len(b) != 0 {
			t.Errorf("GetScratch(%d): len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Errorf("GetScratch(%d): cap = %d, want >= %d", n, cap(b), n)
		}
		PutScratch(b)
	}
	PutScratch(nil)                           // must not panic
	PutScratch(make([]byte, 0, 2*maxScratch)) // oversized: dropped
	if b := GetScratch(16); cap(b) < 16 {     //modelcheck:ignore poolcheck — deliberately dropped; the test only verifies the pool survived degenerate puts
		t.Errorf("GetScratch(16) after degenerate puts: cap = %d", cap(b))
	}
}

// TestScratchPoolConcurrent hammers the scratch pool under the race
// detector with per-goroutine byte patterns, catching any aliasing between
// concurrently-owned buffers.
func TestScratchPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 256 << (i % 4)
				b := GetScratch(n)[:n]
				for j := range b {
					b[j] = id
				}
				for j := range b {
					if b[j] != id {
						t.Errorf("goroutine %d: scratch aliased at byte %d", id, j)
						return
					}
				}
				PutScratch(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
