package kernels

import (
	"context"

	"repro/internal/proflabel"
)

// CPU-attribution labels for the kernel entry points. Each offloadable
// kernel family has one precomputed {kernel: <kind>} label set, built at
// package init so labeling a kernel invocation costs nothing beyond the
// proflabel gate check. The rpc pipeline stages and services.Exercise wrap
// their kernel calls in these regions (merged with the caller's service
// and functionality labels), so a CPU profile collected while
// proflabel.Enable is in effect attributes every sampled kernel cycle to
// its family — the live counterpart of the Table 2 leaf attribution.

// kindLabels indexes precomputed label sets by Kind. Built eagerly for the
// kinds the hot paths label; unknown kinds get an empty set (no labels).
var kindLabels = func() map[Kind]proflabel.Set {
	m := make(map[Kind]proflabel.Set, len(kindNames))
	for k, name := range kindNames {
		m[k] = proflabel.Labels(proflabel.KeyKernel, name)
	}
	return m
}()

// KindLabels returns the precomputed {kernel: <kind>} label set for k. The
// zero Set (labels nothing) is returned for unnamed kinds.
func KindLabels(k Kind) proflabel.Set {
	return kindLabels[k]
}

// Labeled runs f under k's kernel label (merged with any labels already on
// ctx) when profiling labels are enabled; disabled, it is a direct call.
func Labeled(ctx context.Context, k Kind, f func()) {
	proflabel.Do(ctx, kindLabels[k], func(context.Context) { f() })
}
