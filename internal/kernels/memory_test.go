package kernels

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCopy(t *testing.T) {
	src := []byte("hello world")
	dst := make([]byte, len(src))
	if n := Copy(dst, src); n != len(src) {
		t.Errorf("Copy = %d, want %d", n, len(src))
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("dst = %q", dst)
	}
	short := make([]byte, 5)
	if n := Copy(short, src); n != 5 {
		t.Errorf("short Copy = %d, want 5", n)
	}
}

func TestSet(t *testing.T) {
	buf := make([]byte, 64)
	if n := Set(buf, 0xAB); n != 64 {
		t.Errorf("Set = %d", n)
	}
	for i, b := range buf {
		if b != 0xAB {
			t.Fatalf("buf[%d] = %x", i, b)
		}
	}
	if n := Set(nil, 1); n != 0 {
		t.Errorf("Set(nil) = %d", n)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1},
		{"abc", "ab", 1},
		{"", "", 0},
	}
	for _, tc := range cases {
		if got := Compare([]byte(tc.a), []byte(tc.b)); got != tc.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareMatchesBytesCompare(t *testing.T) {
	f := func(a, b []byte) bool {
		return Compare(a, b) == bytes.Compare(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoveOverlapping(t *testing.T) {
	buf := []byte("abcdefgh")
	Move(buf[2:], buf[:6]) // overlapping shift right
	if string(buf) != "ababcdef" {
		t.Errorf("overlapping move = %q", buf)
	}
}

// Property: Copy then Compare yields equality for any payload.
func TestCopyCompareRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		dst := make([]byte, len(src))
		Copy(dst, src)
		return Compare(dst, src) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
