package kernels

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// SimAccel simulates an off-chip accelerator behind a submit/complete
// doorbell. Submit enqueues a job that finishes after the configured
// offload latency L plus a throughput term proportional to the job's
// granularity g (bytes), and a single dispatcher goroutine delivers
// completions in due order. This is the device half of the paper's Async
// threading designs (§4): the host parks the request at submit time and a
// completion queue resumes it, so an in-flight offload costs no host
// thread — only a heap entry here.
//
// The dispatcher holds one timer for the whole device rather than one per
// job, so six-figure in-flight counts (the async soak) cost O(log n) per
// submit and no timer churn.

// ErrAccelClosed is returned by Submit after Close, and delivered to the
// Completer of every job still pending when Close runs.
var ErrAccelClosed = errors.New("kernels: accelerator closed")

// Completer receives a job's completion. Complete is invoked exactly once
// per accepted Submit, from the device's dispatcher goroutine (or from
// Close/Flush for drained jobs): it must not block for long, or it stalls
// every later completion behind it — hand off to a queue, as rpc.Engine
// does.
type Completer interface {
	Complete(err error)
}

// CompleterFunc adapts a function to the Completer interface.
type CompleterFunc func(err error)

// Complete invokes f.
func (f CompleterFunc) Complete(err error) { f(err) }

// SimAccelConfig configures a simulated accelerator.
type SimAccelConfig struct {
	// Latency is the fixed per-job offload latency (the model's L term:
	// dispatch + device turnaround). Zero means jobs complete as soon as
	// the dispatcher runs.
	Latency time.Duration
	// BytesPerSec, when positive, adds a granularity term: a job of g
	// bytes takes g/BytesPerSec on top of Latency. Zero models a device
	// fast enough that transfer time is folded into Latency.
	BytesPerSec float64
}

func (c SimAccelConfig) validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("kernels: negative accelerator latency %v", c.Latency)
	}
	if c.BytesPerSec < 0 || math.IsNaN(c.BytesPerSec) || math.IsInf(c.BytesPerSec, 0) {
		return fmt.Errorf("kernels: invalid accelerator throughput %v", c.BytesPerSec)
	}
	return nil
}

// accelJob is one in-flight offload: due is nanoseconds since the device
// started, seq breaks ties so equal deadlines complete in submit order.
type accelJob struct {
	due int64
	seq uint64
	ctx context.Context
	c   Completer
}

// SimAccelStats is a point-in-time snapshot of device counters.
type SimAccelStats struct {
	Submitted uint64 // jobs accepted by Submit
	Completed uint64 // completions delivered (including cancelled/closed)
	Errors    uint64 // completions delivered with a non-nil error
	InFlight  int    // jobs submitted but not yet completed
}

// SimAccel is a simulated accelerator. All methods are safe for concurrent
// use.
type SimAccel struct {
	cfg   SimAccelConfig
	start time.Time

	mu        sync.Mutex
	jobs      accelHeap
	seq       uint64
	closed    bool
	submitted uint64
	completed uint64
	errs      uint64

	wake chan struct{} // signals the dispatcher that the head job changed
	quit chan struct{} // closed by Close; dispatcher exits
	done chan struct{} // closed by the dispatcher on exit
}

// NewSimAccel starts a simulated accelerator and its dispatcher goroutine.
func NewSimAccel(cfg SimAccelConfig) (*SimAccel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &SimAccel{
		cfg:   cfg,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go d.run()
	return d, nil
}

// delay returns the simulated device time for a job of g bytes.
func (d *SimAccel) delay(g uint64) time.Duration {
	delay := d.cfg.Latency
	if d.cfg.BytesPerSec > 0 {
		delay += time.Duration(float64(g) / d.cfg.BytesPerSec * float64(time.Second))
	}
	return delay
}

// Submit enqueues one offload of g bytes. The Completer fires exactly once
// when the simulated device finishes: with nil on success, with ctx's
// error if ctx was cancelled while the job was in flight, or with
// ErrAccelClosed if the device closed first. A context already cancelled
// at submit time is rejected synchronously (the Completer never fires) so
// callers can keep ownership of the request state on the error path.
func (d *SimAccel) Submit(ctx context.Context, g uint64, c Completer) error {
	if c == nil {
		return errors.New("kernels: nil completer")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("kernels: offload rejected: %w", err)
		}
	}
	due := time.Since(d.start) + d.delay(g)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrAccelClosed
	}
	d.seq++
	d.jobs.push(accelJob{due: int64(due), seq: d.seq, ctx: ctx, c: c})
	d.submitted++
	first := d.jobs[0].seq == d.seq
	d.mu.Unlock()
	if first {
		// Only a new head deadline can move the dispatcher's wake-up
		// earlier; later deadlines are discovered when the timer fires.
		select {
		case d.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// run is the dispatcher: it sleeps until the earliest deadline, pops every
// due job, and delivers completions outside the lock.
func (d *SimAccel) run() {
	defer close(d.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var batch []accelJob // dispatcher-owned scratch, reused across rounds
	for {
		now := int64(time.Since(d.start))
		batch = batch[:0]
		d.mu.Lock()
		for len(d.jobs) > 0 && d.jobs[0].due <= now {
			batch = append(batch, d.jobs.pop())
		}
		var wait time.Duration
		hasNext := len(d.jobs) > 0
		if hasNext {
			wait = time.Duration(d.jobs[0].due - now)
		}
		d.mu.Unlock()

		for i := range batch {
			d.complete(batch[i])
			batch[i] = accelJob{} // drop ctx/completer references
		}

		if hasNext {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-d.wake:
				if !timer.Stop() {
					<-timer.C
				}
			case <-d.quit:
				return
			}
		} else {
			select {
			case <-d.wake:
			case <-d.quit:
				return
			}
		}
	}
}

// complete delivers one completion. A context cancelled mid-offload
// surfaces here: the device finished, but the requester is gone, so the
// continuation is resumed with the context's error instead of a result.
func (d *SimAccel) complete(j accelJob) {
	var err error
	if j.ctx != nil {
		err = j.ctx.Err()
	}
	d.mu.Lock()
	d.completed++
	if err != nil {
		d.errs++
	}
	d.mu.Unlock()
	j.c.Complete(err)
}

// Flush immediately completes every pending job (honoring each job's
// context state) without waiting for its deadline — the drain doorbell.
// Soak tests park six-figure job counts behind a long latency and release
// them in one shot; shutdown paths can use it to resume every parked
// continuation before closing.
func (d *SimAccel) Flush() {
	d.mu.Lock()
	pending := make([]accelJob, len(d.jobs))
	for i := range pending {
		pending[i] = d.jobs.pop()
	}
	d.mu.Unlock()
	for i := range pending {
		d.complete(pending[i])
	}
}

// Close stops the device: the dispatcher exits, every still-pending job's
// Completer fires with ErrAccelClosed, and later Submits are rejected.
// Close is idempotent and safe to call concurrently with Submit.
func (d *SimAccel) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return nil
	}
	d.closed = true
	pending := make([]accelJob, len(d.jobs))
	for i := range pending {
		pending[i] = d.jobs.pop()
	}
	d.mu.Unlock()
	close(d.quit)
	<-d.done
	for _, j := range pending {
		d.mu.Lock()
		d.completed++
		d.errs++
		d.mu.Unlock()
		j.c.Complete(ErrAccelClosed)
	}
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *SimAccel) Stats() SimAccelStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return SimAccelStats{
		Submitted: d.submitted,
		Completed: d.completed,
		Errors:    d.errs,
		InFlight:  len(d.jobs),
	}
}

// InFlight returns the number of submitted-but-not-completed jobs.
func (d *SimAccel) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.jobs)
}

// accelHeap is a hand-rolled min-heap ordered by (due, seq). container/heap
// would box every job through an interface; at soak scale (100k pending
// jobs) the direct version keeps Submit allocation-free after the backing
// array warms up.
type accelHeap []accelJob

func (h accelHeap) less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}

func (h *accelHeap) push(j accelJob) {
	*h = append(*h, j)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *accelHeap) pop() accelJob {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = accelJob{} // release references held by the vacated slot
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old[:n].less(l, smallest) {
			smallest = l
		}
		if r < n && old[:n].less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}
