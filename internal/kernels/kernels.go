// Package kernels implements the real, executable building-block operations
// the paper identifies as acceleration candidates: memory copy/set/compare,
// memory allocation and free, compression, encryption, and hashing.
//
// The paper's model treats a "kernel" as the unit of offload: work the host
// spends Cb cycles per byte on, which an accelerator can do A times faster
// (§3, Table 5). This package provides genuine implementations of those
// kernels (built only on the standard library) so that
//
//   - the synthetic microservice fleet performs real work on real bytes,
//   - micro-benchmarks can ground Cb (host cycles per byte) the same way
//     the paper grounds its parameters with micro-benchmarks, and
//   - the per-kernel calibration tables stay honest: they are checked
//     against the executable implementations in the benchmark suite.
package kernels

import (
	"errors"
	"fmt"
	"sort"
)

// Kind identifies one offloadable kernel family.
type Kind int

const (
	// MemoryCopy is bulk byte copying (memcpy-style).
	MemoryCopy Kind = iota
	// MemorySet is bulk byte initialization (memset-style).
	MemorySet
	// MemoryCompare is bulk byte comparison (memcmp-style).
	MemoryCompare
	// MemoryMove is overlapping-safe copying (memmove-style).
	MemoryMove
	// Allocation is memory allocation through the size-class allocator.
	Allocation
	// Free is returning memory through the size-class allocator.
	Free
	// Compression is DEFLATE compression (the fleet's ZSTD stand-in).
	Compression
	// Decompression is DEFLATE decompression.
	Decompression
	// Encryption is AES-CTR encryption (the fleet's SSL stand-in).
	Encryption
	// Hashing is SHA-256 hashing.
	Hashing
	// Serialization is binary RPC encoding (implemented in internal/rpc,
	// calibrated here).
	Serialization
)

// kindNames maps kinds to display names used in experiment output.
var kindNames = map[Kind]string{
	MemoryCopy:    "memory-copy",
	MemorySet:     "memory-set",
	MemoryCompare: "memory-compare",
	MemoryMove:    "memory-move",
	Allocation:    "allocation",
	Free:          "free",
	Compression:   "compression",
	Decompression: "decompression",
	Encryption:    "encryption",
	Hashing:       "hashing",
	Serialization: "serialization",
}

// String returns the kernel kind's display name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns all kernel kinds in a stable order.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindNames))
	for k := range kindNames {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrSizeMismatch is returned by fixed-size operations given mismatched
// buffers.
var ErrSizeMismatch = errors.New("kernels: buffer size mismatch")
