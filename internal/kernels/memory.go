package kernels

// Memory kernels. The paper finds memory copy, allocation, and free are the
// dominant leaf overheads across the fleet (§2.3.1, Fig 3); these functions
// are the concrete work units the synthetic fleet executes and the
// micro-benchmarks time.

// Copy copies src into dst and returns the number of bytes copied. It is the
// memcpy-style kernel; dst and src may be different lengths, in which case
// the shorter governs.
func Copy(dst, src []byte) int {
	return copy(dst, src)
}

// Set fills dst with the byte v (memset-style) and returns len(dst).
func Set(dst []byte, v byte) int {
	for i := range dst {
		dst[i] = v
	}
	return len(dst)
}

// Compare compares a and b lexicographically (memcmp-style): -1 if a < b,
// 0 if equal, +1 if a > b.
func Compare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Move copies src into dst handling overlap (memmove-style) and returns the
// number of bytes moved. Go's built-in copy already handles overlap, but we
// keep a distinct entry point so profiles attribute moves separately from
// copies, as the paper's Fig 3 does.
func Move(dst, src []byte) int {
	return copy(dst, src)
}
