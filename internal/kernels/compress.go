package kernels

import (
	"fmt"
)

// Compression kernels. The fleet's production compressor is ZSTD; the
// standard library offers DEFLATE, which exercises the same code-path shape
// (entropy coding over an LZ match stream) and is a faithful stand-in for
// grounding cycles-per-byte. Fig 19 and the Table 7 compression studies
// consume only offload-size distributions and calibrated Cb/A values, so
// the codec choice does not affect reproduced results.

// Compress DEFLATE-compresses src at the given level (flate.BestSpeed..
// flate.BestCompression) and returns the compressed bytes in a fresh
// slice. It delegates to CompressAppend, which reuses pooled encoder
// state; callers that can recycle the destination should use
// CompressAppend directly.
func Compress(src []byte, level int) ([]byte, error) {
	return CompressAppend(nil, src, level)
}

// Decompress inflates DEFLATE-compressed bytes into a fresh slice. It
// delegates to DecompressAppend, which reuses pooled decoder state.
func Decompress(src []byte) ([]byte, error) {
	return DecompressAppend(nil, src)
}

// CompressibleData returns n bytes of synthetic payload with realistic
// redundancy (repeating structured records with varying fields), so that
// compression kernels see production-like ratios instead of incompressible
// noise or trivially constant bytes. The seed varies the content.
func CompressibleData(n int, seed uint64) []byte {
	out := make([]byte, n)
	FillCompressible(out, seed)
	return out
}

// FillCompressible fills dst with the same synthetic record stream as
// CompressibleData without allocating the destination, so callers staging
// payloads in a reused (e.g. GetScratch) buffer skip the per-invocation
// allocation.
func FillCompressible(dst []byte, seed uint64) {
	const record = "ts=1583020800 svc=cache1 op=get key=user:%08x flags=0x%04x "
	pos := 0
	i := seed
	for pos < len(dst) {
		rec := fmt.Sprintf(record, uint32(i*2654435761), uint16(i*40503))
		pos += copy(dst[pos:], rec)
		i++
	}
}
