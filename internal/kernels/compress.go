package kernels

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Compression kernels. The fleet's production compressor is ZSTD; the
// standard library offers DEFLATE, which exercises the same code-path shape
// (entropy coding over an LZ match stream) and is a faithful stand-in for
// grounding cycles-per-byte. Fig 19 and the Table 7 compression studies
// consume only offload-size distributions and calibrated Cb/A values, so
// the codec choice does not affect reproduced results.

// Compress DEFLATE-compresses src at the given level (flate.BestSpeed..
// flate.BestCompression) and returns the compressed bytes.
func Compress(src []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("kernels: compress: %w", err)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("kernels: compress write: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("kernels: compress close: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress inflates DEFLATE-compressed bytes.
func Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kernels: decompress: %w", err)
	}
	return out, nil
}

// CompressibleData returns n bytes of synthetic payload with realistic
// redundancy (repeating structured records with varying fields), so that
// compression kernels see production-like ratios instead of incompressible
// noise or trivially constant bytes. The seed varies the content.
func CompressibleData(n int, seed uint64) []byte {
	out := make([]byte, n)
	const record = "ts=1583020800 svc=cache1 op=get key=user:%08x flags=0x%04x "
	pos := 0
	i := seed
	for pos < n {
		rec := fmt.Sprintf(record, uint32(i*2654435761), uint16(i*40503))
		pos += copy(out[pos:], rec)
		i++
	}
	return out
}
