package kernels

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements a TCMalloc-style size-class allocator. The paper
// (§2.3.1) attributes significant fleet cycles to allocation and — less
// studied — to free(): because free() takes no size parameter, the
// allocator performs a size-class lookup that "tends to cache poorly",
// whereas C++11 sized delete can skip it. The Arena below reproduces that
// asymmetry: Free must look up the size class from the block, while
// FreeSized is told the size and skips the lookup. The allocator is the
// concrete work the fleet's "memory allocation" functionality executes and
// the Allocation/Free micro-benchmarks time.

// defaultSizeClasses mirrors the small-object classes of production
// allocators: fine-grained at small sizes, coarser as sizes grow.
var defaultSizeClasses = buildSizeClasses()

func buildSizeClasses() []int {
	var classes []int
	for s := 8; s <= 128; s += 8 { // 8..128 in steps of 8
		classes = append(classes, s)
	}
	for s := 144; s <= 512; s += 16 { // 144..512 in steps of 16
		classes = append(classes, s)
	}
	for s := 1 << 10; s <= 256<<10; s <<= 1 { // 1K..256K powers of two
		classes = append(classes, s)
	}
	return classes
}

// ErrTooLarge is returned when an allocation exceeds the largest size class.
var ErrTooLarge = errors.New("kernels: allocation exceeds largest size class")

// AllocStats counts allocator activity; the profiler charges cycles in
// proportion to these counters.
type AllocStats struct {
	Allocs        uint64 // Alloc calls
	Frees         uint64 // Free + FreeSized calls
	SizedFrees    uint64 // FreeSized calls (skip the class lookup)
	ClassLookups  uint64 // size-class lookups performed on the free path
	FreeListHits  uint64 // allocations served from a free list
	FreeListMiss  uint64 // allocations requiring fresh memory
	BytesLive     uint64 // bytes currently allocated (class-rounded)
	BytesFreeList uint64 // bytes parked on free lists
}

// Arena is a size-class allocator with per-class free lists. It is not safe
// for concurrent use; the fleet gives each simulated worker its own arena,
// mirroring per-thread caches in production allocators.
type Arena struct {
	classes []int
	free    [][][]byte // per-class LIFO free lists
	stats   AllocStats
}

// NewArena returns an arena with the default size classes.
func NewArena() *Arena {
	return &Arena{
		classes: defaultSizeClasses,
		free:    make([][][]byte, len(defaultSizeClasses)),
	}
}

// SizeClasses returns a copy of the arena's class sizes in ascending order.
func (a *Arena) SizeClasses() []int {
	return append([]int(nil), a.classes...)
}

// classIndex returns the smallest class index that fits size.
func (a *Arena) classIndex(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("kernels: invalid allocation size %d", size)
	}
	i := sort.SearchInts(a.classes, size)
	if i == len(a.classes) {
		return 0, ErrTooLarge
	}
	return i, nil
}

// classIndexByCapacity performs the free-path lookup: given a block, find
// its size class from its capacity. This is the work sized delete avoids.
func (a *Arena) classIndexByCapacity(c int) (int, error) {
	i := sort.SearchInts(a.classes, c)
	if i == len(a.classes) || a.classes[i] != c {
		return 0, fmt.Errorf("kernels: block capacity %d is not a size class", c)
	}
	return i, nil
}

// Alloc returns a zero-length slice with capacity equal to the smallest size
// class that fits size. Reuses free-listed blocks when available.
func (a *Arena) Alloc(size int) ([]byte, error) {
	idx, err := a.classIndex(size)
	if err != nil {
		return nil, err
	}
	a.stats.Allocs++
	cls := a.classes[idx]
	if list := a.free[idx]; len(list) > 0 {
		block := list[len(list)-1]
		a.free[idx] = list[:len(list)-1]
		a.stats.FreeListHits++
		a.stats.BytesFreeList -= uint64(cls)
		a.stats.BytesLive += uint64(cls)
		return block[:size], nil
	}
	a.stats.FreeListMiss++
	a.stats.BytesLive += uint64(cls)
	return make([]byte, size, cls), nil
}

// Free returns a block to its free list, determining the size class from
// the block's capacity (the expensive, un-sized free path).
func (a *Arena) Free(block []byte) error {
	a.stats.ClassLookups++
	idx, err := a.classIndexByCapacity(cap(block))
	if err != nil {
		return err
	}
	a.push(idx, block)
	return nil
}

// FreeSized returns a block of a known allocation size, skipping the class
// lookup — the C++11 sized-delete fast path.
func (a *Arena) FreeSized(block []byte, size int) error {
	idx, err := a.classIndex(size)
	if err != nil {
		return err
	}
	if a.classes[idx] != cap(block) {
		return fmt.Errorf("kernels: sized free of %d-byte block with capacity %d (class %d)",
			size, cap(block), a.classes[idx])
	}
	a.stats.SizedFrees++
	a.push(idx, block)
	return nil
}

func (a *Arena) push(idx int, block []byte) {
	cls := a.classes[idx]
	a.free[idx] = append(a.free[idx], block[:0:cls])
	a.stats.Frees++
	a.stats.BytesLive -= uint64(cls)
	a.stats.BytesFreeList += uint64(cls)
}

// Stats returns a snapshot of the allocator's counters.
func (a *Arena) Stats() AllocStats { return a.stats }

// Churn allocates and frees n blocks of the given size through the arena,
// optionally using the sized-free fast path. It is the allocation kernel
// the fleet executes and the micro-benchmark times. It returns the stats
// delta produced by the churn.
func (a *Arena) Churn(n int, size int, sized bool) (AllocStats, error) {
	before := a.stats
	for i := 0; i < n; i++ {
		block, err := a.Alloc(size)
		if err != nil {
			return AllocStats{}, err
		}
		// Touch the block so the allocation is not dead code.
		if size > 0 {
			block = block[:1]
			block[0] = byte(i)
		}
		if sized {
			err = a.FreeSized(block, size)
		} else {
			err = a.Free(block)
		}
		if err != nil {
			return AllocStats{}, err
		}
	}
	after := a.stats
	return AllocStats{
		Allocs:       after.Allocs - before.Allocs,
		Frees:        after.Frees - before.Frees,
		SizedFrees:   after.SizedFrees - before.SizedFrees,
		ClassLookups: after.ClassLookups - before.ClassLookups,
		FreeListHits: after.FreeListHits - before.FreeListHits,
		FreeListMiss: after.FreeListMiss - before.FreeListMiss,
	}, nil
}
