package kernels

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if MemoryCopy.String() != "memory-copy" {
		t.Errorf("MemoryCopy = %q", MemoryCopy.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestKindsStableAndComplete(t *testing.T) {
	ks := Kinds()
	if len(ks) != 11 {
		t.Fatalf("got %d kinds, want 11", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Errorf("kinds not ascending: %v", ks)
		}
	}
}

func TestCostCycles(t *testing.T) {
	c := Cost{FixedCycles: 100, CyclesPerByte: 2}
	if got := c.Cycles(50); got != 200 {
		t.Errorf("Cycles(50) = %v, want 200", got)
	}
	if got := c.Cycles(0); got != 100 {
		t.Errorf("Cycles(0) = %v, want 100", got)
	}
}

func TestCostValid(t *testing.T) {
	if !(Cost{0, 1}).Valid() {
		t.Error("zero fixed should be valid")
	}
	if (Cost{-1, 1}).Valid() {
		t.Error("negative fixed should be invalid")
	}
	if (Cost{1, 0}).Valid() {
		t.Error("zero per-byte should be invalid")
	}
}

func TestDefaultCalibrationCoversAllKinds(t *testing.T) {
	cal := DefaultCalibration()
	for _, k := range Kinds() {
		cost, err := cal.Cost(k)
		if err != nil {
			t.Errorf("no calibration for %v", k)
			continue
		}
		if !cost.Valid() {
			t.Errorf("invalid calibration for %v: %+v", k, cost)
		}
	}
	if _, err := cal.Cost(Kind(99)); err == nil {
		t.Error("unknown kind: want error")
	}
}

// Calibration sanity: the per-offload costs implied by the defaults are
// consistent with the paper's Table 6/7 parameters (§4, §5).
func TestDefaultCalibrationMatchesPaperScale(t *testing.T) {
	cal := DefaultCalibration()

	// Cache1 AES: α*C/n = 0.165844*2.0e9/298951 ≈ 1109 cycles per offload
	// at typical encryption sizes (~180 B from Fig 15's CDF shape).
	enc, _ := cal.Cost(Encryption)
	perOffload := enc.Cycles(180)
	if perOffload < 700 || perOffload > 1600 {
		t.Errorf("encryption cost at 180 B = %v cycles, want ~1.1k (paper Table 6)", perOffload)
	}

	// Feed1 compression: α*C/n = 0.15*2.3e9/15008 ≈ 23k cycles per offload
	// at Feed1's multi-KiB granularities (Fig 19).
	comp, _ := cal.Cost(Compression)
	perOffload = comp.Cycles(3000)
	if perOffload < 15000 || perOffload > 35000 {
		t.Errorf("compression cost at 3 KiB = %v cycles, want ~23k (paper Table 7)", perOffload)
	}

	// Ads1 memory copy: α*C/n = 0.1512*2.3e9/1473681 ≈ 236 cycles per copy
	// at small copy sizes (Fig 21: most copies < 512 B).
	cp, _ := cal.Cost(MemoryCopy)
	perOffload = cp.Cycles(200)
	if perOffload < 150 || perOffload > 350 {
		t.Errorf("copy cost at 200 B = %v cycles, want ~236 (paper Table 7)", perOffload)
	}

	// Cache1 allocation: α*C/n = 0.055*2.0e9/51695 ≈ 2128 cycles per alloc.
	// Our allocator's fixed+per-byte model at the paper's small-allocation
	// sizes is dominated by the fixed term; per-churn costs land within 10x.
	al, _ := cal.Cost(Allocation)
	fr, _ := cal.Cost(Free)
	perOffload = al.Cycles(256) + fr.Cycles(256)
	if perOffload < 300 || perOffload > 3000 {
		t.Errorf("alloc+free cost at 256 B = %v cycles, want same order as 2.1k", perOffload)
	}
}

func TestMeasureCostValidation(t *testing.T) {
	op := func(buf []byte) {}
	if _, err := MeasureCost(op, 0, 10, 1, 1e9); err == nil {
		t.Error("zero small: want error")
	}
	if _, err := MeasureCost(op, 10, 10, 1, 1e9); err == nil {
		t.Error("large == small: want error")
	}
	if _, err := MeasureCost(op, 1, 10, 0, 1e9); err == nil {
		t.Error("zero iters: want error")
	}
	if _, err := MeasureCost(op, 1, 10, 1, 0); err == nil {
		t.Error("zero hz: want error")
	}
}

func TestMeasureCostProducesPositiveSlope(t *testing.T) {
	// A genuinely O(n) op: touch every byte.
	op := func(buf []byte) {
		for i := range buf {
			buf[i]++
		}
	}
	cost, err := MeasureCost(op, 1<<10, 1<<16, 200, 2.5e9)
	if err != nil {
		t.Fatalf("MeasureCost: %v", err)
	}
	if cost.CyclesPerByte <= 0 {
		t.Errorf("per-byte cost = %v, want > 0", cost.CyclesPerByte)
	}
	if cost.FixedCycles < 0 {
		t.Errorf("fixed cost = %v, want >= 0", cost.FixedCycles)
	}
}
