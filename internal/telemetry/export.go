package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/textchart"
)

// This file holds the three exporters: Prometheus text exposition
// (WritePrometheus), Chrome trace-event JSON (WriteChromeTrace — loadable
// in Perfetto or chrome://tracing), and a terminal histogram summary
// (HistogramText).

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format. Histograms export as summaries with p50/p95/p99/p999
// quantile samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.metrics() {
		if err := m.writeProm(w); err != nil {
			return fmt.Errorf("telemetry: write %s: %w", m.metricName(), err)
		}
	}
	return nil
}

// escapeHelp escapes HELP text per the Prometheus exposition format:
// backslash and newline are the two characters with escape syntax there.
// Unescaped, a newline smuggled into help text would let one metric inject
// arbitrary exposition lines (fake samples, broken TYPE headers) into the
// scrape.
func escapeHelp(help string) string {
	if !strings.ContainsAny(help, "\\\n") {
		return help
	}
	var sb strings.Builder
	sb.Grow(len(help) + 8)
	for _, r := range help {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func writeHeader(w io.Writer, name, help, kind string) error {
	// Registry-created instruments are validated at registration, but
	// standalone instruments (NewHistogram) reach this writer with whatever
	// name they were built with; a hostile name would be interpolated raw
	// into the exposition. Refuse rather than emit a corrupt scrape.
	if !metricName.MatchString(name) {
		return fmt.Errorf("telemetry: metric name %q is not a valid exposition name", name)
	}
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

func (c *Counter) writeProm(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	return err
}

func (g *Gauge) writeProm(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
	return err
}

// promQuantiles are the summary quantiles every histogram exports.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999},
}

func (h *Histogram) writeProm(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "summary"); err != nil {
		return err
	}
	s := h.Snapshot()
	for _, pq := range promQuantiles {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", h.name, pq.label, s.Quantile(pq.q)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", h.name, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, s.Count)
	return err
}

// traceEvent is one Chrome trace-event ("X" = complete span, "M" =
// metadata). Timestamps and durations are microseconds.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container both Perfetto and
// chrome://tracing accept.
type chromeTrace struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteChromeTrace renders spans (typically the concatenation of the
// client- and server-side tracers' Spans) as Chrome trace-event JSON.
// Each distinct Process label becomes a pid; each trace ID becomes a tid,
// so one RPC call's spans nest on one timeline row.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	ordered := make([]SpanData, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })

	pids := map[string]int{}
	var events []traceEvent
	for _, sd := range ordered {
		pid, ok := pids[sd.Process]
		if !ok {
			pid = len(pids) + 1
			pids[sd.Process] = pid
			events = append(events, traceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": sd.Process},
			})
		}
		events = append(events, traceEvent{
			Name: sd.Name,
			Cat:  sd.Process,
			Ph:   "X",
			Ts:   float64(sd.Start.UnixNano()) / 1e3,
			Dur:  float64(sd.Duration.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  sd.TraceID & 0x7fffffff,
			Args: map[string]string{
				"trace":  strconv.FormatUint(sd.TraceID, 16),
				"span":   strconv.FormatUint(sd.SpanID, 16),
				"parent": strconv.FormatUint(sd.ParentID, 16),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events})
}

// WriteMetricsFile writes the registry's Prometheus text exposition to
// path ("-" for stdout). The CLI -metrics-out flags funnel through here.
func WriteMetricsFile(path string, r *Registry) error {
	return writeFile(path, r.WritePrometheus)
}

// WriteTraceFile writes spans as Chrome trace-event JSON to path ("-" for
// stdout). The CLI -trace-out flags funnel through here.
func WriteTraceFile(path string, spans []SpanData) error {
	return writeFile(path, func(w io.Writer) error { return WriteChromeTrace(w, spans) })
}

func writeFile(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := render(f); err != nil {
		f.Close() //modelcheck:ignore errdrop — the render error is the one to surface
		return err
	}
	return f.Close()
}

// HistogramText renders a terminal summary of a histogram snapshot: one
// bar per power-of-two bin between the observed extrema plus a quantile
// line, in the style of the repository's other textchart output.
func HistogramText(name string, s HistogramSnapshot, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: n=%d mean=%.4g min=%.4g max=%.4g\n", name, s.Count, s.Mean(), s.Min, s.Max)
	if s.Count == 0 {
		return sb.String()
	}
	// Coarsen the log buckets to powers of two for display.
	type bin struct {
		lo, hi float64
		n      uint64
	}
	byExp := map[int]*bin{}
	var exps []int
	for _, b := range s.Buckets {
		e := 0 // the zero bucket
		if b.Hi > 0 {
			e = bucketIndex(b.Lo)/histSub + 1
		}
		bb := byExp[e]
		if bb == nil {
			bb = &bin{lo: b.Lo, hi: b.Hi}
			byExp[e] = bb
			exps = append(exps, e)
		}
		if b.Lo < bb.lo {
			bb.lo = b.Lo
		}
		if b.Hi > bb.hi {
			bb.hi = b.Hi
		}
		bb.n += b.Count
	}
	sort.Ints(exps)
	maxN := uint64(0)
	for _, e := range exps {
		if byExp[e].n > maxN {
			maxN = byExp[e].n
		}
	}
	for _, e := range exps {
		bb := byExp[e]
		label := fmt.Sprintf("[%.3g, %.3g)", bb.lo, bb.hi)
		if bb.hi <= 0 {
			label = "zero"
		}
		sb.WriteString(textchart.HBar(label, float64(bb.n), float64(maxN), width) + "\n")
	}
	fmt.Fprintf(&sb, "p50=%.4g p95=%.4g p99=%.4g p999=%.4g (quantile rel. error <= %.2g)\n",
		s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Quantile(0.999), QuantileRelError)
	return sb.String()
}
