package telemetry

import (
	"math"
	"testing"
)

// Delta of two snapshots of the same histogram describes exactly the
// window's observations: counts and sums subtract and quantiles track the
// window, not the cumulative distribution.
func TestSnapshotDelta(t *testing.T) {
	h := NewHistogram("w", "")
	for i := 0; i < 1000; i++ {
		h.Record(10) // old regime: fast
	}
	prev := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Record(1e6) // new regime: slow
	}
	d := h.Snapshot().Delta(prev)

	if d.Count != 100 {
		t.Fatalf("delta count = %d, want 100", d.Count)
	}
	if got, want := d.Sum, 100*1e6; math.Abs(got-want) > 1 {
		t.Errorf("delta sum = %v, want %v", got, want)
	}
	// The cumulative p99 is still dominated by the 1000 fast samples; the
	// window p99 must report the slow regime.
	if q := d.Quantile(0.99); q < 1e6/(1+2*QuantileRelError) || q > 1e6*(1+2*QuantileRelError) {
		t.Errorf("window p99 = %v, want ~1e6", q)
	}
	if cum := h.Snapshot().Quantile(0.5); cum > 100 {
		t.Errorf("cumulative p50 = %v, should still be fast", cum)
	}
}

func TestSnapshotDeltaEmptyWindow(t *testing.T) {
	h := NewHistogram("w", "")
	h.Record(5)
	snap := h.Snapshot()
	d := snap.Delta(snap)
	if d.Count != 0 || len(d.Buckets) != 0 {
		t.Fatalf("empty window delta = %+v", d)
	}
	if q := d.Quantile(0.99); q != 0 {
		t.Errorf("empty window quantile = %v, want 0", q)
	}
}

func TestSnapshotDeltaZeroBucket(t *testing.T) {
	h := NewHistogram("w", "")
	h.Record(7)
	prev := h.Snapshot()
	h.Record(0)
	h.Record(-3) // clamps to the zero bucket
	d := h.Snapshot().Delta(prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if q := d.Quantile(0.5); q != 0 {
		t.Errorf("window median = %v, want 0 (both window samples are zeros)", q)
	}
}

// A delta against a snapshot from a different histogram must not produce
// negative counts.
func TestSnapshotDeltaClampsShrunkBuckets(t *testing.T) {
	a := NewHistogram("a", "")
	b := NewHistogram("b", "")
	a.Record(1)
	for i := 0; i < 10; i++ {
		b.Record(1)
		b.Record(1e9)
	}
	d := a.Snapshot().Delta(b.Snapshot())
	for _, bk := range d.Buckets {
		if bk.Count > a.Snapshot().Count {
			t.Errorf("bucket %+v exceeds source count", bk)
		}
	}
}
