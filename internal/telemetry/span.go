package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span categories: every critical-path nanosecond the tail-tax report
// attributes lands in exactly one of these buckets. Instrumentation sites
// stamp them on spans (SetCategory / ChildDoneCat); spans without an
// explicit category are classified by name in internal/tailtrace.
const (
	// CatRPC is the data center tax proper: serialization, compression,
	// encryption and their inverses, plus RPC bookkeeping.
	CatRPC = "rpc"
	// CatTransport is wire time: frame writes and the network + remote
	// round trip seen from the client (net-wait).
	CatTransport = "transport"
	// CatWork is service work — the handler's own host computation.
	CatWork = "work"
	// CatDevice is offload device time: park → completion on an
	// accelerator, during which no host thread is held.
	CatDevice = "device"
	// CatQueue is queueing: waiting for an engine worker (submit →
	// pickup, completion → resume) or for fan-out scheduling.
	CatQueue = "queue"
)

// SpanData is one completed span: a named, timed segment of a request,
// linked to its trace and parent span. Spans cross process boundaries via
// the trace/parent IDs carried in rpc.Message headers.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for a root span
	Name     string
	Process  string // owning tracer's process label
	Category string // tail-tax attribution bucket ("" = classify by name)
	Start    time.Time
	Duration time.Duration
}

// End returns the span's end time.
func (d SpanData) End() time.Time { return d.Start.Add(d.Duration) }

// maxRetainedSpans is the default ring capacity: an always-on tracer
// retains the most recent spans up to this bound and evicts the oldest
// beyond it (counted in Dropped).
const maxRetainedSpans = 1 << 16

// tracerSeq partitions span-ID space between tracers in one process so
// client- and server-side tracers never collide.
var tracerSeq atomic.Uint64

// Tracer collects completed spans for one process (or one side of an RPC
// exchange). All methods are safe for concurrent use and are no-ops on a
// nil tracer, so instrumented code paths need no enablement checks.
//
// Retention is a bounded ring: the newest spans win, evicted spans are
// counted in Dropped. Head-based sampling (SetSampleRate) keeps 1-in-N
// traces, decided by a deterministic hash of the trace ID so every tier
// of a distributed request independently reaches the same keep/drop
// verdict with no extra wire state.
type Tracer struct {
	process    string
	base       uint64
	ids        atomic.Uint64
	dropped    atomic.Uint64
	sampledOut atomic.Uint64
	sampleRate atomic.Int64

	mu    sync.Mutex
	cap   int
	spans []SpanData // ring once len == cap
	next  int        // ring write cursor (oldest element once wrapped)
	wrap  bool       // the ring has evicted at least once
}

// NewTracer returns a tracer whose spans carry the given process label in
// trace exports.
func NewTracer(process string) *Tracer {
	return &Tracer{process: process, base: tracerSeq.Add(1) << 40, cap: maxRetainedSpans}
}

// SetCapacity bounds the span ring to n (default maxRetainedSpans).
// Call before recording; shrinking a live ring discards its contents.
func (t *Tracer) SetCapacity(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < len(t.spans) {
		t.spans, t.next, t.wrap = nil, 0, false
	}
	t.cap = n
}

// SetSampleRate keeps 1 in n traces (head-based): Start and Join hand out
// non-recording spans for the others. n <= 1 records everything. The
// keep/drop decision is a pure function of the trace ID, so tracers on
// every tier of a request agree without coordination.
func (t *Tracer) SetSampleRate(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sampleRate.Store(int64(n))
}

// sampleTrace reports whether traceID is kept at a 1-in-rate sampling.
// splitmix64 finalizer: sequential IDs must not alias the modulus.
func sampleTrace(traceID uint64, rate int64) bool {
	if rate <= 1 {
		return true
	}
	z := traceID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z%uint64(rate) == 0
}

// nextID mints a process-unique span ID.
func (t *Tracer) nextID() uint64 { return t.base | t.ids.Add(1) }

// span wraps data into a live span, applying the head-sampling verdict:
// a sampled-out span keeps its IDs (so trace context still propagates to
// downstream tiers, which reach the same verdict) but records nothing.
func (t *Tracer) span(d SpanData) *Span {
	s := &Span{tracer: t, data: d}
	if !sampleTrace(d.TraceID, t.sampleRate.Load()) {
		s.drop = true
		t.sampledOut.Add(1)
	}
	return s
}

// Start begins a new root span (a fresh trace). Returns nil on a nil
// tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	return t.span(SpanData{TraceID: id, SpanID: id, Name: name, Start: time.Now()})
}

// Join begins a span that continues a remote trace: the server side of an
// RPC call adopts the trace and parent IDs carried in the request headers.
// A zero traceID starts a fresh trace instead. Returns nil on a nil tracer.
func (t *Tracer) Join(name string, traceID, parentID uint64, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if traceID == 0 {
		traceID = t.nextID()
	}
	return t.span(SpanData{
		TraceID: traceID, SpanID: t.nextID(), ParentID: parentID,
		Name: name, Start: start,
	})
}

// record appends a completed span, evicting the oldest past the ring
// capacity.
func (t *Tracer) record(d SpanData) {
	d.Process = t.process
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, d)
		return
	}
	t.spans[t.next] = d
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
	}
	t.wrap = true
	t.dropped.Add(1)
}

// Spans returns a copy of the retained spans, oldest first; nil on a nil
// tracer.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.spans))
	if t.wrap {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
		return out
	}
	return append(out, t.spans...)
}

// Dropped reports spans evicted from the ring to make room for newer ones.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// SampledOut reports spans discarded by head-based sampling.
func (t *Tracer) SampledOut() uint64 {
	if t == nil {
		return 0
	}
	return t.sampledOut.Load()
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.next, t.wrap = 0, false
	t.dropped.Store(0)
	t.sampledOut.Store(0)
}

// Span is an in-progress span. A nil *Span is a valid no-op sink, which is
// what a nil tracer hands out: the disabled path costs one nil check and
// zero allocations.
type Span struct {
	tracer *Tracer
	drop   bool // head-sampled out: propagate IDs, record nothing
	data   SpanData
}

// TraceID returns the owning trace's ID; 0 on a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.TraceID
}

// SpanID returns this span's ID; 0 on a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// SetCategory stamps the tail-tax attribution bucket (one of the Cat*
// constants). No-op on nil.
func (s *Span) SetCategory(cat string) {
	if s == nil {
		return
	}
	s.data.Category = cat
}

// Child begins a nested span. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		drop:   s.drop,
		data: SpanData{
			TraceID: s.data.TraceID, SpanID: s.tracer.nextID(), ParentID: s.data.SpanID,
			Name: name, Start: time.Now(),
		},
	}
}

// ChildDone records an already-completed nested span — used by pipeline
// stages that time themselves with a single time.Now pair. No-op on nil.
func (s *Span) ChildDone(name string, start time.Time, d time.Duration) {
	s.ChildDoneCat(name, "", start, d)
}

// ChildDoneCat is ChildDone with an explicit attribution category.
func (s *Span) ChildDoneCat(name, cat string, start time.Time, d time.Duration) {
	if s == nil || s.drop {
		return
	}
	s.tracer.record(SpanData{
		TraceID: s.data.TraceID, SpanID: s.tracer.nextID(), ParentID: s.data.SpanID,
		Name: name, Category: cat, Start: start, Duration: d,
	})
}

// End completes the span and publishes it to the tracer. No-op on nil.
func (s *Span) End() {
	if s == nil || s.drop {
		return
	}
	s.data.Duration = time.Since(s.data.Start)
	s.tracer.record(s.data)
}
