package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one completed span: a named, timed segment of a request,
// linked to its trace and parent span. Spans cross process boundaries via
// the trace/parent IDs carried in rpc.Message headers.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for a root span
	Name     string
	Process  string // owning tracer's process label
	Start    time.Time
	Duration time.Duration
}

// maxRetainedSpans bounds a tracer's buffer so an always-on tracer cannot
// grow without limit; spans beyond the cap are counted in Dropped.
const maxRetainedSpans = 1 << 16

// tracerSeq partitions span-ID space between tracers in one process so
// client- and server-side tracers never collide.
var tracerSeq atomic.Uint64

// Tracer collects completed spans for one process (or one side of an RPC
// exchange). All methods are safe for concurrent use and are no-ops on a
// nil tracer, so instrumented code paths need no enablement checks.
type Tracer struct {
	process string
	base    uint64
	ids     atomic.Uint64
	dropped atomic.Uint64

	mu    sync.Mutex
	spans []SpanData
}

// NewTracer returns a tracer whose spans carry the given process label in
// trace exports.
func NewTracer(process string) *Tracer {
	return &Tracer{process: process, base: tracerSeq.Add(1) << 40}
}

// nextID mints a process-unique span ID.
func (t *Tracer) nextID() uint64 { return t.base | t.ids.Add(1) }

// Start begins a new root span (a fresh trace). Returns nil on a nil
// tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	return &Span{
		tracer: t,
		data:   SpanData{TraceID: id, SpanID: id, Name: name, Start: time.Now()},
	}
}

// Join begins a span that continues a remote trace: the server side of an
// RPC call adopts the trace and parent IDs carried in the request headers.
// A zero traceID starts a fresh trace instead. Returns nil on a nil tracer.
func (t *Tracer) Join(name string, traceID, parentID uint64, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if traceID == 0 {
		traceID = t.nextID()
	}
	return &Span{
		tracer: t,
		data: SpanData{
			TraceID: traceID, SpanID: t.nextID(), ParentID: parentID,
			Name: name, Start: start,
		},
	}
}

// record appends a completed span, dropping past the retention cap.
func (t *Tracer) record(d SpanData) {
	d.Process = t.process
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxRetainedSpans {
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, d)
}

// Spans returns a copy of the completed spans recorded so far; nil on a
// nil tracer.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports spans discarded past the retention cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.dropped.Store(0)
}

// Span is an in-progress span. A nil *Span is a valid no-op sink, which is
// what a nil tracer hands out: the disabled path costs one nil check and
// zero allocations.
type Span struct {
	tracer *Tracer
	data   SpanData
}

// TraceID returns the owning trace's ID; 0 on a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.TraceID
}

// SpanID returns this span's ID; 0 on a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// Child begins a nested span. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		data: SpanData{
			TraceID: s.data.TraceID, SpanID: s.tracer.nextID(), ParentID: s.data.SpanID,
			Name: name, Start: time.Now(),
		},
	}
}

// ChildDone records an already-completed nested span — used by pipeline
// stages that time themselves with a single time.Now pair. No-op on nil.
func (s *Span) ChildDone(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	s.tracer.record(SpanData{
		TraceID: s.data.TraceID, SpanID: s.tracer.nextID(), ParentID: s.data.SpanID,
		Name: name, Start: start, Duration: d,
	})
}

// End completes the span and publishes it to the tracer. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Duration = time.Since(s.data.Start)
	s.tracer.record(s.data)
}
