package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// exactQuantile is the nearest-rank order statistic histogram quantiles
// are measured against.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// The documented contract: quantile estimates stay within QuantileRelError
// of the exact sorted-sample quantile, for arbitrary samples across the
// histogram's range.
func TestHistogramQuantileErrorBound(t *testing.T) {
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	property := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram("prop", "")
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Map arbitrary inputs into the histogram's covered range,
			// keeping some exact zeros in the mix.
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			for v > 1e9 {
				v /= 1e9
			}
			sample = append(sample, v)
			h.Record(v)
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		for _, q := range quantiles {
			want := exactQuantile(sorted, q)
			got := h.Quantile(q)
			if want == 0 { //modelcheck:ignore floatcmp — exact zeros land in the exact zero bucket
				if got != 0 { //modelcheck:ignore floatcmp — see above
					t.Logf("q=%v: want exact 0, got %v", q, got)
					return false
				}
				continue
			}
			if rel := math.Abs(got-want) / want; rel > QuantileRelError+1e-12 {
				t.Logf("q=%v: want %v, got %v, rel err %v > %v", q, want, got, rel, QuantileRelError)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	h := NewHistogram("agg", "")
	values := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, 0}
	sum := 0.0
	for _, v := range values {
		h.Record(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(values)) {
		t.Errorf("count = %d, want %d", s.Count, len(values))
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
	if s.Min != 0 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 0/9", s.Min, s.Max)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %v, want exact min 0", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("p100 = %v, want exact max 9", got)
	}
	if m := s.Mean(); math.Abs(m-sum/float64(len(values))) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

// Concurrent recorders must not lose observations (run under -race via
// scripts/check.sh).
func TestHistogramConcurrentRecorders(t *testing.T) {
	h := NewHistogram("stress", "")
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(float64(g*perG+i+1) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	total := uint64(0)
	for _, b := range h.Snapshot().Buckets {
		total += b.Count
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
	// The exact sum of 1e-6 * (1 + 2 + ... + N).
	n := float64(goroutines * perG)
	want := 1e-6 * n * (n + 1) / 2
	if rel := math.Abs(h.Sum()-want) / want; rel > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestRegistryReuseAndConflicts(t *testing.T) {
	r := NewRegistry()
	c1, err := r.Counter("requests_total", "requests")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Counter("requests_total", "requests")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same name should return the same counter")
	}
	if _, err := r.Gauge("requests_total", ""); err == nil {
		t.Error("kind conflict should fail")
	}
	if _, err := r.Counter("bad name!", ""); err == nil {
		t.Error("invalid name should fail")
	}
	var nilReg *Registry
	if _, err := nilReg.Counter("x", ""); err == nil {
		t.Error("nil registry should fail, not panic")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("calls_total", "total calls")
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.Gauge("queue_depth", "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Histogram("latency_seconds", "call latency")
	if err != nil {
		t.Fatal(err)
	}
	c.Add(3)
	g.Set(-2)
	h.Record(0.5)
	h.Record(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE calls_total counter", "calls_total 3",
		"# TYPE queue_depth gauge", "queue_depth -2",
		"# TYPE latency_seconds summary",
		`latency_seconds{quantile="0.5"}`,
		"latency_seconds_sum 2", "latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// Nil-sink instruments must be allocation-free so disabled telemetry adds
// no pressure to the rpc hot path.
func TestDisabledPathAllocationFree(t *testing.T) {
	var (
		tr *Tracer
		c  *Counter
		g  *Gauge
		h  *Histogram
	)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("call")
		child := sp.Child("stage")
		child.End()
		sp.ChildDone("stage2", time.Time{}, 0)
		sp.End()
		c.Inc()
		g.Add(1)
		h.Record(1.0)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v per op, want 0", allocs)
	}
}
