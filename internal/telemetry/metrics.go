package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

// Gauge is an instantaneous atomic level (queue depth, in-flight requests).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores an absolute level. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta (negative to decrease). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) metricName() string { return g.name }

// Histogram bucket geometry: histSub buckets per power of two, covering
// [2^histMinExp, 2^histMaxExp). A recorded value v lands in the bucket
// floor(log2(v)·histSub); a quantile is estimated as its bucket's geometric
// midpoint, so the estimate is off from the true sample value by at most a
// factor of 2^(1/(2·histSub)) — the QuantileRelError bound below. Values
// outside the covered range clamp to the edge buckets; the range spans
// sub-nanosecond seconds to ~5·10^14 cycles, far beyond what the rpc and
// sim layers record.
const (
	histSub     = 16
	histMinExp  = -40 // 2^-40 s ≈ 0.9 ps
	histMaxExp  = 49  // 2^49 ≈ 5.6e14
	histBuckets = (histMaxExp - histMinExp) * histSub
)

// QuantileRelError bounds the relative error of histogram quantile
// estimates against the true sample order statistic: with histSub = 16
// buckets per power of two, 2^(1/32) - 1 ≈ 2.19%. Exact for samples that
// clamp at Min/Max (the estimate is clipped to the observed range).
var QuantileRelError = math.Exp2(1/(2.0*histSub)) - 1

// Histogram is a lock-free log-bucketed distribution of non-negative
// float64 observations. Record is safe for concurrent use; Snapshot and
// Quantile may run concurrently with recorders and observe a consistent
// enough view (bucket totals may trail the count by in-flight updates).
type Histogram struct {
	name, help string
	count      atomic.Uint64
	zero       atomic.Uint64 // observations ≤ 0 or NaN, clamped to 0
	sumBits    atomic.Uint64
	minBits    atomic.Uint64 // +Inf until first Record
	maxBits    atomic.Uint64 // -Inf until first Record
	buckets    [histBuckets]atomic.Uint64
}

// NewHistogram returns a standalone histogram (not attached to a
// Registry); internal/sim uses this for its always-on latency accounting.
func NewHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func (h *Histogram) metricName() string { return h.name }

// bucketIndex maps a positive value to its bucket, clamping at the edges.
func bucketIndex(v float64) int {
	idx := int(math.Floor(math.Log2(v)*histSub)) - histMinExp*histSub
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns the geometric midpoint of bucket idx.
func bucketMid(idx int) float64 {
	return math.Exp2((float64(idx+histMinExp*histSub) + 0.5) / histSub)
}

// Record adds one observation. Non-positive and NaN observations count as
// exact zeros. No-op on a nil histogram.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v <= 0 {
		v = 0
		h.zero.Add(1)
	} else {
		h.buckets[bucketIndex(v)].Add(1)
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of observations; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) within QuantileRelError of
// the true order statistic. It returns 0 for an empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Bucket is one populated histogram bucket: Count observations fell in
// [Lo, Hi) (the zero bucket has Lo = Hi = 0).
type Bucket struct {
	Lo, Hi float64
	Count  uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram: exact count,
// sum and extrema plus the populated buckets, small enough to embed in
// result structs (only non-empty buckets are kept).
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Min     float64 // +Inf when empty
	Max     float64 // -Inf when empty
	Buckets []Bucket
}

// Snapshot copies the current state. A nil histogram yields an empty
// snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	if z := h.zero.Load(); z > 0 {
		s.Buckets = append(s.Buckets, Bucket{Count: z})
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo := math.Exp2(float64(i+histMinExp*histSub) / histSub)
			hi := math.Exp2(float64(i+1+histMinExp*histSub) / histSub)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// Merge returns the combination of two snapshots taken from histograms
// with the standard bucket geometry, as if every observation had been
// recorded into one histogram: counts and sums add, extrema combine, and
// per-bucket counts merge by bucket bounds, so quantiles of the merged
// snapshot carry the same QuantileRelError bound. Merging in a fixed
// order is deterministic (float summation order is the only source of
// asymmetry). The sharded fleet driver uses this to aggregate per-shard
// latency distributions.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   math.Min(s.Min, o.Min),
		Max:   math.Max(s.Max, o.Max),
	}
	// Bucket lists are sorted ascending by Lo with the zero bucket first;
	// merge like sorted lists, summing buckets with equal bounds.
	out.Buckets = make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) && j < len(o.Buckets) {
		a, b := s.Buckets[i], o.Buckets[j]
		switch {
		//modelcheck:ignore floatcmp — bucket bounds are exact powers of two shared by construction
		case a.Lo == b.Lo:
			out.Buckets = append(out.Buckets, Bucket{Lo: a.Lo, Hi: a.Hi, Count: a.Count + b.Count})
			i++
			j++
		case a.Lo < b.Lo:
			out.Buckets = append(out.Buckets, a)
			i++
		default:
			out.Buckets = append(out.Buckets, b)
			j++
		}
	}
	out.Buckets = append(out.Buckets, s.Buckets[i:]...)
	out.Buckets = append(out.Buckets, o.Buckets[j:]...)
	if len(out.Buckets) == 0 {
		out.Buckets = nil
	}
	return out
}

// Delta returns the observations recorded between prev and s, where prev
// is an earlier snapshot of the same histogram: counts, sums, and
// per-bucket totals subtract, so quantiles of the delta describe only the
// window between the two snapshots (a rolling p99, for the anomaly
// triggers in internal/record). The window's exact Min/Max are not
// recoverable from cumulative snapshots, so the delta's extrema are the
// tightest bucket bounds of its populated buckets — Quantile estimates
// keep the standard QuantileRelError bound. Buckets that shrank (prev is
// not an earlier snapshot of the same histogram) clamp to zero.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
	if s.Count > prev.Count {
		out.Count = s.Count - prev.Count
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	// Both bucket lists are sorted ascending by Lo (zero bucket first);
	// walk them like sorted lists, subtracting matching buckets.
	i, j := 0, 0
	emit := func(b Bucket) {
		out.Buckets = append(out.Buckets, b)
		//modelcheck:ignore floatcmp — the zero bucket is tagged by exact sentinel bounds
		if b.Lo == 0 && b.Hi == 0 {
			out.Min = 0
			if out.Max < 0 {
				out.Max = 0
			}
			return
		}
		if b.Lo < out.Min {
			out.Min = b.Lo
		}
		if b.Hi > out.Max {
			out.Max = b.Hi
		}
	}
	for i < len(s.Buckets) {
		a := s.Buckets[i]
		//modelcheck:ignore floatcmp — bucket bounds are exact powers of two shared by construction
		for j < len(prev.Buckets) && prev.Buckets[j].Lo < a.Lo {
			j++
		}
		//modelcheck:ignore floatcmp — bucket bounds are exact powers of two shared by construction
		if j < len(prev.Buckets) && prev.Buckets[j].Lo == a.Lo {
			if a.Count > prev.Buckets[j].Count {
				emit(Bucket{Lo: a.Lo, Hi: a.Hi, Count: a.Count - prev.Buckets[j].Count})
			}
			j++
		} else if a.Count > 0 {
			emit(a)
		}
		i++
	}
	return out
}

// Mean returns the exact sample mean, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile within QuantileRelError of the true
// order statistic (nearest-rank). Estimates clip to the exact observed
// [Min, Max], so Quantile(0) and Quantile(1) are exact.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank <= 1 {
		return s.Min // the rank-1 order statistic is the exact minimum
	}
	if rank >= total {
		return s.Max
	}
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			//modelcheck:ignore floatcmp — the zero bucket is tagged by exact sentinel bounds
			if b.Lo == 0 && b.Hi == 0 {
				return 0
			}
			est := math.Sqrt(b.Lo * b.Hi) // geometric midpoint
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		val := math.Float64frombits(old) + v
		if bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// casMin lowers the stored float64 to v if v is smaller.
func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMax raises the stored float64 to v if v is larger.
func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
