package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// exportRegistry builds a registry with one of each instrument kind,
// populated with known values.
func exportRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	ctr, err := reg.Counter("requests_total", "requests handled")
	if err != nil {
		t.Fatal(err)
	}
	ctr.Add(7)
	g, err := reg.Gauge("inflight", "requests in flight")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(-3)
	h, err := reg.Histogram("latency_seconds", "request latency")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) / 100)
	}
	return reg
}

func TestWritePrometheusShape(t *testing.T) {
	var sb strings.Builder
	if err := exportRegistry(t).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP requests_total requests handled",
		"# TYPE requests_total counter",
		"requests_total 7",
		"# HELP inflight requests in flight",
		"# TYPE inflight gauge",
		"inflight -3",
		"# HELP latency_seconds request latency",
		"# TYPE latency_seconds summary",
		`latency_seconds{quantile="0.5"}`,
		`latency_seconds{quantile="0.95"}`,
		`latency_seconds{quantile="0.99"}`,
		`latency_seconds{quantile="0.999"}`,
		"latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// _sum of 0.01..1.00 is 50.5, rendered with %g.
	if !strings.Contains(out, "latency_seconds_sum 50.5") {
		t.Errorf("exposition sum line wrong:\n%s", out)
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestWriteChromeTraceJSON(t *testing.T) {
	base := time.Unix(1700000000, 0)
	spans := []SpanData{
		{TraceID: 42, SpanID: 2, ParentID: 1, Name: "serialize", Process: "client",
			Start: base.Add(5 * time.Microsecond), Duration: 10 * time.Microsecond},
		{TraceID: 42, SpanID: 1, Name: "call", Process: "client",
			Start: base, Duration: 30 * time.Microsecond},
		{TraceID: 42, SpanID: 3, ParentID: 1, Name: "handle", Process: "server",
			Start: base.Add(12 * time.Microsecond), Duration: 8 * time.Microsecond},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, sb.String())
	}

	// 3 span events + one process_name metadata event per distinct process.
	var meta, complete int
	pidByProcess := map[string]int{}
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			pidByProcess[ev.Args["name"]] = ev.Pid
		case "X":
			complete++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 3", meta, complete)
	}
	if pidByProcess["client"] == pidByProcess["server"] {
		t.Errorf("client and server share pid %d", pidByProcess["client"])
	}

	// Events are emitted in start order regardless of input order, and a
	// span's args carry its IDs in hex.
	var xs []string
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			xs = append(xs, ev.Name)
		}
	}
	if got := strings.Join(xs, ","); got != "call,serialize,handle" {
		t.Errorf("span order = %s, want call,serialize,handle", got)
	}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" && ev.Name == "serialize" {
			if ev.Args["trace"] != "2a" || ev.Args["span"] != "2" || ev.Args["parent"] != "1" {
				t.Errorf("serialize args = %v", ev.Args)
			}
			if ev.Dur != 10 {
				t.Errorf("serialize dur = %g us, want 10", ev.Dur)
			}
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	var trace map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := trace["traceEvents"]; !ok {
		t.Errorf("empty trace missing traceEvents key: %s", sb.String())
	}
}

func TestHistogramTextBins(t *testing.T) {
	reg := NewRegistry()
	h, err := reg.Histogram("spread", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Record(0)
	for i := 0; i < 64; i++ {
		h.Record(1)
	}
	for i := 0; i < 16; i++ {
		h.Record(1000)
	}
	out := HistogramText("spread", h.Snapshot(), 40)
	if !strings.Contains(out, "spread: n=81") {
		t.Errorf("header missing count:\n%s", out)
	}
	for _, want := range []string{"zero", "p50=", "p95=", "p99=", "p999="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One bar per populated power-of-two bin: zero, ~1, ~1000.
	if bars := strings.Count(out, "|"); bars < 3 {
		t.Errorf("want >= 3 bars, got %d:\n%s", bars, out)
	}
}

func TestHistogramTextEmpty(t *testing.T) {
	reg := NewRegistry()
	h, err := reg.Histogram("empty", "")
	if err != nil {
		t.Fatal(err)
	}
	out := HistogramText("empty", h.Snapshot(), 40)
	if !strings.Contains(out, "n=0") {
		t.Errorf("empty histogram header wrong:\n%s", out)
	}
	if strings.Contains(out, "|") {
		t.Errorf("empty histogram should render no bars:\n%s", out)
	}
}

func TestWriteMetricsFileRoundTrip(t *testing.T) {
	reg := exportRegistry(t)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := WriteMetricsFile(path, reg); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != sb.String() {
		t.Errorf("file contents diverge from WritePrometheus:\nfile:\n%s\ndirect:\n%s", onDisk, sb.String())
	}
}

func TestWriteFileErrors(t *testing.T) {
	reg := exportRegistry(t)
	missingDir := filepath.Join(t.TempDir(), "no", "such", "dir", "out.prom")
	if err := WriteMetricsFile(missingDir, reg); err == nil {
		t.Error("WriteMetricsFile into a missing directory should fail")
	}
	if err := WriteTraceFile(missingDir, nil); err == nil {
		t.Error("WriteTraceFile into a missing directory should fail")
	}
	// A directory target fails at create time on write.
	dir := t.TempDir()
	if err := WriteMetricsFile(dir, reg); err == nil {
		t.Error("WriteMetricsFile onto a directory should fail")
	}
}

func TestWriteTraceFileRoundTrip(t *testing.T) {
	tr := NewTracer("proc")
	sp := tr.Start("op")
	time.Sleep(time.Millisecond)
	sp.End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 2 { // metadata + one span
		t.Errorf("trace file has %d events, want 2", len(trace.TraceEvents))
	}
}
