package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyAndIDs(t *testing.T) {
	tr := NewTracer("client")
	root := tr.Start("rpc.Call/echo")
	if root.TraceID() == 0 || root.SpanID() != root.TraceID() {
		t.Fatalf("root span ids: trace=%d span=%d", root.TraceID(), root.SpanID())
	}
	child := root.Child("serialize")
	time.Sleep(time.Millisecond)
	child.End()
	root.ChildDone("frame-write", time.Now(), 42*time.Microsecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != root.TraceID() {
			t.Errorf("%s: trace id %d, want %d", s.Name, s.TraceID, root.TraceID())
		}
		if s.Process != "client" {
			t.Errorf("%s: process %q", s.Name, s.Process)
		}
	}
	for _, name := range []string{"serialize", "frame-write"} {
		if byName[name].ParentID != root.SpanID() {
			t.Errorf("%s parent = %d, want %d", name, byName[name].ParentID, root.SpanID())
		}
	}
	if byName["serialize"].Duration < time.Millisecond {
		t.Errorf("serialize duration = %v, want >= 1ms", byName["serialize"].Duration)
	}
}

func TestJoinContinuesRemoteTrace(t *testing.T) {
	client := NewTracer("client")
	server := NewTracer("server")
	call := client.Start("rpc.Call/get")
	handler := server.Join("rpc.Server/get", call.TraceID(), call.SpanID(), time.Now())
	handler.End()
	call.End()

	ss := server.Spans()
	if len(ss) != 1 {
		t.Fatalf("server spans = %d", len(ss))
	}
	if ss[0].TraceID != call.TraceID() || ss[0].ParentID != call.SpanID() {
		t.Errorf("joined span not linked: %+v vs trace=%d parent=%d", ss[0], call.TraceID(), call.SpanID())
	}
	if ss[0].SpanID == call.SpanID() {
		t.Error("joined span must mint its own span id")
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	client := NewTracer("client")
	server := NewTracer("server")
	call := client.Start("rpc.Call/echo")
	call.ChildDone("serialize", call.data.Start, time.Microsecond)
	h := server.Join("rpc.Server/echo", call.TraceID(), call.SpanID(), time.Now())
	h.End()
	call.End()

	var buf bytes.Buffer
	all := append(client.Spans(), server.Spans()...)
	if err := WriteChromeTrace(&buf, all); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range parsed.TraceEvents {
		names[e.Name] = true
		if e.Ph == "X" {
			pids[e.Pid] = true
		}
	}
	for _, want := range []string{"rpc.Call/echo", "serialize", "rpc.Server/echo", "process_name"} {
		if !names[want] {
			t.Errorf("trace missing event %q", want)
		}
	}
	if len(pids) != 2 {
		t.Errorf("expected 2 pids (client, server), got %v", pids)
	}
}

func TestTracerRetentionCap(t *testing.T) {
	tr := NewTracer("capped")
	for i := 0; i < maxRetainedSpans+10; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Spans()); got != maxRetainedSpans {
		t.Fatalf("retained %d spans, want cap %d", got, maxRetainedSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Error("Reset should clear spans and drop count")
	}
}

func TestHistogramText(t *testing.T) {
	h := NewHistogram("lat", "")
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	out := HistogramText("lat", h.Snapshot(), 30)
	if !strings.Contains(out, "n=100") || !strings.Contains(out, "p99=") {
		t.Errorf("summary missing fields:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 4 {
		t.Errorf("expected bucket bars:\n%s", out)
	}
}
