package telemetry

import (
	"strings"
	"testing"
)

// Regression tests for exposition-format hardening: metric names and help
// text are attacker-influenced when instruments are created from external
// input (a recorded trace's service names, say), and used to be
// interpolated raw into the # HELP/# TYPE lines.

// A hostile metric name must not reach the exposition: a newline in the
// name would inject arbitrary lines (fake samples, forged TYPE headers)
// into everything scraping /metrics.
func TestWritePrometheusRejectsHostileName(t *testing.T) {
	hostile := NewHistogram("evil\nfake_metric{job=\"x\"} 1\n# TYPE smuggled counter", "h")
	hostile.Record(1)
	var sb strings.Builder
	if err := hostile.writeProm(&sb); err == nil {
		t.Fatalf("hostile metric name accepted; exposition:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "smuggled") {
		t.Fatalf("hostile name leaked into the exposition:\n%s", sb.String())
	}
}

// Help text with newlines and backslashes must be escaped per the
// exposition format, not emitted raw.
func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("ok_metric", "line one\nline two \\ backslash")
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# HELP ok_metric line one\nline two \\ backslash`
	if !strings.Contains(out, want) {
		t.Errorf("help not escaped:\n%s", out)
	}
	// Exactly the expected lines: HELP, TYPE, sample — no injected extras.
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("exposition has %d lines, want 3:\n%s", got, out)
	}
}

func TestEscapeHelpPassthrough(t *testing.T) {
	const plain = "requests served by this endpoint"
	if got := escapeHelp(plain); got != plain {
		t.Errorf("escapeHelp(%q) = %q", plain, got)
	}
}
