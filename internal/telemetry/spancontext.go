package telemetry

import "context"

// spanKey is the context key carrying the request's server-side span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp so a handler can hang child
// spans (work, downstream calls) off its request's server span. A nil sp
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span planted by ContextWithSpan; nil (the
// no-op sink) when absent, so callers never need a presence check.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
