package telemetry

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// Merging two snapshots must be indistinguishable from recording all
// observations into one histogram.
func TestSnapshotMergeEqualsCombinedRecording(t *testing.T) {
	a := NewHistogram("a", "")
	b := NewHistogram("b", "")
	all := NewHistogram("all", "")
	va := []float64{0.001, 0.5, 3, 3, 250, 0}
	vb := []float64{0.002, 0.5, 7, 1e6, -4}
	for _, v := range va {
		a.Record(v)
		all.Record(v)
	}
	for _, v := range vb {
		b.Record(v)
		all.Record(v)
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := all.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max { //modelcheck:ignore floatcmp — merge must be indistinguishable from combined recording, bit-exactly
		t.Errorf("merged scalars = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) {
		t.Errorf("merged buckets:\n got %+v\nwant %+v", got.Buckets, want.Buckets)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if gq, wq := got.Quantile(q), want.Quantile(q); gq != wq { //modelcheck:ignore floatcmp — identical buckets must yield identical quantiles
			t.Errorf("q=%v: merged %v != combined %v", q, gq, wq)
		}
	}
}

func TestSnapshotMergeEmpty(t *testing.T) {
	var empty HistogramSnapshot
	empty.Min = math.Inf(1)
	empty.Max = math.Inf(-1)

	h := NewHistogram("h", "")
	h.Record(2)
	h.Record(8)
	snap := h.Snapshot()

	if got := snap.Merge(empty); !reflect.DeepEqual(got, snap) {
		t.Errorf("merge with empty changed the snapshot:\n got %+v\nwant %+v", got, snap)
	}
	if got := empty.Merge(snap); !reflect.DeepEqual(got, snap) {
		t.Errorf("empty.Merge(x) != x:\n got %+v\nwant %+v", got, snap)
	}
	both := empty.Merge(empty)
	if both.Count != 0 || !math.IsInf(both.Min, 1) || !math.IsInf(both.Max, -1) || both.Buckets != nil {
		t.Errorf("empty merge = %+v, want empty", both)
	}
}

// clampSample maps an arbitrary quick-generated float64 onto a finite
// non-negative observation: values near ±MaxFloat64 would overflow the
// histogram's running sum (Inf−Inf = NaN breaks any round-trip
// property) without exercising anything the bucketing cares about.
func clampSample(v float64) float64 {
	v = math.Abs(v)
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return 1e12
	case v > 1e12:
		return math.Mod(v, 1e12)
	}
	return v
}

// Property: merging any number of per-tier snapshots is exactly the
// histogram of the concatenated sample streams — bucket-identical, and
// therefore quantile-identical within the documented bucket resolution.
// This is what lets the topology driver aggregate per-node histograms
// into fleet rollups without re-observing a single sample.
func TestSnapshotMergeConcatenationProperty(t *testing.T) {
	f := func(tiers [][]float64) bool {
		all := NewHistogram("all", "")
		merged := HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
		n := 0
		for i, samples := range tiers {
			h := NewHistogram("tier", "")
			for _, v := range samples {
				v = clampSample(v)
				h.Record(v)
				all.Record(v)
				n++
			}
			// Alternate merge direction so the property covers both
			// accumulate-into and merge-onto orders.
			if i%2 == 0 {
				merged = merged.Merge(h.Snapshot())
			} else {
				merged = h.Snapshot().Merge(merged)
			}
		}
		want := all.Snapshot()
		if merged.Count != uint64(n) || merged.Count != want.Count {
			return false
		}
		if n > 0 && (merged.Min != want.Min || merged.Max != want.Max) { //modelcheck:ignore floatcmp — extrema are tracked values, not computed; identity is the contract
			return false
		}
		if !reflect.DeepEqual(merged.Buckets, want.Buckets) {
			return false
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			mq, wq := merged.Quantile(q), want.Quantile(q)
			if math.Abs(mq-wq) > QuantileRelError*math.Max(mq, wq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Delta and Merge are inverses over a window. Snapshot s1,
// record more, snapshot s2: the window s2.Delta(s1) merged back onto s1
// reconstructs s2's counts, sum, and buckets exactly, and the window's
// own quantiles stay within bucket resolution of a histogram holding
// only the window's samples. (Extrema are excluded: Delta documents that
// a window's Min/Max are recovered from bucket bounds, not tracked.)
func TestSnapshotDeltaMergeRoundTripProperty(t *testing.T) {
	f := func(first, second []float64) bool {
		h := NewHistogram("h", "")
		windowOnly := NewHistogram("w", "")
		for _, v := range first {
			h.Record(clampSample(v))
		}
		s1 := h.Snapshot()
		for _, v := range second {
			h.Record(clampSample(v))
			windowOnly.Record(clampSample(v))
		}
		s2 := h.Snapshot()
		window := s2.Delta(s1)
		if window.Count != uint64(len(second)) {
			return false
		}
		back := s1.Merge(window)
		if back.Count != s2.Count || !reflect.DeepEqual(back.Buckets, s2.Buckets) {
			return false
		}
		if math.Abs(back.Sum-s2.Sum) > 1e-9*math.Max(1, math.Abs(s2.Sum)) {
			return false
		}
		wantW := windowOnly.Snapshot()
		for _, q := range []float64{0.5, 0.99} {
			gq, wq := window.Quantile(q), wantW.Quantile(q)
			if math.Abs(gq-wq) > 2*QuantileRelError*math.Max(gq, wq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: merge is commutative on everything but float summation order,
// and the merged count always equals the sum of parts.
func TestSnapshotMergeCommutativeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		a := NewHistogram("a", "")
		b := NewHistogram("b", "")
		for _, v := range xs {
			a.Record(math.Abs(v))
		}
		for _, v := range ys {
			b.Record(math.Abs(v))
		}
		ab := a.Snapshot().Merge(b.Snapshot())
		ba := b.Snapshot().Merge(a.Snapshot())
		if ab.Count != uint64(len(xs)+len(ys)) {
			return false
		}
		if ab.Count != ba.Count || ab.Min != ba.Min || ab.Max != ba.Max { //modelcheck:ignore floatcmp — commutativity on tracked extrema is exact
			return false
		}
		return reflect.DeepEqual(ab.Buckets, ba.Buckets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
