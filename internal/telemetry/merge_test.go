package telemetry

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// Merging two snapshots must be indistinguishable from recording all
// observations into one histogram.
func TestSnapshotMergeEqualsCombinedRecording(t *testing.T) {
	a := NewHistogram("a", "")
	b := NewHistogram("b", "")
	all := NewHistogram("all", "")
	va := []float64{0.001, 0.5, 3, 3, 250, 0}
	vb := []float64{0.002, 0.5, 7, 1e6, -4}
	for _, v := range va {
		a.Record(v)
		all.Record(v)
	}
	for _, v := range vb {
		b.Record(v)
		all.Record(v)
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := all.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
		t.Errorf("merged scalars = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) {
		t.Errorf("merged buckets:\n got %+v\nwant %+v", got.Buckets, want.Buckets)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if gq, wq := got.Quantile(q), want.Quantile(q); gq != wq {
			t.Errorf("q=%v: merged %v != combined %v", q, gq, wq)
		}
	}
}

func TestSnapshotMergeEmpty(t *testing.T) {
	var empty HistogramSnapshot
	empty.Min = math.Inf(1)
	empty.Max = math.Inf(-1)

	h := NewHistogram("h", "")
	h.Record(2)
	h.Record(8)
	snap := h.Snapshot()

	if got := snap.Merge(empty); !reflect.DeepEqual(got, snap) {
		t.Errorf("merge with empty changed the snapshot:\n got %+v\nwant %+v", got, snap)
	}
	if got := empty.Merge(snap); !reflect.DeepEqual(got, snap) {
		t.Errorf("empty.Merge(x) != x:\n got %+v\nwant %+v", got, snap)
	}
	both := empty.Merge(empty)
	if both.Count != 0 || !math.IsInf(both.Min, 1) || !math.IsInf(both.Max, -1) || both.Buckets != nil {
		t.Errorf("empty merge = %+v, want empty", both)
	}
}

// Property: merge is commutative on everything but float summation order,
// and the merged count always equals the sum of parts.
func TestSnapshotMergeCommutativeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		a := NewHistogram("a", "")
		b := NewHistogram("b", "")
		for _, v := range xs {
			a.Record(math.Abs(v))
		}
		for _, v := range ys {
			b.Record(math.Abs(v))
		}
		ab := a.Snapshot().Merge(b.Snapshot())
		ba := b.Snapshot().Merge(a.Snapshot())
		if ab.Count != uint64(len(xs)+len(ys)) {
			return false
		}
		if ab.Count != ba.Count || ab.Min != ba.Min || ab.Max != ba.Max {
			return false
		}
		return reflect.DeepEqual(ab.Buckets, ba.Buckets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
