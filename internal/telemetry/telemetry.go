// Package telemetry is the reproduction's runtime observability layer:
// low-overhead counters, gauges, and log-bucketed latency histograms, plus
// span-based request tracing with exporters for Prometheus-style text
// metrics and Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// The paper's methodology rests on exactly this kind of fleet-wide
// observability: Strobelight sampling (§2.2) produced the functionality
// breakdowns of Tables 2-3, and production A/B latency measurement
// validated the model in Table 6. The synthetic side of this repository
// (internal/trace, internal/profiler) models that profiler; this package
// observes the *real* serving stack — internal/rpc's client/server and
// pipeline stages, internal/sim's queues — so measured latency
// distributions can be compared against the Accelerometer model's
// predictions.
//
// Design rules:
//
//   - Hot-path instruments are lock-free: counters and histogram buckets
//     are atomics, spans buffer locally and publish once at End.
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram, *Tracer, or *Span are no-ops, so a disabled
//     (nil-sink) instrumentation path costs a nil check and allocates
//     nothing. Benchmarked in the repository root's bench suite.
//   - Quantile estimates carry a documented relative-error bound
//     (QuantileRelError); exact counts (Count, Sum, Min, Max) are exact.
package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"
)

// metricName validates Prometheus-compatible metric names.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// metric is one named instrument held by a Registry.
type metric interface {
	metricName() string
	writeProm(w io.Writer) error
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// Creating an instrument that already exists returns the existing one, so
// independent components can share a registry without coordination.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// lookup returns the existing metric under name or registers the one built
// by mk. It fails on invalid names and kind conflicts.
func (r *Registry) lookup(name string, mk func() metric) (metric, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: nil registry")
	}
	if !metricName.MatchString(name) {
		return nil, fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		return existing, nil
	}
	m := mk()
	r.byName[name] = m
	return m, nil
}

// Counter returns the registered counter under name, creating it if needed.
func (r *Registry) Counter(name, help string) (*Counter, error) {
	m, err := r.lookup(name, func() metric { return &Counter{name: name, help: help} })
	if err != nil {
		return nil, err
	}
	c, ok := m.(*Counter)
	if !ok {
		return nil, fmt.Errorf("telemetry: metric %q already registered as a different kind", name)
	}
	return c, nil
}

// Gauge returns the registered gauge under name, creating it if needed.
func (r *Registry) Gauge(name, help string) (*Gauge, error) {
	m, err := r.lookup(name, func() metric { return &Gauge{name: name, help: help} })
	if err != nil {
		return nil, err
	}
	g, ok := m.(*Gauge)
	if !ok {
		return nil, fmt.Errorf("telemetry: metric %q already registered as a different kind", name)
	}
	return g, nil
}

// Histogram returns the registered histogram under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) (*Histogram, error) {
	m, err := r.lookup(name, func() metric { return NewHistogram(name, help) })
	if err != nil {
		return nil, err
	}
	h, ok := m.(*Histogram)
	if !ok {
		return nil, fmt.Errorf("telemetry: metric %q already registered as a different kind", name)
	}
	return h, nil
}

// metrics returns the registered metrics sorted by name.
func (r *Registry) metrics() []metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, 0, len(r.byName))
	for _, m := range r.byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}
