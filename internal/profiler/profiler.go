// Package profiler reproduces the paper's two-stage characterization
// pipeline (§2.2): a Strobelight-like collector gathers function call
// traces with cycle and instruction counts, then internal tools (1) tag
// each leaf function with a Table 2 category and aggregate cycles per leaf
// category, and (2) bucket each call trace into a Table 3 microservice
// functionality and aggregate cycles per functionality.
//
// Frames follow the "domain.function" naming convention of package trace.
// The leaf tagger dispatches on the leaf frame's domain; the functionality
// bucketer scans a stack from leaf to root for the innermost "func.*"
// marker frame, mirroring how the paper's tool assigns a whole trace (e.g.
// clone → ... → memcpy) to the functionality that invoked it.
package profiler

import (
	"fmt"
	"sort"

	"repro/internal/fleetdata"
	"repro/internal/trace"
)

// LeafTagger assigns Table 2 leaf categories to leaf functions by frame
// domain.
type LeafTagger struct {
	byDomain map[string]string
	fallback string
}

// NewLeafTagger returns a tagger with the reproduction's default rules:
//
//	mem.*    → Memory        kernel.* → Kernel      hash.* → Hashing
//	sync.*   → Synchronization  zstd.* → ZSTD       math.* → Math
//	ssl.*    → SSL           clib.*   → C Libraries
//
// and every other domain → Miscellaneous.
func NewLeafTagger() *LeafTagger {
	return &LeafTagger{
		byDomain: map[string]string{
			"mem":    fleetdata.LeafMemory,
			"kernel": fleetdata.LeafKernel,
			"hash":   fleetdata.LeafHashing,
			"sync":   fleetdata.LeafSync,
			"zstd":   fleetdata.LeafZSTD,
			"math":   fleetdata.LeafMath,
			"ssl":    fleetdata.LeafSSL,
			"clib":   fleetdata.LeafCLib,
		},
		fallback: fleetdata.LeafMisc,
	}
}

// AddRule maps an additional frame domain to a category; it overrides any
// existing rule for the domain.
func (t *LeafTagger) AddRule(domain, category string) error {
	if domain == "" || category == "" {
		return fmt.Errorf("profiler: empty domain or category")
	}
	t.byDomain[domain] = category
	return nil
}

// Tag returns the leaf category for a frame.
func (t *LeafTagger) Tag(f trace.Frame) string {
	if cat, ok := t.byDomain[f.Domain()]; ok {
		return cat
	}
	return t.fallback
}

// FunctionalityBucketer assigns Table 3 functionality categories to whole
// call traces via "func.<key>" marker frames.
type FunctionalityBucketer struct {
	byKey    map[string]string
	fallback string
}

// NewFunctionalityBucketer returns a bucketer with the reproduction's
// default markers:
//
//	func.io → Secure + Insecure IO     func.ioprep  → IO Pre/Post Processing
//	func.compression → Compression     func.serialization → Serialization/…
//	func.feature → Feature Extraction  func.prediction → Prediction/Ranking
//	func.app → Application Logic       func.logging → Logging
//	func.threadpool → Thread Pool Management
func NewFunctionalityBucketer() *FunctionalityBucketer {
	return &FunctionalityBucketer{
		byKey: map[string]string{
			"io":            fleetdata.FuncIO,
			"ioprep":        fleetdata.FuncIOPrePost,
			"compression":   fleetdata.FuncCompression,
			"serialization": fleetdata.FuncSerialization,
			"feature":       fleetdata.FuncFeatureExt,
			"prediction":    fleetdata.FuncPrediction,
			"app":           fleetdata.FuncAppLogic,
			"logging":       fleetdata.FuncLogging,
			"threadpool":    fleetdata.FuncThreadPool,
		},
		fallback: fleetdata.FuncMisc,
	}
}

// Bucket returns the functionality category for a stack: the innermost
// func.* marker wins, so a serialization routine called from the I/O path
// attributes to serialization, as the paper's trace bucketing does.
func (b *FunctionalityBucketer) Bucket(s trace.Stack) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].Domain() != "func" {
			continue
		}
		if cat, ok := b.byKey[s[i].Function()]; ok {
			return cat
		}
	}
	return b.fallback
}

// Share is one row of an aggregated breakdown.
type Share struct {
	Category     string
	Cycles       uint64
	Instructions uint64
	Percent      float64 // of total cycles in the profile
}

// IPC returns the share's instructions per cycle (0 with no cycles).
func (s Share) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Profile is a collected sample set for one service.
type Profile struct {
	Service fleetdata.Service
	Samples *trace.Set
}

// NewProfile returns an empty profile for a service.
func NewProfile(svc fleetdata.Service) *Profile {
	return &Profile{Service: svc, Samples: trace.NewSet()}
}

// Add records one sampled call trace.
func (p *Profile) Add(s trace.Sample) error { return p.Samples.Add(s) }

// TotalCycles returns the profile's total cycles.
func (p *Profile) TotalCycles() uint64 { return p.Samples.TotalCycles() }

// sharesFromTotals converts per-category totals to sorted Shares.
func sharesFromTotals(cycles map[string]uint64, instrs map[string]uint64, total uint64) []Share {
	out := make([]Share, 0, len(cycles))
	for cat, c := range cycles {
		sh := Share{Category: cat, Cycles: c, Instructions: instrs[cat]}
		if total > 0 {
			sh.Percent = float64(c) / float64(total) * 100
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// LeafBreakdown aggregates the profile by leaf category (the Fig 2
// analysis).
func (p *Profile) LeafBreakdown(tagger *LeafTagger) []Share {
	cycles := make(map[string]uint64)
	instrs := make(map[string]uint64)
	for leaf, s := range p.Samples.LeafSamples() {
		cat := tagger.Tag(leaf)
		cycles[cat] += s.Cycles
		instrs[cat] += s.Instructions
	}
	return sharesFromTotals(cycles, instrs, p.TotalCycles())
}

// FunctionalityBreakdown aggregates the profile by functionality category
// (the Fig 9 analysis).
func (p *Profile) FunctionalityBreakdown(b *FunctionalityBucketer) []Share {
	cycles := make(map[string]uint64)
	instrs := make(map[string]uint64)
	for _, s := range p.Samples.Samples() {
		cat := b.Bucket(s.Stack)
		cycles[cat] += s.Cycles
		instrs[cat] += s.Instructions
	}
	return sharesFromTotals(cycles, instrs, p.TotalCycles())
}

// LeafFunctionBreakdown aggregates cycles within one leaf domain by
// function name, as a percentage of the domain's cycles — the Figs 3, 5,
// 6, 7 sub-breakdowns. labels maps function names to display labels;
// unmapped functions aggregate under fallback.
func (p *Profile) LeafFunctionBreakdown(domain string, labels map[string]string, fallback string) []Share {
	cycles := make(map[string]uint64)
	instrs := make(map[string]uint64)
	var domainTotal uint64
	for leaf, s := range p.Samples.LeafSamples() {
		if leaf.Domain() != domain {
			continue
		}
		label, ok := labels[leaf.Function()]
		if !ok {
			label = fallback
		}
		cycles[label] += s.Cycles
		instrs[label] += s.Instructions
		domainTotal += s.Cycles
	}
	return sharesFromTotals(cycles, instrs, domainTotal)
}

// CopyOrigins attributes the cycles of one leaf function (e.g. "mem.copy")
// to the functionality that invoked it — the Fig 4 analysis. Percentages
// are of that leaf's total cycles.
func (p *Profile) CopyOrigins(leaf trace.Frame, b *FunctionalityBucketer) []Share {
	cycles := make(map[string]uint64)
	instrs := make(map[string]uint64)
	var total uint64
	for _, s := range p.Samples.Samples() {
		l, err := s.Stack.Leaf()
		if err != nil || l != leaf {
			continue
		}
		cat := b.Bucket(s.Stack)
		cycles[cat] += s.Cycles
		instrs[cat] += s.Instructions
		total += s.Cycles
	}
	return sharesFromTotals(cycles, instrs, total)
}

// ShareOf returns the percentage for a category within shares (0 when
// absent).
func ShareOf(shares []Share, category string) float64 {
	for _, s := range shares {
		if s.Category == category {
			return s.Percent
		}
	}
	return 0
}

// IPCOf returns the IPC for a category within shares (0 when absent).
func IPCOf(shares []Share, category string) float64 {
	for _, s := range shares {
		if s.Category == category {
			return s.IPC()
		}
	}
	return 0
}

// MemoryLabels maps mem.* function names to Fig 3 display labels.
var MemoryLabels = map[string]string{
	"copy":    fleetdata.MemCopy,
	"free":    fleetdata.MemFree,
	"alloc":   fleetdata.MemAlloc,
	"move":    fleetdata.MemMove,
	"set":     fleetdata.MemSet,
	"compare": fleetdata.MemCompare,
}

// KernelLabels maps kernel.* function names to Fig 5 display labels.
var KernelLabels = map[string]string{
	"sched": fleetdata.KernSched,
	"event": fleetdata.KernEvent,
	"net":   fleetdata.KernNetwork,
	"sync":  fleetdata.KernSync,
	"mm":    fleetdata.KernMemMgmt,
}

// SyncLabels maps sync.* function names to Fig 6 display labels.
var SyncLabels = map[string]string{
	"atomics": fleetdata.SyncAtomics,
	"mutex":   fleetdata.SyncMutex,
	"cas":     fleetdata.SyncCAS,
	"spin":    fleetdata.SyncSpin,
}

// CLibLabels maps clib.* function names to Fig 7 display labels.
var CLibLabels = map[string]string{
	"stdalgo":   fleetdata.CLibStdAlgo,
	"ctor":      fleetdata.CLibCtors,
	"strings":   fleetdata.CLibStrings,
	"hashtable": fleetdata.CLibHashTbl,
	"vectors":   fleetdata.CLibVectors,
	"trees":     fleetdata.CLibTrees,
	"operator":  fleetdata.CLibOperator,
}
