package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/fleetdata"
	"repro/internal/trace"
)

// Profile serialization: collected profiles round-trip through a stable
// JSON format so characterization runs can be archived and re-analyzed
// offline, the way the paper's tooling feeds stored Strobelight traces to
// its categorization tools.

// profileDoc is the on-disk representation.
type profileDoc struct {
	Version int         `json:"version"`
	Service string      `json:"service"`
	Samples []sampleDoc `json:"samples"`
}

type sampleDoc struct {
	Stack        string `json:"stack"` // semicolon-joined frames
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
}

// formatVersion guards against future layout changes.
const formatVersion = 1

// Write serializes the profile to w in a stable order (sorted by stack
// key), so identical profiles produce identical bytes.
func (p *Profile) Write(w io.Writer) error {
	samples := p.Samples.Samples()
	docs := make([]sampleDoc, len(samples))
	for i, s := range samples {
		docs[i] = sampleDoc{
			Stack:        s.Stack.Key(),
			Cycles:       s.Cycles,
			Instructions: s.Instructions,
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Stack < docs[j].Stack })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(profileDoc{
		Version: formatVersion,
		Service: string(p.Service),
		Samples: docs,
	}); err != nil {
		return fmt.Errorf("profiler: write profile: %w", err)
	}
	return nil
}

// Read deserializes a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	var doc profileDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("profiler: read profile: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("profiler: unsupported profile version %d (want %d)", doc.Version, formatVersion)
	}
	svc := fleetdata.Service(doc.Service)
	if !svc.Valid() {
		return nil, fmt.Errorf("profiler: unknown service %q in profile", doc.Service)
	}
	p := NewProfile(svc)
	for i, s := range doc.Samples {
		stack, err := trace.ParseStack(s.Stack)
		if err != nil {
			return nil, fmt.Errorf("profiler: sample %d: %w", i, err)
		}
		if err := p.Add(trace.Sample{
			Stack:        stack,
			Cycles:       s.Cycles,
			Instructions: s.Instructions,
		}); err != nil {
			return nil, fmt.Errorf("profiler: sample %d: %w", i, err)
		}
	}
	return p, nil
}
