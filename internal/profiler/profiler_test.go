package profiler

import (
	"math"
	"testing"

	"repro/internal/fleetdata"
	"repro/internal/trace"
)

func addSample(t *testing.T, p *Profile, stack trace.Stack, cycles, instrs uint64) {
	t.Helper()
	if err := p.Add(trace.Sample{Stack: stack, Cycles: cycles, Instructions: instrs}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafTaggerDefaults(t *testing.T) {
	tg := NewLeafTagger()
	cases := map[trace.Frame]string{
		"mem.copy":       fleetdata.LeafMemory,
		"kernel.sched":   fleetdata.LeafKernel,
		"hash.sha256":    fleetdata.LeafHashing,
		"sync.spin":      fleetdata.LeafSync,
		"zstd.compress":  fleetdata.LeafZSTD,
		"math.gemm":      fleetdata.LeafMath,
		"ssl.encrypt":    fleetdata.LeafSSL,
		"clib.strings":   fleetdata.LeafCLib,
		"whatever.thing": fleetdata.LeafMisc,
	}
	for frame, want := range cases {
		if got := tg.Tag(frame); got != want {
			t.Errorf("Tag(%q) = %q, want %q", frame, got, want)
		}
	}
}

func TestLeafTaggerAddRule(t *testing.T) {
	tg := NewLeafTagger()
	if err := tg.AddRule("simd", fleetdata.LeafMath); err != nil {
		t.Fatal(err)
	}
	if got := tg.Tag("simd.fma"); got != fleetdata.LeafMath {
		t.Errorf("custom rule not applied: %q", got)
	}
	if err := tg.AddRule("", "x"); err == nil {
		t.Error("empty domain: want error")
	}
	if err := tg.AddRule("x", ""); err == nil {
		t.Error("empty category: want error")
	}
}

func TestBucketerInnermostMarkerWins(t *testing.T) {
	b := NewFunctionalityBucketer()
	s := trace.Stack{"thread.worker", "func.io", "func.serialization", "mem.copy"}
	if got := b.Bucket(s); got != fleetdata.FuncSerialization {
		t.Errorf("Bucket = %q, want innermost marker (serialization)", got)
	}
	plain := trace.Stack{"thread.worker", "mem.copy"}
	if got := b.Bucket(plain); got != fleetdata.FuncMisc {
		t.Errorf("unmarked stack = %q, want Miscellaneous", got)
	}
	unknown := trace.Stack{"func.warp", "mem.copy"}
	if got := b.Bucket(unknown); got != fleetdata.FuncMisc {
		t.Errorf("unknown marker = %q, want Miscellaneous", got)
	}
}

func TestLeafBreakdown(t *testing.T) {
	p := NewProfile(fleetdata.Cache1)
	addSample(t, p, trace.Stack{"func.io", "kernel.net"}, 40, 20)
	addSample(t, p, trace.Stack{"func.app", "mem.copy"}, 30, 24)
	addSample(t, p, trace.Stack{"func.app", "mem.alloc"}, 20, 10)
	addSample(t, p, trace.Stack{"func.io", "ssl.encrypt"}, 10, 12)

	shares := p.LeafBreakdown(NewLeafTagger())
	if got := ShareOf(shares, fleetdata.LeafMemory); math.Abs(got-50) > 1e-9 {
		t.Errorf("memory share = %v%%, want 50", got)
	}
	if got := ShareOf(shares, fleetdata.LeafKernel); math.Abs(got-40) > 1e-9 {
		t.Errorf("kernel share = %v%%, want 40", got)
	}
	if got := ShareOf(shares, fleetdata.LeafSSL); math.Abs(got-10) > 1e-9 {
		t.Errorf("ssl share = %v%%, want 10", got)
	}
	// Shares sorted descending by cycles.
	for i := 1; i < len(shares); i++ {
		if shares[i].Cycles > shares[i-1].Cycles {
			t.Errorf("shares not sorted: %v", shares)
		}
	}
}

func TestFunctionalityBreakdown(t *testing.T) {
	p := NewProfile(fleetdata.Web)
	addSample(t, p, trace.Stack{"thread.worker", "func.io", "kernel.net"}, 52, 20)
	addSample(t, p, trace.Stack{"thread.worker", "func.app", "clib.strings"}, 18, 20)
	addSample(t, p, trace.Stack{"thread.worker", "func.logging", "mem.copy"}, 23, 10)
	addSample(t, p, trace.Stack{"thread.worker", "misc.x"}, 7, 7)

	shares := p.FunctionalityBreakdown(NewFunctionalityBucketer())
	if got := ShareOf(shares, fleetdata.FuncIO); math.Abs(got-52) > 1e-9 {
		t.Errorf("IO share = %v%%", got)
	}
	if got := ShareOf(shares, fleetdata.FuncLogging); math.Abs(got-23) > 1e-9 {
		t.Errorf("logging share = %v%%", got)
	}
	if got := ShareOf(shares, fleetdata.FuncMisc); math.Abs(got-7) > 1e-9 {
		t.Errorf("misc share = %v%%", got)
	}
}

func TestLeafFunctionBreakdown(t *testing.T) {
	p := NewProfile(fleetdata.Ads1)
	addSample(t, p, trace.Stack{"func.app", "mem.copy"}, 60, 30)
	addSample(t, p, trace.Stack{"func.app", "mem.free"}, 30, 12)
	addSample(t, p, trace.Stack{"func.app", "mem.exotic"}, 10, 5)
	addSample(t, p, trace.Stack{"func.app", "kernel.sched"}, 500, 100) // other domain ignored

	shares := p.LeafFunctionBreakdown("mem", MemoryLabels, "Other")
	if got := ShareOf(shares, fleetdata.MemCopy); math.Abs(got-60) > 1e-9 {
		t.Errorf("copy share = %v%%, want 60 (of memory cycles only)", got)
	}
	if got := ShareOf(shares, fleetdata.MemFree); math.Abs(got-30) > 1e-9 {
		t.Errorf("free share = %v%%", got)
	}
	if got := ShareOf(shares, "Other"); math.Abs(got-10) > 1e-9 {
		t.Errorf("unmapped function share = %v%%", got)
	}
}

func TestCopyOrigins(t *testing.T) {
	p := NewProfile(fleetdata.Cache2)
	addSample(t, p, trace.Stack{"func.io", "mem.copy"}, 36, 10)
	addSample(t, p, trace.Stack{"func.ioprep", "mem.copy"}, 18, 10)
	addSample(t, p, trace.Stack{"func.app", "mem.copy"}, 46, 10)
	addSample(t, p, trace.Stack{"func.app", "mem.free"}, 1000, 10) // not a copy

	shares := p.CopyOrigins("mem.copy", NewFunctionalityBucketer())
	if got := ShareOf(shares, fleetdata.FuncIO); math.Abs(got-36) > 1e-9 {
		t.Errorf("IO copy origin = %v%%", got)
	}
	if got := ShareOf(shares, fleetdata.FuncAppLogic); math.Abs(got-46) > 1e-9 {
		t.Errorf("app copy origin = %v%%", got)
	}
	total := 0.0
	for _, s := range shares {
		total += s.Percent
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("copy origins sum to %v%%", total)
	}
}

func TestShareIPC(t *testing.T) {
	s := Share{Cycles: 100, Instructions: 48}
	if got := s.IPC(); got != 0.48 {
		t.Errorf("IPC = %v", got)
	}
	if got := (Share{}).IPC(); got != 0 {
		t.Errorf("zero-cycle IPC = %v", got)
	}
}

func TestIPCOfAndShareOfMissing(t *testing.T) {
	if IPCOf(nil, "x") != 0 || ShareOf(nil, "x") != 0 {
		t.Error("missing category should report 0")
	}
}

func TestCategoryIPCFlowsThroughBreakdown(t *testing.T) {
	p := NewProfile(fleetdata.Cache1)
	addSample(t, p, trace.Stack{"func.io", "kernel.sched"}, 100, 50) // kernel IPC 0.5
	addSample(t, p, trace.Stack{"func.app", "clib.vectors"}, 100, 160)

	shares := p.LeafBreakdown(NewLeafTagger())
	if got := IPCOf(shares, fleetdata.LeafKernel); got != 0.5 {
		t.Errorf("kernel IPC = %v", got)
	}
	if got := IPCOf(shares, fleetdata.LeafCLib); got != 1.6 {
		t.Errorf("clib IPC = %v", got)
	}
}

func TestLabelsCoverPaperCategories(t *testing.T) {
	if len(MemoryLabels) != 6 {
		t.Errorf("memory labels = %d, want 6 (Fig 3)", len(MemoryLabels))
	}
	if len(KernelLabels) != 5 {
		t.Errorf("kernel labels = %d, want 5 + misc (Fig 5)", len(KernelLabels))
	}
	if len(SyncLabels) != 4 {
		t.Errorf("sync labels = %d, want 4 (Fig 6)", len(SyncLabels))
	}
	if len(CLibLabels) != 7 {
		t.Errorf("clib labels = %d, want 7 + misc (Fig 7)", len(CLibLabels))
	}
}

func TestIdenticalStacksMerge(t *testing.T) {
	p := NewProfile(fleetdata.Web)
	for i := 0; i < 10; i++ {
		addSample(t, p, trace.Stack{"func.app", "mem.copy"}, 5, 2)
	}
	if p.Samples.Len() != 1 {
		t.Errorf("distinct stacks = %d, want 1", p.Samples.Len())
	}
	if p.TotalCycles() != 50 {
		t.Errorf("total cycles = %d, want 50", p.TotalCycles())
	}
}
