package profiler

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fleetdata"
	"repro/internal/trace"
)

func TestProfileWriteReadRoundTrip(t *testing.T) {
	p := NewProfile(fleetdata.Cache1)
	addSample(t, p, trace.Stack{"func.io", "ssl.encrypt"}, 100, 140)
	addSample(t, p, trace.Stack{"func.app", "mem.copy"}, 200, 200)
	addSample(t, p, trace.Stack{"func.app", "clib.hashtable"}, 50, 80)

	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Service != fleetdata.Cache1 {
		t.Errorf("service = %q", back.Service)
	}
	if back.TotalCycles() != p.TotalCycles() {
		t.Errorf("cycles = %d, want %d", back.TotalCycles(), p.TotalCycles())
	}
	if back.Samples.Len() != p.Samples.Len() {
		t.Errorf("samples = %d, want %d", back.Samples.Len(), p.Samples.Len())
	}
	// Breakdowns survive the round trip exactly.
	origShares := p.LeafBreakdown(NewLeafTagger())
	backShares := back.LeafBreakdown(NewLeafTagger())
	for _, s := range origShares {
		if got := ShareOf(backShares, s.Category); got != s.Percent { //modelcheck:ignore floatcmp — serialize/deserialize round-trip must be lossless
			t.Errorf("%s share = %v, want %v", s.Category, got, s.Percent)
		}
	}
}

func TestProfileWriteDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		p := NewProfile(fleetdata.Web)
		addSample(t, p, trace.Stack{"func.app", "zzz.last"}, 1, 1)
		addSample(t, p, trace.Stack{"func.app", "aaa.first"}, 2, 2)
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk().Bytes(), mk().Bytes()) {
		t.Error("serialization is not deterministic")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json at all",
		"bad version":     `{"version": 99, "service": "Web", "samples": []}`,
		"unknown service": `{"version": 1, "service": "Mystery", "samples": []}`,
		"empty stack":     `{"version": 1, "service": "Web", "samples": [{"stack": "", "cycles": 1}]}`,
		"empty frame":     `{"version": 1, "service": "Web", "samples": [{"stack": "a;;b", "cycles": 1}]}`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadEmptyProfile(t *testing.T) {
	p, err := Read(strings.NewReader(`{"version": 1, "service": "Cache2", "samples": []}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCycles() != 0 || p.Service != fleetdata.Cache2 {
		t.Errorf("empty profile = %+v", p)
	}
}
