package tailtrace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func ts(n int64) time.Time { return time.Unix(0, n) }

func span(trace, id, parent uint64, name, process, cat string, start, dur int64) telemetry.SpanData {
	return telemetry.SpanData{
		TraceID: trace, SpanID: id, ParentID: parent,
		Name: name, Process: process, Category: cat,
		Start: ts(start), Duration: time.Duration(dur),
	}
}

// sumSegments verifies the critical path partitions the root window and
// returns the per-category sums.
func sumSegments(t *testing.T, tree *Tree) map[string]time.Duration {
	t.Helper()
	segs := CriticalPath(tree)
	var total time.Duration
	byCat := make(map[string]time.Duration)
	cursor := tree.Root.Start()
	for _, s := range segs {
		if !s.Start.Equal(cursor) {
			t.Fatalf("segment starts at %v, want contiguous at %v", s.Start, cursor)
		}
		if s.Duration <= 0 {
			t.Fatalf("non-positive segment %+v", s)
		}
		cursor = s.Start.Add(s.Duration)
		total += s.Duration
		byCat[s.Category] += s.Duration
	}
	if !cursor.Equal(tree.Root.End()) {
		t.Fatalf("critical path ends at %v, want root end %v", cursor, tree.Root.End())
	}
	if total != tree.Root.Data.Duration {
		t.Fatalf("critical path sums to %v, want root duration %v", total, tree.Root.Data.Duration)
	}
	return byCat
}

func TestAssembleNestsByContainment(t *testing.T) {
	// A client call whose net-wait window contains the remote server
	// span, recorded as a flat child list (the server span's recorded
	// parent is the rpc.Call span, not net-wait).
	spans := []telemetry.SpanData{
		span(1, 10, 0, "rpc.Call/m", "client", telemetry.CatRPC, 0, 100),
		span(1, 11, 10, "serialize", "client", telemetry.CatRPC, 0, 10),
		span(1, 12, 10, "net-wait", "client", telemetry.CatTransport, 10, 80),
		span(1, 13, 10, "rpc.Server/m", "leaf", telemetry.CatRPC, 20, 50),
		span(1, 14, 13, "handler", "leaf", telemetry.CatWork, 25, 40),
	}
	trees := Assemble(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	root := trees[0].Root
	if root.Data.SpanID != 10 || len(root.Children) != 2 {
		t.Fatalf("root %d has %d children, want span 10 with 2", root.Data.SpanID, len(root.Children))
	}
	netWait := root.Children[1]
	if netWait.Data.Name != "net-wait" || len(netWait.Children) != 1 || netWait.Children[0].Data.SpanID != 13 {
		t.Fatalf("server span not nested under net-wait: %+v", netWait)
	}
}

func TestCriticalPathAttribution(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 10, 0, "rpc.Call/m", "client", telemetry.CatRPC, 0, 100),
		span(1, 11, 10, "serialize", "client", telemetry.CatRPC, 0, 10),
		span(1, 12, 10, "net-wait", "client", telemetry.CatTransport, 10, 80),
		span(1, 13, 10, "rpc.Server/m", "leaf", telemetry.CatRPC, 20, 50),
		span(1, 14, 13, "handler", "leaf", telemetry.CatWork, 25, 40),
	}
	tree := Assemble(spans)[0]
	byCat := sumSegments(t, tree)
	// handler 40 work; server self 25-25=10 rpc; net-wait gaps 20-10 in +
	// 80+10-70 out... transport = (20-10)+(90-70)=30; call self 10..0 head
	// serialize 10 rpc + tail (100-90)=10 rpc; server self = 5+5 = 10 rpc.
	if got := byCat[telemetry.CatWork]; got != 40 {
		t.Errorf("work = %v, want 40", got)
	}
	if got := byCat[telemetry.CatTransport]; got != 30 {
		t.Errorf("transport = %v, want 30", got)
	}
	if got := byCat[telemetry.CatRPC]; got != 30 {
		t.Errorf("rpc = %v, want 30", got)
	}
}

func TestOrphanSpanPromoted(t *testing.T) {
	// Span 20's parent 99 was evicted from the ring: it must still appear
	// in the tree (flagged) and its work still lands in the attribution
	// via containment under the root.
	spans := []telemetry.SpanData{
		span(2, 10, 0, "topo.request", "client", "", 0, 100),
		span(2, 20, 99, "handler", "leaf", telemetry.CatWork, 30, 40),
	}
	trees := Assemble(spans)
	tree := trees[0]
	if tree.Rootless {
		t.Fatal("tree marked rootless despite having a root")
	}
	if len(tree.Root.Children) != 1 {
		t.Fatalf("orphan not attached to root: %d children", len(tree.Root.Children))
	}
	if !tree.Root.Children[0].Orphan {
		t.Error("promoted span not flagged Orphan")
	}
	tax := Attribute(tree)
	if tax.Orphans != 1 {
		t.Errorf("Orphans = %d, want 1", tax.Orphans)
	}
	if got := tax.ByCategory[telemetry.CatWork]; got != 40 {
		t.Errorf("orphan handler work = %v, want 40", got)
	}
	if got := tax.ByCategory[telemetry.CatQueue]; got != 60 {
		t.Errorf("root self-time (queue) = %v, want 60", got)
	}
}

func TestRootlessTree(t *testing.T) {
	// The root span itself was dropped: the earliest span stands in.
	spans := []telemetry.SpanData{
		span(3, 20, 99, "rpc.Server/m", "leaf", "", 10, 80),
		span(3, 21, 20, "handler", "leaf", telemetry.CatWork, 20, 60),
	}
	tree := Assemble(spans)[0]
	if !tree.Rootless {
		t.Fatal("tree not marked rootless")
	}
	if tree.Root.Data.SpanID != 20 {
		t.Fatalf("stand-in root = %d, want earliest span 20", tree.Root.Data.SpanID)
	}
	sumSegments(t, tree)
}

func TestClockSkewedChildClamped(t *testing.T) {
	// A child recorded on a skewed remote clock appears to end 30ns after
	// its parent. The critical path must clamp it so attribution still
	// sums exactly to the root duration.
	spans := []telemetry.SpanData{
		span(4, 10, 0, "rpc.Call/m", "client", telemetry.CatRPC, 0, 100),
		span(4, 11, 10, "rpc.Server/m", "leaf", telemetry.CatWork, 50, 80), // ends at 130 > 100
	}
	tree := Assemble(spans)[0]
	byCat := sumSegments(t, tree)
	if got := byCat[telemetry.CatWork]; got != 50 {
		t.Errorf("clamped child contributes %v, want 50", got)
	}
	if got := byCat[telemetry.CatRPC]; got != 50 {
		t.Errorf("parent self-time = %v, want 50", got)
	}

	// Skew in the other direction: child starts before its parent.
	spans = []telemetry.SpanData{
		span(5, 10, 0, "rpc.Call/m", "client", telemetry.CatRPC, 50, 100),
		span(5, 11, 10, "rpc.Server/m", "leaf", telemetry.CatWork, 20, 60), // starts 30ns early
	}
	tree = Assemble(spans)[0]
	byCat = sumSegments(t, tree)
	if got := byCat[telemetry.CatWork]; got != 30 {
		t.Errorf("early child contributes %v, want 30", got)
	}
}

func TestFanOutTieBreaks(t *testing.T) {
	// Two parallel children with identical end times: the longer one wins
	// the critical path. With identical durations too, the smaller span
	// ID wins — repeated runs must agree.
	// Real rpc.Call envelopes always have recorded stage children, which
	// is what keeps them siblings (non-containers) under nesting.
	spans := []telemetry.SpanData{
		span(6, 10, 0, "topo.request", "client", "", 0, 100),
		span(6, 11, 10, "rpc.Call/a", "client", "", 10, 90), // ends 100
		span(6, 21, 11, "net-wait", "client", "", 15, 80),
		span(6, 12, 10, "rpc.Call/b", "client", "", 40, 60), // ends 100 too, shorter
		span(6, 22, 12, "net-wait", "client", "", 45, 50),
	}
	tree := Assemble(spans)[0]
	if len(tree.Root.Children) != 2 {
		t.Fatalf("parallel calls were nested: root has %d children, want 2", len(tree.Root.Children))
	}
	var procs []string
	for _, s := range CriticalPath(tree) {
		if s.Name == "rpc.Call/a" || s.Name == "rpc.Call/b" {
			procs = append(procs, s.Name)
		}
	}
	for _, n := range procs {
		if n != "rpc.Call/a" {
			t.Fatalf("critical path includes %v, want only the longer rpc.Call/a", procs)
		}
	}
	if len(procs) == 0 {
		t.Fatal("critical path never visited rpc.Call/a")
	}

	// Exact duplicates except span ID: smaller ID must win, every run.
	spans = []telemetry.SpanData{
		span(7, 10, 0, "topo.request", "client", "", 0, 100),
		span(7, 12, 10, "rpc.Call/b", "client", "", 10, 90),
		span(7, 11, 10, "rpc.Call/a", "client", "", 10, 90),
	}
	for i := 0; i < 5; i++ {
		tree = Assemble(spans)[0]
		found := ""
		for _, s := range CriticalPath(tree) {
			if !s.SelfTime {
				found = s.Name
			}
		}
		if found != "rpc.Call/a" {
			t.Fatalf("run %d: tie broke to %q, want smaller span ID rpc.Call/a", i, found)
		}
	}
}

func TestSequentialFanOutWalksBothChildren(t *testing.T) {
	// Staggered children: the walk hops from the later child back to the
	// earlier one, with the gap between them charged to the parent.
	spans := []telemetry.SpanData{
		span(8, 10, 0, "topo.request", "client", "", 0, 100),
		span(8, 11, 10, "rpc.Call/a", "client", "", 5, 40),  // ends 45
		span(8, 12, 10, "rpc.Call/b", "client", "", 55, 40), // ends 95
	}
	tree := Assemble(spans)[0]
	byCat := sumSegments(t, tree)
	if got := byCat[telemetry.CatRPC]; got != 80 {
		t.Errorf("rpc = %v, want both calls' 80", got)
	}
	// Gaps: [0,5) + [45,55) + [95,100) = 20, root self-time → queue.
	if got := byCat[telemetry.CatQueue]; got != 20 {
		t.Errorf("queue (root self) = %v, want 20", got)
	}
}

func TestAnalyzeQuantileRows(t *testing.T) {
	var spans []telemetry.SpanData
	// 100 requests with total duration 100..10000; request i spends
	// i*100-40 in work and 40 queueing at the root.
	for i := uint64(1); i <= 100; i++ {
		total := int64(i) * 100
		spans = append(spans,
			span(i, 1, 0, "topo.request", "client", "", 0, total),
			span(i, 2, 1, "handler", "leaf", telemetry.CatWork, 20, total-40),
		)
	}
	rep := Analyze(spans, Options{Exemplars: 3})
	if rep.Requests != 100 {
		t.Fatalf("Requests = %d, want 100", rep.Requests)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want mean+p50+p99+p999", len(rep.Rows))
	}
	p50, p99, p999 := rep.Rows[1], rep.Rows[2], rep.Rows[3]
	if p50.Label != "p50" || p50.TotalNanos != 5000 {
		t.Errorf("p50 row = %+v, want total 5000", p50)
	}
	if p99.Label != "p99" || p99.TotalNanos != 9900 {
		t.Errorf("p99 row = %+v, want total 9900", p99)
	}
	if p999.Label != "p999" || p999.TotalNanos != 10000 {
		t.Errorf("p999 row = %+v, want total 10000", p999)
	}
	for _, row := range rep.Rows {
		var sum float64
		for _, v := range row.ByCategory {
			sum += v
		}
		if sum != row.TotalNanos { //modelcheck:ignore floatcmp — the attribution is an exact partition; any drift is a bug
			t.Errorf("row %s categories sum to %v, want %v", row.Label, sum, row.TotalNanos)
		}
	}
	if len(rep.Exemplars) != 3 || rep.Exemplars[0].Total != 10000 || rep.Exemplars[2].Total != 9800 {
		t.Fatalf("exemplars wrong: %+v", rep.Exemplars)
	}
	var sb strings.Builder
	rep.RenderText(&sb)
	out := sb.String()
	for _, want := range []string{"100 requests", "p999", telemetry.CatWork, telemetry.CatQueue} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderText missing %q in:\n%s", want, out)
		}
	}
}

func TestCompareModel(t *testing.T) {
	spans := []telemetry.SpanData{
		span(1, 1, 0, "topo.request", "client", "", 0, 100),
		span(1, 2, 1, "handler", "front", telemetry.CatWork, 10, 30),
		span(1, 3, 1, "handler", "leaf", telemetry.CatWork, 40, 50),
	}
	rep := Analyze(spans, Options{})
	diffs := rep.CompareModel([]string{"front", "leaf"}, []float64{0.4, 0.6})
	if len(diffs) != 3 {
		t.Fatalf("diffs = %d, want front, leaf, client", len(diffs))
	}
	byTier := make(map[string]TierDiff)
	for _, d := range diffs {
		byTier[d.Tier] = d
	}
	if d := byTier["leaf"]; d.Predicted != 0.6 || d.Measured != 0.5 {
		t.Errorf("leaf diff = %+v", d)
	}
	if d := byTier["client"]; d.Predicted != 0 || d.Measured != 0.2 {
		t.Errorf("client diff = %+v (injector gaps should measure 0.2)", d)
	}
	var sb strings.Builder
	RenderModelDiff(&sb, diffs)
	if !strings.Contains(sb.String(), "client") {
		t.Errorf("RenderModelDiff missing client row:\n%s", sb.String())
	}
}

func TestEmptyAnalyze(t *testing.T) {
	rep := Analyze(nil, Options{})
	if rep.Requests != 0 || len(rep.Rows) != 0 {
		t.Fatalf("empty analyze = %+v", rep)
	}
	var sb strings.Builder
	rep.RenderText(&sb) // must not panic
}
