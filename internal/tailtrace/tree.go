// Package tailtrace assembles the spans a multi-tier topology run
// collects into per-request trace trees, extracts each request's
// critical path through mid-request fan-out, and attributes every
// critical-path nanosecond to an overhead category — the per-request
// analogue of the paper's fleet-level cycle attribution (Tables 2/3).
// Fleet breakdowns average away exactly what hyperscale operators
// chase: *where the p99 goes*. This package answers that by slicing
// the attribution by latency quantile (the "tail tax" report) and by
// diffing the measured critical-path composition against the composed
// model's prediction per tier.
package tailtrace

import (
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Node is one span in an assembled trace tree.
type Node struct {
	Data     telemetry.SpanData
	Children []*Node
	// Orphan marks a span whose recorded parent is missing (evicted
	// from a ring or lost to sampling skew); it is promoted to a child
	// of the nearest containing span, or of the root.
	Orphan bool
	// container marks a recorded-leaf span — one nothing named as its
	// parent. Only these absorb siblings during containment nesting:
	// stage spans (net-wait, handler) are recorded leaves by
	// construction, while envelope spans (rpc.Call, rpc.Server) carry
	// their own recorded children, and nesting one parallel fan-out call
	// under another that happens to contain its window would be wrong.
	container bool
}

// Start and End bound the span's interval.
func (n *Node) Start() time.Time { return n.Data.Start }
func (n *Node) End() time.Time   { return n.Data.Start.Add(n.Data.Duration) }

// Tree is one request's assembled spans.
type Tree struct {
	TraceID uint64
	Root    *Node
	// Rootless marks a tree whose true root span was never recorded
	// (dropped or still open); the earliest-starting span stands in.
	Rootless bool
	// Spans are the tree's raw spans, for exemplar export.
	Spans []telemetry.SpanData
}

// Assemble groups spans by trace ID and builds one tree per trace:
// spans link to their recorded parent, orphans (missing parent) are
// promoted to the root, and each sibling set is then containment-nested
// — a span fully inside a sibling's interval becomes that sibling's
// child. Containment nesting is what stitches the layers together:
// a remote server span is recorded as a child of the client's rpc.Call
// span, and nesting moves it inside the call's net-wait window where it
// actually ran; likewise a handler's downstream rpc.Call spans move
// inside the handler's own window. Trees are returned sorted by the
// root's start time (ties: trace ID).
func Assemble(spans []telemetry.SpanData) []*Tree {
	byTrace := make(map[uint64][]telemetry.SpanData)
	for _, sd := range spans {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	trees := make([]*Tree, 0, len(byTrace))
	for id, group := range byTrace {
		trees = append(trees, assembleOne(id, group))
	}
	sort.Slice(trees, func(i, j int) bool {
		si, sj := trees[i].Root.Start(), trees[j].Root.Start()
		if !si.Equal(sj) {
			return si.Before(sj)
		}
		return trees[i].TraceID < trees[j].TraceID
	})
	return trees
}

func assembleOne(traceID uint64, spans []telemetry.SpanData) *Tree {
	t := &Tree{TraceID: traceID, Spans: spans}
	nodes := make(map[uint64]*Node, len(spans))
	ordered := make([]*Node, 0, len(spans))
	for _, sd := range spans {
		n := &Node{Data: sd}
		nodes[sd.SpanID] = n
		ordered = append(ordered, n)
	}
	// Deterministic regardless of recording order.
	sort.Slice(ordered, func(i, j int) bool {
		si, sj := ordered[i].Data.Start, ordered[j].Data.Start
		if !si.Equal(sj) {
			return si.Before(sj)
		}
		if di, dj := ordered[i].Data.Duration, ordered[j].Data.Duration; di != dj {
			return di > dj
		}
		return ordered[i].Data.SpanID < ordered[j].Data.SpanID
	})

	var root *Node
	var orphans []*Node
	for _, n := range ordered {
		switch {
		case n.Data.ParentID == 0:
			if root == nil {
				root = n
			} else {
				// A second root (ID collision or reused trace ID): treat
				// as an orphan of the first.
				n.Orphan = true
				orphans = append(orphans, n)
			}
		case nodes[n.Data.ParentID] != nil && nodes[n.Data.ParentID] != n:
			p := nodes[n.Data.ParentID]
			p.Children = append(p.Children, n)
		default:
			n.Orphan = true
			orphans = append(orphans, n)
		}
	}
	for _, n := range ordered {
		n.container = len(n.Children) == 0
	}
	if root == nil {
		// The true root was dropped: the earliest, longest span stands in
		// and the remaining orphans hang off it.
		t.Rootless = true
		root = orphans[0]
		orphans = orphans[1:]
	}
	for _, o := range orphans {
		root.Children = append(root.Children, o)
	}
	t.Root = root
	nest(root)
	return t
}

// nest containment-nests n's children — a child whose interval lies
// strictly inside a recorded-leaf sibling's becomes that sibling's child
// — then recurses. The classic bracket-matching pass: with siblings
// sorted by (start asc, end desc), a stack of open container intervals
// assigns each span to the innermost container still holding it. This is
// what stitches tiers together: the remote rpc.Server span (a recorded
// sibling of the local stage spans under rpc.Call) moves inside the
// net-wait window where it actually ran, and a handler's downstream
// rpc.Call spans move inside the handler stage span.
func nest(n *Node) {
	if len(n.Children) > 1 {
		kids := n.Children
		sort.Slice(kids, func(i, j int) bool {
			si, sj := kids[i].Start(), kids[j].Start()
			if !si.Equal(sj) {
				return si.Before(sj)
			}
			if ei, ej := kids[i].End(), kids[j].End(); !ei.Equal(ej) {
				return ei.After(ej)
			}
			return kids[i].Data.SpanID < kids[j].Data.SpanID
		})
		var keep []*Node
		var stack []*Node
		for _, k := range kids {
			for len(stack) > 0 && !contains(stack[len(stack)-1], k) {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, k)
			} else {
				keep = append(keep, k)
			}
			if k.container {
				stack = append(stack, k)
			}
		}
		n.Children = keep
	}
	for _, k := range n.Children {
		nest(k)
	}
}

// contains reports whether k's interval lies strictly inside outer's —
// identical intervals stay siblings, so exact fan-out duplicates keep
// their recorded parallelism.
func contains(outer, k *Node) bool {
	if k.Start().Before(outer.Start()) || k.End().After(outer.End()) {
		return false
	}
	return !k.Start().Equal(outer.Start()) || !k.End().Equal(outer.End())
}
