package tailtrace_test

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/tailtrace"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// runTraced drives requests through a live traced topology and returns
// the collected spans.
func runTraced(t *testing.T, specPath string, cfg topology.RunnerConfig, requests int) []telemetry.SpanData {
	t.Helper()
	src, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	g, err := topology.ParseSpec(string(src))
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	cfg.Trace = true
	cfg.UnitIters = 200 // keep the spin cheap; the tree shape is what matters
	r, err := topology.NewRunner(g, cfg)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	ctx := context.Background()
	if err := r.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	payload := make([]byte, 64)
	for i := 0; i < requests; i++ {
		if _, err := r.Call(ctx, payload); err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
	}
	return r.Spans()
}

// TestLiveAttributionSumsToRootSpan is the acceptance check from the
// issue: on the ads-chain and two-tier topologies, every request's
// critical-path attribution must sum to within 2% of the measured
// end-to-end span, and every tier must contribute spans to the tree.
func TestLiveAttributionSumsToRootSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("live topology run")
	}
	cases := []struct {
		name string
		spec string
		cfg  topology.RunnerConfig
		// tiers must all appear on the critical path (chains); anyOf
		// requires at least one (parallel fan-out puts only the
		// slower sibling on the path, and which leaf that is depends
		// on scheduling).
		tiers []string
		anyOf []string
	}{
		{
			name:  "two-tier",
			spec:  "../../testdata/topologies/two-tier.topo",
			tiers: []string{"client", "Front"},
			anyOf: []string{"Leaf1", "Leaf2"},
		},
		{
			name:  "ads-chain",
			spec:  "../../testdata/topologies/ads-chain.topo",
			tiers: []string{"client", "Ads1", "Ads2", "Cache3"},
		},
		{
			name: "two-tier-async",
			spec: "../../testdata/topologies/two-tier.topo",
			cfg: topology.RunnerConfig{
				Accel: &topology.AccelConfig{A: 8, O0: 10, L: 10},
				Async: true,
			},
			tiers: []string{"client", "Front"},
			anyOf: []string{"Leaf1", "Leaf2"},
		},
	}
	const requests = 30
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spans := runTraced(t, tc.spec, tc.cfg, requests)
			trees := tailtrace.Assemble(spans)
			if len(trees) != requests {
				t.Fatalf("assembled %d trees, want %d", len(trees), requests)
			}
			for _, tree := range trees {
				if tree.Rootless {
					t.Errorf("trace %x lost its root span", tree.TraceID)
				}
				if tree.Root.Data.Name != "topo.request" {
					t.Errorf("trace %x root = %q, want topo.request", tree.TraceID, tree.Root.Data.Name)
				}
				tax := tailtrace.Attribute(tree)
				var sum time.Duration
				for _, d := range tax.ByCategory {
					sum += d
				}
				e2e := tree.Root.Data.Duration
				if diff := sum - e2e; diff < -e2e/50 || diff > e2e/50 {
					t.Errorf("trace %x: attribution sums to %v, e2e span %v (>2%% off)", tree.TraceID, sum, e2e)
				}
				if tax.ByCategory[telemetry.CatWork] <= 0 {
					t.Errorf("trace %x: no work on the critical path: %v", tree.TraceID, tax.ByCategory)
				}
			}
			rep := tailtrace.Analyze(spans, tailtrace.Options{Exemplars: 1})
			if rep.Requests != requests {
				t.Fatalf("Analyze saw %d requests, want %d", rep.Requests, requests)
			}
			for _, tier := range tc.tiers {
				if rep.TierShares[tier] <= 0 {
					t.Errorf("tier %q absent from critical path shares: %v", tier, rep.TierShares)
				}
			}
			if len(tc.anyOf) > 0 {
				found := false
				for _, tier := range tc.anyOf {
					if rep.TierShares[tier] > 0 {
						found = true
					}
				}
				if !found {
					t.Errorf("no leaf tier of %v on the critical path: %v", tc.anyOf, rep.TierShares)
				}
			}
			if tc.cfg.Async {
				// The async arm must surface explicit queue/device time.
				var queued, device float64
				for _, row := range rep.Rows {
					queued += row.ByCategory[telemetry.CatQueue]
					device += row.ByCategory[telemetry.CatDevice]
				}
				if queued <= 0 {
					t.Error("async run shows no queue time on any slice")
				}
				if device <= 0 {
					t.Error("async run shows no device (park) time on any slice")
				}
			}
		})
	}
}

// TestLiveSampledRun checks that head sampling keeps whole traces: every
// surviving tree still assembles completely (rooted, all tiers present).
func TestLiveSampledRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live topology run")
	}
	spans := runTraced(t, "../../testdata/topologies/two-tier.topo",
		topology.RunnerConfig{TraceSampleRate: 4}, 40)
	trees := tailtrace.Assemble(spans)
	if len(trees) == 0 || len(trees) >= 40 {
		t.Fatalf("sampling kept %d of 40 traces, want a strict subset (>0)", len(trees))
	}
	for _, tree := range trees {
		if tree.Rootless {
			t.Errorf("sampled trace %x lost its root", tree.TraceID)
		}
		tax := tailtrace.Attribute(tree)
		// client, Front, and at least one leaf (only the slower fan-out
		// sibling lands on the critical path).
		if len(tax.ByProcess) < 3 {
			t.Errorf("sampled trace %x spans %d processes, want client+Front+leaf: %v",
				tree.TraceID, len(tax.ByProcess), tax.ByProcess)
		}
	}
}
