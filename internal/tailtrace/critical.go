package tailtrace

import (
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// CatOther buckets critical-path time inside spans this package cannot
// classify (application spans with no category stamp and an unknown name).
const CatOther = "other"

// CategoryOrder is the canonical column order for reports: the request's
// useful work first, then the tax buckets in pipeline order.
var CategoryOrder = []string{
	telemetry.CatWork,
	telemetry.CatRPC,
	telemetry.CatTransport,
	telemetry.CatQueue,
	telemetry.CatDevice,
	CatOther,
}

// Classify maps a span to its attribution category. Spans stamped at
// creation (pipeline stages, engine waits) carry their category; for the
// rest the span name decides. Unstamped rpc.Call/rpc.Server envelope
// spans classify as rpc tax: any of their self-time not covered by a
// stage child is dispatch bookkeeping. The topology injector's root span
// classifies as queueing — its self-time is time the request spent
// scheduled but not yet inside any tier's instrumented window.
func Classify(d telemetry.SpanData) string {
	if d.Category != "" {
		return d.Category
	}
	switch d.Name {
	case "serialize", "compress", "encrypt", "decrypt", "decompress", "deserialize":
		return telemetry.CatRPC
	case "frame-write", "net-wait":
		return telemetry.CatTransport
	case "handler", "topo.work":
		return telemetry.CatWork
	case "queue-wait", "resume-wait":
		return telemetry.CatQueue
	case "park-wait":
		return telemetry.CatDevice
	case "topo.request":
		return telemetry.CatQueue
	}
	if strings.HasPrefix(d.Name, "rpc.Call/") || strings.HasPrefix(d.Name, "rpc.Server/") || strings.HasPrefix(d.Name, "rpc.AsyncServer/") {
		return telemetry.CatRPC
	}
	return CatOther
}

// Segment is one critical-path interval, attributed to the span that owns
// it. SelfTime marks intervals carved out of a parent between (or around)
// its children — the "gaps" — as opposed to a leaf span's whole window.
type Segment struct {
	Start    time.Time
	Duration time.Duration
	Category string
	Name     string // owning span's name
	Process  string // owning span's process (tier)
	SelfTime bool
}

// CriticalPath walks t's tree backward from the root's end and returns
// the contiguous segments that cover exactly the root's window — the
// single chain of spans the request's latency actually waited on.
//
// At each span the walk repeatedly picks, among children overlapping the
// remaining window, the one whose (clamped) end reaches furthest toward
// the cursor; ties break toward the longer child, then the smaller span
// ID, so fan-out ties resolve deterministically. Children are clamped to
// the parent's window: a clock-skewed child that appears to outlive its
// parent cannot leak time, so the segments always sum to the root span's
// duration exactly. Time between a child's end and the cursor is emitted
// as the parent's self-time, classified by the parent's category — a gap
// inside net-wait is transport, inside queue-wait is queueing, inside the
// injector root is scheduling/queueing. Segments return in chronological
// order.
func CriticalPath(t *Tree) []Segment {
	if t == nil || t.Root == nil {
		return nil
	}
	var segs []Segment
	walk(t.Root, t.Root.Start(), t.Root.End(), &segs)
	// The walk emits back-to-front; flip to chronological.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// walk appends n's critical-path segments within [winStart, winEnd],
// latest first.
func walk(n *Node, winStart, winEnd time.Time, segs *[]Segment) {
	if !winEnd.After(winStart) {
		return
	}
	cat := Classify(n.Data)
	remaining := make([]*Node, len(n.Children))
	copy(remaining, n.Children)
	cursor := winEnd
	for cursor.After(winStart) {
		pick := -1
		var pickStart, pickEnd time.Time
		for i, c := range remaining {
			if c == nil {
				continue
			}
			cs, ce := clamp(c.Start(), c.End(), winStart, cursor)
			if !ce.After(cs) {
				continue
			}
			if pick < 0 || better(cs, ce, pickStart, pickEnd, c, remaining[pick]) {
				pick, pickStart, pickEnd = i, cs, ce
			}
		}
		if pick < 0 {
			break
		}
		if cursor.After(pickEnd) {
			emit(segs, n, pickEnd, cursor, cat, true)
		}
		walk(remaining[pick], pickStart, pickEnd, segs)
		cursor = pickStart
		remaining[pick] = nil
	}
	if cursor.After(winStart) {
		emit(segs, n, winStart, cursor, cat, len(n.Children) > 0)
	}
}

// better reports whether candidate c (clamped to [cs,ce]) beats the
// current pick (clamped to [ps,pe]): furthest clamped end wins, then the
// longer clamped interval, then the smaller span ID.
func better(cs, ce, ps, pe time.Time, c, p *Node) bool {
	if !ce.Equal(pe) {
		return ce.After(pe)
	}
	if dc, dp := ce.Sub(cs), pe.Sub(ps); dc != dp {
		return dc > dp
	}
	return c.Data.SpanID < p.Data.SpanID
}

func clamp(start, end, lo, hi time.Time) (time.Time, time.Time) {
	if start.Before(lo) {
		start = lo
	}
	if end.After(hi) {
		end = hi
	}
	return start, end
}

func emit(segs *[]Segment, owner *Node, start, end time.Time, cat string, self bool) {
	*segs = append(*segs, Segment{
		Start:    start,
		Duration: end.Sub(start),
		Category: cat,
		Name:     owner.Data.Name,
		Process:  owner.Data.Process,
		SelfTime: self,
	})
}

// sortCategories returns the keys of m in canonical report order, with
// unknown categories appended alphabetically.
func sortCategories(m map[string]time.Duration) []string {
	seen := make(map[string]bool, len(m))
	var out []string
	for _, c := range CategoryOrder {
		if _, ok := m[c]; ok {
			out = append(out, c)
			seen[c] = true
		}
	}
	var extra []string
	for c := range m {
		if !seen[c] {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
