package tailtrace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// RequestTax is one request's critical-path attribution. ByCategory and
// ByProcess each partition the root span's duration: every critical-path
// nanosecond lands in exactly one category and one process.
type RequestTax struct {
	TraceID    uint64
	Total      time.Duration
	ByCategory map[string]time.Duration
	ByProcess  map[string]time.Duration
	Rootless   bool
	Orphans    int
}

// Attribute extracts t's critical path and sums it by category and by
// process (tier).
func Attribute(t *Tree) RequestTax {
	rt := RequestTax{
		TraceID:    t.TraceID,
		Total:      t.Root.Data.Duration,
		ByCategory: make(map[string]time.Duration),
		ByProcess:  make(map[string]time.Duration),
		Rootless:   t.Rootless,
	}
	for _, s := range CriticalPath(t) {
		rt.ByCategory[s.Category] += s.Duration
		rt.ByProcess[s.Process] += s.Duration
	}
	var count func(n *Node)
	count = func(n *Node) {
		if n.Orphan {
			rt.Orphans++
		}
		for _, c := range n.Children {
			count(c)
		}
	}
	count(t.Root)
	return rt
}

// TaxRow is one slice of the tail-tax table: the attribution of a single
// exemplar request at a latency quantile, or the mean across all
// requests. Values are nanoseconds (float so the mean row is exact).
type TaxRow struct {
	Label      string             `json:"label"`
	TraceID    uint64             `json:"trace_id,omitempty"`
	TotalNanos float64            `json:"total_nanos"`
	ByCategory map[string]float64 `json:"by_category"`
}

// Share returns the row's fraction in category c, 0..1.
func (r TaxRow) Share(c string) float64 {
	if r.TotalNanos <= 0 {
		return 0
	}
	return r.ByCategory[c] / r.TotalNanos
}

// Exemplar is one of the slowest requests, with its raw spans for Chrome
// trace export and its attribution for the explain path.
type Exemplar struct {
	TraceID uint64
	Total   time.Duration
	Tax     RequestTax
	Spans   []telemetry.SpanData
	Tree    *Tree
}

// Report is the aggregated tail-tax attribution over one run.
type Report struct {
	Requests   int      `json:"requests"`
	Categories []string `json:"categories"`
	// Rows holds the mean plus one row per requested quantile, slowest
	// last.
	Rows []TaxRow `json:"rows"`
	// TierShares is each process's share of total critical-path time
	// across all requests, 0..1.
	TierShares map[string]float64 `json:"tier_shares"`
	// Rootless and Orphans count assembly degradations: trees whose root
	// span was missing, and spans whose parent was missing.
	Rootless int `json:"rootless,omitempty"`
	Orphans  int `json:"orphans,omitempty"`

	Exemplars []Exemplar `json:"-"`
}

// Options configures Analyze.
type Options struct {
	// Quantiles for the per-slice rows; default p50, p99, p999.
	Quantiles []float64
	// Exemplars is how many slowest requests to retain with full spans
	// (default 0).
	Exemplars int
}

var defaultQuantiles = []float64{0.5, 0.99, 0.999}

// Analyze assembles spans into trees, attributes each request's critical
// path, and aggregates the tail-tax report: a mean row plus, for each
// quantile, the attribution of the request sitting at that latency rank
// (nearest-rank, matching the simulator's order statistics). Slicing by
// exemplar rather than averaging a bucket keeps the row a real request —
// its categories sum to its total — which is what makes "the p999 is 60%
// queueing" an actionable statement.
func Analyze(spans []telemetry.SpanData, opt Options) *Report {
	qs := opt.Quantiles
	if len(qs) == 0 {
		qs = defaultQuantiles
	}
	trees := Assemble(spans)
	rep := &Report{Requests: len(trees), TierShares: make(map[string]float64)}
	if len(trees) == 0 {
		return rep
	}
	taxes := make([]RequestTax, len(trees))
	for i, t := range trees {
		taxes[i] = Attribute(t)
		if taxes[i].Rootless {
			rep.Rootless++
		}
		rep.Orphans += taxes[i].Orphans
	}
	order := make([]int, len(taxes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		ti, tj := taxes[order[i]], taxes[order[j]]
		if ti.Total != tj.Total {
			return ti.Total < tj.Total
		}
		return ti.TraceID < tj.TraceID
	})

	// Category universe and tier shares over all requests.
	catSum := make(map[string]time.Duration)
	var totalSum time.Duration
	procSum := make(map[string]time.Duration)
	for _, tx := range taxes {
		totalSum += tx.Total
		for c, d := range tx.ByCategory {
			catSum[c] += d
		}
		for p, d := range tx.ByProcess {
			procSum[p] += d
		}
	}
	rep.Categories = sortCategories(catSum)
	if totalSum > 0 {
		for p, d := range procSum {
			rep.TierShares[p] = float64(d) / float64(totalSum)
		}
	}

	mean := TaxRow{Label: "mean", ByCategory: make(map[string]float64)}
	n := float64(len(taxes))
	mean.TotalNanos = float64(totalSum) / n
	for c, d := range catSum {
		mean.ByCategory[c] = float64(d) / n
	}
	rep.Rows = append(rep.Rows, mean)
	for _, q := range qs {
		tx := taxes[order[nearestRank(len(order), q)]]
		row := TaxRow{
			Label:      quantileLabel(q),
			TraceID:    tx.TraceID,
			TotalNanos: float64(tx.Total),
			ByCategory: make(map[string]float64, len(tx.ByCategory)),
		}
		for c, d := range tx.ByCategory {
			row.ByCategory[c] = float64(d)
		}
		rep.Rows = append(rep.Rows, row)
	}

	if opt.Exemplars > 0 {
		k := opt.Exemplars
		if k > len(order) {
			k = len(order)
		}
		for i := 0; i < k; i++ {
			idx := order[len(order)-1-i]
			rep.Exemplars = append(rep.Exemplars, Exemplar{
				TraceID: taxes[idx].TraceID,
				Total:   taxes[idx].Total,
				Tax:     taxes[idx],
				Spans:   trees[idx].Spans,
				Tree:    trees[idx],
			})
		}
	}
	return rep
}

// nearestRank maps quantile q over n sorted samples to an index,
// matching the topology simulator's order statistics.
func nearestRank(n int, q float64) int {
	if n == 0 {
		return 0
	}
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

func quantileLabel(q float64) string {
	s := fmt.Sprintf("%g", q*100)
	return "p" + strings.ReplaceAll(s, ".", "")
}

// RenderText writes the tail-tax table: one line per slice, each category
// as milliseconds and share of that slice's total. The interesting read
// is vertical — a category whose share grows from p50 to p999 is where
// the tail lives.
func (r *Report) RenderText(w *strings.Builder) {
	fmt.Fprintf(w, "tail-tax attribution: %d requests", r.Requests)
	if r.Rootless > 0 || r.Orphans > 0 {
		fmt.Fprintf(w, " (%d rootless, %d orphan spans)", r.Rootless, r.Orphans)
	}
	w.WriteString("\n")
	if r.Requests == 0 {
		return
	}
	width := 9
	for _, c := range r.Categories {
		if len(c)+7 > width {
			width = len(c) + 7
		}
	}
	fmt.Fprintf(w, "  %-6s %10s", "slice", "total(ms)")
	for _, c := range r.Categories {
		fmt.Fprintf(w, "  %*s", width, c)
	}
	w.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-6s %10.3f", row.Label, row.TotalNanos/1e6)
		for _, c := range r.Categories {
			cell := fmt.Sprintf("%.3f %3.0f%%", row.ByCategory[c]/1e6, 100*row.Share(c))
			fmt.Fprintf(w, "  %*s", width, cell)
		}
		w.WriteString("\n")
	}
}

// TierDiff compares one tier's predicted share of the end-to-end
// critical path against its measured share.
type TierDiff struct {
	Tier      string
	Predicted float64 // 0..1; 0 for tiers off the predicted path
	Measured  float64 // 0..1
}

// CompareModel diffs the measured per-tier critical-path composition
// against a predicted path and its weights (topology.Predict's
// CriticalPath/PathWeights, passed as plain slices to keep this package
// below the topology layer). Tiers the model did not place on the path
// but that show up in measurement — the injector process, typically —
// appear with Predicted 0; the gap between the two columns is the tax
// the analytical model does not see (rpc stages, queueing, transport).
func (r *Report) CompareModel(path []string, weights []float64) []TierDiff {
	pred := make(map[string]float64, len(path))
	for i, p := range path {
		if i < len(weights) {
			pred[p] += weights[i]
		}
	}
	names := make(map[string]bool, len(pred)+len(r.TierShares))
	for p := range pred {
		names[p] = true
	}
	for p := range r.TierShares {
		names[p] = true
	}
	out := make([]TierDiff, 0, len(names))
	for p := range names {
		out = append(out, TierDiff{Tier: p, Predicted: pred[p], Measured: r.TierShares[p]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Predicted != out[j].Predicted { //modelcheck:ignore floatcmp — sort comparator tie-break, exact compare is the point
			return out[i].Predicted > out[j].Predicted
		}
		return out[i].Tier < out[j].Tier
	})
	return out
}

// RenderModelDiff writes the predicted-vs-measured tier table.
func RenderModelDiff(w *strings.Builder, diffs []TierDiff) {
	fmt.Fprintf(w, "critical-path composition, predicted vs measured:\n")
	fmt.Fprintf(w, "  %-12s %10s %10s %8s\n", "tier", "predicted", "measured", "delta")
	for _, d := range diffs {
		fmt.Fprintf(w, "  %-12s %9.1f%% %9.1f%% %+7.1f%%\n",
			d.Tier, 100*d.Predicted, 100*d.Measured, 100*(d.Measured-d.Predicted))
	}
}
