package trace

import (
	"testing"
	"testing/quick"
)

func TestFrameDomainFunction(t *testing.T) {
	cases := []struct {
		f        Frame
		domain   string
		function string
	}{
		{"libc.memcpy", "libc", "memcpy"},
		{"kernel.sched.switch", "kernel", "sched.switch"},
		{"bare", "bare", "bare"},
	}
	for _, tc := range cases {
		if got := tc.f.Domain(); got != tc.domain {
			t.Errorf("%q.Domain() = %q, want %q", tc.f, got, tc.domain)
		}
		if got := tc.f.Function(); got != tc.function {
			t.Errorf("%q.Function() = %q, want %q", tc.f, got, tc.function)
		}
	}
}

func TestStackLeafRoot(t *testing.T) {
	s := Stack{"thread.clone", "rpc.recv", "libc.memcpy"}
	leaf, err := s.Leaf()
	if err != nil || leaf != "libc.memcpy" {
		t.Errorf("Leaf = %q, %v", leaf, err)
	}
	root, err := s.Root()
	if err != nil || root != "thread.clone" {
		t.Errorf("Root = %q, %v", root, err)
	}
	var empty Stack
	if _, err := empty.Leaf(); err == nil {
		t.Error("empty stack Leaf: want error")
	}
	if _, err := empty.Root(); err == nil {
		t.Error("empty stack Root: want error")
	}
}

func TestStackContains(t *testing.T) {
	s := Stack{"rpc.recv", "ssl.encrypt", "libc.memcpy"}
	if !s.Contains("ssl.encrypt") {
		t.Error("Contains(ssl.encrypt) = false")
	}
	if s.Contains("zstd.compress") {
		t.Error("Contains(zstd.compress) = true")
	}
	if !s.ContainsDomain("ssl") {
		t.Error("ContainsDomain(ssl) = false")
	}
	if s.ContainsDomain("zstd") {
		t.Error("ContainsDomain(zstd) = true")
	}
}

func TestStackKeyParseRoundTrip(t *testing.T) {
	s := Stack{"a.b", "c.d", "e"}
	parsed, err := ParseStack(s.Key())
	if err != nil {
		t.Fatalf("ParseStack: %v", err)
	}
	if parsed.Key() != s.Key() {
		t.Errorf("round trip: %q != %q", parsed.Key(), s.Key())
	}
	if _, err := ParseStack(""); err == nil {
		t.Error("empty key: want error")
	}
	if _, err := ParseStack("a;;b"); err == nil {
		t.Error("empty frame: want error")
	}
}

func TestSampleIPC(t *testing.T) {
	s := Sample{Cycles: 100, Instructions: 80}
	if got := s.IPC(); got != 0.8 {
		t.Errorf("IPC = %v, want 0.8", got)
	}
	if got := (Sample{}).IPC(); got != 0 {
		t.Errorf("zero-cycle IPC = %v, want 0", got)
	}
}

func TestSetAddMerges(t *testing.T) {
	st := NewSet()
	stack := Stack{"rpc.recv", "libc.memcpy"}
	must(t, st.Add(Sample{Stack: stack, Cycles: 10, Instructions: 8}))
	must(t, st.Add(Sample{Stack: stack, Cycles: 5, Instructions: 4}))
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (identical stacks merge)", st.Len())
	}
	got := st.Samples()[0]
	if got.Cycles != 15 || got.Instructions != 12 {
		t.Errorf("merged sample = %+v", got)
	}
}

func TestSetAddRejectsEmptyStack(t *testing.T) {
	if err := NewSet().Add(Sample{}); err == nil {
		t.Error("empty stack: want error")
	}
}

func TestSetTotals(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"a"}, Cycles: 10, Instructions: 5}))
	must(t, st.Add(Sample{Stack: Stack{"b"}, Cycles: 20, Instructions: 30}))
	if st.TotalCycles() != 30 {
		t.Errorf("TotalCycles = %d", st.TotalCycles())
	}
	if st.TotalInstructions() != 35 {
		t.Errorf("TotalInstructions = %d", st.TotalInstructions())
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	must(t, a.Add(Sample{Stack: Stack{"x"}, Cycles: 1}))
	must(t, b.Add(Sample{Stack: Stack{"x"}, Cycles: 2}))
	must(t, b.Add(Sample{Stack: Stack{"y"}, Cycles: 3}))
	must(t, a.Merge(b))
	if a.Len() != 2 || a.TotalCycles() != 6 {
		t.Errorf("after merge: len=%d cycles=%d", a.Len(), a.TotalCycles())
	}
	must(t, a.Merge(nil)) // nil merge is a no-op
	if a.Len() != 2 {
		t.Error("nil merge changed the set")
	}
}

func TestSamplesAreCopies(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"a", "b"}, Cycles: 1}))
	out := st.Samples()
	out[0].Stack[0] = "mutated"
	out[0].Cycles = 999
	fresh := st.Samples()[0]
	if fresh.Stack[0] != "a" || fresh.Cycles != 1 {
		t.Error("Samples exposed internal state")
	}
}

func TestTopByCycles(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"low"}, Cycles: 1}))
	must(t, st.Add(Sample{Stack: Stack{"high"}, Cycles: 100}))
	must(t, st.Add(Sample{Stack: Stack{"mid"}, Cycles: 50}))
	top := st.TopByCycles(2)
	if len(top) != 2 {
		t.Fatalf("TopByCycles(2) returned %d", len(top))
	}
	if top[0].Stack.Key() != "high" || top[1].Stack.Key() != "mid" {
		t.Errorf("top order: %v, %v", top[0].Stack, top[1].Stack)
	}
	if got := st.TopByCycles(10); len(got) != 3 {
		t.Errorf("TopByCycles(10) returned %d, want all 3", len(got))
	}
}

func TestTopByCyclesTieBreak(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"zz"}, Cycles: 5}))
	must(t, st.Add(Sample{Stack: Stack{"aa"}, Cycles: 5}))
	top := st.TopByCycles(2)
	if top[0].Stack.Key() != "aa" {
		t.Errorf("tie break should be lexicographic, got %v first", top[0].Stack)
	}
}

func TestLeafCycles(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"rpc.recv", "libc.memcpy"}, Cycles: 10}))
	must(t, st.Add(Sample{Stack: Stack{"app.serve", "libc.memcpy"}, Cycles: 7}))
	must(t, st.Add(Sample{Stack: Stack{"app.serve", "ssl.encrypt"}, Cycles: 3}))
	lc := st.LeafCycles()
	if lc["libc.memcpy"] != 17 {
		t.Errorf("memcpy leaf cycles = %d, want 17", lc["libc.memcpy"])
	}
	if lc["ssl.encrypt"] != 3 {
		t.Errorf("encrypt leaf cycles = %d, want 3", lc["ssl.encrypt"])
	}
}

func TestLeafSamples(t *testing.T) {
	st := NewSet()
	must(t, st.Add(Sample{Stack: Stack{"a", "leaf"}, Cycles: 10, Instructions: 5}))
	must(t, st.Add(Sample{Stack: Stack{"b", "leaf"}, Cycles: 10, Instructions: 15}))
	ls := st.LeafSamples()
	got := ls["leaf"]
	if got.Cycles != 20 || got.Instructions != 20 {
		t.Errorf("leaf sample = %+v", got)
	}
	if got.IPC() != 1.0 {
		t.Errorf("leaf IPC = %v", got.IPC())
	}
}

// Property: merging two sets preserves total cycles and instructions.
func TestMergePreservesTotals(t *testing.T) {
	f := func(cyclesA, cyclesB []uint8) bool {
		a, b := NewSet(), NewSet()
		var want uint64
		for i, c := range cyclesA {
			_ = a.Add(Sample{Stack: Stack{Frame(byte('a' + i%20))}, Cycles: uint64(c)})
			want += uint64(c)
		}
		for i, c := range cyclesB {
			_ = b.Add(Sample{Stack: Stack{Frame(byte('a' + i%20))}, Cycles: uint64(c)})
			want += uint64(c)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.TotalCycles() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key/ParseStack round-trips for any stack of non-empty
// semicolon-free frames.
func TestKeyRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make(Stack, len(raw))
		for i, b := range raw {
			s[i] = Frame("f" + string(rune('a'+b%26)))
		}
		parsed, err := ParseStack(s.Key())
		return err == nil && parsed.Key() == s.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
