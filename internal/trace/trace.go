// Package trace represents sampled function call traces with cycle and
// instruction weights — the raw material of the paper's characterization.
//
// The paper's methodology (§2.2) collects, with Strobelight, (1) leaf
// functions with their cycle counts and (2) whole function call traces with
// cycles and instructions, then feeds both to internal tools that tag each
// leaf with a category (Table 2) and bucket each trace into a microservice
// functionality (Table 3). This package is the interchange format between
// our synthetic fleet (which emits traces) and the profiler (which tags and
// aggregates them).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Frame is one function in a call trace, identified by name. Names follow a
// "domain.function" convention (e.g. "libc.memcpy", "kernel.schedule",
// "zstd.compress") that the profiler's taggers pattern-match on.
type Frame string

// Domain returns the portion of the frame name before the first dot, or the
// whole name if there is no dot.
func (f Frame) Domain() string {
	if i := strings.IndexByte(string(f), '.'); i >= 0 {
		return string(f)[:i]
	}
	return string(f)
}

// Function returns the portion after the first dot, or the whole name.
func (f Frame) Function() string {
	if i := strings.IndexByte(string(f), '.'); i >= 0 {
		return string(f)[i+1:]
	}
	return string(f)
}

// Stack is a call trace ordered from root (index 0) to leaf (last index),
// e.g. a sequence starting with cloning a thread and ending in memcpy.
type Stack []Frame

// Leaf returns the innermost frame. It returns an error on an empty stack.
func (s Stack) Leaf() (Frame, error) {
	if len(s) == 0 {
		return "", errors.New("trace: empty stack has no leaf")
	}
	return s[len(s)-1], nil
}

// Root returns the outermost frame. It returns an error on an empty stack.
func (s Stack) Root() (Frame, error) {
	if len(s) == 0 {
		return "", errors.New("trace: empty stack has no root")
	}
	return s[0], nil
}

// Contains reports whether any frame in the stack equals f.
func (s Stack) Contains(f Frame) bool {
	for _, fr := range s {
		if fr == f {
			return true
		}
	}
	return false
}

// ContainsDomain reports whether any frame's domain equals d.
func (s Stack) ContainsDomain(d string) bool {
	for _, fr := range s {
		if fr.Domain() == d {
			return true
		}
	}
	return false
}

// Key returns a canonical string for the stack, usable as a map key when
// merging samples.
func (s Stack) Key() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = string(f)
	}
	return strings.Join(parts, ";")
}

// ParseStack inverts Key: it splits a semicolon-joined trace back into a
// Stack. Empty input yields an error.
func ParseStack(key string) (Stack, error) {
	if key == "" {
		return nil, errors.New("trace: empty stack key")
	}
	parts := strings.Split(key, ";")
	s := make(Stack, len(parts))
	for i, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("trace: empty frame at position %d in %q", i, key)
		}
		s[i] = Frame(p)
	}
	return s, nil
}

// Sample is one aggregated observation of a call trace: the cycles and
// instructions attributed to it during a profiling window.
type Sample struct {
	Stack        Stack
	Cycles       uint64
	Instructions uint64
}

// IPC returns the sample's instructions-per-cycle ratio, or 0 when no cycles
// were recorded.
func (s Sample) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Set is a collection of samples keyed by stack. Adding a sample with a
// stack already present merges the weights, mirroring how a profiler
// aggregates identical traces across a collection window.
type Set struct {
	byKey map[string]*Sample
	order []string // insertion order of first occurrence, for stable output
}

// NewSet returns an empty sample set.
func NewSet() *Set {
	return &Set{byKey: make(map[string]*Sample)}
}

// Add merges a sample into the set. Samples with empty stacks are rejected.
func (st *Set) Add(s Sample) error {
	if len(s.Stack) == 0 {
		return errors.New("trace: cannot add sample with empty stack")
	}
	k := s.Stack.Key()
	if existing, ok := st.byKey[k]; ok {
		existing.Cycles += s.Cycles
		existing.Instructions += s.Instructions
		return nil
	}
	cp := s
	cp.Stack = append(Stack(nil), s.Stack...)
	st.byKey[k] = &cp
	st.order = append(st.order, k)
	return nil
}

// Merge folds all samples of other into st.
func (st *Set) Merge(other *Set) error {
	if other == nil {
		return nil
	}
	for _, s := range other.Samples() {
		if err := st.Add(s); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of distinct stacks.
func (st *Set) Len() int { return len(st.byKey) }

// TotalCycles returns the cycles summed over all samples.
func (st *Set) TotalCycles() uint64 {
	var total uint64
	for _, s := range st.byKey {
		total += s.Cycles
	}
	return total
}

// TotalInstructions returns the instructions summed over all samples.
func (st *Set) TotalInstructions() uint64 {
	var total uint64
	for _, s := range st.byKey {
		total += s.Instructions
	}
	return total
}

// Samples returns copies of all samples in first-insertion order.
func (st *Set) Samples() []Sample {
	out := make([]Sample, 0, len(st.order))
	for _, k := range st.order {
		s := st.byKey[k]
		out = append(out, Sample{
			Stack:        append(Stack(nil), s.Stack...),
			Cycles:       s.Cycles,
			Instructions: s.Instructions,
		})
	}
	return out
}

// TopByCycles returns up to n samples with the highest cycle counts, in
// descending cycle order (ties broken by stack key for determinism).
func (st *Set) TopByCycles(n int) []Sample {
	all := st.Samples()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Cycles != all[j].Cycles {
			return all[i].Cycles > all[j].Cycles
		}
		return all[i].Stack.Key() < all[j].Stack.Key()
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// LeafCycles aggregates cycles by leaf function across all samples. It is
// the "leaf function breakdown" input of §2.3.
func (st *Set) LeafCycles() map[Frame]uint64 {
	out := make(map[Frame]uint64)
	for _, s := range st.byKey {
		leaf, err := s.Stack.Leaf()
		if err != nil {
			continue
		}
		out[leaf] += s.Cycles
	}
	return out
}

// LeafSamples aggregates both cycles and instructions by leaf function.
func (st *Set) LeafSamples() map[Frame]Sample {
	out := make(map[Frame]Sample)
	for _, s := range st.byKey {
		leaf, err := s.Stack.Leaf()
		if err != nil {
			continue
		}
		agg := out[leaf]
		agg.Stack = Stack{leaf}
		agg.Cycles += s.Cycles
		agg.Instructions += s.Instructions
		out[leaf] = agg
	}
	return out
}
