package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	wantIDs := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
		"abl1", "abl2", "abl3", "abl4",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7",
	}
	got := make(map[string]bool, len(all))
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range wantIDs {
		if !got[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(all) != len(wantIDs) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
}

func TestOrdering(t *testing.T) {
	all := All()
	// Figures numerically ordered, then tables.
	var idx = map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if !(idx["fig2"] < idx["fig10"]) {
		t.Error("fig2 should come before fig10 (numeric ordering)")
	}
	if !(idx["fig22"] < idx["tab1"]) {
		t.Error("figures should come before tables")
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig9")
	if err != nil || e.ID != "fig9" {
		t.Errorf("Lookup(fig9) = %v, %v", e.ID, err)
	}
	e, err = Lookup(" TAB6 ")
	if err != nil || e.ID != "tab6" {
		t.Errorf("Lookup with spaces/case = %v, %v", e.ID, err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id: want error")
	}
}

// Every experiment must run without error and produce non-trivial output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.TrimSpace(out)) < 40 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

// Spot-check key numbers inside the rendered artifacts.
func TestFig20Content(t *testing.T) {
	e, err := Lookup("fig20")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"On-chip", "Off-chip: Sync-OS", "paper: 13.6%", "paper: 12.7%", "paper: 1.86%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig20 output missing %q:\n%s", want, out)
		}
	}
}

func TestTab6Content(t *testing.T) {
	e, err := Lookup("tab6")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AES-NI", "Encryption", "Inference", "15.7", "72.39"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9Content(t *testing.T) {
	e, _ := Lookup("fig9")
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2", "Cache1", "Cache2"} {
		if !strings.Contains(out, svc) {
			t.Errorf("fig9 missing %s", svc)
		}
	}
}

func TestFig15BreakEvenMarker(t *testing.T) {
	e, _ := Lookup("fig15")
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "min AES-NI g") {
		t.Errorf("fig15 missing break-even marker:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	out, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== fig1:") || !strings.Contains(out, "=== tab7:") {
		t.Error("RunAll output missing experiment headers")
	}
}

func TestSplitID(t *testing.T) {
	p, n := splitID("fig15")
	if p != "fig" || n != 15 {
		t.Errorf("splitID(fig15) = %q, %d", p, n)
	}
	p, n = splitID("tab6")
	if p != "tab" || n != 6 {
		t.Errorf("splitID(tab6) = %q, %d", p, n)
	}
	p, n = splitID("noDigits")
	if n != 0 {
		t.Errorf("splitID(noDigits) = %q, %d", p, n)
	}
}
