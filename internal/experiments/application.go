package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/services"
	"repro/internal/textchart"
)

func init() {
	register(Experiment{
		ID:    "fig20",
		Title: "Projected speedup for compression, memory copy, and allocation",
		Run:   runFig20,
	})
	register(Experiment{
		ID:    "tab7",
		Title: "Model parameters for the acceleration recommendations",
		Run:   runTab7,
	})
}

// feed1CompressionWorkload assembles the unfiltered Feed1 compression
// workload of §5 from the fleet datasets: C and α from Table 7, total
// invocations from Table 7, and the size distribution from Fig 19 (via
// the service's bpftrace-style measurement).
func feed1CompressionWorkload() (core.Workload, error) {
	feed1, err := services.New(fleetdata.Feed1)
	if err != nil {
		return core.Workload{}, err
	}
	h, err := feed1.MeasureSizes(kernels.Compression, 200000, 1)
	if err != nil {
		return core.Workload{}, err
	}
	cdf, err := h.CDF()
	if err != nil {
		return core.Workload{}, err
	}
	return core.Workload{
		C:          2.3e9,
		KernelFrac: 0.15,
		Invocation: 15008,
		Sizes:      cdf,
	}, nil
}

// fig20Projections computes the Fig 20 bars via the granularity-aware
// projection pipeline (break-even → filtered n and α → model).
func fig20Projections() (map[string]core.Projection, error) {
	out := make(map[string]core.Projection)

	w, err := feed1CompressionWorkload()
	if err != nil {
		return nil, err
	}
	k := fleetdata.CaseStudyKernels["compression"]
	designs := map[string]core.Offload{
		"Feed1 compression on-chip":          {Strategy: core.OnChip, Thread: core.Sync, A: 5, SelectiveOffload: true},
		"Feed1 compression off-chip Sync":    {Strategy: core.OffChip, Thread: core.Sync, A: 27, L: 2300, SelectiveOffload: true},
		"Feed1 compression off-chip Sync-OS": {Strategy: core.OffChip, Thread: core.SyncOS, A: 27, L: 2300, O1: 5750, SelectiveOffload: true},
		"Feed1 compression off-chip Async":   {Strategy: core.OffChip, Thread: core.AsyncSameThread, A: 27, L: 2300, SelectiveOffload: true},
	}
	for name, off := range designs {
		pr, err := core.Project(w, k, off)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = pr
	}

	// Memory copy (Ads1) and allocation (Cache1) are on-chip only — the
	// paper notes off-chip faces coherence challenges and remote yields no
	// gains. On-chip has no offload overhead, so every invocation offloads.
	ads1, err := services.New(fleetdata.Ads1)
	if err != nil {
		return nil, err
	}
	copyHist, err := ads1.MeasureSizes(kernels.MemoryCopy, 200000, 2)
	if err != nil {
		return nil, err
	}
	copyCDF, err := copyHist.CDF()
	if err != nil {
		return nil, err
	}
	copyProj, err := core.Project(core.Workload{
		C: 2.3e9, KernelFrac: 0.1512, Invocation: 1473681, Sizes: copyCDF,
	}, core.LinearKernel(1.0), core.Offload{
		Strategy: core.OnChip, Thread: core.Sync, A: 4, SelectiveOffload: true,
	})
	if err != nil {
		return nil, err
	}
	out["Ads1 memory copy on-chip"] = copyProj

	cache1, err := services.New(fleetdata.Cache1)
	if err != nil {
		return nil, err
	}
	allocHist, err := cache1.MeasureSizes(kernels.Allocation, 200000, 3)
	if err != nil {
		return nil, err
	}
	allocCDF, err := allocHist.CDF()
	if err != nil {
		return nil, err
	}
	allocProj, err := core.Project(core.Workload{
		C: 2.0e9, KernelFrac: 0.055, Invocation: 51695, Sizes: allocCDF,
	}, core.LinearKernel(0.35), core.Offload{
		Strategy: core.OnChip, Thread: core.Sync, A: 1.5, SelectiveOffload: true,
	})
	if err != nil {
		return nil, err
	}
	out["Cache1 memory allocation on-chip"] = allocProj
	return out, nil
}

func runFig20() (string, error) {
	prs, err := fig20Projections()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Feed1: Compression (ideal speedup = " +
		fmt.Sprintf("%.1f%%)\n", (prs["Feed1 compression on-chip"].IdealSpeedup-1)*100))
	order := []struct{ key, label, paper string }{
		{"Feed1 compression on-chip", "On-chip", "13.6%"},
		{"Feed1 compression off-chip Sync", "Off-chip: Sync", "9%"},
		{"Feed1 compression off-chip Sync-OS", "Off-chip: Sync-OS", "1.6%"},
		{"Feed1 compression off-chip Async", "Off-chip: Async", "9.6%"},
	}
	for _, row := range order {
		pr := prs[row.key]
		sb.WriteString(textchart.HBar(row.label, pr.SpeedupPercent(), 20, 40))
		fmt.Fprintf(&sb, "  (paper: %s; latency %+.1f%%; %.1f%% of offloads ≥ break-even %.0f B)\n",
			row.paper, pr.LatencyReductionPercent(), pr.OffloadedFraction*100, math.Ceil(pr.BreakEvenG))
	}

	cp := prs["Ads1 memory copy on-chip"]
	sb.WriteString("\nAds1: Memory copy (ideal speedup = " +
		fmt.Sprintf("%.1f%%)\n", (cp.IdealSpeedup-1)*100))
	sb.WriteString(textchart.HBar("On-chip", cp.SpeedupPercent(), 20, 40))
	sb.WriteString("  (paper: 12.7%)\n")

	al := prs["Cache1 memory allocation on-chip"]
	sb.WriteString("\nCache1: Memory allocation (ideal speedup = " +
		fmt.Sprintf("%.1f%%)\n", (al.IdealSpeedup-1)*100))
	sb.WriteString(textchart.HBar("On-chip", al.SpeedupPercent(), 20, 40))
	sb.WriteString("  (paper: 1.86%)\n")

	sb.WriteString("\nPerformance bounds from accelerator offload limit the achievable speedup;\non-chip acceleration beats off-chip for Feed1's compression, and the\nSync-OS thread-switch overhead erases most of the off-chip gain.\n")
	return sb.String(), nil
}

func runTab7() (string, error) {
	tb := textchart.NewTable("Overhead", "Acceleration", "C (1e9)", "alpha", "n", "L", "o1", "A", "Fig 20 %")
	for _, app := range fleetdata.Applications {
		p := app.Params
		o1 := "NA"
		if p.O1 > 0 {
			o1 = fmt.Sprintf("%.0f", p.O1)
		}
		tb.AddRowf(app.Overhead, app.Threading.String()+" "+app.Strategy.String(),
			p.C/1e9, p.Alpha, p.N, p.L, o1, p.A, app.SpeedupPct)
	}
	return tb.Render() +
		"\nOff-chip rows carry pre-filtered n (profitable granularities only); their\neffective α scales by the offloaded-invocation fraction.\n", nil
}
