package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
	"repro/internal/services"
	"repro/internal/textchart"
)

// profileCycles is the per-service cycle budget used when synthesizing
// profiles; large enough that percentage rounding error is negligible.
const profileCycles = 1e9

// fleetProfiles synthesizes the seven services and profiles each on the
// given generation.
func fleetProfiles(gen cpuarch.Generation) ([]*profiler.Profile, error) {
	fleet, err := services.Fleet()
	if err != nil {
		return nil, err
	}
	out := make([]*profiler.Profile, 0, len(fleet))
	for _, s := range fleet {
		p, err := s.Profile(gen, profileCycles)
		if err != nil {
			return nil, fmt.Errorf("profiling %s: %w", s.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Cycles in core application logic vs orchestration work",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Cycles spent in leaf function categories",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Cycles spent in memory leaf functions",
		Run: func() (string, error) {
			return runSubBreakdown("mem", profiler.MemoryLabels, "Other",
				fleetdata.MemoryBreakdowns, fleetdata.MemoryCategories,
				"memory copy, allocation, and free consume significant cycles")
		},
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Service functionalities that invoke memory copies",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Cycles spent in kernel leaf functions",
		Run: func() (string, error) {
			return runSubBreakdown("kernel", profiler.KernelLabels, fleetdata.KernMisc,
				fleetdata.KernelBreakdowns, fleetdata.KernelCategories,
				"kernel scheduler, event handling, and network overheads can be high")
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Cycles spent in synchronization leaf functions",
		Run: func() (string, error) {
			return runSubBreakdown("sync", profiler.SyncLabels, "Other",
				fleetdata.SyncBreakdowns, fleetdata.SyncCategories,
				"the Cache tiers spin to avoid thread wakeup delays")
		},
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Cycles spent in C library leaf functions",
		Run: func() (string, error) {
			return runSubBreakdown("clib", profiler.CLibLabels, fleetdata.CLibMisc,
				fleetdata.CLibBreakdowns, fleetdata.CLibCategories,
				"ML services perform many vector operations on feature vectors")
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Cache1 per-core IPC scaling for key leaf categories",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Cycles spent in microservice functionalities",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Cache1 per-core IPC scaling for key functionalities",
		Run:   runFig10,
	})
}

func runFig1() (string, error) {
	profiles, err := fleetProfiles(cpuarch.GenC)
	if err != nil {
		return "", err
	}
	bucketer := profiler.NewFunctionalityBucketer()
	tb := textchart.NewTable("Service", "App logic %", "Orchestration %", "Paper app logic %")
	for _, p := range profiles {
		shares := p.FunctionalityBreakdown(bucketer)
		app := profiler.ShareOf(shares, fleetdata.FuncAppLogic) +
			profiler.ShareOf(shares, fleetdata.FuncPrediction)
		ref, err := fleetdata.AppLogicShare(p.Service)
		if err != nil {
			return "", err
		}
		tb.AddRowf(string(p.Service), app, 100-app, ref)
	}
	return tb.Render() +
		"\nOrchestration overheads significantly dominate core application logic.\n", nil
}

func runFig2() (string, error) {
	profiles, err := fleetProfiles(cpuarch.GenC)
	if err != nil {
		return "", err
	}
	tagger := profiler.NewLeafTagger()
	headers := append([]string{"Service"}, fleetdata.LeafCategories...)
	tb := textchart.NewTable(headers...)
	for _, p := range profiles {
		shares := p.LeafBreakdown(tagger)
		row := []interface{}{string(p.Service)}
		for _, cat := range fleetdata.LeafCategories {
			row = append(row, profiler.ShareOf(shares, cat))
		}
		tb.AddRowf(row...)
	}
	var sb strings.Builder
	sb.WriteString(tb.Render())

	// Reference rows the paper compares against.
	ref := textchart.NewTable("Reference", "Memory", "Kernel", "Math + C Lib + Misc")
	ref.AddRowf("Google [Kanev'15]",
		fleetdata.GoogleLeafBreakdown.Share(fleetdata.LeafMemory),
		fleetdata.GoogleLeafBreakdown.Share(fleetdata.LeafKernel),
		fleetdata.GoogleLeafBreakdown.Share(fleetdata.LeafMath)+
			fleetdata.GoogleLeafBreakdown.Share(fleetdata.LeafCLib)+
			fleetdata.GoogleLeafBreakdown.Share(fleetdata.LeafMisc))
	for _, name := range []string{"400.perlbench", "403.gcc", "471.omnetpp", "473.astar"} {
		b := fleetdata.SPECLeafBreakdowns[name]
		ref.AddRowf(name, b.Share(fleetdata.LeafMemory), b.Share(fleetdata.LeafKernel),
			b.Share(fleetdata.LeafMathCLibMisc))
	}
	sb.WriteString("\n")
	sb.WriteString(ref.Render())
	sb.WriteString("\nMemory functions consume a significant portion of total cycles;\nSPEC CPU2006 misses the memory and kernel overheads the fleet faces.\n")
	return sb.String(), nil
}

// runSubBreakdown renders one of the Figs 3/5/6/7 leaf sub-breakdowns:
// measured from the synthesized profiles, next to the paper's reference.
func runSubBreakdown(domain string, labels map[string]string, fallback string,
	ref map[fleetdata.Service]fleetdata.Breakdown, categories []string, conclusion string) (string, error) {
	profiles, err := fleetProfiles(cpuarch.GenC)
	if err != nil {
		return "", err
	}
	headers := append([]string{"Service"}, categories...)
	headers = append(headers, "(paper ref in same order)")
	tb := textchart.NewTable(headers...)
	for _, p := range profiles {
		shares := p.LeafFunctionBreakdown(domain, labels, fallback)
		row := []interface{}{string(p.Service)}
		for _, cat := range categories {
			row = append(row, profiler.ShareOf(shares, cat))
		}
		refCells := make([]string, 0, len(categories))
		for _, cat := range categories {
			refCells = append(refCells, fmt.Sprintf("%.0f", ref[p.Service].Share(cat)))
		}
		row = append(row, strings.Join(refCells, "/"))
		tb.AddRowf(row...)
	}
	return tb.Render() + "\n" + conclusion + ".\n", nil
}

func runFig4() (string, error) {
	profiles, err := fleetProfiles(cpuarch.GenC)
	if err != nil {
		return "", err
	}
	bucketer := profiler.NewFunctionalityBucketer()
	cats := []string{fleetdata.FuncIO, fleetdata.FuncIOPrePost, fleetdata.FuncSerialization, fleetdata.FuncAppLogic}
	headers := append([]string{"Service"}, cats...)
	headers = append(headers, "(paper ref)")
	tb := textchart.NewTable(headers...)
	for _, p := range profiles {
		shares := p.CopyOrigins("mem.copy", bucketer)
		row := []interface{}{string(p.Service)}
		for _, cat := range cats {
			row = append(row, profiler.ShareOf(shares, cat))
		}
		refCells := make([]string, 0, len(cats))
		for _, cat := range cats {
			refCells = append(refCells, fmt.Sprintf("%.0f", fleetdata.CopyOrigins[p.Service].Share(cat)))
		}
		row = append(row, strings.Join(refCells, "/"))
		tb.AddRowf(row...)
	}
	return tb.Render() +
		"\nDominant copy origins differ across services, suggesting per-service copy optimizations.\n", nil
}

func runFig8() (string, error) {
	cache1, err := services.New(fleetdata.Cache1)
	if err != nil {
		return "", err
	}
	tagger := profiler.NewLeafTagger()
	cats := []string{fleetdata.LeafMemory, fleetdata.LeafKernel, fleetdata.LeafZSTD, fleetdata.LeafSSL, fleetdata.LeafCLib}
	tb := textchart.NewTable("Leaf category", "GenA IPC", "GenB IPC", "GenC IPC", "Paper GenC")
	for _, cat := range cats {
		row := []interface{}{cat}
		for _, gen := range cpuarch.Generations {
			p, err := cache1.Profile(gen, profileCycles)
			if err != nil {
				return "", err
			}
			row = append(row, profiler.IPCOf(p.LeafBreakdown(tagger), cat))
		}
		ref, err := cpuarch.Cache1LeafIPC.IPC(cat, cpuarch.GenC)
		if err != nil {
			return "", err
		}
		row = append(row, ref)
		tb.AddRowf(row...)
	}
	return tb.Render() +
		"\nKernel IPC is low and scales poorly; C-library IPC scales well;\nevery category stays below half the theoretical peak of 4.0.\n", nil
}

func runFig9() (string, error) {
	profiles, err := fleetProfiles(cpuarch.GenC)
	if err != nil {
		return "", err
	}
	bucketer := profiler.NewFunctionalityBucketer()
	var sb strings.Builder
	for _, p := range profiles {
		shares := p.FunctionalityBreakdown(bucketer)
		segs := make([]textchart.Segment, 0, len(fleetdata.FunctionalityCategories))
		for _, cat := range fleetdata.FunctionalityCategories {
			if pct := profiler.ShareOf(shares, cat); pct > 0.5 {
				segs = append(segs, textchart.Segment{Label: cat, Fraction: pct / 100})
			}
		}
		bar, err := textchart.StackedBar(string(p.Service), segs, 60)
		if err != nil {
			return "", err
		}
		sb.WriteString(bar)
	}
	sb.WriteString("\nOrchestration overheads are significant and fairly common across services.\n")
	return sb.String(), nil
}

func runFig10() (string, error) {
	cache1, err := services.New(fleetdata.Cache1)
	if err != nil {
		return "", err
	}
	bucketer := profiler.NewFunctionalityBucketer()
	cats := []struct{ display, bucket string }{
		{"IO", fleetdata.FuncIO},
		{"IO Pre/Post", fleetdata.FuncIOPrePost},
		{"Serialization", fleetdata.FuncSerialization},
		{"Application Logic", fleetdata.FuncAppLogic},
	}
	tb := textchart.NewTable("Functionality", "GenA IPC", "GenB IPC", "GenC IPC", "Paper GenC")
	for _, cat := range cats {
		row := []interface{}{cat.display}
		for _, gen := range cpuarch.Generations {
			p, err := cache1.Profile(gen, profileCycles)
			if err != nil {
				return "", err
			}
			row = append(row, profiler.IPCOf(p.FunctionalityBreakdown(bucketer), cat.bucket))
		}
		ref, err := cpuarch.Cache1FunctionalityIPC.IPC(cat.display, cpuarch.GenC)
		if err != nil {
			return "", err
		}
		row = append(row, ref)
		tb.AddRowf(row...)
	}
	return tb.Render() +
		"\nI/O IPC stays low across generations — it is dominated by the low kernel IPC —\nand the memory-bound key-value store sees little improvement.\n", nil
}
