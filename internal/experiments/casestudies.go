package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abtest"
	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/sim"
	"repro/internal/textchart"
)

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Cache1 functionality breakdown with and without AES-NI",
		Run: func() (string, error) {
			return runBeforeAfter(fleetdata.CaseStudies[0], fleetdata.FuncIO,
				"AES-NI accelerates secure IO, freeing host cycles for more work")
		},
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Cache3 functionality breakdown with and without off-chip encryption",
		Run: func() (string, error) {
			return runBeforeAfter(fleetdata.CaseStudies[1], fleetdata.FuncIO,
				"off-chip encryption optimizes the secure IO calls")
		},
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Ads1 functionality breakdown with and without remote inference",
		Run: func() (string, error) {
			return runBeforeAfterResidual(fleetdata.CaseStudies[2], fleetdata.FuncPrediction,
				fleetdata.FuncIO,
				"remote inference frees all local inference cycles at the cost of extra IO")
		},
	})
	register(Experiment{
		ID:    "tab6",
		Title: "Model validation: estimated vs measured speedup for three case studies",
		Run:   runTab6,
	})
}

// acceleratedBreakdown derives the post-acceleration functionality
// breakdown: the kernel's share of its functionality shrinks by the
// acceleration factor, the residual accelerated-path cycles (accelerator
// wait plus offload overheads) are attributed to residualCat, and all
// shares renormalize over the smaller accelerated cycle total CS.
// residualCat is the kernel's own bucket for on-/off-chip acceleration,
// or the I/O bucket when offload setup is itself I/O (remote inference).
func acceleratedBreakdown(before fleetdata.Breakdown, kernelCat, residualCat string, p core.Params,
	th core.Threading) (after fleetdata.Breakdown, savedPct float64, err error) {
	m, err := core.New(p)
	if err != nil {
		return nil, 0, err
	}
	speedup, err := m.Speedup(th)
	if err != nil {
		return nil, 0, err
	}
	cs := 100 / speedup // accelerated total, in old-percent units
	saved := 100 - cs

	kernelPct := p.Alpha * 100
	if before.Share(kernelCat) < kernelPct {
		return nil, 0, fmt.Errorf("experiments: kernel share %.1f%% exceeds its functionality %q (%.1f%%)",
			kernelPct, kernelCat, before.Share(kernelCat))
	}
	// Cycles remaining in the kernel's functionality after acceleration:
	// the non-kernel part stays; the kernel's residual is everything the
	// accelerated total keeps beyond the other functionalities.
	otherTotal := 0.0
	for cat, pct := range before {
		if cat != kernelCat {
			otherTotal += pct
		}
	}
	// Residual cycles of the accelerated path beyond the surviving
	// non-kernel work of the kernel's own bucket.
	nonKernelInBucket := before.Share(kernelCat) - kernelPct
	residual := cs - otherTotal - nonKernelInBucket
	if residual < 0 {
		residual = 0
	}
	after = make(fleetdata.Breakdown, len(before))
	for cat, pct := range before {
		switch cat {
		case kernelCat:
			after[cat] = nonKernelInBucket / cs * 100
		default:
			after[cat] = pct / cs * 100
		}
	}
	after[residualCat] += residual / cs * 100
	return after, saved, nil
}

func runBeforeAfter(cs fleetdata.CaseStudy, kernelCat, conclusion string) (string, error) {
	return runBeforeAfterResidual(cs, kernelCat, kernelCat, conclusion)
}

func runBeforeAfterResidual(cs fleetdata.CaseStudy, kernelCat, residualCat, conclusion string) (string, error) {
	before := fleetdata.FunctionalityBreakdowns[cs.Service]
	after, saved, err := acceleratedBreakdown(before, kernelCat, residualCat, cs.Params, cs.Threading)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	render := func(name string, b fleetdata.Breakdown) error {
		segs := make([]textchart.Segment, 0, len(b))
		for _, cat := range b.Categories() {
			if b.Share(cat) > 0.5 {
				segs = append(segs, textchart.Segment{Label: cat, Fraction: b.Share(cat) / 100})
			}
		}
		bar, err := textchart.StackedBar(name, segs, 60)
		if err != nil {
			return err
		}
		sb.WriteString(bar)
		return nil
	}
	if err := render(fmt.Sprintf("%s without %s acceleration", cs.Service, cs.Kernel), before); err != nil {
		return "", err
	}
	if err := render(fmt.Sprintf("%s with %s acceleration", cs.Service, cs.Kernel), after); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\n%.1f%% of %s's cycles are freed up; %s.\n", saved, cs.Service, conclusion)
	return sb.String(), nil
}

// caseStudyParams assembles the model configuration for one Table 6 case
// study. The returned struct is deliberately unvalidated — each caller
// either hands it to core.New or validates it explicitly, and modelcheck's
// paramvalidate analyzer proves that through the call-graph summary of
// this helper rather than an annotation.
func caseStudyParams(cs fleetdata.CaseStudy) core.Params {
	return cs.Params
}

// caseStudySim builds the paired A/B simulation for a Table 6 case study,
// deriving the per-request workload from the study's C, α, and n. Where the
// paper publishes the offload-size distribution (AES-NI's Fig 15), request
// kernels are sampled from it so the simulated A/B test sees realistic
// size variation rather than a uniform stream.
func caseStudySim(cs fleetdata.CaseStudy, requests int) (base, accel sim.Config, factory abtest.WorkloadFactory, err error) {
	p := caseStudyParams(cs)
	if err = p.Validate(); err != nil {
		return base, accel, nil, err
	}
	kernelCycles := p.Alpha * p.C / p.N
	nonKernel := (1 - p.Alpha) * p.C / p.N

	var k core.Kernel
	switch cs.Name {
	case "AES-NI", "Encryption":
		k = fleetdata.CaseStudyKernels[cs.Name]
	default:
		k = fleetdata.CaseStudyKernels["Inference"]
	}

	if sizes, ok := fleetdata.EncryptionSizes[cs.Service]; ok && cs.Kernel == "encryption" {
		factory = func(seed uint64) (sim.Workload, error) {
			return sim.NewSampledWorkload(nonKernel, 1, k, sizes, requests, seed)
		}
	} else {
		bytes := uint64(kernelCycles / k.Cb)
		wl := sim.UniformWorkload{
			NonKernelCycles: nonKernel,
			KernelsPerReq:   1,
			KernelBytes:     bytes,
			Kernel:          core.LinearKernel(kernelCycles / float64(bytes)),
		}
		factory = func(uint64) (sim.Workload, error) { return wl, nil }
	}

	base = sim.Config{Cores: 1, Threads: 1, HostHz: p.C, Requests: requests, ContextSwitch: p.O1}
	accel = base
	a := p.A
	if a < 1 {
		a = 1
	}
	threads := 1
	if cs.Threading == core.SyncOS || cs.Threading == core.AsyncDistinctThread {
		threads = 4
	}
	accel.Threads = threads
	base.Threads = threads
	accel.Accel = &sim.Accel{
		Threading: cs.Threading,
		Strategy:  cs.Strategy,
		A:         a,
		O0:        p.O0,
		L:         p.L,
		Servers:   4,
	}
	return base, accel, factory, nil
}

func runTab6() (string, error) {
	tb := textchart.NewTable("Case study", "Design",
		"Model est %", "Sim measured %", "Model-vs-sim err %",
		"Paper est %", "Paper real %")
	for _, cs := range fleetdata.CaseStudies {
		p := caseStudyParams(cs)
		m, err := core.New(p)
		if err != nil {
			return "", err
		}
		est, err := m.Speedup(cs.Threading)
		if err != nil {
			return "", err
		}
		base, accel, factory, err := caseStudySim(cs, 400)
		if err != nil {
			return "", err
		}
		comp, err := abtest.Run(base, accel, factory, 1)
		if err != nil {
			return "", fmt.Errorf("%s: %w", cs.Name, err)
		}
		v, err := abtest.Validate(est, comp)
		if err != nil {
			return "", err
		}
		tb.AddRowf(cs.Name, cs.Threading.String()+"/"+cs.Strategy.String(),
			v.EstimatedPct, v.MeasuredPct, v.ErrorPct, cs.EstimatedPct, cs.RealPct)
	}
	return tb.Render() +
		"\nThe model estimate tracks the simulator-measured speedup the way the paper's\nestimates tracked production A/B tests (≤3.7% error).\n", nil
}
