package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fleetdata"
	"repro/internal/sim"
	"repro/internal/textchart"
)

// Ablations probe the design choices DESIGN.md calls out. They are
// registered as experiments (abl1..abl4) and driven by the root bench
// suite.

func init() {
	register(Experiment{
		ID:    "abl1",
		Title: "Ablation: selective offload vs offload-all",
		Run:   runAblSelective,
	})
	register(Experiment{
		ID:    "abl2",
		Title: "Ablation: fixed-Q vs M/M/1 queue model under load",
		Run:   runAblQueue,
	})
	register(Experiment{
		ID:    "abl3",
		Title: "Ablation: Sync-OS oversubscription ratio",
		Run:   runAblOversubscription,
	})
	register(Experiment{
		ID:    "abl4",
		Title: "Ablation: unpipelined vs pipelined interface L",
		Run:   runAblPipelining,
	})
}

func runAblSelective() (string, error) {
	w, err := feed1CompressionWorkload()
	if err != nil {
		return "", err
	}
	k := fleetdata.CaseStudyKernels["compression"]
	tb := textchart.NewTable("Design", "Weighting", "Selective %", "Offload-all %", "Selective wins?")
	for _, weighting := range []core.AlphaWeighting{core.WeightByInvocations, core.WeightByBytes} {
		for _, th := range []core.Threading{core.Sync, core.SyncOS, core.AsyncSameThread} {
			off := core.Offload{
				Strategy: core.OffChip, Thread: th, A: 27, L: 2300, O1: 5750,
				Weighting: weighting,
			}
			all, err := core.Project(w, k, off)
			if err != nil {
				return "", err
			}
			off.SelectiveOffload = true
			sel, err := core.Project(w, k, off)
			if err != nil {
				return "", err
			}
			tb.AddRowf(th.String(), weighting.String(),
				sel.SpeedupPercent(), all.SpeedupPercent(), sel.Speedup >= all.Speedup)
		}
	}
	return tb.Render() +
		"\nUnder byte-weighted α (exact for linear kernels) selective offload always wins;\nthe paper's invocation-count convention can undervalue it.\n", nil
}

func runAblQueue() (string, error) {
	// Eight cores share ONE accelerator server; sweep offered load (as
	// target accelerator utilization) and compare the Q=0 closed form, the
	// model with an M/M/1-derived Q, and the simulator's measured queueing.
	k := core.LinearKernel(5.6)
	const (
		bytesPer = 16 << 10
		cores    = 8
		aFactor  = 3.0
		l        = 2300.0
	)
	kernelCycles := k.HostCycles(bytesPer)      // host cycles per offload
	service := kernelCycles / aFactor           // accelerator cycles per offload
	maxRate := 2.3e9 / service / float64(cores) // per-core rate at ρ=1

	tb := textchart.NewTable("Target util", "Model Q=0 %", "Model M/M/1 %", "Sim measured %", "Sim mean Q", "M/M/1 Q")
	for _, rho := range []float64{0.3, 0.6, 0.8, 0.95} {
		perCoreRate := rho * maxRate // requests (= offloads) per core-second
		perReqCycles := 2.3e9 / perCoreRate
		nonKernel := perReqCycles - kernelCycles
		if nonKernel <= 0 {
			return "", fmt.Errorf("ablation: load %v leaves no host work", rho)
		}
		alpha := kernelCycles / perReqCycles

		m, err := core.New(core.Params{C: 2.3e9, Alpha: alpha, N: perCoreRate, L: l, A: aFactor})
		if err != nil {
			return "", err
		}
		unloaded, err := m.Speedup(core.Sync)
		if err != nil {
			return "", err
		}
		// The shared accelerator sees all cores' offloads.
		mm1Q, err := core.MM1WaitCycles(service, perCoreRate*cores, 2.3e9)
		if err != nil {
			return "", err
		}
		mQ, err := core.New(core.Params{C: 2.3e9, Alpha: alpha, N: perCoreRate, L: l, Q: mm1Q, A: aFactor})
		if err != nil {
			return "", err
		}
		loaded, err := mQ.Speedup(core.Sync)
		if err != nil {
			return "", err
		}

		wl := sim.UniformWorkload{
			NonKernelCycles: nonKernel, KernelsPerReq: 1,
			KernelBytes: bytesPer, Kernel: k,
		}
		baseSim, err := sim.New(sim.Config{Cores: cores, Threads: cores, HostHz: 2.3e9, Requests: 2400}, wl)
		if err != nil {
			return "", err
		}
		baseRes, err := baseSim.Run()
		if err != nil {
			return "", err
		}
		accSim, err := sim.New(sim.Config{
			Cores: cores, Threads: cores, HostHz: 2.3e9, Requests: 2400,
			Accel: &sim.Accel{Threading: core.Sync, Strategy: core.OffChip, A: aFactor, L: l, Servers: 1},
		}, wl)
		if err != nil {
			return "", err
		}
		accRes, err := accSim.Run()
		if err != nil {
			return "", err
		}
		simSpeedup, err := accRes.Speedup(baseRes)
		if err != nil {
			return "", err
		}
		tb.AddRowf(rho, (unloaded-1)*100, (loaded-1)*100, (simSpeedup-1)*100,
			accRes.MeanQueueDelay, mm1Q)
	}
	return tb.Render() +
		"\nBelow saturation the deterministic closed-loop offload stream barely queues and\nthe Q=0 form matches the simulator. Near saturation the measured speedup\ncollapses and queueing appears; the open-arrival M/M/1 extension is a\nconservative screen — it flags the danger region early (even predicting losses)\nbecause it ignores Sync offload's self-throttling.\n", nil
}

func runAblOversubscription() (string, error) {
	// Sweep the thread:core ratio for a Sync-OS design where the blocked
	// window is large (a slow accelerator, A = 1.2): with one thread per
	// core the blocked core idles through the accelerator's execution;
	// oversubscription recovers it at the cost of switch overhead and
	// per-request latency.
	k := core.LinearKernel(5.6)
	const bytesPer = 16 << 10
	wl := sim.UniformWorkload{
		NonKernelCycles: 150000, KernelsPerReq: 1,
		KernelBytes: bytesPer, Kernel: k,
	}
	base, err := sim.New(sim.Config{Cores: 2, Threads: 2, HostHz: 2.3e9, Requests: 1200}, wl)
	if err != nil {
		return "", err
	}
	baseRes, err := base.Run()
	if err != nil {
		return "", err
	}
	tb := textchart.NewTable("Threads per core", "Speedup %", "Context swaps/offload", "Mean latency (cycles)")
	for _, ratio := range []int{1, 2, 4, 8} {
		acc, err := sim.New(sim.Config{
			Cores: 2, Threads: 2 * ratio, ContextSwitch: 5750, HostHz: 2.3e9, Requests: 1200,
			Accel: &sim.Accel{Threading: core.SyncOS, Strategy: core.OffChip, A: 1.2, L: 2300, Servers: 16},
		}, wl)
		if err != nil {
			return "", err
		}
		res, err := acc.Run()
		if err != nil {
			return "", err
		}
		speedup, err := res.Speedup(baseRes)
		if err != nil {
			return "", err
		}
		swaps := 0.0
		if res.Offloads > 0 {
			swaps = float64(res.ContextSwaps) / float64(res.Offloads)
		}
		tb.AddRowf(ratio, (speedup-1)*100, swaps, res.MeanLatency)
	}
	return tb.Render() +
		"\nWith a single thread per core the blocked core idles through the accelerator's\nexecution and Sync-OS gains almost nothing; a 2:1 oversubscription recovers the\nwait at the cost of ~2 context switches per offload, and deeper ratios only add\nper-request latency — the trade-off eqns (3) and (5) encode.\n", nil
}

func runAblPipelining() (string, error) {
	// The paper models unpipelined offload: L grows with g (per-byte
	// transfer). A pipelined interface makes L independent of g. Compare
	// break-evens and speedups for both under the Feed1 workload.
	w, err := feed1CompressionWorkload()
	if err != nil {
		return "", err
	}
	k := fleetdata.CaseStudyKernels["compression"]
	meanG := w.Sizes.MeanSize()

	tb := textchart.NewTable("Interface model", "Effective L (cycles)", "Break-even g (B)", "Speedup %")
	// Unpipelined: L = per-byte cost × mean granularity (Table 7's 2300).
	for _, row := range []struct {
		name string
		l    float64
	}{
		{"unpipelined (L ∝ g, at mean g)", 2300},
		{"pipelined (L fixed, setup only)", 400},
	} {
		off := core.Offload{Strategy: core.OffChip, Thread: core.Sync, A: 27, L: row.l, SelectiveOffload: true}
		pr, err := core.Project(w, k, off)
		if err != nil {
			return "", err
		}
		be := pr.BreakEvenG
		if math.IsInf(be, 1) {
			be = -1
		}
		tb.AddRowf(row.name, row.l, be, pr.SpeedupPercent())
	}
	var sb strings.Builder
	sb.WriteString(tb.Render())
	fmt.Fprintf(&sb, "\nPipelining shrinks the break-even well below the mean granularity (%.0f B),\nletting nearly every offload profit — the upside the paper leaves to future work.\n", meanG)
	return sb.String(), nil
}
