package experiments

import (
	"fmt"
	"strings"

	"repro/internal/advisor"
	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/cpuarch"
	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/profiler"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/textchart"
)

// Extension experiments beyond the paper's artifacts: design-space sweeps,
// the combined-offload composition §5 suggests, and the automated Table 4
// advisor.

func init() {
	register(Experiment{
		ID:    "ext1",
		Title: "Extension: design-space sweep (speedup vs A and vs L) for Feed1 compression",
		Run:   runExt1,
	})
	register(Experiment{
		ID:    "ext2",
		Title: "Extension: combined compression+encryption offload (two kernels, one dispatch)",
		Run:   runExt2,
	})
	register(Experiment{
		ID:    "ext3",
		Title: "Extension: automated Table 4 — per-service acceleration advisor",
		Run:   runExt3,
	})
	register(Experiment{
		ID:    "ext4",
		Title: "Extension: fleet capacity planning for the Fig 20 recommendations",
		Run:   runExt4,
	})
	register(Experiment{
		ID:    "ext5",
		Title: "Extension: open-loop tail latency vs offered load, with and without AES-NI",
		Run:   runExt5,
	})
	register(Experiment{
		ID:    "ext6",
		Title: "Extension: Monte-Carlo uncertainty bands for the Table 6 case studies",
		Run:   runExt6,
	})
	register(Experiment{
		ID:    "ext7",
		Title: "Extension: validating the latency-reduction equations the paper could not measure",
		Run:   runExt7,
	})
}

func runExt1() (string, error) {
	m, err := core.New(core.Params{C: 2.3e9, Alpha: 0.15, N: 9629, L: 2300, A: 27})
	if err != nil {
		return "", err
	}
	var sb strings.Builder

	aPts, err := m.Sweep(core.SweepA, core.Sync, core.OffChip, []float64{1, 2, 5, 10, 27, 100, 1000})
	if err != nil {
		return "", err
	}
	sb.WriteString("Speedup vs accelerator factor A (off-chip Sync, L = 2300):\n")
	for _, p := range aPts {
		sb.WriteString(textchart.HBar(fmt.Sprintf("A = %.0f", p.Value), (p.Speedup-1)*100, 20, 40) + "\n")
	}

	lPts, err := m.Sweep(core.SweepL, core.Sync, core.OffChip, []float64{0, 1000, 2300, 5000, 10000, 20000})
	if err != nil {
		return "", err
	}
	sb.WriteString("\nSpeedup vs interface cost L (A = 27):\n")
	for _, p := range lPts {
		sb.WriteString(textchart.HBar(fmt.Sprintf("L = %.0f", p.Value), (p.Speedup-1)*100, 20, 40) + "\n")
	}

	minA, err := m.MinimumA(core.Sync, 1.10)
	if err != nil {
		return "", err
	}
	maxL, err := m.MaximumL(core.Sync, 1.10)
	if err != nil {
		return "", err
	}
	sA, err := m.Sensitivity(core.SweepA, core.Sync)
	if err != nil {
		return "", err
	}
	sL, err := m.Sensitivity(core.SweepL, core.Sync)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\nTo hit +10%%: A >= %.1f suffices, or an L budget of %.0f cycles at A = 27.\n", minA, maxL)
	fmt.Fprintf(&sb, "Local sensitivity at the Table 7 point: +1%% A buys %+.4f pp, +1%% L costs %+.4f pp\n"+
		"— the design is interface-bound, not accelerator-bound.\n", sA, sL)
	return sb.String(), nil
}

func runExt2() (string, error) {
	// A Cache3-like service (case study 2's off-chip PCIe device, L = 2530,
	// ~102k offloads/sec) whose RPC payloads are both compressed and
	// encrypted: one device executing both kernels per offload pays the
	// PCIe dispatch once instead of twice.
	c := core.CombinedOffload{
		C: 2.3e9, N: 101863, O0: 0, L: 2530,
		Kernels: []core.KernelShare{
			{Name: "encryption", Alpha: 0.19154, A: 20},
			{Name: "compression", Alpha: 0.06, A: 27},
		},
	}
	tb := textchart.NewTable("Threading", "Combined %", "Separate %", "Combination gain")
	for _, th := range []core.Threading{core.Sync, core.AsyncSameThread, core.AsyncNoResponse} {
		combined, err := c.Speedup(th)
		if err != nil {
			return "", err
		}
		separate, err := c.SeparateSpeedup(th)
		if err != nil {
			return "", err
		}
		gain, err := c.CombinationGain(th)
		if err != nil {
			return "", err
		}
		tb.AddRowf(th.String(), (combined-1)*100, (separate-1)*100, gain)
	}
	return tb.Render() +
		"\nSharing one PCIe dispatch across compression and encryption (\"two kernels for\nthe price of one offload\", §5) pays the interface cost once: at 102k\noffloads/sec the combined design keeps most of the kernel savings, while\nseparate offloads burn nearly all of them on transfer overhead.\n", nil
}

func runExt4() (string, error) {
	// Provision the Fig 20 winning designs across a hypothetical
	// 10k-server installed base per service: servers freed, accelerator
	// devices needed, and the break-even device cost at $10k/server.
	prs, err := fig20Projections()
	if err != nil {
		return "", err
	}
	const (
		servers    = 10000
		serverCost = 10000.0
	)
	rows := []struct {
		name, key     string
		acceleratorHz float64
		devicesBudget int
	}{
		{"Feed1 compression (on-chip)", "Feed1 compression on-chip", 2.3e9, 0},
		{"Feed1 compression (off-chip Async)", "Feed1 compression off-chip Async", 1.0e9, 1},
		{"Ads1 memory copy (on-chip)", "Ads1 memory copy on-chip", 2.3e9, 0},
		{"Cache1 allocation (on-chip)", "Cache1 memory allocation on-chip", 2.0e9, 0},
	}
	tb := textchart.NewTable("Deployment", "Speedup %", "Servers freed / 10k",
		"Devices", "Device util", "Break-even device cost ($)")
	for _, r := range rows {
		pr, ok := prs[r.key]
		if !ok {
			return "", fmt.Errorf("missing projection %q", r.key)
		}
		plan, err := capacity.FromProjection(pr, servers, r.acceleratorHz, 0.6, r.devicesBudget)
		if err != nil {
			return "", err
		}
		res, err := capacity.Provision(plan)
		if err != nil {
			return "", err
		}
		cost, err := capacity.BreakEvenDeviceCost(res, serverCost)
		if err != nil {
			return "", err
		}
		costCell := fmt.Sprintf("%.0f", cost)
		if res.DevicesTotal == 0 {
			costCell = "n/a (on-chip)"
		}
		tb.AddRowf(r.name, pr.SpeedupPercent(), res.ServersFreed,
			res.DevicesTotal, res.DeviceUtilization, costCell)
	}
	return tb.Render() +
		"\nEven single-digit speedups free hundreds of servers at 10k-server scale —\nthe fleet-wide stakes that make early performance-bound analysis worthwhile.\n", nil
}

func runExt5() (string, error) {
	// A Cache1-like server (1 core at 2 GHz, one encryption per request)
	// under Poisson arrivals: sweep offered load and report mean and P99
	// latency with and without AES-NI. Acceleration both lowers the curve
	// and extends the load a latency SLO can sustain.
	kernel := core.LinearKernel(5.5)
	sizes := fleetdata.EncryptionSizes[fleetdata.Cache1]
	const (
		nonKernel = 5581.0
		hostHz    = 2.0e9
		requests  = 6000
		sloUS     = 30.0 // P99 SLO in microseconds
	)
	mk := func(rate float64, accel *sim.Accel) (sim.Result, error) {
		wl, err := sim.NewSampledWorkload(nonKernel, 1, kernel, sizes, requests, 5)
		if err != nil {
			return sim.Result{}, err
		}
		s, err := sim.New(sim.Config{
			Cores: 1, Threads: 1, HostHz: hostHz, Requests: requests,
			Arrivals: &sim.Arrivals{RatePerSec: rate, Seed: 11},
			Accel:    accel,
		}, wl)
		if err != nil {
			return sim.Result{}, err
		}
		return s.Run()
	}
	aesni := &sim.Accel{Threading: core.Sync, Strategy: core.OnChip, A: 6, O0: 10, L: 3, Servers: 1}

	tb := textchart.NewTable("Offered load (QPS)", "Base mean (µs)", "Base P99 (µs)",
		"AES-NI mean (µs)", "AES-NI P99 (µs)")
	baseMax, accMax := 0.0, 0.0
	toUS := func(cycles float64) float64 { return cycles / hostHz * 1e6 }
	for _, rate := range []float64{100000, 200000, 260000, 290000, 320000} {
		base, err := mk(rate, nil)
		if err != nil {
			return "", err
		}
		acc, err := mk(rate, aesni)
		if err != nil {
			return "", err
		}
		tb.AddRowf(rate, toUS(base.MeanLatency), toUS(base.P99Latency),
			toUS(acc.MeanLatency), toUS(acc.P99Latency))
		if toUS(base.P99Latency) <= sloUS && rate > baseMax {
			baseMax = rate
		}
		if toUS(acc.P99Latency) <= sloUS && rate > accMax {
			accMax = rate
		}
	}
	return tb.Render() + fmt.Sprintf(
		"\nAt a %.0f µs P99 SLO the unaccelerated server sustains %.0f QPS; AES-NI\nextends that to %.0f QPS — acceleration buys SLO headroom, not just peak\nthroughput, which is why the model tracks latency reduction separately.\n",
		sloUS, baseMax, accMax), nil
}

func runExt6() (string, error) {
	// The model's motivating risk question: if demand projections and
	// measured overheads are each off by up to the stated tolerance, how
	// wide is the speedup band, and can the deployment lose outright?
	j := core.Jitter{Alpha: 0.15, N: 0.25, O0: 0.3, L: 0.3, O1: 0.3, A: 0.2}
	tb := textchart.NewTable("Case study", "Point %", "P5 %", "P50 %", "P95 %", "Risk of loss %")
	for i, cs := range fleetdata.CaseStudies {
		m, err := core.New(cs.Params)
		if err != nil {
			return "", err
		}
		res, err := m.MonteCarlo(cs.Threading, j, 20000, dist.NewRand(uint64(i)+1))
		if err != nil {
			return "", err
		}
		tb.AddRowf(cs.Name, (res.Point-1)*100, (res.P5-1)*100, (res.P50-1)*100,
			(res.P95-1)*100, res.RiskBelowOne*100)
	}

	// A marginal design for contrast: off-chip Sync-OS compression.
	marginal := core.MustNew(core.Params{
		C: 2.3e9, Alpha: 0.15 * 3986 / 15008, N: 3986, L: 2300, O1: 5750, A: 27,
	})
	res, err := marginal.MonteCarlo(core.SyncOS, j, 20000, dist.NewRand(99))
	if err != nil {
		return "", err
	}
	tb.AddRowf("Compression Sync-OS (marginal)", (res.Point-1)*100, (res.P5-1)*100,
		(res.P50-1)*100, (res.P95-1)*100, res.RiskBelowOne*100)

	return tb.Render() +
		"\nThe on-chip (AES-NI) and remote (inference) deployments stay profitable\nacross the whole tolerance band. The off-chip designs carry a small but\nnonzero loss probability driven by interface-cost uncertainty — exactly the\nat-scale risk the paper built the model to expose before hardware is\ncommitted.\n", nil
}

func runExt7() (string, error) {
	// §4: "We do not compare the latency reduction since our existing
	// production infrastructure lacks necessary support to precisely
	// measure a microservice's per-request latency." The simulator has no
	// such limitation: run paired A/B simulations for each threading
	// design of an off-chip compression accelerator and compare the
	// measured per-request latency reduction with equations (1), (5),
	// and (8).
	k := core.LinearKernel(5.6)
	const bytesPer = 4 << 10
	kernelCycles := k.HostCycles(bytesPer)
	nonKernel := 150000.0
	total := nonKernel + kernelCycles
	alpha := kernelCycles / total
	const (
		hostHz = 2.3e9
		l      = 2300.0
		o1     = 5750.0
		a      = 27.0
	)

	wl := sim.UniformWorkload{
		NonKernelCycles: nonKernel, KernelsPerReq: 1,
		KernelBytes: bytesPer, Kernel: k,
	}
	baseSim, err := sim.New(sim.Config{Cores: 1, Threads: 1, HostHz: hostHz, Requests: 2000}, wl)
	if err != nil {
		return "", err
	}
	baseRes, err := baseSim.Run()
	if err != nil {
		return "", err
	}
	n := baseRes.ThroughputQPS

	tb := textchart.NewTable("Threading", "Model latency %", "Sim measured %", "Error %")
	for _, th := range []core.Threading{core.Sync, core.SyncOS, core.AsyncSameThread} {
		threads := 1
		if th == core.SyncOS {
			threads = 4
		}
		accSim, err := sim.New(sim.Config{
			Cores: 1, Threads: threads, ContextSwitch: o1, HostHz: hostHz, Requests: 2000,
			Accel: &sim.Accel{Threading: th, Strategy: core.OffChip, A: a, L: l, Servers: 8},
		}, wl)
		if err != nil {
			return "", err
		}
		accRes, err := accSim.Run()
		if err != nil {
			return "", err
		}
		measured, err := accRes.LatencyReduction(baseRes)
		if err != nil {
			return "", err
		}
		m, err := core.New(core.Params{C: hostHz, Alpha: alpha, N: n, L: l, O1: o1, A: a})
		if err != nil {
			return "", err
		}
		want, err := m.LatencyReduction(th, core.OffChip)
		if err != nil {
			return "", err
		}
		tb.AddRowf(th.String(), (want-1)*100, (measured-1)*100,
			dist.RelativeError(measured, want)*100)
	}
	return tb.Render() +
		"\nEquations (1) and (8) validate exactly: the simulator measures precisely the\nper-request cycles the model predicts for Sync and Async. Equation (5) does\nnot: under run-to-completion scheduling an oversubscribed Sync-OS thread that\nwakes from an offload must queue behind whole requests of its peers, adding\ncore-contention latency the single-o1 equation omits. The model's own caveat —\nthat Sync-OS trades per-request latency for throughput — is, if anything,\nunderstated for non-preemptive schedulers.\n", nil
}

func runExt3() (string, error) {
	scaling := map[string]float64{}
	for _, cat := range cpuarch.Cache1LeafIPC.Categories() {
		if f, err := cpuarch.Cache1LeafIPC.ScalingFactor(cat, cpuarch.GenA, cpuarch.GenC); err == nil {
			scaling[cat] = f
		}
	}
	var sb strings.Builder
	for _, name := range fleetdata.Services {
		svc, err := services.New(name)
		if err != nil {
			return "", err
		}
		p, err := svc.Profile(cpuarch.GenC, 1e9)
		if err != nil {
			return "", err
		}
		recs, err := advisor.Analyze(advisor.Input{
			Service:       name,
			Functionality: p.FunctionalityBreakdown(profiler.NewFunctionalityBucketer()),
			Leaf:          p.LeafBreakdown(profiler.NewLeafTagger()),
			MemoryLeaf:    p.LeafFunctionBreakdown("mem", profiler.MemoryLabels, "Other"),
			IPCScaling:    scaling,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s (%d findings):\n", name, len(recs))
		for _, r := range recs {
			proj := ""
			if r.ProjectedSpeedupPct > 0 {
				proj = fmt.Sprintf(" [projected %+.1f%%]", r.ProjectedSpeedupPct)
			}
			fmt.Fprintf(&sb, "  [%s] %s%s\n", r.Severity, r.Finding, proj)
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
