package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleetdata"
	"repro/internal/kernels"
	"repro/internal/services"
	"repro/internal/textchart"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "CDF of bytes encrypted in Cache1 with the AES-NI break-even",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "CDF of bytes compressed in Feed1 and Cache1 with break-evens",
		Run:   runFig19,
	})
	register(Experiment{
		ID:    "fig21",
		Title: "CDF of memory copies across microservices",
		Run:   runFig21,
	})
	register(Experiment{
		ID:    "fig22",
		Title: "CDF of memory allocations across microservices",
		Run:   runFig22,
	})
}

// measuredCDF plays the paper's bpftrace role: sample invocation sizes from
// the service and build the empirical CDF.
func measuredCDF(svc fleetdata.Service, kind kernels.Kind) (*dist.CDF, error) {
	s, err := services.New(svc)
	if err != nil {
		return nil, err
	}
	h, err := s.MeasureSizes(kind, 200000, 1)
	if err != nil {
		return nil, err
	}
	return h.CDF()
}

// cdfRows converts a CDF to textchart rows.
func cdfRows(c *dist.CDF) []textchart.CDFRow {
	layout := c.Layout()
	rows := make([]textchart.CDFRow, len(layout))
	for i, b := range layout {
		rows[i] = textchart.CDFRow{Bucket: b.String(), Cumulative: c.Cumulative(i)}
	}
	return rows
}

// bucketFor returns the layout bucket label containing size g, for placing
// break-even markers on the plots.
func bucketFor(c *dist.CDF, g float64) string {
	if math.IsInf(g, 1) {
		return ""
	}
	layout := c.Layout()
	idx := layout.Index(uint64(math.Ceil(g)))
	if idx < 0 {
		idx = 0
	}
	return layout[idx].String()
}

func runFig15() (string, error) {
	c, err := measuredCDF(fleetdata.Cache1, kernels.Encryption)
	if err != nil {
		return "", err
	}
	cs := fleetdata.CaseStudies[0] // AES-NI
	m, err := core.New(cs.Params)
	if err != nil {
		return "", err
	}
	be, err := m.BreakEvenThroughputG(cs.Threading, fleetdata.CaseStudyKernels["AES-NI"])
	if err != nil {
		return "", err
	}
	plot := textchart.CDFPlot("Cache1: range of bytes encrypted", cdfRows(c), 50,
		bucketFor(c, be), fmt.Sprintf("min AES-NI g for speedup > 1 (%.0f B)", math.Ceil(be)))
	return plot + fmt.Sprintf(
		"\nGranularities under 512 B are frequently encrypted; every offload (all ≥4 B)\nclears the %.0f B break-even, so Cache1 offloads all encryptions.\n", math.Ceil(be)), nil
}

func runFig19() (string, error) {
	feed1, err := measuredCDF(fleetdata.Feed1, kernels.Compression)
	if err != nil {
		return "", err
	}
	cache1, err := measuredCDF(fleetdata.Cache1, kernels.Compression)
	if err != nil {
		return "", err
	}
	k := fleetdata.CaseStudyKernels["compression"]
	offChip := core.MustNew(core.Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, O1: 5750, A: 27})
	syncBE, err := offChip.BreakEvenThroughputG(core.Sync, k)
	if err != nil {
		return "", err
	}
	syncOSBE, err := offChip.BreakEvenThroughputG(core.SyncOS, k)
	if err != nil {
		return "", err
	}
	asyncBE, err := offChip.BreakEvenThroughputG(core.AsyncSameThread, k)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString(textchart.CDFPlot("Feed1: range of bytes compressed", cdfRows(feed1), 50,
		bucketFor(feed1, syncBE), fmt.Sprintf("off-chip Sync & Async break-even (~%.0f B)", syncBE)))
	sb.WriteString(textchart.CDFPlot("Cache1: range of bytes compressed", cdfRows(cache1), 50, "", ""))
	fmt.Fprintf(&sb, "\nBreak-evens (off-chip, L=2300, A=27): Sync %.0f B (paper: 425 B), Async %.0f B, Sync-OS %.0f B.\n",
		syncBE, asyncBE, syncOSBE)
	fmt.Fprintf(&sb, "Feed1 compressions ≥ Sync break-even: %.1f%% (paper: 64.2%%). Feed1 compresses far larger\ngranularities than Cache1 (mean %.0f B vs %.0f B).\n",
		feed1.FractionAtLeast(uint64(math.Ceil(syncBE)))*100, feed1.MeanSize(), cache1.MeanSize())
	return sb.String(), nil
}

func runFig21() (string, error) {
	var sb strings.Builder
	// Ads1's on-chip break-even marker (Table 7: A=4, no offload overhead).
	onChip := core.MustNew(core.Params{C: 2.3e9, Alpha: 0.1512, N: 1473681, A: 4})
	be, err := onChip.BreakEvenThroughputG(core.Sync, core.LinearKernel(1.0))
	if err != nil {
		return "", err
	}
	for _, svc := range fleetdata.Services {
		c, err := measuredCDF(svc, kernels.MemoryCopy)
		if err != nil {
			return "", err
		}
		mark, label := "", ""
		if svc == fleetdata.Ads1 {
			mark = bucketFor(c, be)
			label = fmt.Sprintf("Ads1 on-chip g to break even (%.0f B)", math.Ceil(be))
		}
		sb.WriteString(textchart.CDFPlot(string(svc)+": bytes copied", cdfRows(c), 50, mark, label))
	}
	sb.WriteString("\nMost microservices frequently copy small granularities (< 512 B, below a 4K page).\n")
	return sb.String(), nil
}

func runFig22() (string, error) {
	var sb strings.Builder
	onChip := core.MustNew(core.Params{C: 2.0e9, Alpha: 0.055, N: 51695, A: 1.5})
	be, err := onChip.BreakEvenThroughputG(core.Sync, core.LinearKernel(0.35))
	if err != nil {
		return "", err
	}
	for _, svc := range fleetdata.Services {
		c, err := measuredCDF(svc, kernels.Allocation)
		if err != nil {
			return "", err
		}
		mark, label := "", ""
		if svc == fleetdata.Cache1 {
			mark = bucketFor(c, be)
			label = fmt.Sprintf("Cache1 on-chip g to break even (%.0f B)", math.Ceil(be))
		}
		sb.WriteString(textchart.CDFPlot(string(svc)+": bytes allocated", cdfRows(c), 50, mark, label))
	}
	sb.WriteString("\nMost microservices frequently allocate small granularities (typically < 512 B).\n")
	return sb.String(), nil
}
