package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cpuarch"
	"repro/internal/fleetdata"
	"repro/internal/textchart"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "GenA, GenB, and GenC CPU platform attributes",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "tab2",
		Title: "Categorization of leaf functions",
		Run:   runTab2,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Categorization of microservice functionalities",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "tab4",
		Title: "Summary of findings and acceleration opportunities",
		Run:   runTab4,
	})
	register(Experiment{
		ID:    "tab5",
		Title: "Accelerometer model parameters",
		Run:   runTab5,
	})
}

func runTab1() (string, error) {
	tb := textchart.NewTable("Attribute", "GenA", "GenB", "GenC")
	cells := func(f func(cpuarch.Platform) string) []interface{} {
		row := make([]interface{}, 0, 3)
		for _, g := range cpuarch.Generations {
			row = append(row, f(cpuarch.MustLookup(g)))
		}
		return row
	}
	addRow := func(name string, f func(cpuarch.Platform) string) {
		tb.AddRowf(append([]interface{}{name}, cells(f)...)...)
	}
	addRow("Microarchitecture", func(p cpuarch.Platform) string { return p.Microarch })
	addRow("Cores / socket", func(p cpuarch.Platform) string {
		parts := make([]string, len(p.CoreVariants))
		for i, c := range p.CoreVariants {
			parts[i] = fmt.Sprint(c)
		}
		return strings.Join(parts, " or ")
	})
	addRow("SMT", func(p cpuarch.Platform) string { return fmt.Sprint(p.SMT) })
	addRow("Cache block size", func(p cpuarch.Platform) string { return fmt.Sprintf("%d B", p.CacheBlockSize) })
	addRow("L1-I$ / core", func(p cpuarch.Platform) string { return fmt.Sprintf("%d KiB", p.L1I/cpuarch.KiB) })
	addRow("L1-D$ / core", func(p cpuarch.Platform) string { return fmt.Sprintf("%d KiB", p.L1D/cpuarch.KiB) })
	addRow("Private L2$ / core", func(p cpuarch.Platform) string {
		if p.L2 >= cpuarch.MiB {
			return fmt.Sprintf("%d MiB", p.L2/cpuarch.MiB)
		}
		return fmt.Sprintf("%d KiB", p.L2/cpuarch.KiB)
	})
	addRow("Shared LLC", func(p cpuarch.Platform) string {
		parts := make([]string, len(p.LLCVariants))
		for i, l := range p.LLCVariants {
			parts[i] = fmt.Sprintf("%.4g MiB", float64(l)/float64(cpuarch.MiB))
		}
		return strings.Join(parts, " or ")
	})
	return tb.Render(), nil
}

func runTab2() (string, error) {
	tb := textchart.NewTable("Leaf category", "Examples of leaf functions")
	rows := []struct{ cat, examples string }{
		{fleetdata.LeafMemory, "memory copy, allocation, free, compare"},
		{fleetdata.LeafKernel, "task scheduling, interrupt handling, network communication, memory management"},
		{fleetdata.LeafHashing, "SHA and other hash algorithms"},
		{fleetdata.LeafSync, "user-space atomics, mutex, spin locks, CAS"},
		{fleetdata.LeafZSTD, "compression, decompression"},
		{fleetdata.LeafMath, "vendor math kernels, SIMD"},
		{fleetdata.LeafSSL, "encryption, decryption"},
		{fleetdata.LeafCLib, "search algorithms, array and string compute"},
		{fleetdata.LeafMisc, "other assorted function types"},
	}
	for _, r := range rows {
		tb.AddRow(r.cat, r.examples)
	}
	return tb.Render(), nil
}

func runTab3() (string, error) {
	tb := textchart.NewTable("Functionality category", "Examples of service operations")
	rows := []struct{ cat, examples string }{
		{fleetdata.FuncIO, "encrypted/plain-text I/O sends and receives"},
		{fleetdata.FuncIOPrePost, "allocations, copies, etc. before/after I/O"},
		{fleetdata.FuncCompression, "compression/decompression logic"},
		{fleetdata.FuncSerialization, "RPC serialization/deserialization"},
		{fleetdata.FuncFeatureExt, "feature vector creation in ML services"},
		{fleetdata.FuncPrediction, "ML inference algorithms"},
		{fleetdata.FuncAppLogic, "core business logic (e.g. key-value serving)"},
		{fleetdata.FuncLogging, "creating, reading, updating logs"},
		{fleetdata.FuncThreadPool, "creating, deleting, synchronizing threads"},
		{fleetdata.FuncMisc, "everything else"},
	}
	for _, r := range rows {
		tb.AddRow(r.cat, r.examples)
	}
	return tb.Render(), nil
}

func runTab4() (string, error) {
	tb := textchart.NewTable("Finding", "Acceleration opportunity")
	rows := [][2]string{
		{"Significant orchestration overheads", "accelerate orchestration, not just application logic"},
		{"Common orchestration overheads across services", "accelerating e.g. compression yields fleet-wide wins"},
		{"Poor IPC scaling for several functions", "optimizations for specific leaf/service categories"},
		{"Memory copies and allocations are significant", "dense SIMD copies, in-DRAM copy, I/O DMA engines, PIM"},
		{"Memory frees are computationally expensive", "faster software libraries, hardware page removal"},
		{"High kernel overhead and low IPC", "coalesce I/O, user-space drivers, kernel-bypass"},
		{"Logging overheads can dominate (Web)", "reduce log size or number of updates"},
		{"High compression overhead", "dedicated compression hardware"},
		{"Cache synchronizes frequently", "thread-pool tuning, hardware TSX, spin/block hybrids"},
		{"High event-notification overhead", "RDMA-style and hardware notifications"},
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1])
	}
	return tb.Render(), nil
}

func runTab5() (string, error) {
	tb := textchart.NewTable("Symbol", "Parameter description", "Units")
	rows := [][3]string{
		{"C", "total host cycles to execute all logic in a fixed time unit", "cycles"},
		{"g", "size of an offload", "bytes"},
		{"n", "offloads of profitable size per time unit", "-"},
		{"o0", "host cycles to set up a single offload", "cycles"},
		{"Q", "average queuing cycles between host and accelerator per offload", "cycles"},
		{"L", "average cycles to move an offload across the interface", "cycles"},
		{"o1", "cycles per thread switch (context switch + cache pollution)", "cycles"},
		{"A", "peak accelerator speedup", "-"},
		{"alpha", "fraction of host cycles spent in the kernel (<= 1)", "-"},
		{"Cb", "host cycles per byte of offload data", "cycles"},
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1], r[2])
	}
	return tb.Render(), nil
}
