// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named runner that produces the same
// rows/series the paper reports, alongside the paper's reference numbers,
// so output is directly comparable. cmd/experiments and the root bench
// suite both drive this registry.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // e.g. "fig9", "tab6"
	Title string
	Run   func() (string, error)
}

// registry is populated by the per-artifact files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID (figures first, then tables).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders fig1 < fig2 < ... < fig22 < tab1 < ... numerically.
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (prefix string, n int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	for _, c := range id[i:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return prefix, n
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[strings.ToLower(strings.TrimSpace(id))]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try -list)", id)
	}
	return e, nil
}

// RunAll executes every experiment and concatenates the outputs.
func RunAll() (string, error) {
	var sb strings.Builder
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintf(&sb, "=== %s: %s ===\n%s\n", e.ID, e.Title, out)
	}
	return sb.String(), nil
}
