package core

import (
	"fmt"
	"math"
)

// Model evaluates the Accelerometer equations for one parameterization.
type Model struct {
	p Params
}

// New validates the parameters and returns a model over them.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustNew is New that panics on invalid parameters; for tests and
// package-level reference scenarios.
func MustNew(p Params) *Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// Speedup returns the microservice throughput speedup C/CS for the given
// threading design: equation (1) for Sync, (3) for Sync-OS, (6) for Async
// same-thread and response-free designs, and (3) with a single o1 for
// Async with a distinct response thread.
func (m *Model) Speedup(t Threading) (float64, error) {
	p := m.p
	base := p.overheadPerUnit(p.O0 + p.L + p.Q)
	switch t {
	case Sync:
		// Eqn (1): the accelerator's cycles sit on the host's critical path.
		return 1 / ((1 - p.Alpha) + p.accelFraction() + base), nil
	case SyncOS:
		// Eqn (3): the host switches away and back, paying 2·o1.
		return 1 / ((1 - p.Alpha) + base + p.overheadPerUnit(2*p.O1)), nil
	case AsyncSameThread, AsyncNoResponse:
		// Eqn (6): no wait and no switch.
		return 1 / ((1 - p.Alpha) + base), nil
	case AsyncDistinctThread:
		// §3: "the speedup equation is the same as (3) with only one
		// thread switching overhead o1".
		return 1 / ((1 - p.Alpha) + base + p.overheadPerUnit(p.O1)), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(t))
	}
}

// LatencyReduction returns the per-request latency speedup C/CL for the
// given threading design and acceleration strategy: equation (1) for Sync,
// (5) for Sync-OS and Async-distinct-thread, (8) for Async same-thread, and
// for response-free async designs equation (8) off-chip but (6) remote —
// a remote accelerator's execution time leaves the microservice's request
// path and shows up only in the application's end-to-end latency.
func (m *Model) LatencyReduction(t Threading, s Strategy) (float64, error) {
	switch s {
	case OnChip, OffChip, Remote:
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownStrategy, int(s))
	}
	p := m.p
	base := p.overheadPerUnit(p.O0 + p.L + p.Q)
	switch t {
	case Sync:
		// Eqn (1): CS = CL for Sync.
		return 1 / ((1 - p.Alpha) + p.accelFraction() + base), nil
	case SyncOS, AsyncDistinctThread:
		// Eqn (5): accelerator cycles plus one switch on the request path.
		return 1 / ((1 - p.Alpha) + p.accelFraction() + base + p.overheadPerUnit(p.O1)), nil
	case AsyncSameThread:
		// Eqn (8).
		return 1 / ((1 - p.Alpha) + p.accelFraction() + base), nil
	case AsyncNoResponse:
		if s == Remote {
			// Remote accelerator cycles do not affect this
			// microservice's request latency: eqn (6).
			return 1 / ((1 - p.Alpha) + base), nil
		}
		// Off-chip (or on-chip) accelerator cycles remain in the request
		// path: eqn (8).
		return 1 / ((1 - p.Alpha) + p.accelFraction() + base), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(t))
	}
}

// SpeedupPercent returns Speedup expressed as a percentage gain (a 1.157x
// speedup reports 15.7), matching how the paper states results.
func (m *Model) SpeedupPercent(t Threading) (float64, error) {
	s, err := m.Speedup(t)
	if err != nil {
		return 0, err
	}
	return (s - 1) * 100, nil
}

// LatencyReductionPercent returns LatencyReduction as a percentage gain.
func (m *Model) LatencyReductionPercent(t Threading, s Strategy) (float64, error) {
	l, err := m.LatencyReduction(t, s)
	if err != nil {
		return 0, err
	}
	return (l - 1) * 100, nil
}

// IdealSpeedup returns the Amdahl bound 1/(1-α): the whole-service speedup
// from an infinitely fast, overhead-free accelerator. The paper uses this
// to observe that an ML service improves at most 1.49x even if inference
// takes no time.
func (m *Model) IdealSpeedup() float64 {
	if m.p.Alpha >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - m.p.Alpha)
}

// ThroughputImproves reports whether net speedup exceeds 1 for the
// threading design, i.e. the host spends more cycles without acceleration:
// (α·C) > α·C/A + n(o0+L+Q) for Sync, and the corresponding conditions for
// the other designs (§3).
func (m *Model) ThroughputImproves(t Threading) (bool, error) {
	s, err := m.Speedup(t)
	if err != nil {
		return false, err
	}
	return s > 1, nil
}

// LatencyImproves reports whether latency reduction exceeds 1.
func (m *Model) LatencyImproves(t Threading, s Strategy) (bool, error) {
	l, err := m.LatencyReduction(t, s)
	if err != nil {
		return false, err
	}
	return l > 1, nil
}
