package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// feed1CompressionCDF is the Fig 19 Feed1 compression-size distribution,
// calibrated so the profitable-offload fractions match the paper's Table 7
// (64.2% of compressions ≥ 425 B, 26.6% ≥ the Sync-OS break-even).
func feed1CompressionCDF() *dist.CDF {
	return dist.MustCDF(dist.CompressionLayout, []float64{
		0, 0.085, 0.08, 0.13, 0.09, 0.145, 0.18, 0.10, 0.09, 0.06, 0.03, 0.01,
	})
}

func feed1Workload() Workload {
	return Workload{
		C:          2.3e9,
		KernelFrac: 0.15,
		Invocation: 15008,
		Sizes:      feed1CompressionCDF(),
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := feed1Workload()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Workload)
	}{
		{"zero C", func(w *Workload) { w.C = 0 }},
		{"bad fraction", func(w *Workload) { w.KernelFrac = 1.5 }},
		{"negative invocations", func(w *Workload) { w.Invocation = -1 }},
		{"nil sizes", func(w *Workload) { w.Sizes = nil }},
	}
	for _, tc := range cases {
		w := good
		tc.mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// Project must reproduce Fig 20's compression bars end-to-end: from the
// unfiltered workload and the size CDF, derive break-even, filtered n/α,
// and the final speedups.
func TestProjectReproducesFig20Compression(t *testing.T) {
	w := feed1Workload()
	k := LinearKernel(5.6)

	onChip := Offload{Strategy: OnChip, Thread: Sync, A: 5, SelectiveOffload: true}
	pr, err := Project(w, k, onChip)
	if err != nil {
		t.Fatal(err)
	}
	if pr.OffloadedFraction != 1 {
		t.Errorf("on-chip offloaded fraction = %v, want 1 (break-even 1 B)", pr.OffloadedFraction)
	}
	if got := pr.SpeedupPercent(); got < 13.5 || got > 13.8 {
		t.Errorf("on-chip speedup = %v%%, paper reports 13.6%%", got)
	}
	if got := (pr.IdealSpeedup - 1) * 100; got < 17.5 || got > 17.8 {
		t.Errorf("ideal = %v%%, paper reports 17.6%%", got)
	}

	offSync := Offload{Strategy: OffChip, Thread: Sync, A: 27, L: 2300, SelectiveOffload: true}
	pr, err = Project(w, k, offSync)
	if err != nil {
		t.Fatal(err)
	}
	if pr.BreakEvenG < 420 || pr.BreakEvenG > 432 {
		t.Errorf("off-chip Sync break-even = %v, paper reports 425 B", pr.BreakEvenG)
	}
	if pr.OffloadedFraction < 0.61 || pr.OffloadedFraction > 0.67 {
		t.Errorf("off-chip Sync fraction = %v, paper reports 64.2%%", pr.OffloadedFraction)
	}
	if got := pr.SpeedupPercent(); got < 8.5 || got > 9.5 {
		t.Errorf("off-chip Sync speedup = %v%%, paper reports 9%%", got)
	}

	offSyncOS := Offload{Strategy: OffChip, Thread: SyncOS, A: 27, L: 2300, O1: 5750, SelectiveOffload: true}
	pr, err = Project(w, k, offSyncOS)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.SpeedupPercent(); got < 1.3 || got > 1.9 {
		t.Errorf("off-chip Sync-OS speedup = %v%%, paper reports 1.6%%", got)
	}

	offAsync := Offload{Strategy: OffChip, Thread: AsyncSameThread, A: 27, L: 2300, SelectiveOffload: true}
	pr, err = Project(w, k, offAsync)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.SpeedupPercent(); got < 9.2 || got > 10.0 {
		t.Errorf("off-chip Async speedup = %v%%, paper reports 9.6%%", got)
	}
	if got := pr.LatencyReductionPercent(); got < 8.7 || got > 9.7 {
		t.Errorf("off-chip Async latency = %v%%, paper reports 9.2%%", got)
	}
}

// Unselective offload (case study 2's constraint) must not filter.
func TestProjectUnselective(t *testing.T) {
	w := feed1Workload()
	off := Offload{Strategy: OffChip, Thread: AsyncSameThread, A: 27, L: 2300}
	pr, err := Project(w, LinearKernel(5.6), off)
	if err != nil {
		t.Fatal(err)
	}
	if pr.OffloadedFraction != 1 || pr.BreakEvenG != 0 {
		t.Errorf("unselective projection filtered: fraction=%v breakEven=%v",
			pr.OffloadedFraction, pr.BreakEvenG)
	}
	if pr.Params.N != w.Invocation { //modelcheck:ignore floatcmp — N is copied from the workload, not derived
		t.Errorf("unselective N = %v, want %v", pr.Params.N, w.Invocation)
	}
}

// Under byte-weighted α scaling (exact for linear kernels), selective
// offload never projects below offload-all: the dropped offloads cost more
// overhead than the kernel cycles they carried.
func TestSelectiveBeatsUnselectiveByteWeighted(t *testing.T) {
	w := feed1Workload()
	k := LinearKernel(5.6)
	off := Offload{Strategy: OffChip, Thread: SyncOS, A: 27, L: 2300, O1: 5750, Weighting: WeightByBytes}
	all, err := Project(w, k, off)
	if err != nil {
		t.Fatal(err)
	}
	off.SelectiveOffload = true
	sel, err := Project(w, k, off)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Speedup < all.Speedup {
		t.Errorf("selective %v < unselective %v", sel.Speedup, all.Speedup)
	}
}

// The paper's invocation-count α scaling assumes kernel cycles are uniform
// across invocations; dropping small offloads therefore also drops their
// (overstated) share of α, and the projection can fall below offload-all.
// Byte weighting restores the expected ordering; both conventions must
// agree when nothing is filtered.
func TestAlphaWeightingConventions(t *testing.T) {
	w := feed1Workload()
	k := LinearKernel(5.6)
	base := Offload{Strategy: OffChip, Thread: SyncOS, A: 27, L: 2300, O1: 5750, SelectiveOffload: true}

	byInv, err := Project(w, k, base)
	if err != nil {
		t.Fatal(err)
	}
	byBytes := base
	byBytes.Weighting = WeightByBytes
	bw, err := Project(w, k, byBytes)
	if err != nil {
		t.Fatal(err)
	}
	// The offloaded invocations are the large ones, so their byte share
	// strictly exceeds their count share.
	if !(bw.Params.Alpha > byInv.Params.Alpha) {
		t.Errorf("byte-weighted α %v should exceed invocation-weighted %v",
			bw.Params.Alpha, byInv.Params.Alpha)
	}
	if !(bw.Speedup > byInv.Speedup) {
		t.Errorf("byte-weighted speedup %v should exceed invocation-weighted %v",
			bw.Speedup, byInv.Speedup)
	}
	if WeightByInvocations.String() != "by-invocations" || WeightByBytes.String() != "by-bytes" {
		t.Error("weighting names wrong")
	}
	if AlphaWeighting(9).String() != "AlphaWeighting(9)" {
		t.Error("unknown weighting must still render")
	}
}

// A hopeless design (Sync to an A=1 accelerator, selective) offloads
// nothing and stays exactly neutral.
func TestProjectNothingProfitable(t *testing.T) {
	w := feed1Workload()
	off := Offload{Strategy: Remote, Thread: Sync, A: 1, L: 1e6, SelectiveOffload: true}
	pr, err := Project(w, LinearKernel(5.6), off)
	if err != nil {
		t.Fatal(err)
	}
	if pr.OffloadedFraction != 0 {
		t.Errorf("fraction = %v, want 0", pr.OffloadedFraction)
	}
	if pr.Speedup != 1 {
		t.Errorf("speedup = %v, want exactly 1", pr.Speedup)
	}
	if !math.IsInf(pr.BreakEvenG, 1) {
		t.Errorf("break-even = %v, want +Inf", pr.BreakEvenG)
	}
}

func TestProjectErrors(t *testing.T) {
	w := feed1Workload()
	k := LinearKernel(5.6)
	off := Offload{Strategy: OnChip, Thread: Sync, A: 5}

	bad := w
	bad.C = 0
	if _, err := Project(bad, k, off); err == nil {
		t.Error("bad workload: want error")
	}
	if _, err := Project(w, Kernel{}, off); err == nil {
		t.Error("bad kernel: want error")
	}
	badOff := off
	badOff.A = 0
	if _, err := Project(w, k, badOff); err == nil {
		t.Error("bad offload A: want error")
	}
	badOff = off
	badOff.Thread = Threading(99)
	if _, err := Project(w, k, badOff); err == nil {
		t.Error("unknown threading: want error")
	}
	badOff = off
	badOff.Strategy = Strategy(99)
	if _, err := Project(w, k, badOff); err == nil {
		t.Error("unknown strategy: want error")
	}
}

func TestCompareStrategies(t *testing.T) {
	w := feed1Workload()
	k := LinearKernel(5.6)
	offs := []Offload{
		{Strategy: OnChip, Thread: Sync, A: 5, SelectiveOffload: true},
		{Strategy: OffChip, Thread: AsyncSameThread, A: 27, L: 2300, SelectiveOffload: true},
	}
	prs, err := CompareStrategies(w, k, offs)
	if err != nil {
		t.Fatal(err)
	}
	if len(prs) != 2 {
		t.Fatalf("got %d projections", len(prs))
	}
	// Fig 20: on-chip compression beats off-chip for Feed1.
	if !(prs[0].Speedup > prs[1].Speedup) {
		t.Errorf("on-chip %v should beat off-chip %v", prs[0].Speedup, prs[1].Speedup)
	}
	offs[1].A = 0
	if _, err := CompareStrategies(w, k, offs); err == nil {
		t.Error("invalid design in list: want error")
	}
}

func TestProjectionPercentHelpers(t *testing.T) {
	pr := Projection{Speedup: 1.157, LatencyReduction: 1.092}
	if got := pr.SpeedupPercent(); math.Abs(got-15.7) > 1e-9 {
		t.Errorf("SpeedupPercent = %v", got)
	}
	if got := pr.LatencyReductionPercent(); math.Abs(got-9.2) > 1e-9 {
		t.Errorf("LatencyReductionPercent = %v", got)
	}
}
