package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// Estimate the AES-NI case study (Table 6, case study 1).
func ExampleModel_Speedup() {
	m, err := core.New(core.Params{
		C: 2.0e9, Alpha: 0.165844, N: 298951,
		O0: 10, L: 3, A: 6,
	})
	if err != nil {
		panic(err)
	}
	speedup, err := m.Speedup(core.Sync)
	if err != nil {
		panic(err)
	}
	fmt.Printf("AES-NI speedup: %.1f%%\n", (speedup-1)*100)
	// Output: AES-NI speedup: 15.8%
}

// Compare threading designs for the same off-chip accelerator.
func ExampleModel_LatencyReduction() {
	m := core.MustNew(core.Params{
		C: 2.3e9, Alpha: 0.15, N: 9629, L: 2300, O1: 5750, A: 27,
	})
	for _, th := range []core.Threading{core.Sync, core.SyncOS} {
		s, _ := m.Speedup(th)                        //modelcheck:ignore errdrop — example brevity; Sync and Sync-OS are valid for this config
		l, _ := m.LatencyReduction(th, core.OffChip) //modelcheck:ignore errdrop — example brevity; Sync and Sync-OS are valid for this config
		fmt.Printf("%s: throughput %+.1f%% latency %+.1f%%\n",
			th, (s-1)*100, (l-1)*100)
	}
	// Output:
	// Sync: throughput +15.6% latency +15.6%
	// Sync-OS: throughput +10.2% latency +12.5%
}

// Find the smallest profitable offload size (equation 2).
func ExampleModel_BreakEvenThroughputG() {
	m := core.MustNew(core.Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, A: 27})
	g, err := m.BreakEvenThroughputG(core.Sync, core.LinearKernel(5.6))
	if err != nil {
		panic(err)
	}
	fmt.Printf("offload pays off at g >= %.0f bytes\n", g)
	// Output: offload pays off at g >= 427 bytes
}

// Project speedup from a workload's granularity distribution — the paper's
// five-step methodology in one call.
func ExampleProject() {
	sizes := dist.MustCDF(dist.CompressionLayout, []float64{
		0, 0.085, 0.08, 0.13, 0.09, 0.145, 0.18, 0.10, 0.09, 0.06, 0.03, 0.01,
	})
	pr, err := core.Project(core.Workload{
		C: 2.3e9, KernelFrac: 0.15, Invocation: 15008, Sizes: sizes,
	}, core.LinearKernel(5.6), core.Offload{
		Strategy: core.OffChip, Thread: core.AsyncSameThread,
		A: 27, L: 2300, SelectiveOffload: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f%% of offloads profit; speedup %.1f%%\n",
		pr.OffloadedFraction*100, pr.SpeedupPercent())
	// Output: 65% of offloads profit; speedup 9.6%
}
