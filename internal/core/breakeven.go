package core

import (
	"fmt"
	"math"
)

// Kernel describes the host-side cost of the offloadable kernel as a
// function of granularity: the host spends Cb·g^Beta cycles executing a
// g-byte offload. Beta models kernel complexity (§3): 1 for linear kernels
// (the paper's assumption for its case studies), <1 sub-linear, >1
// super-linear.
type Kernel struct {
	Cb   float64 // host cycles per byte of offload data
	Beta float64 // complexity exponent; 1 = linear
}

// LinearKernel returns a linear-complexity kernel with the given
// cycles-per-byte.
func LinearKernel(cb float64) Kernel { return Kernel{Cb: cb, Beta: 1} }

// Validate checks the kernel's parameters.
func (k Kernel) Validate() error {
	if !(k.Cb > 0) || math.IsInf(k.Cb, 0) || math.IsNaN(k.Cb) {
		return fmt.Errorf("core: Cb = %v, want finite > 0", k.Cb)
	}
	if !(k.Beta > 0) || math.IsInf(k.Beta, 0) || math.IsNaN(k.Beta) {
		return fmt.Errorf("core: Beta = %v, want finite > 0", k.Beta)
	}
	return nil
}

// HostCycles returns the host cycles to execute a g-byte offload: Cb·g^β.
func (k Kernel) HostCycles(g uint64) float64 {
	//modelcheck:ignore floatcmp — exact fast path for the common β=1 kernel
	if k.Beta == 1 {
		return k.Cb * float64(g)
	}
	return k.Cb * math.Pow(float64(g), k.Beta)
}

// offloadOverhead returns the per-offload overhead cycles relevant to the
// throughput-profitability predicate of each threading design:
// eqn (2) Sync: o0+L+Q; eqn (4) Sync-OS: o0+L+Q+2o1; eqn (7) Async:
// o0+L+Q (one o1 for a distinct response thread).
func (m *Model) offloadOverhead(t Threading) (float64, error) {
	p := m.p
	switch t {
	case Sync:
		return p.O0 + p.L + p.Q, nil
	case SyncOS:
		return p.O0 + p.L + p.Q + 2*p.O1, nil
	case AsyncSameThread, AsyncNoResponse:
		return p.O0 + p.L + p.Q, nil
	case AsyncDistinctThread:
		return p.O0 + p.L + p.Q + p.O1, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(t))
	}
}

// latencyOverhead returns the per-offload overhead cycles relevant to the
// latency-profitability predicate: one o1 for Sync-OS and
// Async-distinct-thread, none otherwise (§3).
func (m *Model) latencyOverhead(t Threading) (float64, error) {
	p := m.p
	switch t {
	case Sync, AsyncSameThread, AsyncNoResponse:
		return p.O0 + p.L + p.Q, nil
	case SyncOS, AsyncDistinctThread:
		return p.O0 + p.L + p.Q + p.O1, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(t))
	}
}

// OffloadImprovesThroughput reports whether a single g-byte offload
// improves throughput speedup under the threading design: equation (2) for
// Sync — Cb·g > Cb·g/A + (o0+L+Q) — and equations (4)/(7) for Sync-OS and
// Async, where the host does not wait and only the offload overhead must
// be beaten.
func (m *Model) OffloadImprovesThroughput(t Threading, k Kernel, g uint64) (bool, error) {
	if err := k.Validate(); err != nil {
		return false, err
	}
	over, err := m.offloadOverhead(t)
	if err != nil {
		return false, err
	}
	host := k.HostCycles(g)
	switch t {
	case Sync:
		// The waiting host still pays the accelerator's execution time.
		return host > host/m.p.A+over, nil
	default:
		return host > over, nil
	}
}

// OffloadReducesLatency reports whether a single g-byte offload reduces
// per-request latency: the host cycles must dominate the accelerator's
// cycles plus the latency-path overheads (§3).
func (m *Model) OffloadReducesLatency(t Threading, k Kernel, g uint64) (bool, error) {
	if err := k.Validate(); err != nil {
		return false, err
	}
	over, err := m.latencyOverhead(t)
	if err != nil {
		return false, err
	}
	host := k.HostCycles(g)
	accel := host / m.p.A
	if math.IsInf(m.p.A, 1) {
		accel = 0
	}
	if t == AsyncNoResponse {
		// No response means the accelerator's cycles only stay on the
		// request path for non-remote strategies; callers deciding
		// remote placement should use BreakEvenLatencyG with Remote.
		return host > accel+over, nil
	}
	return host > accel+over, nil
}

// BreakEvenThroughputG returns the smallest offload size in bytes at which
// a single offload improves throughput, solving equations (2)/(4)/(7) for
// g. It returns +Inf when no finite size is profitable (e.g. Sync with
// A = 1: the accelerator never beats the host plus overhead).
func (m *Model) BreakEvenThroughputG(t Threading, k Kernel) (float64, error) {
	if err := k.Validate(); err != nil {
		return 0, err
	}
	over, err := m.offloadOverhead(t)
	if err != nil {
		return 0, err
	}
	effCb := k.Cb
	if t == Sync {
		// Cb·g^β (1 - 1/A) > over
		factor := 1 - 1/m.p.A
		if math.IsInf(m.p.A, 1) {
			factor = 1
		}
		if factor <= 0 {
			return math.Inf(1), nil
		}
		effCb = k.Cb * factor
	}
	if over <= 0 {
		// Any positive size profits; the minimum meaningful offload is one
		// byte.
		return 1, nil
	}
	return math.Pow(over/effCb, 1/k.Beta), nil
}

// BreakEvenLatencyG returns the smallest offload size in bytes at which a
// single offload reduces per-request latency. For every design except a
// remote response-free offload, the accelerator's cycles remain on the
// request path, so the condition is Cb·g^β(1-1/A) > overhead; +Inf when
// A = 1 makes that impossible.
func (m *Model) BreakEvenLatencyG(t Threading, s Strategy, k Kernel) (float64, error) {
	if err := k.Validate(); err != nil {
		return 0, err
	}
	switch s {
	case OnChip, OffChip, Remote:
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownStrategy, int(s))
	}
	over, err := m.latencyOverhead(t)
	if err != nil {
		return 0, err
	}
	factor := 1 - 1/m.p.A
	if math.IsInf(m.p.A, 1) {
		factor = 1
	}
	if t == AsyncNoResponse && s == Remote {
		// Accelerator cycles leave the request path entirely.
		factor = 1
	}
	if factor <= 0 {
		return math.Inf(1), nil
	}
	if over <= 0 {
		return 1, nil
	}
	return math.Pow(over/(k.Cb*factor), 1/k.Beta), nil
}
