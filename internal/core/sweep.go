package core

import (
	"fmt"
	"math"
)

// Parameter sweeps and sensitivity analysis. The paper positions
// Accelerometer as a design-phase tool: architects sweep accelerator
// characteristics (A, L, queue depth) before committing to hardware. This
// file provides those sweeps plus local sensitivities, so a designer can
// see which parameter actually bounds a proposed accelerator.

// SweepPoint is one evaluated point of a parameter sweep.
type SweepPoint struct {
	Value            float64 // the swept parameter's value
	Speedup          float64
	LatencyReduction float64
}

// SweepParam names a Params field to sweep.
type SweepParam int

const (
	// SweepA sweeps the accelerator's peak speedup factor.
	SweepA SweepParam = iota
	// SweepL sweeps the interface transfer cost per offload.
	SweepL
	// SweepQ sweeps the queuing delay per offload.
	SweepQ
	// SweepO1 sweeps the thread-switch cost.
	SweepO1
	// SweepAlpha sweeps the kernel's cycle fraction.
	SweepAlpha
	// SweepN sweeps the offload rate.
	SweepN
)

// String names the swept parameter.
func (s SweepParam) String() string {
	switch s {
	case SweepA:
		return "A"
	case SweepL:
		return "L"
	case SweepQ:
		return "Q"
	case SweepO1:
		return "o1"
	case SweepAlpha:
		return "alpha"
	case SweepN:
		return "n"
	default:
		return fmt.Sprintf("SweepParam(%d)", int(s))
	}
}

// withValue returns p with the swept field set to v.
func (s SweepParam) withValue(p Params, v float64) (Params, error) {
	switch s {
	case SweepA:
		p.A = v
	case SweepL:
		p.L = v
	case SweepQ:
		p.Q = v
	case SweepO1:
		p.O1 = v
	case SweepAlpha:
		p.Alpha = v
	case SweepN:
		p.N = v
	default:
		return p, fmt.Errorf("core: unknown sweep parameter %d", int(s))
	}
	return p, nil
}

// Sweep evaluates speedup and latency reduction at each value of the swept
// parameter, holding everything else at the model's parameters.
func (m *Model) Sweep(param SweepParam, th Threading, st Strategy, values []float64) ([]SweepPoint, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("core: empty sweep")
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		p, err := param.withValue(m.p, v)
		if err != nil {
			return nil, err
		}
		sub, err := New(p)
		if err != nil {
			return nil, fmt.Errorf("core: sweep %v=%v: %w", param, v, err)
		}
		s, err := sub.Speedup(th)
		if err != nil {
			return nil, err
		}
		l, err := sub.LatencyReduction(th, st)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Value: v, Speedup: s, LatencyReduction: l})
	}
	return out, nil
}

// MinimumA returns the smallest accelerator speedup factor A that achieves
// the target throughput speedup under the threading design, or +Inf when
// no finite A suffices (the overhead terms alone cap the speedup below the
// target). For threading designs whose throughput does not depend on A
// (Sync-OS and the async designs), it returns 1 if the target is met and
// +Inf otherwise.
func (m *Model) MinimumA(th Threading, target float64) (float64, error) {
	if target <= 1 {
		return 1, nil
	}
	// Check the A→∞ bound first.
	p := m.p
	p.A = math.Inf(1)
	ideal, err := New(p)
	if err != nil {
		return 0, err
	}
	bound, err := ideal.Speedup(th)
	if err != nil {
		return 0, err
	}
	if bound < target {
		return math.Inf(1), nil
	}
	if th != Sync {
		// A does not appear in the other designs' throughput equations.
		p.A = 1
		atOne, err := New(p)
		if err != nil {
			return 0, err
		}
		s, err := atOne.Speedup(th)
		if err != nil {
			return 0, err
		}
		if s >= target {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	// Sync: 1/target = (1-α) + α/A + (n/C)(o0+L+Q)  ⇒  solve for A.
	over := m.p.overheadPerUnit(m.p.O0 + m.p.L + m.p.Q)
	denomBudget := 1/target - (1 - m.p.Alpha) - over
	if denomBudget <= 0 {
		return math.Inf(1), nil
	}
	a := m.p.Alpha / denomBudget
	if a < 1 {
		a = 1
	}
	return a, nil
}

// MaximumL returns the largest per-offload interface cost L that still
// achieves the target throughput speedup, or 0 when even L = 0 misses it.
// This is the budget a designer can spend on the interconnect.
func (m *Model) MaximumL(th Threading, target float64) (float64, error) {
	if target <= 1 {
		return math.Inf(1), nil
	}
	p := m.p
	p.L = 0
	zero, err := New(p)
	if err != nil {
		return 0, err
	}
	s, err := zero.Speedup(th)
	if err != nil {
		return 0, err
	}
	if s < target {
		return 0, nil
	}
	if p.N <= 0 {
		return math.Inf(1), nil
	}
	// All designs are linear in (n/C)·L: 1/target = base + (n/C)·L.
	base := 1/s + 0 // 1/speedup at L=0 equals the full denominator at L=0
	budget := 1/target - base
	if budget <= 0 {
		return 0, nil
	}
	return budget * p.C / p.N, nil
}

// Sensitivity reports d(speedup)/d(param) scaled to a 1% change of the
// parameter (a semi-elasticity): how many percentage points of speedup a 1%
// increase in the parameter buys (or costs). Central finite differences.
func (m *Model) Sensitivity(param SweepParam, th Threading) (float64, error) {
	if _, err := m.Speedup(th); err != nil {
		return 0, err // surface unknown threading designs up front
	}
	cur, err := currentValue(param, m.p)
	if err != nil {
		return 0, err
	}
	if cur <= 0 {
		// Parameter is zero: use an absolute step of 1% of a natural scale
		// instead (1 cycle for overheads; 0.01 for alpha; 1 for A/n).
		cur = 1
	}
	h := cur * 0.01
	lo, err := param.withValue(m.p, math.Max(0, cur-h))
	if err != nil {
		return 0, err
	}
	hi, err := param.withValue(m.p, cur+h)
	if err != nil {
		return 0, err
	}
	if param == SweepA && lo.A < 1 {
		lo.A = 1
	}
	if param == SweepAlpha && hi.Alpha > 1 {
		hi.Alpha = 1
	}
	mLo, err := New(lo)
	if err != nil {
		return 0, err
	}
	mHi, err := New(hi)
	if err != nil {
		return 0, err
	}
	sLo, err := mLo.Speedup(th)
	if err != nil {
		return 0, err
	}
	sHi, err := mHi.Speedup(th)
	if err != nil {
		return 0, err
	}
	return (sHi - sLo) / 2 * 100, nil
}

func currentValue(param SweepParam, p Params) (float64, error) {
	switch param {
	case SweepA:
		return p.A, nil
	case SweepL:
		return p.L, nil
	case SweepQ:
		return p.Q, nil
	case SweepO1:
		return p.O1, nil
	case SweepAlpha:
		return p.Alpha, nil
	case SweepN:
		return p.N, nil
	default:
		return 0, fmt.Errorf("core: unknown sweep parameter %d", int(param))
	}
}
