package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestJitterValidate(t *testing.T) {
	if err := (Jitter{Alpha: 0.1, L: 0.5}).Validate(); err != nil {
		t.Errorf("valid jitter: %v", err)
	}
	bad := []Jitter{
		{Alpha: -0.1},
		{N: 1.0},
		{L: math.NaN()},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("jitter %+v: want error", j)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	m := MustNew(Params{C: 2e9, Alpha: 0.15, N: 1e4, L: 2300, A: 27})
	rng := dist.NewRand(1)
	if _, err := m.MonteCarlo(Sync, Jitter{Alpha: -1}, 100, rng); err == nil {
		t.Error("bad jitter: want error")
	}
	if _, err := m.MonteCarlo(Sync, Jitter{}, 1, rng); err == nil {
		t.Error("one sample: want error")
	}
	if _, err := m.MonteCarlo(Sync, Jitter{}, 100, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := m.MonteCarlo(Threading(99), Jitter{}, 100, rng); err == nil {
		t.Error("unknown threading: want error")
	}
}

// With zero jitter every sample equals the point estimate.
func TestMonteCarloZeroJitter(t *testing.T) {
	m := MustNew(Params{C: 2e9, Alpha: 0.165844, N: 298951, O0: 10, L: 3, A: 6})
	res, err := m.MonteCarlo(Sync, Jitter{}, 200, dist.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-res.Point) > 1e-12 || res.P5 != res.Point || res.P95 != res.Point { //modelcheck:ignore floatcmp — zero-width distribution collapses to the point estimate exactly
		t.Errorf("zero jitter must collapse to the point estimate: %+v", res)
	}
	if res.RiskBelowOne != 0 {
		t.Errorf("risk = %v for a clearly winning deployment", res.RiskBelowOne)
	}
}

// Jitter widens the band around the point estimate and keeps it ordered.
func TestMonteCarloBands(t *testing.T) {
	m := MustNew(Params{C: 2e9, Alpha: 0.165844, N: 298951, O0: 10, L: 3, A: 6})
	j := Jitter{Alpha: 0.2, N: 0.2, L: 0.5, A: 0.3}
	res, err := m.MonteCarlo(Sync, j, 5000, dist.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P5 < res.P50 && res.P50 < res.P95) {
		t.Errorf("percentiles out of order: %+v", res)
	}
	if !(res.P5 < res.Point && res.Point < res.P95) {
		t.Errorf("point estimate should sit inside the band: %+v", res)
	}
	if res.P95-res.P5 < 0.01 {
		t.Errorf("20-50%% jitter should produce a visible band: %+v", res)
	}
	// AES-NI is robust: even pessimistic draws stay profitable.
	if res.RiskBelowOne != 0 {
		t.Errorf("AES-NI risk = %v, want 0", res.RiskBelowOne)
	}
}

// A marginal deployment shows real downside risk under uncertainty.
func TestMonteCarloRisk(t *testing.T) {
	// Off-chip Sync-OS compression: +1.6% point estimate, easily wiped out
	// by a worse-than-expected interface or switch cost.
	m := MustNew(Params{C: 2.3e9, Alpha: 0.15 * 3986 / 15008, N: 3986, L: 2300, O1: 5750, A: 27})
	res, err := m.MonteCarlo(SyncOS, Jitter{L: 0.5, O1: 0.5, N: 0.3, Alpha: 0.2}, 5000, dist.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.RiskBelowOne <= 0 {
		t.Errorf("marginal deployment should show downside risk: %+v", res)
	}
	if res.RiskBelowOne >= 0.9 {
		t.Errorf("risk = %v looks like the point estimate is wrong", res.RiskBelowOne)
	}
}

// Determinism: the same seed reproduces the same bands.
func TestMonteCarloDeterministic(t *testing.T) {
	m := MustNew(Params{C: 2e9, Alpha: 0.2, N: 1e4, L: 500, A: 10})
	j := Jitter{Alpha: 0.1, L: 0.3}
	a, err := m.MonteCarlo(Sync, j, 1000, dist.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MonteCarlo(Sync, j, 1000, dist.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different Monte-Carlo results")
	}
}
