package core

import (
	"math"
	"testing"
)

// within asserts a value lies in [lo, hi].
func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{C: 2e9, Alpha: 0.2, N: 100, O0: 1, Q: 2, L: 3, O1: 4, A: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero C", func(p *Params) { p.C = 0 }},
		{"negative C", func(p *Params) { p.C = -1 }},
		{"inf C", func(p *Params) { p.C = math.Inf(1) }},
		{"alpha > 1", func(p *Params) { p.Alpha = 1.1 }},
		{"alpha < 0", func(p *Params) { p.Alpha = -0.1 }},
		{"NaN alpha", func(p *Params) { p.Alpha = math.NaN() }},
		{"negative N", func(p *Params) { p.N = -1 }},
		{"negative O0", func(p *Params) { p.O0 = -1 }},
		{"negative Q", func(p *Params) { p.Q = -1 }},
		{"negative L", func(p *Params) { p.L = -1 }},
		{"negative O1", func(p *Params) { p.O1 = -1 }},
		{"A below 1", func(p *Params) { p.A = 0.5 }},
		{"NaN A", func(p *Params) { p.A = math.NaN() }},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// A = +Inf is the ideal accelerator and is allowed.
	p := good
	p.A = math.Inf(1)
	if err := p.Validate(); err != nil {
		t.Errorf("A=+Inf should validate: %v", err)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Error("zero params: want error")
	}
}

func TestThreadingStrategyStrings(t *testing.T) {
	if Sync.String() != "Sync" || SyncOS.String() != "Sync-OS" || AsyncSameThread.String() != "Async" {
		t.Error("threading names wrong")
	}
	if Threading(99).String() == "" || Strategy(99).String() == "" {
		t.Error("unknown values must still render")
	}
	if OnChip.String() != "on-chip" || OffChip.String() != "off-chip" || Remote.String() != "remote" {
		t.Error("strategy names wrong")
	}
}

func TestUnknownThreadingErrors(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.1, N: 10, A: 2})
	if _, err := m.Speedup(Threading(99)); err == nil {
		t.Error("unknown threading: want error")
	}
	if _, err := m.LatencyReduction(Threading(99), OnChip); err == nil {
		t.Error("unknown threading for latency: want error")
	}
	if _, err := m.LatencyReduction(Sync, Strategy(99)); err == nil {
		t.Error("unknown strategy: want error")
	}
	if _, err := m.SpeedupPercent(Threading(99)); err == nil {
		t.Error("unknown threading percent: want error")
	}
	if _, err := m.LatencyReductionPercent(Sync, Strategy(99)); err == nil {
		t.Error("unknown strategy percent: want error")
	}
	if _, err := m.ThroughputImproves(Threading(99)); err == nil {
		t.Error("unknown threading improves: want error")
	}
	if _, err := m.LatencyImproves(Threading(99), OnChip); err == nil {
		t.Error("unknown threading latency improves: want error")
	}
}

// Table 6, case study 1: AES-NI for Cache1 (on-chip, Sync).
// C=2.0e9, α=0.165844, n=298951, o0=10, Q=0, L=3, A=6 → estimated 15.7%.
func TestCaseStudy1AESNI(t *testing.T) {
	m := MustNew(Params{
		C: 2.0e9, Alpha: 0.165844, N: 298951,
		O0: 10, Q: 0, L: 3, A: 6,
	})
	pct, err := m.SpeedupPercent(Sync)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "AES-NI speedup %", pct, 15.6, 15.9)

	// Sync latency reduction equals its speedup (CS = CL).
	lat, err := m.LatencyReductionPercent(Sync, OnChip)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-pct) > 1e-9 {
		t.Errorf("Sync latency %v != speedup %v", lat, pct)
	}

	// The real production speedup was 14%; model error must be small
	// (paper reports 1.7% absolute difference).
	if diff := math.Abs(pct - 14.0); diff > 2.0 {
		t.Errorf("model vs production difference = %v pp, paper reports 1.7", diff)
	}
}

// Table 6, case study 2: off-chip PCIe encryption for Cache3 (Async,
// response-free). C=2.3e9, α=0.19154, n=101863, o0=0, Q=0, L=2530 →
// estimated 8.6% (real 7.5%).
func TestCaseStudy2OffChipEncryption(t *testing.T) {
	m := MustNew(Params{
		C: 2.3e9, Alpha: 0.19154, N: 101863,
		O0: 0, Q: 0, L: 2530, A: 1, // A unused by the Async speedup path
	})
	pct, err := m.SpeedupPercent(AsyncNoResponse)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "off-chip encryption speedup %", pct, 8.5, 8.75)
	if diff := math.Abs(pct - 7.5); diff > 1.5 {
		t.Errorf("model vs production difference = %v pp, paper reports 1.1", diff)
	}
}

// Table 6, case study 3: remote CPU inference for Ads1 (distinct response
// thread ⇒ Sync-OS speedup with a single o1). C=2.5e9, α=0.52, n=10,
// o0=25e6, o1=12500, L+Q=0, A=1 → estimated 72.39% (real 68.69%).
func TestCaseStudy3RemoteInference(t *testing.T) {
	m := MustNew(Params{
		C: 2.5e9, Alpha: 0.52, N: 10,
		O0: 25e6, Q: 0, L: 0, O1: 12500, A: 1,
	})
	pct, err := m.SpeedupPercent(AsyncDistinctThread)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "remote inference speedup %", pct, 72.3, 72.5)
	if diff := math.Abs(pct - 68.69); diff > 4.0 {
		t.Errorf("model vs production difference = %v pp, paper reports 3.7", diff)
	}
}

// Fig 20 / Table 7: compression acceleration for Feed1 with pre-filtered
// parameters, all four bars plus the ideal bound.
func TestFig20Compression(t *testing.T) {
	const total = 15008.0

	ideal := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 0, A: 1}).IdealSpeedup()
	within(t, "compression ideal %", (ideal-1)*100, 17.5, 17.8)

	onChip := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 0, A: 5})
	pct, err := onChip.SpeedupPercent(Sync)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression on-chip Sync %", pct, 13.5, 13.8)
	lat, err := onChip.LatencyReductionPercent(Sync, OnChip)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression on-chip latency %", lat, 13.5, 13.8)

	// Off-chip Sync: n=9629 profitable offloads, α scaled by the
	// offloaded fraction.
	offSync := MustNew(Params{C: 2.3e9, Alpha: 0.15 * 9629 / total, N: 9629, L: 2300, A: 27})
	pct, err = offSync.SpeedupPercent(Sync)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression off-chip Sync %", pct, 8.8, 9.3)

	// Off-chip Sync-OS: n=3986, o1=5750.
	offSyncOS := MustNew(Params{C: 2.3e9, Alpha: 0.15 * 3986 / total, N: 3986, L: 2300, O1: 5750, A: 27})
	pct, err = offSyncOS.SpeedupPercent(SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression off-chip Sync-OS %", pct, 1.5, 1.8)

	// Off-chip Async: n=9769.
	offAsync := MustNew(Params{C: 2.3e9, Alpha: 0.15 * 9769 / total, N: 9769, L: 2300, A: 27})
	pct, err = offAsync.SpeedupPercent(AsyncSameThread)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression off-chip Async %", pct, 9.4, 9.8)
	lat, err = offAsync.LatencyReductionPercent(AsyncSameThread, OffChip)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "compression off-chip Async latency %", lat, 9.0, 9.4)
}

// Fig 20 / Table 7: on-chip memory-copy acceleration for Ads1.
// C=2.3e9, α=0.1512, n=1473681, L=0, A=4 → 12.7%.
func TestFig20MemoryCopy(t *testing.T) {
	m := MustNew(Params{C: 2.3e9, Alpha: 0.1512, N: 1473681, L: 0, A: 4})
	pct, err := m.SpeedupPercent(Sync)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "memory copy on-chip %", pct, 12.6, 12.9)
}

// Fig 20 / Table 7: on-chip allocation acceleration for Cache1.
// C=2.0e9, α=0.055, n=51695, A=1.5 → 1.86%.
func TestFig20MemoryAllocation(t *testing.T) {
	m := MustNew(Params{C: 2.0e9, Alpha: 0.055, N: 51695, A: 1.5})
	pct, err := m.SpeedupPercent(Sync)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "allocation on-chip %", pct, 1.8, 1.95)
}

// §2.4: an ML microservice speeds up by only 49% even with infinitely fast
// inference when inference is 33% of cycles (1/(1-0.33) = 1.49x), and by
// 2.38x when inference is 58% (1/(1-0.58) = 2.38x).
func TestInferenceAmdahlBounds(t *testing.T) {
	low := MustNew(Params{C: 1e9, Alpha: 0.33, N: 0, A: 1}).IdealSpeedup()
	within(t, "ML ideal speedup (33% inference)", low, 1.48, 1.50)
	high := MustNew(Params{C: 1e9, Alpha: 0.58, N: 0, A: 1}).IdealSpeedup()
	within(t, "ML ideal speedup (58% inference)", high, 2.36, 2.40)

	if got := MustNew(Params{C: 1e9, Alpha: 1, N: 0, A: 1}).IdealSpeedup(); !math.IsInf(got, 1) {
		t.Errorf("alpha=1 ideal speedup = %v, want +Inf", got)
	}
}

// With zero offload overheads and an ideal accelerator, every design's
// speedup approaches the Amdahl bound.
func TestIdealAcceleratorConvergence(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.4, N: 1000, A: math.Inf(1)}
	m := MustNew(p)
	want := 1 / (1 - 0.4)
	for _, th := range Threadings {
		s, err := m.Speedup(th)
		if err != nil {
			t.Fatalf("%v: %v", th, err)
		}
		if math.Abs(s-want) > 1e-9 {
			t.Errorf("%v ideal speedup = %v, want %v", th, s, want)
		}
	}
}

// Threading-design ordering: with identical parameters, Async ≥ Sync-OS
// never holds trivially, but Async (no wait, no switch) must dominate
// Sync-OS (two switches), and Sync-OS with cheap switches must dominate
// Sync when the accelerator is slow (A close to 1).
func TestThreadingOrdering(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.3, N: 1e5, O0: 100, L: 500, Q: 50, O1: 300, A: 1.2}
	m := MustNew(p)
	sync, _ := m.Speedup(Sync)
	syncOS, _ := m.Speedup(SyncOS)
	async, _ := m.Speedup(AsyncSameThread)
	distinct, _ := m.Speedup(AsyncDistinctThread)
	if !(async > distinct) {
		t.Errorf("Async (%v) should beat Async-distinct (%v): one fewer switch", async, distinct)
	}
	if !(distinct > syncOS) {
		t.Errorf("Async-distinct (%v) should beat Sync-OS (%v): one fewer switch", distinct, syncOS)
	}
	if !(syncOS > sync) {
		t.Errorf("Sync-OS (%v) should beat Sync (%v) when the accelerator is slow", syncOS, sync)
	}
}

// With a very fast accelerator and very expensive thread switches, Sync
// beats Sync-OS — the crossover the model exists to expose.
func TestSyncBeatsSyncOSWithExpensiveSwitches(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.3, N: 1e5, O0: 0, L: 10, Q: 0, O1: 5e4, A: 100}
	m := MustNew(p)
	sync, _ := m.Speedup(Sync)
	syncOS, _ := m.Speedup(SyncOS)
	if !(sync > syncOS) {
		t.Errorf("Sync (%v) should beat Sync-OS (%v) with µs-scale o1", sync, syncOS)
	}
}

// Sync-OS can gain throughput while losing latency — the paper's
// observation that µs-scale o1 "makes it feasible to incur a throughput
// gain at the cost of a per-request latency slowdown".
func TestSyncOSThroughputGainLatencyLoss(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.10, N: 4e4, O0: 0, L: 100, Q: 0, O1: 1000, A: 1.05}
	m := MustNew(p)
	thr, err := m.ThroughputImproves(SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := m.LatencyImproves(SyncOS, OffChip)
	if err != nil {
		t.Fatal(err)
	}
	if !thr {
		t.Error("expected a throughput gain")
	}
	if lat {
		t.Error("expected a latency loss (slow accelerator + switch cost on request path)")
	}
}

// Remote response-free offloads keep accelerator cycles out of the request
// latency; off-chip ones do not.
func TestAsyncNoResponseLatencyByStrategy(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.4, N: 100, O0: 10, L: 100, Q: 0, A: 1}
	m := MustNew(p)
	remote, err := m.LatencyReduction(AsyncNoResponse, Remote)
	if err != nil {
		t.Fatal(err)
	}
	offchip, err := m.LatencyReduction(AsyncNoResponse, OffChip)
	if err != nil {
		t.Fatal(err)
	}
	if !(remote > offchip) {
		t.Errorf("remote no-response latency (%v) should beat off-chip (%v) at A=1", remote, offchip)
	}
	if remote <= 1 {
		t.Errorf("remote no-response latency reduction = %v, want > 1", remote)
	}
}

// Speedup must degrade monotonically as per-offload overheads grow.
func TestSpeedupMonotoneInOverheads(t *testing.T) {
	base := Params{C: 1e9, Alpha: 0.3, N: 1e5, A: 10}
	prev := math.Inf(1)
	for _, l := range []float64{0, 100, 500, 2000, 10000} {
		p := base
		p.L = l
		s, err := MustNew(p).Speedup(AsyncSameThread)
		if err != nil {
			t.Fatal(err)
		}
		if s > prev {
			t.Errorf("speedup rose from %v to %v as L grew to %v", prev, s, l)
		}
		prev = s
	}
}

// Zero-work model (α=0, n=0) must be exactly neutral for all designs.
func TestNoKernelNoChange(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0, N: 0, A: 5})
	for _, th := range Threadings {
		s, err := m.Speedup(th)
		if err != nil {
			t.Fatal(err)
		}
		if s != 1 {
			t.Errorf("%v speedup = %v, want exactly 1", th, s)
		}
		for _, st := range Strategies {
			l, err := m.LatencyReduction(th, st)
			if err != nil {
				t.Fatal(err)
			}
			if l != 1 {
				t.Errorf("%v/%v latency = %v, want exactly 1", th, st, l)
			}
		}
	}
}

func TestParamsAccessor(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.1, N: 5, A: 2}
	if got := MustNew(p).Params(); got != p {
		t.Errorf("Params() = %+v, want %+v", got, p)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid params: want panic")
		}
	}()
	MustNew(Params{})
}
