package core

import (
	"math"
	"testing"
)

func TestComposeLatencyReductions(t *testing.T) {
	cases := []struct {
		name       string
		weights    []float64
		reductions []float64
		want       float64
	}{
		// Every stage accelerated equally: the composition collapses to
		// that same reduction regardless of the weights.
		{"uniform", []float64{0.25, 0.25, 0.5}, []float64{3, 3, 3}, 3},
		// Hand-computed harmonic mean: 1/(0.4/2 + 0.6/3) = 2.5.
		{"mixed", []float64{0.4, 0.6}, []float64{2, 3}, 2.5},
		// One stage untouched (r=1) holding half the latency caps the
		// end-to-end reduction at 2 even with the other stage infinitely
		// fast — Amdahl's law across tiers.
		{"amdahl cap", []float64{0.5, 0.5}, []float64{1, 1e12}, 2},
		{"single stage", []float64{1}, []float64{4.2}, 4.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ComposeLatencyReductions(tc.weights, tc.reductions)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want)/tc.want > 1e-9 {
				t.Fatalf("composed reduction = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestComposeLatencyReductionsRejects(t *testing.T) {
	cases := []struct {
		name       string
		weights    []float64
		reductions []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{0.5, 0.5}, []float64{2}},
		{"zero weight", []float64{0, 1}, []float64{2, 2}},
		{"negative weight", []float64{-0.5, 1.5}, []float64{2, 2}},
		{"nan weight", []float64{math.NaN(), 1}, []float64{2, 2}},
		{"zero reduction", []float64{0.5, 0.5}, []float64{0, 2}},
		{"nan reduction", []float64{0.5, 0.5}, []float64{math.NaN(), 2}},
		{"weights sum short", []float64{0.3, 0.3}, []float64{2, 2}},
		{"weights sum over", []float64{0.7, 0.7}, []float64{2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got, err := ComposeLatencyReductions(tc.weights, tc.reductions); err == nil {
				t.Fatalf("accepted invalid input, returned %v", got)
			}
		})
	}
}
