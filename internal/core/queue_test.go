package core

import (
	"math"
	"testing"
)

func TestMM1WaitCycles(t *testing.T) {
	// Service 1000 cycles/offload, 500k offloads over 1e9 cycles:
	// λ = 5e-4/cycle, µ = 1e-3/cycle, ρ = 0.5, Wq = 0.5/(1e-3-5e-4) = 1000.
	w, err := MM1WaitCycles(1000, 500000, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1000) > 1e-6 {
		t.Errorf("Wq = %v, want 1000", w)
	}
}

func TestMM1WaitZeroLoad(t *testing.T) {
	w, err := MM1WaitCycles(1000, 0, 1e9)
	if err != nil || w != 0 {
		t.Errorf("zero load: %v, %v", w, err)
	}
}

func TestMM1Overload(t *testing.T) {
	if _, err := MM1WaitCycles(1000, 1000001, 1e9); err == nil {
		t.Error("ρ > 1: want error")
	}
	if _, err := MM1WaitCycles(1000, 1000000, 1e9); err == nil {
		t.Error("ρ = 1: want error")
	}
}

func TestMM1Errors(t *testing.T) {
	if _, err := MM1WaitCycles(0, 1, 1e9); err == nil {
		t.Error("zero service: want error")
	}
	if _, err := MM1WaitCycles(1, -1, 1e9); err == nil {
		t.Error("negative load: want error")
	}
	if _, err := MM1WaitCycles(1, 1, 0); err == nil {
		t.Error("zero unit: want error")
	}
}

func TestMM1WaitGrowsWithLoad(t *testing.T) {
	prev := -1.0
	for _, n := range []float64{1e5, 3e5, 6e5, 9e5} {
		w, err := MM1WaitCycles(1000, n, 1e9)
		if err != nil {
			t.Fatalf("n=%v: %v", n, err)
		}
		if w <= prev {
			t.Errorf("wait did not grow with load at n=%v: %v <= %v", n, w, prev)
		}
		prev = w
	}
}

func TestUtilization(t *testing.T) {
	u, err := Utilization(1000, 500000, 1e9)
	if err != nil || math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization = %v, %v", u, err)
	}
	if _, err := Utilization(0, 1, 1); err == nil {
		t.Error("invalid args: want error")
	}
}

// Replacing n·Q with a queue-sample distribution of the same mean must give
// the same speedup as the closed form.
func TestSpeedupWithQueueSamplesMatchesMean(t *testing.T) {
	p := Params{C: 1e9, Alpha: 0.2, N: 4, O0: 10, L: 100, A: 5, Q: 250}
	m := MustNew(p)
	closed, err := m.Speedup(Sync)
	if err != nil {
		t.Fatal(err)
	}
	// Four samples with mean 250.
	sampled, err := m.SpeedupWithQueueSamples(Sync, []float64{0, 100, 400, 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled-closed) > 1e-12 {
		t.Errorf("sampled %v != closed-form %v", sampled, closed)
	}
}

func TestSpeedupWithQueueSamplesErrors(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.2, N: 4, A: 5})
	if _, err := m.SpeedupWithQueueSamples(Sync, nil); err == nil {
		t.Error("no samples: want error")
	}
	if _, err := m.SpeedupWithQueueSamples(Sync, []float64{-1}); err == nil {
		t.Error("negative sample: want error")
	}
	if _, err := m.SpeedupWithQueueSamples(Sync, []float64{math.NaN()}); err == nil {
		t.Error("NaN sample: want error")
	}
	if _, err := m.SpeedupWithQueueSamples(Threading(99), []float64{1}); err == nil {
		t.Error("unknown threading: want error")
	}
}

// SpeedupUnderLoad must be below the unloaded speedup (queuing only hurts)
// and converge to it as load vanishes.
func TestSpeedupUnderLoad(t *testing.T) {
	p := Params{C: 2.3e9, Alpha: 0.15, N: 9629, L: 2300, A: 27}
	m := MustNew(p)
	unloaded, err := m.Speedup(Sync)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := m.SpeedupUnderLoad(Sync)
	if err != nil {
		t.Fatal(err)
	}
	if !(loaded < unloaded) {
		t.Errorf("loaded %v should be below unloaded %v", loaded, unloaded)
	}
	if (unloaded-loaded)/unloaded > 0.05 {
		t.Errorf("at this light load the queueing penalty should be small: %v vs %v", loaded, unloaded)
	}

	// No kernel work: trivially equal.
	idle := MustNew(Params{C: 1e9, Alpha: 0, N: 0, A: 2})
	s, err := idle.SpeedupUnderLoad(Sync)
	if err != nil || s != 1 {
		t.Errorf("idle loaded speedup = %v, %v", s, err)
	}

	// Ideal accelerator: zero service time, zero queueing.
	ideal := MustNew(Params{C: 1e9, Alpha: 0.5, N: 1000, A: math.Inf(1)})
	li, err := ideal.SpeedupUnderLoad(Sync)
	if err != nil {
		t.Fatal(err)
	}
	ui, _ := ideal.Speedup(Sync)
	if li != ui { //modelcheck:ignore floatcmp — Q=0 must reproduce the ideal model exactly, same arithmetic path
		t.Errorf("ideal accelerator loaded %v != unloaded %v", li, ui)
	}
}

// An overloaded accelerator must surface as an error, not a bogus speedup.
func TestSpeedupUnderLoadOverload(t *testing.T) {
	// Service per offload = αC/(A·n) = 0.9*1e9/(1.01*1000) ≈ 891089 cycles;
	// ρ = n·service/C ≈ 0.891 — fine. Push α and lower A until ρ ≥ 1.
	m := MustNew(Params{C: 1e9, Alpha: 1.0, N: 1000, A: 1})
	if _, err := m.SpeedupUnderLoad(Sync); err == nil {
		t.Error("ρ = 1: want error")
	}
}
