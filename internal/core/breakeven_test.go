package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelValidate(t *testing.T) {
	if err := LinearKernel(5.6).Validate(); err != nil {
		t.Errorf("linear kernel: %v", err)
	}
	bad := []Kernel{
		{Cb: 0, Beta: 1},
		{Cb: -1, Beta: 1},
		{Cb: math.NaN(), Beta: 1},
		{Cb: 1, Beta: 0},
		{Cb: 1, Beta: -1},
		{Cb: 1, Beta: math.Inf(1)},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %+v: want error", k)
		}
	}
}

func TestKernelHostCycles(t *testing.T) {
	k := LinearKernel(2)
	if got := k.HostCycles(100); got != 200 {
		t.Errorf("linear HostCycles(100) = %v", got)
	}
	super := Kernel{Cb: 1, Beta: 2}
	if got := super.HostCycles(10); got != 100 {
		t.Errorf("quadratic HostCycles(10) = %v", got)
	}
	sub := Kernel{Cb: 1, Beta: 0.5}
	if got := sub.HostCycles(100); math.Abs(got-10) > 1e-9 {
		t.Errorf("sqrt HostCycles(100) = %v", got)
	}
}

// §5 compression study: off-chip Sync offload breaks even at g ≥ 425 B with
// L=2300, A=27, Cb=5.6 (eqn 2).
func TestCompressionOffChipBreakEven(t *testing.T) {
	m := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, A: 27})
	k := LinearKernel(5.6)
	g, err := m.BreakEvenThroughputG(Sync, k)
	if err != nil {
		t.Fatal(err)
	}
	if g < 420 || g > 432 {
		t.Errorf("off-chip Sync break-even = %v B, paper reports 425 B", g)
	}

	ok, err := m.OffloadImprovesThroughput(Sync, k, 500)
	if err != nil || !ok {
		t.Errorf("500 B offload should improve speedup: %v, %v", ok, err)
	}
	ok, err = m.OffloadImprovesThroughput(Sync, k, 300)
	if err != nil || ok {
		t.Errorf("300 B offload should not improve speedup: %v, %v", ok, err)
	}
}

// §5: Sync-OS must beat o0+L+Q+2·o1 (eqn 4) — a much larger break-even.
func TestCompressionSyncOSBreakEven(t *testing.T) {
	m := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, O1: 5750, A: 27})
	k := LinearKernel(5.6)
	g, err := m.BreakEvenThroughputG(SyncOS, k)
	if err != nil {
		t.Fatal(err)
	}
	// (2300 + 2*5750)/5.6 = 2464 B.
	if g < 2400 || g > 2530 {
		t.Errorf("Sync-OS break-even = %v B, want ~2464", g)
	}
}

// §5: Async must beat o0+L+Q only (eqn 7): 2300/5.6 ≈ 411 B.
func TestCompressionAsyncBreakEven(t *testing.T) {
	m := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, A: 27})
	k := LinearKernel(5.6)
	g, err := m.BreakEvenThroughputG(AsyncSameThread, k)
	if err != nil {
		t.Fatal(err)
	}
	if g < 405 || g > 415 {
		t.Errorf("Async break-even = %v B, want ~411", g)
	}
	// Async's break-even is below Sync's: the host no longer pays the
	// accelerator's execution time.
	syncG, _ := m.BreakEvenThroughputG(Sync, k)
	if !(g < syncG) {
		t.Errorf("Async break-even %v should be below Sync %v", g, syncG)
	}
}

// §4 case study 1: AES-NI breaks even at tiny granularities; Cache1's
// encryptions (all ≥ 4 B) therefore all profit.
func TestAESNIBreakEvenTiny(t *testing.T) {
	m := MustNew(Params{C: 2.0e9, Alpha: 0.165844, N: 298951, O0: 10, L: 3, A: 6})
	k := LinearKernel(5.5)
	g, err := m.BreakEvenThroughputG(Sync, k)
	if err != nil {
		t.Fatal(err)
	}
	if g > 4 {
		t.Errorf("AES-NI break-even = %v B, want ≤ 4 (paper: all ≥4 B offloads profit)", g)
	}
	ok, err := m.OffloadImprovesThroughput(Sync, k, 4)
	if err != nil || !ok {
		t.Errorf("4 B AES offload should profit: %v, %v", ok, err)
	}
}

// On-chip acceleration with no offload overhead profits at any size ≥ 1 B.
func TestOnChipBreakEvenIsOneByte(t *testing.T) {
	m := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, A: 5})
	g, err := m.BreakEvenThroughputG(Sync, LinearKernel(5.6))
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Errorf("zero-overhead break-even = %v, want 1", g)
	}
}

// A Sync offload to an A=1 accelerator can never improve throughput.
func TestSyncNeverProfitsAtAEqualsOne(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.3, N: 100, L: 100, A: 1})
	g, err := m.BreakEvenThroughputG(Sync, LinearKernel(2))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g, 1) {
		t.Errorf("Sync A=1 break-even = %v, want +Inf", g)
	}
	ok, err := m.OffloadImprovesThroughput(Sync, LinearKernel(2), 1<<20)
	if err != nil || ok {
		t.Errorf("huge Sync offload at A=1 should not profit: %v, %v", ok, err)
	}
	// But an Async offload to the same device can still profit — the whole
	// point of modeling threading designs (case study 3's remote CPU).
	g, err = m.BreakEvenThroughputG(AsyncSameThread, LinearKernel(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(g, 1) {
		t.Error("Async break-even should be finite at A=1")
	}
}

func TestBreakEvenLatency(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.3, N: 100, L: 1000, O1: 500, A: 10})
	k := LinearKernel(2)

	// Latency path for Sync-OS includes one o1: (1000+500)/(2*0.9)=833.
	g, err := m.BreakEvenLatencyG(SyncOS, OffChip, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1500/(2*0.9)) > 1 {
		t.Errorf("Sync-OS latency break-even = %v, want ~833", g)
	}

	// Sync latency path has no o1: 1000/(2*0.9) = 556.
	g, err = m.BreakEvenLatencyG(Sync, OffChip, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1000/(2*0.9)) > 1 {
		t.Errorf("Sync latency break-even = %v, want ~556", g)
	}

	// A=1 off-chip: latency can never improve.
	m1 := MustNew(Params{C: 1e9, Alpha: 0.3, N: 100, L: 1000, A: 1})
	g, err = m1.BreakEvenLatencyG(AsyncSameThread, OffChip, k)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g, 1) {
		t.Errorf("A=1 off-chip latency break-even = %v, want +Inf", g)
	}

	// A=1 remote response-free: accelerator cycles leave the request path,
	// so latency improves once the host-side work beats the overhead.
	g, err = m1.BreakEvenLatencyG(AsyncNoResponse, Remote, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(g, 1) || g > 501 {
		t.Errorf("remote no-response latency break-even = %v, want ~500", g)
	}
}

func TestBreakEvenErrors(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.3, N: 100, A: 2})
	if _, err := m.BreakEvenThroughputG(Threading(99), LinearKernel(1)); err == nil {
		t.Error("unknown threading: want error")
	}
	if _, err := m.BreakEvenThroughputG(Sync, Kernel{}); err == nil {
		t.Error("invalid kernel: want error")
	}
	if _, err := m.BreakEvenLatencyG(Sync, Strategy(99), LinearKernel(1)); err == nil {
		t.Error("unknown strategy: want error")
	}
	if _, err := m.BreakEvenLatencyG(Threading(99), OnChip, LinearKernel(1)); err == nil {
		t.Error("unknown threading latency: want error")
	}
	if _, err := m.BreakEvenLatencyG(Sync, OnChip, Kernel{}); err == nil {
		t.Error("invalid kernel latency: want error")
	}
	if _, err := m.OffloadImprovesThroughput(Threading(99), LinearKernel(1), 10); err == nil {
		t.Error("unknown threading improves: want error")
	}
	if _, err := m.OffloadImprovesThroughput(Sync, Kernel{}, 10); err == nil {
		t.Error("invalid kernel improves: want error")
	}
	if _, err := m.OffloadReducesLatency(Threading(99), LinearKernel(1), 10); err == nil {
		t.Error("unknown threading reduces: want error")
	}
	if _, err := m.OffloadReducesLatency(Sync, Kernel{}, 10); err == nil {
		t.Error("invalid kernel reduces: want error")
	}
}

// Property: any offload strictly above the break-even size improves
// throughput, and any strictly below does not (linear kernels).
func TestBreakEvenConsistency(t *testing.T) {
	f := func(cbRaw, lRaw, o1Raw uint16, thIdx uint8) bool {
		cb := 0.5 + float64(cbRaw%100)/10 // 0.5..10.4
		l := float64(lRaw % 10000)
		o1 := float64(o1Raw % 5000)
		th := Threadings[int(thIdx)%len(Threadings)]
		m := MustNew(Params{C: 1e9, Alpha: 0.2, N: 1000, L: l, O1: o1, A: 8})
		k := LinearKernel(cb)
		g, err := m.BreakEvenThroughputG(th, k)
		if err != nil || math.IsInf(g, 1) {
			return err == nil
		}
		above := uint64(math.Ceil(g)) + 1
		below := uint64(math.Floor(g))
		okAbove, err := m.OffloadImprovesThroughput(th, k, above)
		if err != nil || !okAbove {
			return false
		}
		if below >= 1 {
			okBelow, err := m.OffloadImprovesThroughput(th, k, below-0)
			if err != nil {
				return false
			}
			// Exactly at or below break-even must not improve.
			if float64(below) < g && okBelow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: super-linear kernels have smaller break-even sizes than linear
// ones with the same Cb (they amass host cycles faster).
func TestBetaShrinksBreakEven(t *testing.T) {
	m := MustNew(Params{C: 1e9, Alpha: 0.2, N: 1000, L: 5000, A: 10})
	linear, err := m.BreakEvenThroughputG(AsyncSameThread, Kernel{Cb: 2, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	super, err := m.BreakEvenThroughputG(AsyncSameThread, Kernel{Cb: 2, Beta: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !(super < linear) {
		t.Errorf("super-linear break-even %v should be below linear %v", super, linear)
	}
}
