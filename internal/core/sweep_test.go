package core

import (
	"math"
	"testing"
)

func sweepModel() *Model {
	return MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 15008, L: 2300, O1: 5750, A: 27})
}

func TestSweepParamString(t *testing.T) {
	names := map[SweepParam]string{
		SweepA: "A", SweepL: "L", SweepQ: "Q",
		SweepO1: "o1", SweepAlpha: "alpha", SweepN: "n",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if SweepParam(99).String() == "" {
		t.Error("unknown param must render")
	}
}

func TestSweepA(t *testing.T) {
	m := sweepModel()
	pts, err := m.Sweep(SweepA, Sync, OffChip, []float64{1, 2, 5, 27, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Errorf("Sync speedup must grow with A: %v then %v", pts[i-1], pts[i])
		}
	}
	// A=27 point must match the direct model.
	want, _ := m.Speedup(Sync)
	if math.Abs(pts[3].Speedup-want) > 1e-12 {
		t.Errorf("sweep at A=27 = %v, direct = %v", pts[3].Speedup, want)
	}
}

func TestSweepLDegrades(t *testing.T) {
	m := sweepModel()
	pts, err := m.Sweep(SweepL, AsyncSameThread, OffChip, []float64{0, 1000, 5000, 20000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup >= pts[i-1].Speedup {
			t.Errorf("speedup must fall with L: %v then %v", pts[i-1], pts[i])
		}
	}
}

func TestSweepErrors(t *testing.T) {
	m := sweepModel()
	if _, err := m.Sweep(SweepA, Sync, OffChip, nil); err == nil {
		t.Error("empty sweep: want error")
	}
	if _, err := m.Sweep(SweepParam(99), Sync, OffChip, []float64{1}); err == nil {
		t.Error("unknown param: want error")
	}
	if _, err := m.Sweep(SweepA, Sync, OffChip, []float64{0.5}); err == nil {
		t.Error("invalid A value: want error")
	}
	if _, err := m.Sweep(SweepAlpha, Threading(99), OnChip, []float64{0.1}); err == nil {
		t.Error("unknown threading: want error")
	}
}

func TestMinimumA(t *testing.T) {
	m := sweepModel()

	// Target below 1 is free.
	a, err := m.MinimumA(Sync, 0.9)
	if err != nil || a != 1 {
		t.Errorf("trivial target: %v, %v", a, err)
	}

	// A modest target: find A, then verify it achieves the target.
	a, err = m.MinimumA(Sync, 1.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(a, 1) {
		t.Fatal("10% should be achievable")
	}
	p := m.Params()
	p.A = a
	got, _ := MustNew(p).Speedup(Sync)
	if math.Abs(got-1.10) > 1e-9 {
		t.Errorf("speedup at MinimumA = %v, want 1.10", got)
	}

	// Beyond the Amdahl+overhead bound: impossible.
	a, err = m.MinimumA(Sync, 1.50)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a, 1) {
		t.Errorf("50%% exceeds the bound; got A = %v", a)
	}

	// Async throughput ignores A: target achievable at A=1 or never.
	a, err = m.MinimumA(AsyncSameThread, 1.10)
	if err != nil || a != 1 {
		t.Errorf("async 10%%: %v, %v", a, err)
	}
	a, err = m.MinimumA(AsyncSameThread, 1.50)
	if err != nil || !math.IsInf(a, 1) {
		t.Errorf("async 50%%: %v, %v", a, err)
	}
}

func TestMaximumL(t *testing.T) {
	m := sweepModel()
	budget, err := m.MaximumL(AsyncSameThread, 1.10)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 || math.IsInf(budget, 1) {
		t.Fatalf("L budget = %v", budget)
	}
	// At exactly the budget the target is met.
	p := m.Params()
	p.L = budget
	got, _ := MustNew(p).Speedup(AsyncSameThread)
	if math.Abs(got-1.10) > 1e-9 {
		t.Errorf("speedup at MaximumL = %v, want 1.10", got)
	}
	// Just above it, missed.
	p.L = budget * 1.01
	got, _ = MustNew(p).Speedup(AsyncSameThread)
	if got >= 1.10 {
		t.Errorf("speedup above budget = %v, should miss target", got)
	}

	// Unreachable even at L=0.
	zero, err := m.MaximumL(AsyncSameThread, 1.50)
	if err != nil || zero != 0 {
		t.Errorf("unreachable target: %v, %v", zero, err)
	}
	// Trivial target: unlimited.
	inf, err := m.MaximumL(Sync, 1.0)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("trivial target: %v, %v", inf, err)
	}
}

func TestSensitivitySigns(t *testing.T) {
	m := sweepModel()
	sA, err := m.Sensitivity(SweepA, Sync)
	if err != nil {
		t.Fatal(err)
	}
	if sA <= 0 {
		t.Errorf("d(speedup)/dA = %v, want positive", sA)
	}
	sL, err := m.Sensitivity(SweepL, Sync)
	if err != nil {
		t.Fatal(err)
	}
	if sL >= 0 {
		t.Errorf("d(speedup)/dL = %v, want negative", sL)
	}
	sAlpha, err := m.Sensitivity(SweepAlpha, Sync)
	if err != nil {
		t.Fatal(err)
	}
	if sAlpha <= 0 {
		t.Errorf("d(speedup)/dalpha = %v, want positive (more kernel, more to save)", sAlpha)
	}
	if _, err := m.Sensitivity(SweepParam(99), Sync); err == nil {
		t.Error("unknown param: want error")
	}
	// Q is zero in this model; sensitivity must still evaluate.
	if _, err := m.Sensitivity(SweepQ, Sync); err != nil {
		t.Errorf("zero-Q sensitivity: %v", err)
	}
}

// For Sync at Table 7's compression point, A is nearly saturated (27x on a
// 15% kernel): the interface cost L must matter more than A per 1% change.
func TestSensitivityOrdering(t *testing.T) {
	m := sweepModel()
	sA, _ := m.Sensitivity(SweepA, Sync)
	sL, _ := m.Sensitivity(SweepL, Sync)
	if math.Abs(sL) <= math.Abs(sA) {
		t.Errorf("at A=27 the design is interface-bound: |dL| (%v) should exceed |dA| (%v)",
			math.Abs(sL), math.Abs(sA))
	}
}

func TestCombinedOffloadValidate(t *testing.T) {
	good := CombinedOffload{
		C: 2.3e9, N: 9629, L: 2300,
		Kernels: []KernelShare{
			{Name: "compression", Alpha: 0.10, A: 27},
			{Name: "encryption", Alpha: 0.08, A: 20},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid combined rejected: %v", err)
	}
	bad := good
	bad.Kernels = nil
	if err := bad.Validate(); err == nil {
		t.Error("no kernels: want error")
	}
	bad = good
	bad.Kernels = []KernelShare{{Alpha: 0.6, A: 2}, {Alpha: 0.6, A: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("alphas over 1: want error")
	}
	bad = good
	bad.Kernels = []KernelShare{{Alpha: 0.1, A: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("A < 1: want error")
	}
	bad = good
	bad.C = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero C: want error")
	}
	bad = good
	bad.L = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative L: want error")
	}
}

// The paper's suggestion: combining compression and encryption on one
// off-chip device must beat offloading them separately, because the
// dispatch overhead is paid once instead of twice.
func TestCombinedBeatsSeparate(t *testing.T) {
	c := CombinedOffload{
		C: 2.3e9, N: 9629, O0: 100, L: 2300, O1: 5750,
		Kernels: []KernelShare{
			{Name: "compression", Alpha: 0.10, A: 27},
			{Name: "encryption", Alpha: 0.08, A: 20},
		},
	}
	for _, th := range Threadings {
		gain, err := c.CombinationGain(th)
		if err != nil {
			t.Fatalf("%v: %v", th, err)
		}
		if gain <= 1 {
			t.Errorf("%v: combination gain = %v, want > 1", th, gain)
		}
	}
}

// With a single kernel, combined and separate are identical.
func TestCombinedSingleKernelNeutral(t *testing.T) {
	c := CombinedOffload{
		C: 2.3e9, N: 9629, L: 2300,
		Kernels: []KernelShare{{Name: "compression", Alpha: 0.15, A: 27}},
	}
	for _, th := range Threadings {
		gain, err := c.CombinationGain(th)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gain-1) > 1e-12 {
			t.Errorf("%v: single-kernel gain = %v, want exactly 1", th, gain)
		}
	}
}

// A combined Sync offload must match the plain model when expressed as one
// aggregate kernel with a harmonic-mixed A.
func TestCombinedMatchesPlainModelSync(t *testing.T) {
	c := CombinedOffload{
		C: 2.3e9, N: 9629, L: 2300,
		Kernels: []KernelShare{
			{Name: "a", Alpha: 0.10, A: 10},
			{Name: "b", Alpha: 0.05, A: 10},
		},
	}
	got, err := c.Speedup(Sync)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustNew(Params{C: 2.3e9, Alpha: 0.15, N: 9629, L: 2300, A: 10}).Speedup(Sync)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("combined %v != aggregate %v", got, want)
	}
}

func TestCombinedUnknownThreading(t *testing.T) {
	c := CombinedOffload{
		C: 1e9, N: 10, Kernels: []KernelShare{{Alpha: 0.1, A: 2}},
	}
	if _, err := c.Speedup(Threading(99)); err == nil {
		t.Error("unknown threading: want error")
	}
	if _, err := c.SeparateSpeedup(Threading(99)); err == nil {
		t.Error("unknown threading separate: want error")
	}
	if _, err := c.CombinationGain(Threading(99)); err == nil {
		t.Error("unknown threading gain: want error")
	}
}

func TestCombinedIdealKernel(t *testing.T) {
	c := CombinedOffload{
		C: 1e9, N: 100, L: 50,
		Kernels: []KernelShare{{Name: "x", Alpha: 0.3, A: math.Inf(1)}},
	}
	s, err := c.Speedup(Sync)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.7 + 100.0*50/1e9)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("ideal combined = %v, want %v", s, want)
	}
}
