package core

import (
	"fmt"
	"math"
)

// Batched-offload variant of the Accelerometer model. The granularity CDFs
// of §2.4 show most offload candidates carry payloads far below the
// break-even size g from equations (2)/(4)/(7): the fixed per-offload
// interface cost (o0 + L, plus queuing and any switch charges) dominates
// the kernel cycles the accelerator saves. Coalescing b such offloads into
// one batched exchange leaves the kernel work α·C and the per-byte
// payload movement unchanged, but pays the fixed costs once per batch:
// the effective granularity of an offload event becomes the batch's
// summed payload (g' = Σ g_i) while the per-request amortized overhead
// falls to (o0 + Q + o1)/b — equivalently, the same n offloads per time
// unit each cost 1/b of the fixed overheads. Both views yield the same
// equations; this file takes the amortized-overhead form so the existing
// Speedup/LatencyReduction/break-even machinery applies unchanged.
//
// The mirror of this in the measured system is rpc.Batcher: one envelope
// frame carries b messages through serialization, compression, encryption,
// framing, and the network round trip.

// ValidateBatch checks a batch factor: finite and at least 1 (b = 1 is the
// unbatched model).
func ValidateBatch(b float64) error {
	if math.IsNaN(b) || math.IsInf(b, 0) || b < 1 {
		return fmt.Errorf("core: batch factor = %v, want finite >= 1", b)
	}
	return nil
}

// Batched returns the model with per-offload fixed costs amortized over
// batches of b offloads: O0, L, Q, and O1 each fall to 1/b of their
// unbatched value while C, Alpha, N, and A are untouched. L is included
// because the per-offload interface transfer's fixed portion (descriptor
// setup, doorbell, cache-line round trips) batches away; a payload-
// proportional L component should be folded into the kernel instead.
func (m *Model) Batched(b float64) (*Model, error) {
	if err := ValidateBatch(b); err != nil {
		return nil, err
	}
	p := m.p
	p.O0 /= b
	p.L /= b
	p.Q /= b
	p.O1 /= b
	return New(p)
}

// BatchSpeedupGain returns the ratio of batched to unbatched throughput
// speedup for the threading design — the additional factor batching buys
// on top of acceleration alone. It exceeds 1 whenever fixed overheads are
// nonzero and b > 1.
func (m *Model) BatchSpeedupGain(t Threading, b float64) (float64, error) {
	batched, err := m.Batched(b)
	if err != nil {
		return 0, err
	}
	unb, err := m.Speedup(t)
	if err != nil {
		return 0, err
	}
	bat, err := batched.Speedup(t)
	if err != nil {
		return 0, err
	}
	return bat / unb, nil
}

// BatchLatencyGain returns the ratio of batched to unbatched latency
// reduction for the threading design and strategy. Note batching trades
// linger time for this gain: the model captures only the cycle
// accounting, not the queueing delay a caller spends waiting for its
// batch to fill.
func (m *Model) BatchLatencyGain(t Threading, s Strategy, b float64) (float64, error) {
	batched, err := m.Batched(b)
	if err != nil {
		return 0, err
	}
	unb, err := m.LatencyReduction(t, s)
	if err != nil {
		return 0, err
	}
	bat, err := batched.LatencyReduction(t, s)
	if err != nil {
		return 0, err
	}
	return bat / unb, nil
}

// BatchedBreakEvenThroughputG returns the smallest per-request offload
// size that improves throughput when requests ride in batches of b — the
// amortized counterpart of BreakEvenThroughputG. Batching divides the
// fixed overhead each request must beat by b, so the break-even size
// shrinks roughly by b^(1/β): small-payload offloads that equations
// (2)/(4)/(7) reject become profitable inside a batch.
func (m *Model) BatchedBreakEvenThroughputG(t Threading, k Kernel, b float64) (float64, error) {
	batched, err := m.Batched(b)
	if err != nil {
		return 0, err
	}
	return batched.BreakEvenThroughputG(t, k)
}

// BatchedBreakEvenLatencyG is the amortized counterpart of
// BreakEvenLatencyG.
func (m *Model) BatchedBreakEvenLatencyG(t Threading, s Strategy, k Kernel, b float64) (float64, error) {
	batched, err := m.Batched(b)
	if err != nil {
		return 0, err
	}
	return batched.BreakEvenLatencyG(t, s, k)
}
