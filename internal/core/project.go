package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Workload describes the unfiltered kernel workload of a microservice: the
// host's total cycles, the kernel's share of them, how many kernel
// invocations occur per time unit, and the invocation-size distribution.
// It is the input to Project, which applies the paper's five-step
// validation methodology (§4): find the profitable granularities, scale n
// and α down to just those offloads, and evaluate the model.
type Workload struct {
	C          float64   // total host cycles per time unit
	KernelFrac float64   // fraction of host cycles in the kernel (unfiltered α)
	Invocation float64   // kernel invocations per time unit (unfiltered n)
	Sizes      *dist.CDF // invocation-size distribution
}

// Validate checks the workload.
func (w Workload) Validate() error {
	switch {
	case !(w.C > 0) || math.IsInf(w.C, 0):
		return fmt.Errorf("core: workload C = %v, want finite > 0", w.C)
	case math.IsNaN(w.KernelFrac) || w.KernelFrac < 0 || w.KernelFrac > 1:
		return fmt.Errorf("core: workload kernel fraction = %v, want within [0,1]", w.KernelFrac)
	case math.IsNaN(w.Invocation) || w.Invocation < 0 || math.IsInf(w.Invocation, 0):
		return fmt.Errorf("core: workload invocations = %v, want finite >= 0", w.Invocation)
	case w.Sizes == nil:
		return fmt.Errorf("core: workload has no size distribution")
	}
	return nil
}

// AlphaWeighting selects how the kernel-cycle fraction α is scaled down
// when only a subset of invocations is offloaded.
type AlphaWeighting int

const (
	// WeightByInvocations scales α by the fraction of invocations
	// offloaded — the convention the paper's application studies use
	// (it reproduces Fig 20 exactly) — implicitly assuming kernel cycles
	// are uniform across invocations.
	WeightByInvocations AlphaWeighting = iota
	// WeightByBytes scales α by the fraction of kernel *bytes* carried by
	// the offloaded invocations, which is exact for linear-complexity
	// kernels: large offloads hold proportionally more kernel cycles.
	// Under this weighting, selective offload never projects below
	// offload-all (see the ablation bench).
	WeightByBytes
)

// String names the weighting.
func (w AlphaWeighting) String() string {
	switch w {
	case WeightByInvocations:
		return "by-invocations"
	case WeightByBytes:
		return "by-bytes"
	default:
		return fmt.Sprintf("AlphaWeighting(%d)", int(w))
	}
}

// Offload describes the accelerator and its interface for a projection.
type Offload struct {
	Strategy Strategy
	Thread   Threading
	A        float64 // peak accelerator speedup
	O0       float64 // setup cycles per offload
	L        float64 // interface cycles per offload
	Q        float64 // queuing cycles per offload
	O1       float64 // thread-switch cycles
	// SelectiveOffload controls whether software offloads only profitable
	// granularities (the paper's default assumption in §4) or all
	// invocations (case study 2's infrastructure could not filter).
	SelectiveOffload bool
	// Weighting selects how α scales with the offloaded subset; the zero
	// value is the paper's invocation-count convention.
	Weighting AlphaWeighting
}

// Projection is the result of applying the model to a workload.
type Projection struct {
	Params Params // the effective, filtered model parameters

	// BreakEvenG is the smallest profitable offload size in bytes
	// (equations 2/4/7); 0 when every size profits, +Inf when none does.
	BreakEvenG float64
	// OffloadedFraction is the fraction of kernel invocations at or above
	// BreakEvenG (1 when offloading is unselective).
	OffloadedFraction float64

	Speedup          float64 // throughput speedup C/CS
	LatencyReduction float64 // per-request latency speedup C/CL
	IdealSpeedup     float64 // Amdahl bound 1/(1-unfiltered α)
}

// SpeedupPercent returns the projected throughput gain in percent.
func (pr Projection) SpeedupPercent() float64 { return (pr.Speedup - 1) * 100 }

// LatencyReductionPercent returns the projected latency gain in percent.
func (pr Projection) LatencyReductionPercent() float64 {
	return (pr.LatencyReduction - 1) * 100
}

// Project applies the Accelerometer model to a workload: it determines the
// break-even granularity for the offload design, restricts n and α to the
// profitable offloads (scaling α by the offloaded invocation fraction, as
// the paper's application studies do), and evaluates speedup and latency
// reduction.
func Project(w Workload, k Kernel, off Offload) (Projection, error) {
	if err := w.Validate(); err != nil {
		return Projection{}, err
	}
	if err := k.Validate(); err != nil {
		return Projection{}, err
	}

	// Build a trial model carrying the offload's overheads so the
	// break-even machinery can interrogate it. Alpha/N are placeholders at
	// this stage.
	trial, err := New(Params{
		C: w.C, Alpha: w.KernelFrac, N: w.Invocation,
		O0: off.O0, L: off.L, Q: off.Q, O1: off.O1, A: off.A,
	})
	if err != nil {
		return Projection{}, err
	}

	breakEven := 0.0
	fraction := 1.0      // fraction of invocations offloaded
	alphaFraction := 1.0 // fraction of kernel cycles offloaded
	if off.SelectiveOffload {
		be, err := trial.BreakEvenThroughputG(off.Thread, k)
		if err != nil {
			return Projection{}, err
		}
		breakEven = be
		switch {
		case math.IsInf(be, 1):
			fraction, alphaFraction = 0, 0
		case be <= 0:
			fraction, alphaFraction = 1, 1
		default:
			g := uint64(math.Ceil(be))
			fraction = w.Sizes.FractionAtLeast(g)
			switch off.Weighting {
			case WeightByBytes:
				alphaFraction = w.Sizes.ByteFractionAtLeast(g)
			default:
				alphaFraction = fraction
			}
		}
	}

	eff := Params{
		C:     w.C,
		Alpha: w.KernelFrac * alphaFraction,
		N:     w.Invocation * fraction,
		O0:    off.O0, L: off.L, Q: off.Q, O1: off.O1, A: off.A,
	}
	m, err := New(eff)
	if err != nil {
		return Projection{}, err
	}
	speedup, err := m.Speedup(off.Thread)
	if err != nil {
		return Projection{}, err
	}
	latency, err := m.LatencyReduction(off.Thread, off.Strategy)
	if err != nil {
		return Projection{}, err
	}

	ideal := math.Inf(1)
	if w.KernelFrac < 1 {
		ideal = 1 / (1 - w.KernelFrac)
	}
	return Projection{
		Params:            eff,
		BreakEvenG:        breakEven,
		OffloadedFraction: fraction,
		Speedup:           speedup,
		LatencyReduction:  latency,
		IdealSpeedup:      ideal,
	}, nil
}

// CompareStrategies projects the same workload across a set of offload
// designs and returns the projections in input order — the workflow behind
// Fig 20's on-chip vs off-chip comparison.
func CompareStrategies(w Workload, k Kernel, offs []Offload) ([]Projection, error) {
	out := make([]Projection, len(offs))
	for i, off := range offs {
		pr, err := Project(w, k, off)
		if err != nil {
			return nil, fmt.Errorf("core: projecting design %d (%v/%v): %w",
				i, off.Strategy, off.Thread, err)
		}
		out[i] = pr
	}
	return out, nil
}
