package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// Uncertainty analysis. The paper motivates Accelerometer with the
// uncertainty inherent in capacity planning: "given the uncertainties
// inherent in projecting customer demand, deploying diverse custom
// hardware is risky at scale". This file quantifies that risk: jitter the
// model's parameters within stated tolerances, Monte-Carlo the speedup,
// and report its distribution — so an operator sees not just the point
// estimate but how badly a deployment can miss it.

// Jitter states relative uncertainties for each parameter as fractions
// (0.1 = ±10%, sampled uniformly). Zero fields are held exact.
type Jitter struct {
	Alpha float64
	N     float64
	O0    float64
	Q     float64
	L     float64
	O1    float64
	A     float64
}

// Validate checks the jitter fractions.
func (j Jitter) Validate() error {
	for name, v := range map[string]float64{
		"Alpha": j.Alpha, "N": j.N, "O0": j.O0, "Q": j.Q,
		"L": j.L, "O1": j.O1, "A": j.A,
	} {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			return fmt.Errorf("core: jitter %s = %v, want within [0, 1)", name, v)
		}
	}
	return nil
}

// UncertaintyResult summarizes the Monte-Carlo speedup distribution.
type UncertaintyResult struct {
	Samples      int
	Point        float64 // the un-jittered estimate
	Mean         float64
	P5           float64 // pessimistic bound (5th percentile)
	P50          float64
	P95          float64 // optimistic bound (95th percentile)
	RiskBelowOne float64 // fraction of samples where the deployment loses
}

// MonteCarlo evaluates the threading design's speedup over n parameter
// samples drawn uniformly within the jitter tolerances.
func (m *Model) MonteCarlo(th Threading, j Jitter, n int, rng *dist.Rand) (UncertaintyResult, error) {
	if err := j.Validate(); err != nil {
		return UncertaintyResult{}, err
	}
	if n < 2 {
		return UncertaintyResult{}, fmt.Errorf("core: Monte Carlo needs >= 2 samples, got %d", n)
	}
	if rng == nil {
		return UncertaintyResult{}, fmt.Errorf("core: nil random source")
	}
	point, err := m.Speedup(th)
	if err != nil {
		return UncertaintyResult{}, err
	}

	perturb := func(v, frac float64) float64 {
		if frac <= 0 {
			return v
		}
		return v * (1 + frac*(2*rng.Float64()-1))
	}
	speedups := make([]float64, 0, n)
	losses := 0
	for i := 0; i < n; i++ {
		p := m.p
		p.Alpha = clamp01(perturb(p.Alpha, j.Alpha))
		p.N = perturb(p.N, j.N)
		p.O0 = perturb(p.O0, j.O0)
		p.Q = perturb(p.Q, j.Q)
		p.L = perturb(p.L, j.L)
		p.O1 = perturb(p.O1, j.O1)
		if !math.IsInf(p.A, 1) {
			p.A = perturb(p.A, j.A)
			if p.A < 1 {
				p.A = 1
			}
		}
		sub, err := New(p)
		if err != nil {
			return UncertaintyResult{}, fmt.Errorf("core: sample %d: %w", i, err)
		}
		s, err := sub.Speedup(th)
		if err != nil {
			return UncertaintyResult{}, err
		}
		speedups = append(speedups, s)
		if s < 1 {
			losses++
		}
	}

	summary, err := dist.Summarize(speedups)
	if err != nil {
		return UncertaintyResult{}, err
	}
	p5 := percentile(speedups, 0.05)
	return UncertaintyResult{
		Samples:      n,
		Point:        point,
		Mean:         summary.Mean,
		P5:           p5,
		P50:          summary.P50,
		P95:          summary.P95,
		RiskBelowOne: float64(losses) / float64(n),
	}, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// percentile computes the p-quantile of an unsorted sample (copying it),
// with linear interpolation between ranks.
func percentile(sample []float64, p float64) float64 {
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
