package core

import (
	"fmt"
	"math"
)

// Queuing support. Equation (1) uses n·Q — the mean queuing delay across n
// offloads — and the paper notes that replacing n·Q with ΣQi models the
// full queuing distribution, enabling projections that depend on
// accelerator load. This file provides both: an M/M/1 helper to derive a
// mean Q from accelerator utilization, and per-sample evaluation for
// empirically observed queue delays.

// MM1WaitCycles returns the mean queue wait (in cycles) of an M/M/1 queue
// given the accelerator's per-offload service time in cycles and the
// offered load λ in offloads per time unit over a time unit of unitCycles
// host cycles: Wq = ρ/(μ−λ) with μ = 1/service. It returns an error when
// utilization reaches or exceeds 1 (an overloaded accelerator has no
// steady-state wait).
func MM1WaitCycles(serviceCycles, offloadsPerUnit, unitCycles float64) (float64, error) {
	if serviceCycles <= 0 || offloadsPerUnit < 0 || unitCycles <= 0 {
		return 0, fmt.Errorf("core: invalid M/M/1 args (service=%v n=%v unit=%v)",
			serviceCycles, offloadsPerUnit, unitCycles)
	}
	if offloadsPerUnit <= 0 {
		return 0, nil
	}
	// Work in cycles: arrivals per cycle λc, service rate per cycle μc.
	lambda := offloadsPerUnit / unitCycles
	mu := 1 / serviceCycles
	rho := lambda / mu
	if rho >= 1 {
		return 0, fmt.Errorf("core: accelerator overloaded (utilization %.3f >= 1)", rho)
	}
	return rho / (mu - lambda), nil
}

// Utilization returns the accelerator utilization ρ for a given per-offload
// service time and offered load over a time unit.
func Utilization(serviceCycles, offloadsPerUnit, unitCycles float64) (float64, error) {
	if serviceCycles <= 0 || offloadsPerUnit < 0 || unitCycles <= 0 {
		return 0, fmt.Errorf("core: invalid utilization args (service=%v n=%v unit=%v)",
			serviceCycles, offloadsPerUnit, unitCycles)
	}
	return serviceCycles * offloadsPerUnit / unitCycles, nil
}

// SpeedupWithQueueSamples evaluates the threading design's speedup using an
// empirical queuing distribution: the n·Q term of the equations is replaced
// by the sum of the per-offload queue delays ΣQi (§3). The number of
// samples overrides the model's N for the offload-overhead terms.
func (m *Model) SpeedupWithQueueSamples(t Threading, queueCycles []float64) (float64, error) {
	if len(queueCycles) == 0 {
		return 0, fmt.Errorf("core: no queue samples")
	}
	var sum float64
	for i, q := range queueCycles {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return 0, fmt.Errorf("core: invalid queue sample %v at %d", q, i)
		}
		sum += q
	}
	p := m.p
	p.N = float64(len(queueCycles))
	p.Q = sum / float64(len(queueCycles))
	sub, err := New(p)
	if err != nil {
		return 0, err
	}
	return sub.Speedup(t)
}

// SpeedupUnderLoad projects speedup as a function of accelerator load: it
// derives the queuing delay Q from an M/M/1 model of the accelerator whose
// per-offload service time is the accelerated kernel cost αC/(A·n), then
// evaluates the threading design. This is the "projecting speedup based on
// accelerator load" use case of §3.
func (m *Model) SpeedupUnderLoad(t Threading) (float64, error) {
	p := m.p
	if p.N <= 0 || p.Alpha <= 0 {
		return m.Speedup(t)
	}
	service := p.Alpha * p.C / p.A / p.N
	if math.IsInf(p.A, 1) {
		service = 0
	}
	if service <= 0 {
		return m.Speedup(t)
	}
	q, err := MM1WaitCycles(service, p.N, p.C)
	if err != nil {
		return 0, err
	}
	p.Q = q
	loaded, err := New(p)
	if err != nil {
		return 0, err
	}
	return loaded.Speedup(t)
}
