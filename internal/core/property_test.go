package core

import (
	"math"
	"testing"
	"testing/quick"
)

// randomParams maps arbitrary raw integers onto a valid parameter space.
func randomParams(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw uint32) Params {
	c := 1e8 + float64(cRaw%90)*1e8        // 1e8 .. 9.1e9
	alpha := float64(alphaRaw%1000) / 1000 // 0 .. 0.999
	n := float64(nRaw % 1000000)           // 0 .. 1e6
	o0 := float64(o0Raw % 10000)           // 0 .. 1e4
	q := float64(qRaw % 10000)             // 0 .. 1e4
	l := float64(lRaw % 100000)            // 0 .. 1e5
	o1 := float64(o1Raw % 50000)           // 0 .. 5e4
	a := 1 + float64(aRaw%1000)/10         // 1 .. 101
	return Params{C: c, Alpha: alpha, N: n, O0: o0, Q: q, L: l, O1: o1, A: a}
}

// Property: the implementation matches the paper's equations written out
// verbatim for every threading design.
func TestEquationsMatchPaper(t *testing.T) {
	f := func(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw uint32) bool {
		p := randomParams(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw)
		m, err := New(p)
		if err != nil {
			return false
		}
		over := p.N / p.C * (p.O0 + p.L + p.Q)
		eq := func(got, want float64) bool {
			return math.Abs(got-want) <= 1e-9*math.Abs(want)
		}

		s, err := m.Speedup(Sync)
		if err != nil || !eq(s, 1/((1-p.Alpha)+p.Alpha/p.A+over)) {
			return false // eqn (1)
		}
		s, err = m.Speedup(SyncOS)
		if err != nil || !eq(s, 1/((1-p.Alpha)+over+p.N/p.C*2*p.O1)) {
			return false // eqn (3)
		}
		s, err = m.Speedup(AsyncSameThread)
		if err != nil || !eq(s, 1/((1-p.Alpha)+over)) {
			return false // eqn (6)
		}
		s, err = m.Speedup(AsyncDistinctThread)
		if err != nil || !eq(s, 1/((1-p.Alpha)+over+p.N/p.C*p.O1)) {
			return false // eqn (3) with one o1
		}

		l, err := m.LatencyReduction(SyncOS, OffChip)
		if err != nil || !eq(l, 1/((1-p.Alpha)+p.Alpha/p.A+over+p.N/p.C*p.O1)) {
			return false // eqn (5)
		}
		l, err = m.LatencyReduction(AsyncSameThread, OffChip)
		if err != nil || !eq(l, 1/((1-p.Alpha)+p.Alpha/p.A+over)) {
			return false // eqn (8)
		}
		l, err = m.LatencyReduction(AsyncNoResponse, Remote)
		if err != nil || !eq(l, 1/((1-p.Alpha)+over)) {
			return false // eqn (6) as remote latency
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: for every design, throughput speedup is at least the latency
// reduction whenever the design skips the accelerator wait on the
// throughput path (Sync-OS and async designs), and exactly equal for Sync.
func TestSpeedupVsLatencyOrdering(t *testing.T) {
	f := func(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw uint32) bool {
		p := randomParams(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw)
		m, err := New(p)
		if err != nil {
			return false
		}
		sSync, _ := m.Speedup(Sync)
		lSync, _ := m.LatencyReduction(Sync, OffChip)
		if math.Abs(sSync-lSync) > 1e-9*sSync {
			return false
		}
		for _, th := range []Threading{SyncOS, AsyncSameThread, AsyncNoResponse} {
			s, err := m.Speedup(th)
			if err != nil {
				return false
			}
			l, err := m.LatencyReduction(th, OffChip)
			if err != nil {
				return false
			}
			// Throughput omits the accelerator wait (and for Sync-OS the
			// latency path has one switch where throughput has two, but
			// the wait term α/A ≥ 0 vs o1 ≥ 0 can flip the order only
			// through the switch; check the guaranteed case o1 = 0.
			if p.O1 == 0 && s+1e-12 < l {
				return false
			}
			_ = s
			_ = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: speedup is monotone non-increasing in every overhead parameter
// and non-decreasing in A, for all designs.
func TestMonotoneInOverheadsProperty(t *testing.T) {
	f := func(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw uint32, thIdx uint8) bool {
		p := randomParams(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw)
		th := Threadings[int(thIdx)%len(Threadings)]
		m, err := New(p)
		if err != nil {
			return false
		}
		s0, err := m.Speedup(th)
		if err != nil {
			return false
		}
		bump := func(mut func(*Params)) float64 {
			q := p
			mut(&q)
			s, err := MustNew(q).Speedup(th)
			if err != nil {
				return math.NaN()
			}
			return s
		}
		if bump(func(q *Params) { q.L += 1000 }) > s0+1e-12 {
			return false
		}
		if bump(func(q *Params) { q.O0 += 1000 }) > s0+1e-12 {
			return false
		}
		if bump(func(q *Params) { q.Q += 1000 }) > s0+1e-12 {
			return false
		}
		if bump(func(q *Params) { q.O1 += 1000 }) > s0+1e-12 {
			return false
		}
		if bump(func(q *Params) { q.A += 5 }) < s0-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: no threading design ever exceeds the Amdahl bound 1/(1-α).
func TestAmdahlBoundProperty(t *testing.T) {
	f := func(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw uint32) bool {
		p := randomParams(cRaw, alphaRaw, nRaw, o0Raw, qRaw, lRaw, o1Raw, aRaw)
		m, err := New(p)
		if err != nil {
			return false
		}
		bound := m.IdealSpeedup()
		for _, th := range Threadings {
			s, err := m.Speedup(th)
			if err != nil {
				return false
			}
			if s > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Project's output is internally consistent — effective N never
// exceeds the unfiltered invocation rate, effective α never exceeds the
// unfiltered kernel fraction, and the offloaded fraction is within [0,1].
func TestProjectConsistencyProperty(t *testing.T) {
	w := feed1Workload()
	f := func(aRaw, lRaw, o1Raw uint16, thIdx, stIdx uint8, selective bool, byBytes bool) bool {
		off := Offload{
			Strategy:         Strategies[int(stIdx)%len(Strategies)],
			Thread:           Threadings[int(thIdx)%len(Threadings)],
			A:                1 + float64(aRaw%500)/10,
			L:                float64(lRaw),
			O1:               float64(o1Raw),
			SelectiveOffload: selective,
		}
		if byBytes {
			off.Weighting = WeightByBytes
		}
		pr, err := Project(w, LinearKernel(5.6), off)
		if err != nil {
			return false
		}
		if pr.OffloadedFraction < 0 || pr.OffloadedFraction > 1 {
			return false
		}
		if pr.Params.N > w.Invocation+1e-9 || pr.Params.Alpha > w.KernelFrac+1e-9 {
			return false
		}
		if pr.Speedup <= 0 || pr.LatencyReduction <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
