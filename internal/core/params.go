// Package core implements the Accelerometer analytical model — the paper's
// primary contribution (§3).
//
// Accelerometer extends LogCA to project microservice throughput speedup
// and per-request latency reduction under hardware acceleration, accounting
// for the offload-induced overheads of the microservice threading design:
//
//   - Sync: the offloading thread's core waits for the accelerator
//     (equation 1; per-offload profitability in equation 2).
//   - Sync-OS: threads are oversubscribed, so the host switches to another
//     thread while the offloading thread blocks, paying 2·o1 per offload on
//     the throughput path (equations 3 and 4) and o1 on the latency path
//     (equation 5).
//   - Async: the host continues without awaiting the response. If the same
//     thread later picks up the response there is no switch cost
//     (equations 6-8); a distinct response thread costs one o1; designs
//     that need no response at all behave like Async for throughput, and
//     their latency depends on whether the accelerator is off-chip (its
//     cycles remain in the request path) or remote (they move to the
//     application's end-to-end latency instead).
//
// The model is deliberately simple (Table 5): C host cycles per time unit,
// a kernel consuming α·C of them, n offloads per time unit, per-offload
// overheads o0 (setup), L (interface transfer), Q (queuing), o1 (thread
// switch), and a peak accelerator speedup A.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the Accelerometer model parameters of Table 5. All cycle
// quantities are in host cycles; N is a count per fixed time unit (the same
// unit over which C is defined, one second in the paper's case studies).
type Params struct {
	// C is the total host cycles spent executing all logic in the fixed
	// time unit; for a busy host it equals the busy frequency × unit.
	C float64
	// Alpha is the fraction of host cycles spent executing the kernel
	// (0 ≤ α ≤ 1), per Amdahl's law.
	Alpha float64
	// N is the number of kernel offloads of profitable size in the time
	// unit.
	N float64
	// O0 is the host cycles spent preparing a single offload.
	O0 float64
	// Q is the mean queuing delay in cycles between host and accelerator
	// for a single offload.
	Q float64
	// L is the mean cycles to move one offload across the interface,
	// including time the data spends in caches/memory.
	L float64
	// O1 is the cycles spent switching threads (context switch plus cache
	// pollution) once.
	O1 float64
	// A is the accelerator's peak speedup factor over the host for the
	// kernel (A ≥ 1; a remote general-purpose CPU has A = 1).
	A float64
}

// Validate checks parameter ranges. A may be +Inf to model an ideal
// accelerator.
func (p Params) Validate() error {
	switch {
	case !(p.C > 0) || math.IsInf(p.C, 0):
		return fmt.Errorf("core: C = %v, want finite > 0", p.C)
	case math.IsNaN(p.Alpha) || p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("core: Alpha = %v, want within [0,1]", p.Alpha)
	case math.IsNaN(p.N) || p.N < 0 || math.IsInf(p.N, 0):
		return fmt.Errorf("core: N = %v, want finite >= 0", p.N)
	case math.IsNaN(p.O0) || p.O0 < 0 || math.IsInf(p.O0, 0):
		return fmt.Errorf("core: O0 = %v, want finite >= 0", p.O0)
	case math.IsNaN(p.Q) || p.Q < 0 || math.IsInf(p.Q, 0):
		return fmt.Errorf("core: Q = %v, want finite >= 0", p.Q)
	case math.IsNaN(p.L) || p.L < 0 || math.IsInf(p.L, 0):
		return fmt.Errorf("core: L = %v, want finite >= 0", p.L)
	case math.IsNaN(p.O1) || p.O1 < 0 || math.IsInf(p.O1, 0):
		return fmt.Errorf("core: O1 = %v, want finite >= 0", p.O1)
	case math.IsNaN(p.A) || p.A < 1:
		return fmt.Errorf("core: A = %v, want >= 1 (may be +Inf)", p.A)
	}
	return nil
}

// overheadPerUnit returns (n/C)·cycles, the per-time-unit fractional cost of
// a per-offload overhead.
func (p Params) overheadPerUnit(cycles float64) float64 {
	return p.N / p.C * cycles
}

// accelFraction returns α/A, the host-cycle fraction spent waiting on the
// accelerator's execution; zero for an ideal accelerator (A = +Inf).
func (p Params) accelFraction() float64 {
	if math.IsInf(p.A, 1) {
		return 0
	}
	return p.Alpha / p.A
}

// Threading identifies the microservice threading design used to offload.
type Threading int

const (
	// Sync: one thread per core; the core blocks awaiting the response.
	Sync Threading = iota
	// SyncOS: synchronous offload with thread over-subscription; the OS
	// switches to another runnable thread while the offloader blocks.
	SyncOS
	// AsyncSameThread: asynchronous offload whose response is picked up by
	// the thread that issued it (no switch cost).
	AsyncSameThread
	// AsyncDistinctThread: asynchronous offload whose response is picked
	// up by a dedicated response thread (one switch cost).
	AsyncDistinctThread
	// AsyncNoResponse: asynchronous offload needing no response at all
	// (e.g. an encryption device that forwards directly to the next
	// microservice).
	AsyncNoResponse
)

// Threadings lists all threading designs in a stable order.
var Threadings = []Threading{Sync, SyncOS, AsyncSameThread, AsyncDistinctThread, AsyncNoResponse}

// String names the threading design as the paper does.
func (t Threading) String() string {
	switch t {
	case Sync:
		return "Sync"
	case SyncOS:
		return "Sync-OS"
	case AsyncSameThread:
		return "Async"
	case AsyncDistinctThread:
		return "Async-distinct-thread"
	case AsyncNoResponse:
		return "Async-no-response"
	default:
		return fmt.Sprintf("Threading(%d)", int(t))
	}
}

// Strategy identifies where the accelerator sits (§3 "acceleration
// strategies"); it affects latency modeling for response-free async designs
// and sets expectations for the magnitude of L.
type Strategy int

const (
	// OnChip accelerators live on the CPU die (specialized instructions,
	// wider SIMD); offload latency is ns-scale.
	OnChip Strategy = iota
	// OffChip accelerators attach via PCIe or coherent interconnects;
	// offload latency is µs-scale.
	OffChip
	// Remote accelerators are off-platform devices reached over the
	// network; offload latency is ms-scale.
	Remote
)

// Strategies lists all acceleration strategies in a stable order.
var Strategies = []Strategy{OnChip, OffChip, Remote}

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case OnChip:
		return "on-chip"
	case OffChip:
		return "off-chip"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrUnknownThreading reports a Threading value outside the defined set.
var ErrUnknownThreading = errors.New("core: unknown threading design")

// ErrUnknownStrategy reports a Strategy value outside the defined set.
var ErrUnknownStrategy = errors.New("core: unknown acceleration strategy")
