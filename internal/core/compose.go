package core

import (
	"fmt"
	"math"
)

// ComposeLatencyReductions chains per-stage latency reductions through a
// serial pipeline of stages — the multi-tier generalization of the
// single-service equations. Stage i contributes weight w_i of the
// unaccelerated end-to-end latency (the weights must be positive and sum
// to 1) and is accelerated by latency reduction r_i = C_i/CL_i, so the
// accelerated end-to-end latency is Σ w_i/r_i of the baseline and the
// composed reduction is the weighted harmonic mean
//
//	R = 1 / Σ_i (w_i / r_i)
//
// With every r_i = r this collapses to r; a stage with weight 0.5 and
// r_i = ∞ caps R at 2 — Amdahl's law across tiers instead of within one
// service. internal/topology uses this along the dependency graph's
// critical path to predict end-to-end p99 shift from per-tier models.
func ComposeLatencyReductions(weights, reductions []float64) (float64, error) {
	if len(weights) == 0 || len(weights) != len(reductions) {
		return 0, fmt.Errorf("core: compose: %d weights vs %d reductions", len(weights), len(reductions))
	}
	wsum, inv := 0.0, 0.0
	for i, w := range weights {
		r := reductions[i]
		if math.IsNaN(w) || w <= 0 {
			return 0, fmt.Errorf("core: compose: weight[%d] = %v, want > 0", i, w)
		}
		if math.IsNaN(r) || r <= 0 {
			return 0, fmt.Errorf("core: compose: reduction[%d] = %v, want > 0", i, r)
		}
		wsum += w
		inv += w / r
	}
	if math.Abs(wsum-1) > 1e-9 {
		return 0, fmt.Errorf("core: compose: weights sum to %v, want 1", wsum)
	}
	return 1 / inv, nil
}
