package core

import (
	"fmt"
	"math"
)

// Combined offload. §5 of the paper observes that "off-chip encryption
// accelerators can be extended to perform compression to leverage
// improving two kernels for the price of one offload": when two kernels
// operate on the same data in sequence (compress then encrypt an RPC
// payload), a single accelerator can execute both with a single o0 + L + Q
// dispatch. This file models that composition and quantifies the saving
// over offloading the kernels separately.

// KernelShare is one kernel participating in a combined offload.
type KernelShare struct {
	Name  string
	Alpha float64 // fraction of host cycles in this kernel
	A     float64 // accelerator's speedup for this kernel
}

// Validate checks the share.
func (k KernelShare) Validate() error {
	if math.IsNaN(k.Alpha) || k.Alpha < 0 || k.Alpha > 1 {
		return fmt.Errorf("core: kernel %q alpha = %v, want within [0,1]", k.Name, k.Alpha)
	}
	if math.IsNaN(k.A) || k.A < 1 {
		return fmt.Errorf("core: kernel %q A = %v, want >= 1 (may be +Inf)", k.Name, k.A)
	}
	return nil
}

// accelFrac returns alpha/A (0 for an ideal accelerator).
func (k KernelShare) accelFrac() float64 {
	if math.IsInf(k.A, 1) {
		return 0
	}
	return k.Alpha / k.A
}

// CombinedOffload models offloading several kernels that share one
// dispatch: the host pays o0 + L + Q once per offload (n offloads per time
// unit), while each kernel's cycles shrink by its own acceleration factor.
type CombinedOffload struct {
	C       float64 // total host cycles per time unit
	N       float64 // combined offloads per time unit
	O0      float64
	L       float64
	Q       float64
	O1      float64
	Kernels []KernelShare
}

// Validate checks the combined offload.
func (c CombinedOffload) Validate() error {
	if !(c.C > 0) || math.IsInf(c.C, 0) {
		return fmt.Errorf("core: combined C = %v, want finite > 0", c.C)
	}
	if math.IsNaN(c.N) || c.N < 0 || math.IsInf(c.N, 0) {
		return fmt.Errorf("core: combined N = %v, want finite >= 0", c.N)
	}
	if c.O0 < 0 || c.L < 0 || c.Q < 0 || c.O1 < 0 {
		return fmt.Errorf("core: combined overheads must be non-negative")
	}
	if len(c.Kernels) == 0 {
		return fmt.Errorf("core: combined offload needs at least one kernel")
	}
	total := 0.0
	for _, k := range c.Kernels {
		if err := k.Validate(); err != nil {
			return err
		}
		total += k.Alpha
	}
	if total > 1 {
		return fmt.Errorf("core: combined kernel alphas sum to %v > 1", total)
	}
	return nil
}

// totalAlpha returns the summed kernel fraction.
func (c CombinedOffload) totalAlpha() float64 {
	t := 0.0
	for _, k := range c.Kernels {
		t += k.Alpha
	}
	return t
}

// Speedup returns the combined throughput speedup for the threading
// design: the generalization of equations (1), (3), and (6) with Σαᵢ
// removed from the host and Σαᵢ/Aᵢ (Sync only) plus one set of offload
// overheads on the accelerated path.
func (c CombinedOffload) Speedup(th Threading) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	alpha := c.totalAlpha()
	perUnit := func(cycles float64) float64 { return c.N / c.C * cycles }
	switch th {
	case Sync:
		wait := 0.0
		for _, k := range c.Kernels {
			wait += k.accelFrac()
		}
		return 1 / ((1 - alpha) + wait + perUnit(c.O0+c.L+c.Q)), nil
	case SyncOS:
		return 1 / ((1 - alpha) + perUnit(c.O0+c.L+c.Q+2*c.O1)), nil
	case AsyncSameThread, AsyncNoResponse:
		return 1 / ((1 - alpha) + perUnit(c.O0+c.L+c.Q)), nil
	case AsyncDistinctThread:
		return 1 / ((1 - alpha) + perUnit(c.O0+c.L+c.Q+c.O1)), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(th))
	}
}

// SeparateSpeedup returns the throughput speedup when each kernel is
// offloaded independently — each paying its own o0 + L + Q per offload
// (and switch costs where the design incurs them).
func (c CombinedOffload) SeparateSpeedup(th Threading) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	alpha := c.totalAlpha()
	k := float64(len(c.Kernels))
	perUnit := func(cycles float64) float64 { return c.N / c.C * cycles }
	switch th {
	case Sync:
		wait := 0.0
		for _, ks := range c.Kernels {
			wait += ks.accelFrac()
		}
		return 1 / ((1 - alpha) + wait + perUnit(k*(c.O0+c.L+c.Q))), nil
	case SyncOS:
		return 1 / ((1 - alpha) + perUnit(k*(c.O0+c.L+c.Q+2*c.O1))), nil
	case AsyncSameThread, AsyncNoResponse:
		return 1 / ((1 - alpha) + perUnit(k*(c.O0+c.L+c.Q))), nil
	case AsyncDistinctThread:
		return 1 / ((1 - alpha) + perUnit(k*(c.O0+c.L+c.Q+c.O1))), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownThreading, int(th))
	}
}

// CombinationGain returns combined/separate speedup — how much sharing one
// dispatch across the kernels buys.
func (c CombinedOffload) CombinationGain(th Threading) (float64, error) {
	combined, err := c.Speedup(th)
	if err != nil {
		return 0, err
	}
	separate, err := c.SeparateSpeedup(th)
	if err != nil {
		return 0, err
	}
	return combined / separate, nil
}
