package core

import (
	"math"
	"testing"
	"testing/quick"
)

func batchTestModel(t *testing.T) *Model {
	t.Helper()
	// Small-granularity regime: fixed overheads comparable to the kernel
	// work, where batching matters.
	return MustNew(Params{C: 2e9, Alpha: 0.2, N: 2e5, O0: 800, L: 500, Q: 200, O1: 300, A: 10})
}

func TestBatchedAmortizesFixedOverheads(t *testing.T) {
	m := batchTestModel(t)
	b, err := m.Batched(4)
	if err != nil {
		t.Fatal(err)
	}
	p, bp := m.Params(), b.Params()
	if bp.O0 != p.O0/4 || bp.L != p.L/4 || bp.Q != p.Q/4 || bp.O1 != p.O1/4 { //modelcheck:ignore floatcmp — batching divides exactly; same fp ops on both sides
		t.Errorf("batched params = %+v, want fixed costs at 1/4 of %+v", bp, p)
	}
	if bp.C != p.C || bp.Alpha != p.Alpha || bp.N != p.N || bp.A != p.A { //modelcheck:ignore floatcmp — untouched fields must be copied bit-exactly
		t.Errorf("batching must not touch C/Alpha/N/A: %+v vs %+v", bp, p)
	}
}

func TestBatchFactorOneIsIdentity(t *testing.T) {
	m := batchTestModel(t)
	b, err := m.Batched(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range Threadings {
		want, err := m.Speedup(th)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Speedup(th)
		if err != nil {
			t.Fatal(err)
		}
		if got != want { //modelcheck:ignore floatcmp — k=1 batching must reproduce the unbatched params exactly
			t.Errorf("%v: Batched(1) speedup %v != unbatched %v", th, got, want)
		}
	}
}

func TestBatchedRejectsBadFactors(t *testing.T) {
	m := batchTestModel(t)
	for _, b := range []float64{0, 0.5, -1, math.NaN(), math.Inf(1)} {
		if _, err := m.Batched(b); err == nil {
			t.Errorf("Batched(%v): want error", b)
		}
	}
}

// Speedup gain must be monotone in the batch factor and approach the
// overhead-free limit as b → ∞.
func TestBatchSpeedupGainMonotone(t *testing.T) {
	m := batchTestModel(t)
	for _, th := range Threadings {
		prev := 1.0
		for _, b := range []float64{1, 2, 4, 8, 16, 64} {
			gain, err := m.BatchSpeedupGain(th, b)
			if err != nil {
				t.Fatal(err)
			}
			if gain < prev {
				t.Errorf("%v: gain(%v) = %v < gain at smaller batch %v", th, b, gain, prev)
			}
			prev = gain
		}
		// The b→∞ limit: a model with zero fixed overheads.
		p := m.Params()
		p.O0, p.L, p.Q, p.O1 = 0, 0, 0, 0
		free := MustNew(p)
		limit, err := free.Speedup(th)
		if err != nil {
			t.Fatal(err)
		}
		unb, err := m.Speedup(th)
		if err != nil {
			t.Fatal(err)
		}
		if prev > limit/unb*(1+1e-12) {
			t.Errorf("%v: gain(64) = %v exceeds overhead-free limit %v", th, prev, limit/unb)
		}
	}
}

// Batching must shrink the break-even granularity: requests too small to
// offload alone become profitable inside a batch (the ISSUE's effective
// g = Σ payload view).
func TestBatchedBreakEvenShrinks(t *testing.T) {
	m := batchTestModel(t)
	k := LinearKernel(5.5)
	for _, th := range Threadings {
		unb, err := m.BreakEvenThroughputG(th, k)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := m.BatchedBreakEvenThroughputG(th, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !(bat < unb) {
			t.Errorf("%v: batched break-even %v not below unbatched %v", th, bat, unb)
		}
		// Linear kernel: the fixed overhead divides by 8, so break-even g
		// does too (Sync includes the A-factor on both sides, so the ratio
		// still holds exactly for β=1).
		if ratio := unb / bat; math.Abs(ratio-8) > 1e-9 {
			t.Errorf("%v: break-even shrink ratio = %v, want 8 for a linear kernel", th, ratio)
		}
	}
	lat, err := m.BatchedBreakEvenLatencyG(Sync, OffChip, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	unbLat, err := m.BreakEvenLatencyG(Sync, OffChip, k)
	if err != nil {
		t.Fatal(err)
	}
	if !(lat < unbLat) {
		t.Errorf("latency break-even %v not below unbatched %v", lat, unbLat)
	}
}

// Property: for any valid parameterization with nonzero fixed overheads,
// batching never hurts modeled throughput or latency.
func TestBatchGainNeverBelowOneProperty(t *testing.T) {
	m := batchTestModel(t)
	f := func(rawB float64, thPick uint8) bool {
		b := 1 + math.Mod(math.Abs(rawB), 1000) // batch factor in [1, 1001)
		if math.IsNaN(b) {
			return true
		}
		th := Threadings[int(thPick)%len(Threadings)]
		sg, err := m.BatchSpeedupGain(th, b)
		if err != nil {
			return false
		}
		lg, err := m.BatchLatencyGain(th, OffChip, b)
		if err != nil {
			return false
		}
		return sg >= 1-1e-12 && lg >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
