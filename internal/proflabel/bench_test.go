package proflabel_test

import (
	"context"
	"crypto/sha256"
	"testing"

	"repro/internal/proflabel"
)

// benchPayload is sized so one region invocation costs on the order of a
// microsecond — the scale of the Exercise/rpc stage regions the labels
// wrap — making the measured Do overhead a realistic per-region ratio.
var benchPayload = func() []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = byte(i * 131)
	}
	return b
}()

var benchSink [32]byte

// regionWork stands in for one labeled stage of the serving path.
func regionWork(context.Context) {
	benchSink = sha256.Sum256(benchPayload)
}

// BenchmarkRegionUninstrumented is the baseline: the stage body invoked
// directly, no labeling wrapper at all.
func BenchmarkRegionUninstrumented(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regionWork(ctx)
	}
}

// BenchmarkRegionDisabled is the steady production state: the stage body
// behind proflabel.Do with labeling off. scripts/bench_profile.sh gates
// this at 0 allocs/op and within 3% of the uninstrumented baseline.
func BenchmarkRegionDisabled(b *testing.B) {
	wasEnabled := proflabel.Enabled()
	proflabel.Disable()
	defer func() {
		if wasEnabled {
			proflabel.Enable()
		}
	}()
	set := proflabel.Labels(proflabel.KeyService, "bench", proflabel.KeyFunctionality, "app")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proflabel.Do(ctx, set, regionWork)
	}
}

// BenchmarkRegionEnabled measures the collection-window state (labels
// applied around every region). Informational: this cost is only paid
// while a CPU profile is being scraped.
func BenchmarkRegionEnabled(b *testing.B) {
	wasEnabled := proflabel.Enabled()
	proflabel.Enable()
	defer func() {
		if !wasEnabled {
			proflabel.Disable()
		}
	}()
	set := proflabel.Labels(proflabel.KeyService, "bench", proflabel.KeyFunctionality, "app")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proflabel.Do(ctx, set, regionWork)
	}
}
