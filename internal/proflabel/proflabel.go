// Package proflabel gates runtime/pprof labels behind a process-wide
// switch so the serving hot paths can carry CPU-attribution labels
// (service, functionality, kernel) at zero cost when no profile is being
// collected.
//
// The paper's Strobelight (§2.2) attributes every sampled cycle to a
// microservice functionality by walking the stack to a marker frame. Go's
// CPU profiler offers a cheaper, first-class mechanism: pprof labels
// travel with the goroutine and are recorded into every sample. This
// package is the repository's single point of control for them:
//
//   - Labels(...) precomputes an immutable label set at package-init time,
//     so hot paths never rebuild label slices per call.
//   - Do(ctx, set, f) applies the set around f via pprof.Do — but only
//     while Enable() is in effect. Disabled, it is one atomic load and a
//     direct call: no allocation, no label bookkeeping (the perf gate in
//     scripts/bench_profile.sh pins this).
//
// Callers that need a dynamic label value (a service name picked at run
// time) precompute the set once per run, outside the request loop, with
// Labels or ServiceSet.
//
// Label keys are deliberately few and fixed — KeyService, KeyFunctionality,
// KeyKernel — so internal/liveprof can bucket parsed profile samples
// without a schema negotiation.
package proflabel

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Label keys recorded into CPU profiles. liveprof keys its attribution on
// these exact strings.
const (
	KeyService       = "service"       // which fleet service the cycles belong to
	KeyFunctionality = "functionality" // Table 3 bucketer marker key (io, ioprep, compression, ...)
	KeyKernel        = "kernel"        // offloadable kernel family (compression, encryption, ...)
)

// enabled is the process-wide switch. Off by default: production paths pay
// one atomic load per labeled region until a collector turns labels on.
var enabled atomic.Bool

// Enable turns labeling on. The CPU-profile collectors (internal/liveprof,
// the /debug/pprof/profile endpoint wrapper) call this for the duration of
// a collection window.
func Enable() { enabled.Store(true) }

// Disable turns labeling off again.
func Disable() { enabled.Store(false) }

// Enabled reports whether labeled regions currently apply their labels.
func Enabled() bool { return enabled.Load() }

// Set is a precomputed, immutable label set. The zero Set is valid and
// labels nothing.
type Set struct {
	ls    pprof.LabelSet
	empty bool
}

// Labels precomputes a label set from alternating key/value pairs. Build
// sets at package init or run setup, never inside request loops.
func Labels(kv ...string) Set {
	if len(kv) == 0 {
		return Set{empty: true}
	}
	return Set{ls: pprof.Labels(kv...)}
}

// Do runs f with the set's labels applied when labeling is enabled; when
// disabled (the steady production state) it invokes f directly — one
// atomic load, zero allocations. f always runs exactly once.
func Do(ctx context.Context, set Set, f func(context.Context)) {
	if !enabled.Load() || set.empty {
		f(ctx)
		return
	}
	pprof.Do(ctx, set.ls, f)
}

// serviceSets caches one label set per service name; fleet drivers and the
// burner look sets up once per run, outside their request loops.
var serviceSets sync.Map // string → Set

// ServiceSet returns (building and caching on first use) the label set
// {service=name}.
func ServiceSet(name string) Set {
	if s, ok := serviceSets.Load(name); ok {
		return s.(Set)
	}
	s := Labels(KeyService, name)
	serviceSets.Store(name, s)
	return s
}
