package proflabel

import (
	"context"
	"runtime/pprof"
	"testing"
)

// withClean disables labels and restores the prior state afterward, so
// tests can toggle the global gate without ordering hazards.
func withClean(t *testing.T, f func()) {
	t.Helper()
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		} else {
			Disable()
		}
	}()
	f()
}

func TestDoRunsExactlyOnce(t *testing.T) {
	withClean(t, func() {
		set := Labels(KeyService, "svc")
		for _, enabled := range []bool{false, true} {
			if enabled {
				Enable()
			} else {
				Disable()
			}
			calls := 0
			//modelcheck:ignore ctxcheck — the literal exists to assert Do passes a non-nil ctx
			Do(context.Background(), set, func(ctx context.Context) {
				calls++
				if ctx == nil {
					t.Fatal("Do passed nil ctx")
				}
			})
			if calls != 1 {
				t.Fatalf("enabled=%v: Do ran f %d times, want 1", enabled, calls)
			}
		}
	})
}

func TestDoAppliesLabelsOnlyWhenEnabled(t *testing.T) {
	withClean(t, func() {
		set := Labels(KeyService, "svc-a", KeyFunctionality, "io")

		Do(context.Background(), set, func(ctx context.Context) {
			if v, ok := pprof.Label(ctx, KeyService); ok {
				t.Fatalf("disabled Do applied label %s=%q", KeyService, v)
			}
		})

		Enable()
		Do(context.Background(), set, func(ctx context.Context) {
			if v, _ := pprof.Label(ctx, KeyService); v != "svc-a" {
				t.Fatalf("label %s = %q, want svc-a", KeyService, v)
			}
			if v, _ := pprof.Label(ctx, KeyFunctionality); v != "io" {
				t.Fatalf("label %s = %q, want io", KeyFunctionality, v)
			}
		})
	})
}

func TestDoMergesWithOuterLabels(t *testing.T) {
	withClean(t, func() {
		Enable()
		outer := ServiceSet("outer-svc")
		inner := Labels(KeyFunctionality, "compression")
		Do(context.Background(), outer, func(ctx context.Context) {
			Do(ctx, inner, func(ctx context.Context) {
				if v, _ := pprof.Label(ctx, KeyService); v != "outer-svc" {
					t.Fatalf("outer label lost in nested Do: %s=%q", KeyService, v)
				}
				if v, _ := pprof.Label(ctx, KeyFunctionality); v != "compression" {
					t.Fatalf("inner label missing: %s=%q", KeyFunctionality, v)
				}
			})
		})
	})
}

func TestEmptySetIsInert(t *testing.T) {
	withClean(t, func() {
		Enable()
		calls := 0
		Do(context.Background(), Labels(), func(context.Context) { calls++ })
		if calls != 1 {
			t.Fatalf("empty-set Do ran f %d times, want 1", calls)
		}
		var zero Set
		Do(context.Background(), zero, func(context.Context) { calls++ })
		if calls != 2 {
			t.Fatalf("zero-value Do ran f %d times, want 2", calls)
		}
	})
}

func TestLabelsOddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Labels with odd arity did not panic")
		}
	}()
	Labels(KeyService)
}

func TestServiceSetCachesPerName(t *testing.T) {
	ServiceSet("cache-test-svc")
	if _, ok := serviceSets.Load("cache-test-svc"); !ok {
		t.Error("ServiceSet did not cache the set for later lookups")
	}
	withClean(t, func() {
		Enable()
		Do(context.Background(), ServiceSet("other-svc"), func(ctx context.Context) {
			if v, _ := pprof.Label(ctx, KeyService); v != "other-svc" {
				t.Fatalf("ServiceSet label = %q, want other-svc", v)
			}
		})
	})
}

func TestEnableDisableToggle(t *testing.T) {
	withClean(t, func() {
		if Enabled() {
			t.Fatal("Enabled() true after Disable")
		}
		Enable()
		if !Enabled() {
			t.Fatal("Enabled() false after Enable")
		}
		Disable()
		if Enabled() {
			t.Fatal("Enabled() true after Disable")
		}
	})
}
