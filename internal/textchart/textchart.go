// Package textchart renders the reproduction's tables and figures as plain
// text: aligned tables, horizontal percentage bars for the paper's stacked
// breakdown figures, and CDF plots for the granularity figures. Every
// experiment binary and bench prints through this package so output stays
// uniform and diffable.
package textchart

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row. Short rows are padded; long rows extend the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v unless it is a float64, which renders with 4 significant digits.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	//modelcheck:ignore floatcmp — exact integrality test chooses the float's print format
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render returns the aligned table.
func (t *Table) Render() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Segment is one labeled portion of a stacked bar; Fraction is in [0, 1].
type Segment struct {
	Label    string
	Fraction float64
}

// StackedBar renders one horizontal stacked bar of the given total width,
// with a legend of "label fraction%" entries — the form of the paper's
// breakdown figures (Figs 1-7, 9, 16-18). Segments with negative fractions
// are an error; fractions need not sum exactly to 1.
func StackedBar(name string, segments []Segment, width int) (string, error) {
	if width < len(segments) {
		width = len(segments)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n  |", name)
	glyphs := []byte("#=+-:*%@o.")
	used := 0
	for i, seg := range segments {
		if seg.Fraction < 0 || math.IsNaN(seg.Fraction) {
			return "", fmt.Errorf("textchart: segment %q has invalid fraction %v", seg.Label, seg.Fraction)
		}
		n := int(math.Round(seg.Fraction * float64(width)))
		if used+n > width {
			n = width - used
		}
		sb.Write(byteRepeat(glyphs[i%len(glyphs)], n))
		used += n
	}
	sb.Write(byteRepeat(' ', width-used))
	sb.WriteString("|\n")
	for i, seg := range segments {
		fmt.Fprintf(&sb, "  %c %-28s %5.1f%%\n", glyphs[i%len(glyphs)], seg.Label, seg.Fraction*100)
	}
	return sb.String(), nil
}

func byteRepeat(b byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// HBar renders a simple labeled horizontal bar row: "label |#### | 42.0".
// value is clamped to [0, max].
func HBar(label string, value, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	v := value
	if v < 0 {
		v = 0
	}
	if v > max {
		v = max
	}
	n := int(math.Round(v / max * float64(width)))
	return fmt.Sprintf("%-28s |%s%s| %s", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), formatFloat(value))
}

// CDFRow is one bucket of a rendered CDF.
type CDFRow struct {
	Bucket     string
	Cumulative float64
}

// CDFPlot renders a CDF as ascending bars, optionally marking a break-even
// granularity annotation after the bucket whose label equals markAt. Pass
// an empty markAt for no marker. This is the shape of Figs 15, 19, 21, 22.
func CDFPlot(name string, rows []CDFRow, width int, markAt, markLabel string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (CDF)\n", name)
	for _, r := range rows {
		n := int(math.Round(r.Cumulative * float64(width)))
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		marker := ""
		if markAt != "" && r.Bucket == markAt {
			marker = "  <-- " + markLabel
		}
		fmt.Fprintf(&sb, "  %-10s |%s%s| %.3f%s\n", r.Bucket,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), r.Cumulative, marker)
	}
	return sb.String()
}
