package textchart

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Service", "Speedup")
	tb.AddRow("Cache1", "15.7%")
	tb.AddRow("Ads1", "72.39%")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Service") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "Cache1") || !strings.Contains(lines[2], "15.7%") {
		t.Errorf("row = %q", lines[2])
	}
	// Columns align: "Speedup" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "Speedup")
	if got := strings.Index(lines[2], "15.7%"); got != idx {
		t.Errorf("column misaligned: header at %d, cell at %d", idx, got)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRowf("pi", 3.14159)
	tb.AddRowf("n", 15008.0)
	tb.AddRowf("inf", math.Inf(1))
	tb.AddRowf("int", 42)
	out := tb.Render()
	for _, want := range []string{"3.142", "15008", "inf", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("1", "2", "3")
	tb.AddRow()
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Errorf("long row truncated:\n%s", out)
	}
}

func TestStackedBar(t *testing.T) {
	out, err := StackedBar("Cache1", []Segment{
		{"Secure IO", 0.30},
		{"Application Logic", 0.50},
		{"Other", 0.20},
	}, 50)
	if err != nil {
		t.Fatalf("StackedBar: %v", err)
	}
	if !strings.Contains(out, "Cache1") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Secure IO") || !strings.Contains(out, "30.0%") {
		t.Errorf("missing legend entries:\n%s", out)
	}
	// Bar body is exactly the requested width between pipes.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  |") {
			body := line[3 : len(line)-1]
			if len(body) != 50 {
				t.Errorf("bar width = %d, want 50", len(body))
			}
		}
	}
}

func TestStackedBarInvalid(t *testing.T) {
	if _, err := StackedBar("x", []Segment{{"neg", -0.1}}, 10); err == nil {
		t.Error("negative fraction: want error")
	}
	if _, err := StackedBar("x", []Segment{{"nan", math.NaN()}}, 10); err == nil {
		t.Error("NaN fraction: want error")
	}
}

func TestStackedBarOverflowClamped(t *testing.T) {
	out, err := StackedBar("x", []Segment{{"a", 0.8}, {"b", 0.8}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  |") {
			if len(line) != 3+20+1 {
				t.Errorf("overflowing segments must clamp to width: %q", line)
			}
		}
	}
}

func TestHBar(t *testing.T) {
	out := HBar("Memory", 0.8, 2.0, 10)
	if !strings.Contains(out, "Memory") {
		t.Error("missing label")
	}
	if !strings.Contains(out, "####") {
		t.Errorf("bar missing: %q", out)
	}
	if !strings.Contains(out, "0.8") {
		t.Errorf("value missing: %q", out)
	}
	// Clamps.
	if !strings.Contains(HBar("x", 5, 2, 10), "##########") {
		t.Error("over-max should fill the bar")
	}
	if strings.Contains(HBar("x", -1, 2, 10), "#") {
		t.Error("negative should draw empty")
	}
	_ = HBar("x", 1, 0, 10) // max<=0 must not panic
}

func TestCDFPlot(t *testing.T) {
	rows := []CDFRow{
		{"0-4", 0.0},
		{"4-8", 0.3},
		{">4K", 1.0},
	}
	out := CDFPlot("Cache1 encryption", rows, 20, "4-8", "min AES-NI g")
	if !strings.Contains(out, "Cache1 encryption") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "<-- min AES-NI g") {
		t.Errorf("missing marker:\n%s", out)
	}
	if !strings.Contains(out, "1.000") {
		t.Errorf("missing final cumulative:\n%s", out)
	}
	// No marker requested.
	plain := CDFPlot("x", rows, 20, "", "")
	if strings.Contains(plain, "<--") {
		t.Error("unexpected marker")
	}
	// Out-of-range cumulative values clamp instead of panicking.
	_ = CDFPlot("x", []CDFRow{{"b", 1.5}, {"c", -0.5}}, 10, "", "")
}
