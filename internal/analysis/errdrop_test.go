package analysis

import "testing"

func TestErrDrop(t *testing.T) {
	cases := []struct {
		name string
		file string // defaults to fixture.go; use fixture_test.go for the teardown rule
		src  string
		want []int
	}{
		{
			name: "bare call dropping an error",
			src: `package fixture
import "os"
func f() {
	os.Remove("x") // line 4: flagged
}
`,
			want: []int{4},
		},
		{
			name: "blank assignment of a lone error",
			src: `package fixture
import "os"
func f() {
	_ = os.Remove("x") // line 4: flagged
}
`,
			want: []int{4},
		},
		{
			name: "blank in the error slot of a multi-return",
			src: `package fixture
import "os"
func f() string {
	wd, _ := os.Getwd() // line 4: flagged
	return wd
}
`,
			want: []int{4},
		},
		{
			name: "handled errors are fine",
			src: `package fixture
import "os"
func f() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	_, err := os.Getwd()
	return err
}
`,
			want: nil,
		},
		{
			name: "comma-ok map reads are not errors",
			src: `package fixture
func f(m map[string]int) int {
	v, _ := m["k"]
	return v
}
`,
			want: nil,
		},
		{
			name: "infallible writers are allowlisted",
			src: `package fixture
import (
	"bytes"
	"fmt"
	"strings"
)
func f() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.WriteByte('y')
	fmt.Println("to stdout")
	return b.String() + buf.String()
}
`,
			want: nil,
		},
		{
			name: "fmt.Fprintf to stderr is allowlisted, to a file is not",
			src: `package fixture
import (
	"fmt"
	"os"
)
func f(dst *os.File) {
	fmt.Fprintln(os.Stderr, "warn")
	fmt.Fprintln(dst, "data") // line 8: flagged
}
`,
			want: []int{8},
		},
		{
			name: "deferred Close is allowlisted, deferred Flush is not",
			src: `package fixture
import (
	"bufio"
	"os"
)
func f(f *os.File, w *bufio.Writer) {
	defer f.Close()
	defer w.Flush() // line 8: flagged
}
`,
			want: []int{8},
		},
		{
			name: "ignore directive suppresses",
			src: `package fixture
import "os"
func f() {
	os.Remove("x") //modelcheck:ignore errdrop — best-effort cleanup
}
`,
			want: nil,
		},
		{
			name: "teardown rule: Cleanup function literals are exempt in tests",
			file: "fixture_test.go",
			src: `package fixture
import (
	"os"
	"testing"
)
func TestX(t *testing.T) {
	t.Cleanup(func() { os.Remove("x") })
}
`,
			want: nil,
		},
		{
			name: "teardown rule: blank discards are the visible idiom in tests",
			file: "fixture_test.go",
			src: `package fixture
import (
	"os"
	"testing"
)
func TestX(t *testing.T) {
	_ = os.Remove("x")
	wd, _ := os.Getwd()
	t.Log(wd)
}
`,
			want: nil,
		},
		{
			name: "teardown rule: invisible discards stay flagged in tests",
			file: "fixture_test.go",
			src: `package fixture
import (
	"os"
	"testing"
)
func TestX(t *testing.T) {
	os.Remove("x") // line 7: flagged — nothing marks this as deliberate
}
`,
			want: []int{7},
		},
		{
			name: "teardown rule: a non-testing Cleanup gets no exemption",
			file: "fixture_test.go",
			src: `package fixture
import "os"
type reaper struct{}
func (reaper) Cleanup(f func()) { f() }
func setup() {
	var r reaper
	r.Cleanup(func() { os.Remove("x") }) // line 7: flagged — not testing.TB
}
`,
			want: []int{7},
		},
		{
			name: "teardown rule does not apply outside test files",
			src: `package fixture
import "os"
func f() {
	_ = os.Remove("x") // line 4: flagged — non-test file
}
`,
			want: []int{4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := tc.file
			if file == "" {
				file = "fixture.go"
			}
			sameLines(t, runOnSource(t, ErrDrop, file, tc.src), tc.want...)
		})
	}
}
