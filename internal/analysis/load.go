package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig controls module loading.
type LoadConfig struct {
	// Dir is any directory inside the module; the loader ascends to go.mod.
	Dir string
	// IncludeTests adds _test.go files: in-package test files join their
	// package, and external test packages (package foo_test) are loaded as
	// their own packages under the import path "<pkg>_test".
	//
	// Directive-density policy: test packages meet the same analyzer bar
	// as production code, and the pressure valve is the same one —
	// //modelcheck:ignore with a written justification. Tests legitimately
	// do things the analyzers dislike (exact float comparisons against
	// golden values, fixed seeds, deliberately invalid params), so some
	// directive density in test files is expected; what is not acceptable
	// is a bare directive without a reason, or ignoring whole files. If a
	// test file accumulates so many directives that they drown out the
	// code, the analyzer's test exemptions (see floatcmp's golden-value
	// rule) should grow instead.
	IncludeTests bool
	// NoCache disables the on-disk export-data cache (.modelcheck-cache/)
	// and type-checks the standard library from source instead. The cache
	// only changes load time, never findings; see cache.go.
	NoCache bool
}

// Load parses and type-checks every package of the module that matches one
// of the patterns, in dependency order. Supported patterns are "./...",
// "dir/..." and plain relative directories, mirroring the go tool. All
// local packages are always type-checked (dependencies must resolve); the
// patterns only select which packages are returned for analysis.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	nodes, err := discover(fset, root, modPath, cfg.IncludeTests)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(nodes)
	if err != nil {
		return nil, err
	}

	// Non-module imports resolve through the export-data cache when it
	// covers every import the sources mention (deserializing compiled type
	// summaries instead of re-type-checking the stdlib from source), and
	// through one shared source importer otherwise. Never a mix: the two
	// importers produce distinct types.Package identities.
	var fallback types.Importer
	if !cfg.NoCache {
		//modelcheck:ignore errdrop — a failed cache (no go tool, uncovered import) falls back to the source importer by design
		fallback, _ = newExportImporter(fset, root, externalImports(nodes))
	}
	if fallback == nil {
		fallback = importer.ForCompiler(fset, "source", nil)
	}
	imp := &moduleImporter{
		local:    map[string]*types.Package{},
		fallback: fallback,
	}

	var pkgs []*Package
	for _, node := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(node.path, fset, node.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", node.path, err)
		}
		imp.local[node.path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  node.path,
			Dir:   node.dir,
			Fset:  fset,
			Files: node.files,
			Types: tpkg,
			Info:  info,
		})
	}

	var out []*Package
	for _, p := range pkgs {
		if matchAny(patterns, root, modPath, p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// LoadSource type-checks a single in-memory file as its own package; it is
// the fixture entry point for analyzer tests. Imports are restricted to the
// standard library. The package's import path is the filename's directory
// when it has one (so fixtures can pose as e.g. "internal/core"), else the
// filename without extension.
func LoadSource(filename, src string) (*Package, error) {
	sourceMu.Lock()
	defer sourceMu.Unlock()
	fset := sourceFset
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: sourceImp}
	path := strings.TrimSuffix(filename, ".go")
	if dir := filepath.ToSlash(filepath.Dir(filename)); dir != "." {
		path = dir
	}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}, nil
}

// sourceFset and sourceImp back LoadSource: one shared importer caches the
// type-checked standard library across fixture loads (the source importer
// is not goroutine-safe, hence the mutex).
var (
	sourceMu   sync.Mutex
	sourceFset = token.NewFileSet()
	sourceImp  = importer.ForCompiler(sourceFset, "source", nil)
)

// ModuleRoot resolves the module root directory enclosing dir — the
// directory callers hand to BuildModuleCached so the summary cache lands
// next to the export cache.
func ModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

// findModule ascends from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// pkgNode is a discovered package before type-checking.
type pkgNode struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // local (module-internal) imports only
}

// discover walks the module tree and parses every package.
func discover(fset *token.FileSet, root, modPath string, includeTests bool) (map[string]*pkgNode, error) {
	nodes := map[string]*pkgNode{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "scripts") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if strings.HasSuffix(path, "_test.go") && !includeTests {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			// An external test package lives in the same directory as the
			// package under test but is a distinct package; give it a
			// distinct node under the go-tool's "<pkg>_test" naming.
			importPath += "_test"
		}
		node := nodes[importPath]
		if node == nil {
			node = &pkgNode{path: importPath, dir: filepath.Dir(path)}
			nodes[importPath] = node
		}
		node.files = append(node.files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				node.imports = append(node.imports, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Deterministic file order within each package.
	for _, node := range nodes {
		sort.Slice(node.files, func(i, j int) bool {
			return fset.Position(node.files[i].Pos()).Filename <
				fset.Position(node.files[j].Pos()).Filename
		})
	}
	return nodes, nil
}

// externalImports collects every non-module import path mentioned by the
// discovered sources — the set the export cache must cover.
func externalImports(nodes map[string]*pkgNode) map[string]bool {
	out := map[string]bool{}
	for _, node := range nodes {
		for _, f := range node.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "C" {
					continue // cgo pseudo-import; the module has none
				}
				out[p] = true
			}
		}
		for _, p := range node.imports {
			delete(out, p) // module-internal: resolved locally, not via cache
		}
	}
	return out
}

// topoSort orders packages so every package follows its local imports.
func topoSort(nodes map[string]*pkgNode) ([]*pkgNode, error) {
	var order []*pkgNode
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		node, ok := nodes[path]
		if !ok {
			return nil // import of a module path with no Go files; types will complain
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(trail, path), " -> "))
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range node.imports {
			if err := visit(imp, append(trail, path)); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, node)
		return nil
	}
	paths := make([]string, 0, len(nodes))
	for p := range nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal packages from the already-checked
// set and everything else through the source importer.
type moduleImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}

// matchAny reports whether pkg matches any go-tool-style pattern.
func matchAny(patterns []string, root, modPath string, pkg *Package) bool {
	rel, err := filepath.Rel(root, pkg.Dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			// Also accept full import paths, e.g. repro/internal/...
			if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
				return true
			}
		default:
			if rel == pat || pkg.Path == pat || (pat == "." && rel == ".") {
				return true
			}
		}
	}
	return false
}
