package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Export-data cache. The source importer re-type-checks the standard
// library from source on every modelcheck invocation — seconds of work
// whose inputs change only when the toolchain does. This file caches the
// compiler's export data (the .a type summaries `go list -export` points
// into the build cache) under <module root>/.modelcheck-cache/ and feeds it
// to the binary ("gc") importer, which deserializes types instead of
// re-checking them.
//
// Correctness over speed: a manifest records the Go version and the
// size+sha256 of every cached file, and the cache is rebuilt from `go
// list` whenever anything mismatches. The cache is all-or-nothing — if
// even one import the module needs is missing from a freshly rebuilt
// manifest, Load falls back to the source importer for everything, because
// mixing gc-imported and source-imported packages would split type
// identities (two distinct types.Package for "fmt") and produce phantom
// type errors.

// cacheDirName is the cache directory under the module root. discover()
// skips dot-directories, so the cache never shadows real packages.
const cacheDirName = ".modelcheck-cache"

// manifestName is the index file inside the cache directory.
const manifestName = "manifest.json"

// exportEntry locates and pins one package's cached export data.
type exportEntry struct {
	File   string `json:"file"` // filename within the cache directory
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// cacheManifest indexes the cache: it is valid only for the exact Go
// version that produced the export data.
type cacheManifest struct {
	GoVersion string                 `json:"go_version"`
	Exports   map[string]exportEntry `json:"exports"` // import path → entry
}

// newExportImporter returns a binary importer backed by the on-disk export
// cache, (re)building the cache as needed. needed is the set of non-module
// import paths the module's sources mention; if any of them is not covered
// after a rebuild, an error is returned and the caller must use the source
// importer for the whole load.
func newExportImporter(fset *token.FileSet, root string, needed map[string]bool) (types.Importer, error) {
	cacheDir := filepath.Join(root, cacheDirName)
	m, err := loadManifest(cacheDir)
	if err != nil || !manifestCovers(m, needed) {
		m, err = rebuildCache(root, cacheDir)
		if err != nil {
			return nil, err
		}
		if !manifestCovers(m, needed) {
			return nil, fmt.Errorf("analysis: export cache cannot cover all imports")
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := m.Exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no cached export data for %q", path)
		}
		return os.Open(filepath.Join(cacheDir, e.File))
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

// loadManifest reads and verifies the cache: the Go version must match the
// running toolchain and every cached file must exist with its recorded
// size and sha256. Any discrepancy invalidates the whole cache.
func loadManifest(cacheDir string) (*cacheManifest, error) {
	data, err := os.ReadFile(filepath.Join(cacheDir, manifestName))
	if err != nil {
		return nil, err
	}
	var m cacheManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: corrupt cache manifest: %w", err)
	}
	if m.GoVersion != runtime.Version() {
		return nil, fmt.Errorf("analysis: cache built with %s, running %s", m.GoVersion, runtime.Version())
	}
	for path, e := range m.Exports {
		full := filepath.Join(cacheDir, e.File)
		fi, err := os.Stat(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: cached export for %q: %w", path, err)
		}
		if fi.Size() != e.Size {
			return nil, fmt.Errorf("analysis: cached export for %q: size %d, manifest says %d", path, fi.Size(), e.Size)
		}
		sum, err := fileSHA256(full)
		if err != nil {
			return nil, err
		}
		if sum != e.SHA256 {
			return nil, fmt.Errorf("analysis: cached export for %q: checksum mismatch", path)
		}
	}
	return &m, nil
}

// manifestCovers reports whether every needed import path has cached
// export data. "unsafe" has no export data by design — the gc importer
// resolves it to types.Unsafe without consulting the lookup function.
func manifestCovers(m *cacheManifest, needed map[string]bool) bool {
	if m == nil {
		return false
	}
	for path := range needed {
		if path == "unsafe" {
			continue
		}
		if _, ok := m.Exports[path]; !ok {
			return false
		}
	}
	return true
}

// rebuildCache asks the go tool for export data of every dependency of the
// module (tests included, so "testing" and friends are covered), copies the
// files into the cache directory, and writes a fresh manifest.
func rebuildCache(root, cacheDir string) (*cacheManifest, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-test",
		"-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export: %w", err)
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	m := &cacheManifest{GoVersion: runtime.Version(), Exports: map[string]exportEntry{}}
	for _, line := range strings.Split(string(out), "\n") {
		path, export, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if !ok || export == "" {
			continue // packages compiled without export data (test binaries, main)
		}
		// Test variants ("pkg [pkg.test]") duplicate their base package
		// under a decorated path the type-checker never asks for.
		if strings.Contains(path, " ") {
			continue
		}
		name := exportFileName(path)
		sum, size, err := copyExport(export, filepath.Join(cacheDir, name))
		if err != nil {
			return nil, err
		}
		m.Exports[path] = exportEntry{File: name, Size: size, SHA256: sum}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(cacheDir, manifestName), data, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// exportFileName maps an import path to a flat cache filename; the short
// path hash disambiguates paths that sanitize to the same string.
func exportFileName(path string) string {
	h := sha256.Sum256([]byte(path))
	sanitized := strings.NewReplacer("/", "_", ".", "_").Replace(path)
	return fmt.Sprintf("%s-%s.a", sanitized, hex.EncodeToString(h[:4]))
}

// copyExport copies one export-data file into the cache, returning its
// sha256 and size.
func copyExport(src, dst string) (sum string, size int64, err error) {
	in, err := os.Open(src)
	if err != nil {
		return "", 0, fmt.Errorf("analysis: export data: %w", err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return "", 0, err
	}
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(out, h), in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, fmt.Errorf("analysis: caching export data: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), size, nil
}

// fileSHA256 hashes one file.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
