package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildTestCFG parses src (a complete file), finds the first function
// declaration, and builds its CFG without type information.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return NewCFG(fset, fd.Body, nil)
		}
	}
	t.Fatal("fixture has no function body")
	return nil
}

func checkCFG(t *testing.T, c *CFG, wantGraph, wantDoms string) {
	t.Helper()
	if got := strings.TrimSpace(c.String()); got != strings.TrimSpace(wantGraph) {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, wantGraph)
	}
	if got := c.DomString(); got != wantDoms {
		t.Errorf("dominators mismatch\n got: %s\nwant: %s", got, wantDoms)
	}
}

// A labeled break jumping out of a select nested in an infinite for: the
// break must land on the for's join, not the select's, and the infinite
// loop head must keep no edge to its own join.
func TestCFGLabeledBreakNestedSelect(t *testing.T) {
	c := buildTestCFG(t, `package p

func f(a, b chan int) int {
	x := 0
L:
	for {
		select {
		case v := <-a:
			x += v
		case <-b:
			break L
		}
	}
	return x
}
`)
	checkCFG(t, c, `
b0 entry [4] => b2
b1 exit
b2 => b3
b3 => b5
b4 [14] => b1
b5 => b7 b8
b6 => b3
b7 [8 9] => b6
b8 [10] => b4
`, "b1<-b4 b2<-b0 b3<-b2 b4<-b8 b5<-b3 b6<-b7 b7<-b5 b8<-b5")
}

// goto jumping forward across a defer: the defer stays in the entry block
// (it registers on every path), and both the goto path and the fallthrough
// path converge on the labeled block.
func TestCFGGotoAcrossDefer(t *testing.T) {
	c := buildTestCFG(t, `package p

func g(ok bool) {
	defer cleanup()
	if ok {
		goto done
	}
	work()
done:
	finish()
}
`)
	checkCFG(t, c, `
b0 entry [4 5] => b2 b4
b1 exit
b2 => b3
b3 [10] => b1
b4 [8] => b3
`, "b1<-b3 b2<-b0 b3<-b0 b4<-b0")
}

// Switch with fallthrough: case 0's block must edge into case 1's block,
// not the join, and the default clause must remove the tag→join edge.
func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildTestCFG(t, `package p

func h(n int) string {
	s := ""
	switch n {
	case 0:
		s = "zero"
		fallthrough
	case 1:
		s += "!"
	default:
		s = "many"
	}
	return s
}
`)
	checkCFG(t, c, `
b0 entry [4 5] => b3 b4 b5
b1 exit
b2 [14] => b1
b3 [6 7] => b4
b4 [9 10] => b2
b5 [12] => b2
`, "b1<-b2 b2<-b0 b3<-b0 b4<-b0 b5<-b0")
}

// Infinite for with a mid-loop return: the loop head has no edge to the
// loop join (the join is unreachable), and the only route to exit is the
// conditional return.
func TestCFGInfiniteForMidLoopReturn(t *testing.T) {
	c := buildTestCFG(t, `package p

func k(c chan int) int {
	n := 0
	for {
		n += <-c
		if n > 10 {
			return n
		}
	}
}
`)
	checkCFG(t, c, `
b0 entry [4] => b2
b1 exit
b2 => b4
b3 => b1
b4 [6 7] => b5 b6
b5 [8] => b1
b6 => b2
`, "b1<-b5 b2<-b0 b4<-b2 b5<-b4 b6<-b4")
	// The loop join (b3) is unreachable: no immediate dominator.
	if idom := c.Dominators(); idom[3] != nil {
		t.Errorf("unreachable loop join got idom b%d", idom[3].Index)
	}
	// Post-dominators: the return block post-dominates the loop body (the
	// back-edge path can only reach exit by coming around to it).
	ipdom := c.PostDominators()
	if ipdom[4] == nil || ipdom[4].Index != 5 {
		t.Errorf("ipdom(loop body) = %v, want b5", ipdom[4])
	}
	if ipdom[5] == nil || ipdom[5].Index != 1 {
		t.Errorf("ipdom(return block) = %v, want exit b1", ipdom[5])
	}
}

// Panic terminators sever the path: no successors, and statements after
// the panic form an unreachable block.
func TestCFGPanicTerminator(t *testing.T) {
	c := buildTestCFG(t, `package p

func f(ok bool) int {
	if !ok {
		panic("no")
	}
	return 1
}
`)
	var panicBlock *Block
	for _, b := range c.Blocks {
		if b.Term == TermPanic {
			panicBlock = b
		}
	}
	if panicBlock == nil {
		t.Fatal("no panic-terminated block")
	}
	if len(panicBlock.Succs) != 0 {
		t.Errorf("panic block has successors %v", panicBlock.Succs)
	}
}

// --- property test --------------------------------------------------------

// progSeed seeds the random structured-program generator.
type progSeed int64

// genStmts emits a random statement list using the control constructs the
// builder handles, tracking loop depth so break/continue stay legal.
func genStmts(r *rand.Rand, depth, loops int, sb *strings.Builder, indent string) { //modelcheck:ignore seedhygiene — r is quick.Check's rand, seeded deterministically through progSeed.Generate
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		choice := r.Intn(10)
		if depth <= 0 && choice < 6 {
			choice = 6 + r.Intn(4) // leaf statements only
		}
		switch choice {
		case 0:
			fmt.Fprintf(sb, "%sif x > %d {\n", indent, r.Intn(100))
			genStmts(r, depth-1, loops, sb, indent+"\t")
			if r.Intn(2) == 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				genStmts(r, depth-1, loops, sb, indent+"\t")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case 1:
			fmt.Fprintf(sb, "%sfor x < %d {\n", indent, r.Intn(100))
			genStmts(r, depth-1, loops+1, sb, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case 2:
			fmt.Fprintf(sb, "%sfor i := 0; i < %d; i++ {\n", indent, r.Intn(10))
			genStmts(r, depth-1, loops+1, sb, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case 3:
			fmt.Fprintf(sb, "%sswitch x %% 3 {\n", indent)
			for c := 0; c < 1+r.Intn(3); c++ {
				fmt.Fprintf(sb, "%scase %d:\n", indent, c)
				genStmts(r, depth-1, loops, sb, indent+"\t")
			}
			if r.Intn(2) == 0 {
				fmt.Fprintf(sb, "%sdefault:\n", indent)
				genStmts(r, depth-1, loops, sb, indent+"\t")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case 4:
			fmt.Fprintf(sb, "%sfor range ch {\n", indent)
			genStmts(r, depth-1, loops+1, sb, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case 5:
			fmt.Fprintf(sb, "%s{\n", indent)
			genStmts(r, depth-1, loops, sb, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case 6:
			fmt.Fprintf(sb, "%sx++\n", indent)
		case 7:
			fmt.Fprintf(sb, "%sreturn\n", indent)
			return // anything after is dead; keep programs mostly live
		case 8:
			if loops > 0 {
				if r.Intn(2) == 0 {
					fmt.Fprintf(sb, "%sbreak\n", indent)
				} else {
					fmt.Fprintf(sb, "%scontinue\n", indent)
				}
				return
			}
			fmt.Fprintf(sb, "%sx--\n", indent)
		default:
			fmt.Fprintf(sb, "%sx += %d\n", indent, r.Intn(9))
		}
	}
}

// TestCFGDominatorReachabilityProperty: for every generated program, every
// block reachable from entry has a dominator chain that terminates at
// entry, every unreachable block has none, and pred/succ lists mirror
// each other.
func TestCFGDominatorReachabilityProperty(t *testing.T) {
	check := func(seed progSeed) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		var sb strings.Builder
		sb.WriteString("package p\n\nfunc f(x int, ch chan int) {\n")
		genStmts(r, 3, 0, &sb, "\t")
		sb.WriteString("\t_ = x\n}\n")
		src := sb.String()

		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "gen.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		fd := f.Decls[0].(*ast.FuncDecl)
		c := NewCFG(fset, fd.Body, nil)

		// Mirror property: b in a.Succs exactly as often as a in b.Preds.
		count := func(list []*Block, b *Block) int {
			n := 0
			for _, x := range list {
				if x == b {
					n++
				}
			}
			return n
		}
		for _, a := range c.Blocks {
			for _, s := range a.Succs {
				if count(a.Succs, s) != count(s.Preds, a) {
					t.Errorf("edge mismatch b%d->b%d\n%s", a.Index, s.Index, src)
					return false
				}
			}
		}

		// Reachability from entry.
		reach := map[*Block]bool{c.Entry: true}
		work := []*Block{c.Entry}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range b.Succs {
				if !reach[s] {
					reach[s] = true
					work = append(work, s)
				}
			}
		}

		idom := c.Dominators()
		for _, b := range c.Blocks {
			if !reach[b] {
				if idom[b.Index] != nil {
					t.Errorf("unreachable b%d has idom b%d\n%s", b.Index, idom[b.Index].Index, src)
					return false
				}
				continue
			}
			if b == c.Entry {
				if idom[b.Index] != nil {
					t.Errorf("entry has idom\n%s", src)
					return false
				}
				continue
			}
			// Walk the dominator chain to entry.
			seen := map[*Block]bool{}
			for d := idom[b.Index]; ; d = idom[d.Index] {
				if d == nil {
					t.Errorf("reachable b%d: dominator chain hits nil before entry\n%s", b.Index, src)
					return false
				}
				if seen[d] {
					t.Errorf("reachable b%d: dominator chain cycles\n%s", b.Index, src)
					return false
				}
				seen[d] = true
				if !reach[d] {
					t.Errorf("reachable b%d dominated by unreachable b%d\n%s", b.Index, d.Index, src)
					return false
				}
				if d == c.Entry {
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
