package analysis

import "testing"

func TestCtxCheckFlagsIgnoredContext(t *testing.T) {
	src := `package fix

import "context"

func ignored(ctx context.Context, n int) int { // line 5: ctx never touched
	return n * 2
}

func nilCompareOnly(ctx context.Context) bool { // line 9: comparison is not honoring
	return ctx == nil
}
`
	fs := runOnSource(t, CtxCheck, "fix.go", src)
	sameLines(t, fs, 5, 9)
}

func TestCtxCheckAcceptsHonoredContext(t *testing.T) {
	src := `package fix

import (
	"context"
	"time"
)

func polls(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func errOnly(ctx context.Context) error {
	return ctx.Err()
}

func forwards(ctx context.Context) error {
	return polls(ctx)
}

func derives(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = c.Err()
}

func stores(ctx context.Context) {
	type holder struct{ c context.Context }
	h := holder{c: ctx}
	_ = h
}

func assigns(ctx context.Context) {
	saved := ctx
	_ = saved.Err()
}

func returned(ctx context.Context) context.Context {
	return ctx
}

func methodValue(ctx context.Context) func() <-chan struct{} {
	return ctx.Done
}

func sends(ctx context.Context, ch chan context.Context) {
	ch <- ctx
}
`
	fs := runOnSource(t, CtxCheck, "fix.go", src)
	sameLines(t, fs)
}

func TestCtxCheckSkipsDiscardsAndBodilessFuncs(t *testing.T) {
	src := `package fix

import "context"

// Unnamed and blank parameters are explicit opt-outs.
func discardUnnamed(context.Context, int) {}

func discardBlank(_ context.Context) {}

// Interface methods and function types have no body to check.
type Runner interface {
	Run(ctx context.Context) error
}

type handler func(ctx context.Context) error

func extern(ctx context.Context) int
`
	fs := runOnSource(t, CtxCheck, "fix.go", src)
	sameLines(t, fs)
}

func TestCtxCheckFuncLiterals(t *testing.T) {
	src := `package fix

import "context"

func run(f func(context.Context)) { f(context.Background()) }

func launch(ctx context.Context) {
	// The literal's own ctx shadows the outer one and is unused: flagged.
	run(func(ctx context.Context) {}) // line 9
	// Forwarding the outer ctx into the literal still honors the outer
	// parameter; the literal itself discards explicitly.
	run(func(_ context.Context) { _ = ctx.Err() })
}
`
	fs := runOnSource(t, CtxCheck, "fix.go", src)
	sameLines(t, fs, 9)
}

func TestCtxCheckIgnoreDirective(t *testing.T) {
	src := `package fix

import "context"

//modelcheck:ignore ctxcheck — interface conformance; body is a stub
func stub(ctx context.Context) error {
	return nil
}
`
	fs := runOnSource(t, CtxCheck, "fix.go", src)
	sameLines(t, fs)
}
