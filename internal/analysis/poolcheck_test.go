package analysis

import "testing"

// Poolcheck fixtures declare their own getBuf/putBuf: the analyzer matches
// pool functions by name plus package-path suffix, and LoadSource places
// "internal/rpc/fixture.go" in package path "internal/rpc", so the
// fixtures obey the same rules as the real buffer pool.
const poolFixturePrelude = `package rpc
func getBuf(n int) []byte { return make([]byte, 0, n) }
func putBuf(b []byte)     {}
func use(b []byte) int    { return len(b) }
`

func TestPoolCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "buffer never released leaks",
			src: poolFixturePrelude + `func f() int {
	b := getBuf(64) // line 6: flagged
	return use(b[:0])
}
`,
			want: []int{6},
		},
		{
			name: "early return skips the put",
			src: poolFixturePrelude + `func f(stop bool) int {
	b := getBuf(64) // line 6: flagged — the stop path drops b
	if stop {
		return 0
	}
	n := use(b)
	putBuf(b)
	return n
}
`,
			want: []int{6},
		},
		{
			name: "put on every branch is fine",
			src: poolFixturePrelude + `func f(stop bool) int {
	b := getBuf(64)
	if stop {
		putBuf(b)
		return 0
	}
	n := use(b)
	putBuf(b)
	return n
}
`,
			want: nil,
		},
		{
			name: "deferred put is fine",
			src: poolFixturePrelude + `func f(stop bool) int {
	b := getBuf(64)
	defer putBuf(b)
	if stop {
		return 0
	}
	return use(b)
}
`,
			want: nil,
		},
		{
			name: "use after put",
			src: poolFixturePrelude + `func f() int {
	b := getBuf(64)
	putBuf(b)
	return use(b) // line 8: flagged — b is back in the pool
}
`,
			want: []int{8},
		},
		{
			name: "double put",
			src: poolFixturePrelude + `func f(stop bool) {
	b := getBuf(64)
	if stop {
		putBuf(b)
	}
	putBuf(b) // line 10: flagged — already put on the stop path
}
`,
			want: []int{10},
		},
		{
			name: "returning the buffer transfers ownership",
			src: poolFixturePrelude + `func f() []byte {
	b := getBuf(64)
	b = append(b, 1)
	return b
}
`,
			want: nil,
		},
		{
			name: "channel send transfers ownership",
			src: poolFixturePrelude + `func f(ch chan []byte) {
	b := getBuf(64)
	ch <- b
}
`,
			want: nil,
		},
		{
			name: "handoff to a putting helper resolved via summary",
			src: poolFixturePrelude + `func sink(b []byte) { putBuf(b) }
func f() {
	b := getBuf(64)
	sink(b)
}
`,
			want: nil,
		},
		{
			name: "panic path is exempt",
			src: poolFixturePrelude + `func f(stop bool) {
	b := getBuf(64)
	if stop {
		panic("stop")
	}
	putBuf(b)
}
`,
			want: nil,
		},
		{
			name: "self-append keeps ownership until the put",
			src: poolFixturePrelude + `func f() {
	b := getBuf(64)
	b = append(b, 1, 2, 3)
	putBuf(b)
}
`,
			want: nil,
		},
		{
			name: "re-get leaks the first buffer",
			src: poolFixturePrelude + `func f() {
	b := getBuf(64) // line 6: flagged — overwritten before any release
	b = getBuf(128)
	putBuf(b)
}
`,
			want: []int{6},
		},
		{
			name: "closure-captured buffers are the closure's business",
			src: poolFixturePrelude + `func f(run func(func())) {
	b := getBuf(64)
	run(func() { putBuf(b) })
}
`,
			want: nil,
		},
		{
			name: "get inside a function literal is tracked there",
			src: poolFixturePrelude + `func f(run func(func())) {
	run(func() {
		b := getBuf(64) // line 7: flagged — leaks within the literal
		use(b)
	})
}
`,
			want: []int{7},
		},
		{
			name: "alias assignment moves ownership",
			src: poolFixturePrelude + `var kept []byte
func f() {
	b := getBuf(64)
	kept = b
}
`,
			want: nil,
		},
		{
			name: "helper get leaks at the call site via summary",
			src: poolFixturePrelude + `func getBufN(n int) []byte { return getBuf(n)[:n] }
func f() int {
	b := getBufN(64) // line 7: flagged — the helper got it on f's behalf
	return use(b)
}
`,
			want: []int{7},
		},
		{
			name: "helper get with a put is clean",
			src: poolFixturePrelude + `func getBufN(n int) []byte { return getBuf(n)[:n] }
func f() int {
	b := getBufN(64)
	n := use(b)
	putBuf(b)
	return n
}
`,
			want: nil,
		},
		{
			name: "chained helper gets resolve through the fixpoint",
			src: poolFixturePrelude + `func g1(n int) []byte { return getBuf(n) }
func g2(n int) []byte { return g1(n)[:0] }
func f(stop bool) {
	b := g2(64) // line 8: flagged — the stop path drops b
	if stop {
		return
	}
	putBuf(b)
}
`,
			want: []int{8},
		},
		{
			name: "helper re-get leaks the first buffer",
			src: poolFixturePrelude + `func getBufN(n int) []byte { return getBuf(n)[:n] }
func f() {
	b := getBuf(64) // line 7: flagged — replaced by the helper's buffer
	b = getBufN(128)
	putBuf(b)
}
`,
			want: []int{7},
		},
		{
			name: "conditionally pooled helper is not tracked",
			src: poolFixturePrelude + `func maybe(n int) []byte {
	if n > 1024 {
		return make([]byte, n)
	}
	return getBuf(n)
}
func f() int {
	b := maybe(64)
	return use(b)
}
`,
			want: nil,
		},
		{
			name: "multi-result helper is not tracked",
			src: poolFixturePrelude + `func framed(ok bool) ([]byte, error) {
	if !ok {
		return nil, nil
	}
	return getBuf(64), nil
}
func f() int {
	b, _ := framed(true)
	return use(b)
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: poolFixturePrelude + `func f() int {
	b := getBuf(64) //modelcheck:ignore poolcheck — released by the caller via Close
	return use(b)
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, PoolCheck, "internal/rpc/fixture.go", tc.src), tc.want...)
		})
	}
}
