package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeCacheModule lays down a minimal module for cache tests: one package
// importing a couple of stdlib packages, in its own temp dir so cache
// rebuilds never touch the real repository.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.21\n",
		"main.go": `package main

import (
	"fmt"
	"strings"
)

func main() { fmt.Println(strings.ToUpper("hi")) }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadOnce runs a full cached Load over the module and returns the
// packages, failing the test on error.
func loadOnce(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := Load(LoadConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "cachetest" {
		t.Fatalf("loaded %d packages, want the one cachetest package", len(pkgs))
	}
	return pkgs
}

// TestExportCacheBuildsAndCovers checks the happy path: a cached load
// populates .modelcheck-cache with a manifest covering the module's
// stdlib imports, and a second load verifies it cleanly.
func TestExportCacheBuildsAndCovers(t *testing.T) {
	dir := writeCacheModule(t)
	loadOnce(t, dir)

	cacheDir := filepath.Join(dir, cacheDirName)
	m, err := loadManifest(cacheDir)
	if err != nil {
		t.Fatalf("manifest after cached load: %v", err)
	}
	if m.GoVersion != runtime.Version() {
		t.Errorf("manifest go version %q, want %q", m.GoVersion, runtime.Version())
	}
	for _, path := range []string{"fmt", "strings"} {
		if _, ok := m.Exports[path]; !ok {
			t.Errorf("manifest does not cover %q", path)
		}
	}
	loadOnce(t, dir) // warm-cache load must verify and succeed
}

// TestExportCacheInvalidatesTamperedFile checks stale-cache invalidation:
// corrupting a cached export file must fail verification, and the next
// load must rebuild the cache — never feed corrupt bytes to the importer.
func TestExportCacheInvalidatesTamperedFile(t *testing.T) {
	dir := writeCacheModule(t)
	loadOnce(t, dir)

	cacheDir := filepath.Join(dir, cacheDirName)
	m, err := loadManifest(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := m.Exports["fmt"]
	if !ok {
		t.Fatal("manifest does not cover fmt")
	}
	// Flip one byte, preserving the size so only the checksum can notice.
	full := filepath.Join(cacheDir, entry.File)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(full, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := loadManifest(cacheDir); err == nil {
		t.Fatal("tampered export file passed manifest verification")
	}
	loadOnce(t, dir) // must rebuild, not crash on corrupt export data
	if _, err := loadManifest(cacheDir); err != nil {
		t.Fatalf("manifest not rebuilt after tampering: %v", err)
	}
}

// TestExportCacheInvalidatesGoVersion checks that a manifest written by a
// different toolchain version is rejected and rebuilt: export data is not
// portable across compiler versions.
func TestExportCacheInvalidatesGoVersion(t *testing.T) {
	dir := writeCacheModule(t)
	loadOnce(t, dir)

	cacheDir := filepath.Join(dir, cacheDirName)
	m, err := loadManifest(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	m.GoVersion = "go0.0-stale"
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, manifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := loadManifest(cacheDir); err == nil {
		t.Fatal("stale-version manifest passed verification")
	}
	loadOnce(t, dir)
	m2, err := loadManifest(cacheDir)
	if err != nil {
		t.Fatalf("manifest not rebuilt after version mismatch: %v", err)
	}
	if m2.GoVersion != runtime.Version() {
		t.Errorf("rebuilt manifest version %q, want %q", m2.GoVersion, runtime.Version())
	}
}

// TestExportCacheMatchesSourceImporter checks the equivalence that makes
// the cache safe to enable by default: cached and source-imported loads
// must agree on the type-checked API of the loaded package.
func TestExportCacheMatchesSourceImporter(t *testing.T) {
	dir := writeCacheModule(t)
	cached := loadOnce(t, dir)
	plain, err := Load(LoadConfig{Dir: dir, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 {
		t.Fatalf("NoCache load returned %d packages, want 1", len(plain))
	}
	a, b := cached[0].Types.Scope(), plain[0].Types.Scope()
	if got, want := len(a.Names()), len(b.Names()); got != want {
		t.Fatalf("cached scope has %d names, source scope %d", got, want)
	}
	for _, name := range a.Names() {
		if b.Lookup(name) == nil {
			t.Errorf("name %q present with cache, absent without", name)
		}
	}
}

// TestManifestCoversUnsafe checks the unsafe special case: the gc importer
// resolves "unsafe" internally, so coverage must not demand export data
// for it.
func TestManifestCoversUnsafe(t *testing.T) {
	m := &cacheManifest{Exports: map[string]exportEntry{"fmt": {}}}
	if !manifestCovers(m, map[string]bool{"fmt": true, "unsafe": true}) {
		t.Error("unsafe must not require export data")
	}
	if manifestCovers(m, map[string]bool{"net/http": true}) {
		t.Error("uncovered import must fail coverage")
	}
	if manifestCovers(nil, map[string]bool{}) {
		t.Error("nil manifest must never cover")
	}
}
