package analysis

import "testing"

func TestLockCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "lock with no release leaks",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock() // line 5: flagged
}
`,
			want: []int{5},
		},
		{
			name: "lock with deferred unlock is fine",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock()
	defer mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "lock compute unlock is fine",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f() int {
	mu.Lock()
	v := n
	mu.Unlock()
	return v
}
`,
			want: nil,
		},
		{
			name: "deferred Lock is a deadlock",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	defer mu.Lock() // line 5: flagged
}
`,
			want: []int{5},
		},
		{
			name: "RLock must pair with RUnlock, not Unlock",
			src: `package fixture
import "sync"
var mu sync.RWMutex
func f() {
	mu.RLock() // line 5: flagged (only Unlock follows)
	mu.Unlock()
}
`,
			want: []int{5},
		},
		{
			name: "embedded mutex via field is tracked",
			src: `package fixture
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) bad() {
	s.mu.Lock() // line 5: flagged
}
func (s *S) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: []int{5},
		},
		{
			name: "mutex passed by value is a copy",
			src: `package fixture
import "sync"
func f(mu sync.Mutex) {} // line 3: flagged
func g(mu *sync.Mutex) {}
`,
			want: []int{3},
		},
		{
			name: "struct containing a mutex copied by assignment",
			src: `package fixture
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func f(s *S) int {
	cp := *s // line 8: flagged
	return cp.n
}
`,
			want: []int{8},
		},
		{
			name: "range copying lock-bearing values",
			src: `package fixture
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func f(ss []S) int {
	total := 0
	for _, s := range ss { // line 9: flagged
		total += s.n
	}
	return total
}
`,
			want: []int{9},
		},
		{
			name: "pointers everywhere is fine",
			src: `package fixture
import "sync"
type S struct{ mu sync.Mutex }
func f(ss []*S) {
	for _, s := range ss {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock() //modelcheck:ignore lockcheck — released by the caller
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, LockCheck, "fixture.go", tc.src), tc.want...)
		})
	}
}
