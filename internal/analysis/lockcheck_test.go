package analysis

import "testing"

func TestLockCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "lock with no release leaks",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock() // line 5: flagged
}
`,
			want: []int{5},
		},
		{
			name: "lock with deferred unlock is fine",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock()
	defer mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "lock compute unlock is fine",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f() int {
	mu.Lock()
	v := n
	mu.Unlock()
	return v
}
`,
			want: nil,
		},
		{
			name: "deferred Lock is a deadlock",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	defer mu.Lock() // line 5: flagged
}
`,
			want: []int{5},
		},
		{
			name: "RLock must pair with RUnlock, not Unlock",
			src: `package fixture
import "sync"
var mu sync.RWMutex
func f() {
	mu.RLock() // line 5: flagged (only Unlock follows)
	mu.Unlock()
}
`,
			want: []int{5},
		},
		{
			name: "embedded mutex via field is tracked",
			src: `package fixture
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) bad() {
	s.mu.Lock() // line 5: flagged
}
func (s *S) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: []int{5},
		},
		{
			name: "mutex passed by value is a copy",
			src: `package fixture
import "sync"
func f(mu sync.Mutex) {} // line 3: flagged
func g(mu *sync.Mutex) {}
`,
			want: []int{3},
		},
		{
			name: "struct containing a mutex copied by assignment",
			src: `package fixture
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func f(s *S) int {
	cp := *s // line 8: flagged
	return cp.n
}
`,
			want: []int{8},
		},
		{
			name: "range copying lock-bearing values",
			src: `package fixture
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func f(ss []S) int {
	total := 0
	for _, s := range ss { // line 9: flagged
		total += s.n
	}
	return total
}
`,
			want: []int{9},
		},
		{
			name: "pointers everywhere is fine",
			src: `package fixture
import "sync"
type S struct{ mu sync.Mutex }
func f(ss []*S) {
	for _, s := range ss {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock() //modelcheck:ignore lockcheck — released by the caller
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, LockCheck, "fixture.go", tc.src), tc.want...)
		})
	}
}

// TestLockCheckPathSensitive exercises the CFG-driven release rule: paths,
// not mere presence of an Unlock somewhere in the function, decide whether
// a lock leaks. The first case is exactly what the old function-scoped
// heuristic could not see.
func TestLockCheckPathSensitive(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "early return between Lock and Unlock leaks",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f(stop bool) int {
	mu.Lock() // line 6: flagged — the stop path returns while holding mu
	if stop {
		return 0
	}
	v := n
	mu.Unlock()
	return v
}
`,
			want: []int{6},
		},
		{
			name: "unlock on every branch is fine",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f(stop bool) int {
	mu.Lock()
	if stop {
		mu.Unlock()
		return 0
	}
	v := n
	mu.Unlock()
	return v
}
`,
			want: nil,
		},
		{
			name: "panic path is exempt",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f(stop bool) int {
	mu.Lock()
	if stop {
		panic("stop")
	}
	v := n
	mu.Unlock()
	return v
}
`,
			want: nil,
		},
		{
			name: "break out of loop skips unlock",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f(xs []int) int {
	total := 0
	for _, x := range xs {
		mu.Lock() // line 8: flagged — break exits the loop with mu held
		if x < 0 {
			break
		}
		total += n + x
		mu.Unlock()
	}
	return total
}
`,
			want: []int{8},
		},
		{
			name: "RLock released by Unlock is not a release",
			src: `package fixture
import "sync"
var mu sync.RWMutex
var n int
func f() int {
	mu.RLock() // line 6: flagged — RLock needs RUnlock
	v := n
	mu.Unlock()
	return v
}
`,
			want: []int{6},
		},
		{
			name: "release helper resolved through call-graph summary",
			src: `package fixture
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func (s *S) done() { s.mu.Unlock() }
func (s *S) Get() int {
	s.mu.Lock()
	v := s.n
	s.done()
	return v
}
`,
			want: nil,
		},
		{
			name: "unlock handed to a launched closure",
			src: `package fixture
import "sync"
var mu sync.Mutex
func f(work func()) {
	mu.Lock()
	go func() {
		work()
		mu.Unlock()
	}()
}
`,
			want: nil,
		},
		{
			name: "function literal body is checked on its own",
			src: `package fixture
import "sync"
var mu sync.Mutex
var n int
func f(stop bool) func() int {
	return func() int {
		mu.Lock() // line 7: flagged — early return inside the literal
		if stop {
			return 0
		}
		v := n
		mu.Unlock()
		return v
	}
}
`,
			want: []int{7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, LockCheck, "fixture.go", tc.src), tc.want...)
		})
	}
}
