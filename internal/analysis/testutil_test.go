package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// runOnSource runs one analyzer over a single-file fixture and returns the
// surviving findings.
func runOnSource(t *testing.T, a *Analyzer, filename, src string) []Finding {
	t.Helper()
	pkg, err := LoadSource(filename, src)
	if err != nil {
		t.Fatalf("LoadSource(%s): %v", filename, err)
	}
	return RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
}

// findingLines projects findings onto their line numbers for compact
// assertions.
func findingLines(fs []Finding) []int {
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = f.Line
	}
	return out
}

// sameLines compares a findings slice against the expected line numbers.
func sameLines(t *testing.T, fs []Finding, want ...int) {
	t.Helper()
	got := findingLines(fs)
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s) on lines %v, want lines %v\n%v", len(got), got, want, fs)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d on line %d, want line %d\n%v", i, got[i], want[i], fs)
		}
	}
}

// writeFixtureModule materializes files (path → contents) as a throwaway
// module rooted at dir.
func writeFixtureModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	files["go.mod"] = "module fixturemod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// loadTempModule materializes files as a throwaway module and loads every
// package in it.
func loadTempModule(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	writeFixtureModule(t, dir, files)
	pkgs, err := Load(LoadConfig{Dir: dir}, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}
