package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Module-wide static call graph with per-function dataflow summaries.
//
// The graph covers every function and method declared in the loaded
// packages; call edges are static (a call through an interface value or a
// function-typed variable resolves to no node and is treated as unknown).
// Each declared function carries a FuncSummary — a handful of boolean
// facts the flow-sensitive analyzers consume instead of re-deriving
// callee behavior at every call site:
//
//   - paramvalidate asks "does calling f validate the params struct I
//     pass it?" (ValidatesParams) and "does f hand me back a params
//     struct that still needs validating?" (WatchedResults minus
//     ValidatedResults), which is how helper constructors like
//     experiments.caseStudyParams are chased without annotations;
//   - lockcheck asks "does calling f release this lock on every
//     non-panic path?" (ReleasesLocks, receiver-relative);
//   - poolcheck asks "does f take ownership of the pooled buffer I pass
//     it?" (TakesOwnership) and "does f hand me back a pooled buffer it
//     got on my behalf?" (ReturnsPooled), which is how getBufN-style
//     helpers extend ownership tracking to their call sites.
//
// Summaries are interprocedural: a function that forwards its parameter
// to a validating callee validates it too. They are computed by a
// monotone fixpoint — every flow bit starts false/absent and only flips
// on — iterated in deterministic declaration order until stable, so the
// result is independent of map iteration order. Because the fixpoint is
// a whole-module property, the summary cache (summarycache.go) is
// invalidated whole-module too: any edited file rebuilds every summary.

// CallNode is one declared function or method in the module.
type CallNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls    []*CallNode // unique static callees declared in the module
	CalledBy []*CallNode // inverse edges
}

// CallGraph indexes the module's declared functions.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
	order []*CallNode // deterministic: package load order, then file, then declaration
}

// FuncSummary is the analyzer-facing digest of one function. Slice fields
// are indexed by parameter or result position; lock names are canonical
// receiver-relative text ("·.mu" for a field of the receiver, "mu" for a
// package-level mutex in the function's own package).
type FuncSummary struct {
	// ValidatesParams[i]: the i-th parameter is a watched params struct
	// and every caller may rely on this function validating it (directly
	// via Validate(), by forwarding it to a validating callee, or by
	// embedding it in a watched literal whose Validate cascades).
	ValidatesParams []bool `json:"validates_params,omitempty"`
	// WatchedResults[i]: the i-th result is a watched params struct.
	WatchedResults []bool `json:"watched_results,omitempty"`
	// ValidatedResults[i]: the i-th result is watched AND every return
	// statement yields an already-validated value for it, so callers need
	// not validate again.
	ValidatedResults []bool `json:"validated_results,omitempty"`
	// TakesOwnership[i]: the i-th parameter is a byte slice the function
	// releases to the buffer pool (or forwards to a callee that does);
	// after passing a pooled buffer here the caller must not touch it.
	TakesOwnership []bool `json:"takes_ownership,omitempty"`
	// ReturnsPooled[i]: the i-th result is a pool-owned buffer on EVERY
	// return path — the function gets from the pool on the caller's
	// behalf (directly or through a ReturnsPooled callee), so the call
	// site inherits ownership exactly as if it had called the pool
	// itself. Helpers with conditional or error-path returns ("return
	// nil, err") never earn the bit, so poolcheck only tracks results
	// that are unconditionally pooled.
	ReturnsPooled []bool `json:"returns_pooled,omitempty"`
	// ReleasesLocks: locks this function releases on every non-panic
	// path without acquiring them (unlock-helper shape).
	ReleasesLocks []string `json:"releases_locks,omitempty"`
	// AcquiresLocks: locks this function acquires and still holds on some
	// path to return (lock-helper shape).
	AcquiresLocks []string `json:"acquires_locks,omitempty"`
}

// empty reports whether the summary carries no facts (the common case;
// kept out of the cache file to keep it small).
func (s *FuncSummary) empty() bool {
	anyTrue := func(bs []bool) bool {
		for _, b := range bs {
			if b {
				return true
			}
		}
		return false
	}
	return !anyTrue(s.ValidatesParams) && !anyTrue(s.WatchedResults) &&
		!anyTrue(s.ValidatedResults) && !anyTrue(s.TakesOwnership) &&
		!anyTrue(s.ReturnsPooled) &&
		len(s.ReleasesLocks) == 0 && len(s.AcquiresLocks) == 0
}

// Module bundles the call graph and its summaries for one analyzer run.
type Module struct {
	Graph *CallGraph

	summaries map[*types.Func]*FuncSummary

	// FromCache records whether the summaries were loaded from the
	// on-disk summary cache rather than recomputed.
	FromCache bool
}

// NodeOf returns the call-graph node for a declared function, or nil for
// functions outside the loaded packages.
func (m *Module) NodeOf(fn *types.Func) *CallNode {
	if m == nil || fn == nil {
		return nil
	}
	return m.Graph.Nodes[fn]
}

// SummaryOf returns the summary for a declared function, or nil for
// functions outside the loaded packages.
func (m *Module) SummaryOf(fn *types.Func) *FuncSummary {
	if m == nil || fn == nil {
		return nil
	}
	return m.summaries[fn]
}

// BuildModule constructs the call graph over the loaded packages and
// computes all function summaries in-memory. BuildModuleCached
// (summarycache.go) is the disk-backed variant cmd/modelcheck uses.
func BuildModule(pkgs []*Package) *Module {
	m := newModuleGraph(pkgs)
	m.computeSummaries()
	return m
}

// newModuleGraph builds nodes and static call edges (always fresh — the
// AST walk is cheap; only the summary fixpoint is worth caching).
func newModuleGraph(pkgs []*Package) *Module {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CallNode{Func: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		if n.Decl.Body == nil {
			continue
		}
		seen := map[*CallNode]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(n.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if target, ok := g.Nodes[callee]; ok && !seen[target] {
				seen[target] = true
				n.Calls = append(n.Calls, target)
				target.CalledBy = append(target.CalledBy, n)
			}
			return true
		})
	}
	return &Module{Graph: g, summaries: map[*types.Func]*FuncSummary{}}
}

// funcSig returns a function's signature. (types.Func.Signature() does the
// same but needs go1.23+, above this module's declared minimum.)
func funcSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for calls through function values, interface methods
// with no static target, built-ins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// --- summary computation --------------------------------------------------

// maxSummaryIterations bounds the fixpoint; every iteration must flip at
// least one bit to continue, and call-chain depth in this module is far
// below this.
const maxSummaryIterations = 16

func (m *Module) computeSummaries() {
	for _, n := range m.Graph.order {
		m.summaries[n.Func] = m.seedSummary(n)
	}
	for iter := 0; iter < maxSummaryIterations; iter++ {
		changed := false
		for _, n := range m.Graph.order {
			if n.Decl.Body == nil {
				continue
			}
			if m.refineSummary(n) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// seedSummary derives the summary facts that do not depend on other
// summaries: signature shapes and the intraprocedural lock helpers.
func (m *Module) seedSummary(n *CallNode) *FuncSummary {
	sig := funcSig(n.Func)
	s := &FuncSummary{}
	if nr := sig.Results().Len(); nr > 0 {
		s.WatchedResults = make([]bool, nr)
		s.ValidatedResults = make([]bool, nr)
		s.ReturnsPooled = make([]bool, nr)
		for i := 0; i < nr; i++ {
			s.WatchedResults[i] = isWatchedStruct(sig.Results().At(i).Type())
		}
	}
	if np := sig.Params().Len(); np > 0 {
		s.ValidatesParams = make([]bool, np)
		s.TakesOwnership = make([]bool, np)
	}
	if n.Decl.Body != nil {
		s.ReleasesLocks, s.AcquiresLocks = lockSummary(n)
	}
	return s
}

// recvName returns the declared receiver identifier of a method, or "".
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// canonLockName rewrites a lock's receiver text relative to the method
// receiver: with receiver s, "s.mu" becomes "·.mu" so call sites can
// substitute their own receiver expression back in.
func canonLockName(recv, text string) string {
	if recv != "" && (text == recv || strings.HasPrefix(text, recv+".")) {
		return "·" + strings.TrimPrefix(text, recv)
	}
	return text
}

// lockSummary classifies a function as a lock helper: locks it releases
// on all non-panic paths without acquiring (ReleasesLocks) and locks it
// acquires without ever releasing (AcquiresLocks). Function literals are
// excluded — what a closure does happens when the closure runs, not when
// this function does.
func lockSummary(n *CallNode) (releases, acquires []string) {
	info := n.Pkg.Info
	fset := n.Pkg.Fset
	recv := recvName(n.Decl)
	type counts struct{ locks, unlocks int }
	byName := map[string]*counts{}
	var names []string // deterministic order of first appearance
	forEachTopLevelCall(n.Decl.Body, func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isSyncLockSelector(info, sel) {
			return
		}
		name := canonLockName(recv, exprText(fset, sel.X))
		c := byName[name]
		if c == nil {
			c = &counts{}
			byName[name] = c
			names = append(names, name)
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if !deferred {
				c.locks++
			}
		case "Unlock", "RUnlock":
			c.unlocks++
		}
	})
	var cfg *CFG
	for _, name := range names {
		c := byName[name]
		switch {
		case c.locks == 0 && c.unlocks > 0:
			if cfg == nil {
				cfg = NewCFG(fset, n.Decl.Body, info)
			}
			if !cfg.EscapesWithout(cfg.Entry, 0, func(s ast.Stmt) bool {
				return stmtUnlocks(info, fset, recv, s, name)
			}) {
				releases = append(releases, name)
			}
		case c.locks > 0 && c.unlocks == 0:
			acquires = append(acquires, name)
		}
	}
	return releases, acquires
}

// stmtUnlocks reports whether s is an Unlock/RUnlock (immediate or
// deferred) of the canonical lock name.
func stmtUnlocks(info *types.Info, fset *token.FileSet, recv string, s ast.Stmt, name string) bool {
	var call *ast.CallExpr
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	return isSyncLockSelector(info, sel) && canonLockName(recv, exprText(fset, sel.X)) == name
}

// forEachTopLevelCall visits every call that executes as part of this
// body's own control flow — expression statements, defers, and calls
// nested in other expressions — but not calls inside function literals.
func forEachTopLevelCall(body *ast.BlockStmt, f func(call *ast.CallExpr, deferred bool)) {
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			f(n, deferredCalls[n])
		}
		return true
	})
}

// refineSummary recomputes the interprocedural facts for one function
// against the current summaries of its callees; returns whether anything
// changed. All facts are monotone (false→true only), so iteration
// converges.
func (m *Module) refineSummary(n *CallNode) bool {
	s := m.summaries[n.Func]
	info := n.Pkg.Info
	sig := funcSig(n.Func)
	changed := false

	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	paramOf := func(e ast.Expr) (int, bool) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		i, ok := paramIdx[info.Uses[id]]
		return i, ok
	}
	set := func(bs []bool, i int) {
		if i < len(bs) && !bs[i] {
			bs[i] = true
			changed = true
		}
	}

	// ValidatesParams and TakesOwnership: scan every call and watched
	// literal for parameters in validated/owned positions. Closures are
	// included on the benefit-of-the-doubt principle the analyzers share:
	// a validation that happens inside a local closure still happens.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
				if i, ok := paramOf(sel.X); ok && watchedParam(sig, i) {
					set(s.ValidatesParams, i)
				}
			}
			if isPoolPutCall(info, node) && len(node.Args) == 1 {
				if i, ok := paramOf(node.Args[0]); ok {
					set(s.TakesOwnership, i)
				}
			}
			callee := staticCallee(info, node)
			cs := m.SummaryOf(callee)
			for j, arg := range node.Args {
				i, ok := paramOf(arg)
				if !ok {
					continue
				}
				if watchedParam(sig, i) {
					if callee != nil && callee.Pkg() != nil && isParamPkgPath(callee.Pkg().Path()) {
						// Param-package entry points validate by rule 1.
						set(s.ValidatesParams, i)
					} else if cs != nil && j < len(cs.ValidatesParams) && cs.ValidatesParams[j] {
						set(s.ValidatesParams, i)
					}
				}
				if cs != nil && j < len(cs.TakesOwnership) && cs.TakesOwnership[j] {
					set(s.TakesOwnership, i)
				}
			}
		case *ast.CompositeLit:
			if !isWatchedStruct(info.TypeOf(node)) {
				return true
			}
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if i, ok := paramOf(v); ok && watchedParam(sig, i) {
					set(s.ValidatesParams, i)
				}
			}
		}
		return true
	})

	// ValidatedResults: result i is validated when every return statement
	// (of this body, not of nested closures) yields a validated value in
	// position i.
	for i := 0; i < sig.Results().Len(); i++ {
		if !s.WatchedResults[i] || s.ValidatedResults[i] {
			continue
		}
		returns := collectReturns(n.Decl.Body)
		if len(returns) == 0 {
			continue
		}
		all := true
		for _, ret := range returns {
			if len(ret.Results) != sig.Results().Len() || !m.validatedExpr(n, ret.Results[i], i) {
				all = false
				break
			}
		}
		if all {
			s.ValidatedResults[i] = true
			changed = true
		}
	}

	// ReturnsPooled: result i is pool-owned when every return statement
	// (of this body, not of nested closures) yields a pool get — or a
	// ReturnsPooled callee's result — in position i. A single
	// non-pooled return (the nil of an error path, a make fallback)
	// keeps the bit off.
	for i := 0; i < sig.Results().Len(); i++ {
		if s.ReturnsPooled[i] {
			continue
		}
		returns := collectReturns(n.Decl.Body)
		if len(returns) == 0 {
			continue
		}
		all := true
		for _, ret := range returns {
			if len(ret.Results) != sig.Results().Len() || !m.pooledExpr(n, ret.Results[i]) {
				all = false
				break
			}
		}
		if all {
			s.ReturnsPooled[i] = true
			changed = true
		}
	}
	return changed
}

// pooledExpr reports whether a returned expression hands the caller a
// pool-owned buffer: a pool get call (optionally resliced, the
// `getBuf(n)[:n]` shape) or a call to a single-result callee whose
// summary marks its result pooled.
func (m *Module) pooledExpr(n *CallNode, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if isPoolGetCall(n.Pkg.Info, call) {
		return true
	}
	callee := staticCallee(n.Pkg.Info, call)
	if callee == nil {
		return false
	}
	cs := m.SummaryOf(callee)
	return cs != nil && funcSig(callee).Results().Len() == 1 &&
		len(cs.ReturnsPooled) == 1 && cs.ReturnsPooled[0]
}

// watchedParam reports whether parameter i has a watched params-struct
// type.
func watchedParam(sig *types.Signature, i int) bool {
	return i < sig.Params().Len() && isWatchedStruct(sig.Params().At(i).Type())
}

// collectReturns gathers the return statements belonging to body itself,
// skipping nested function literals.
func collectReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// validatedExpr reports whether a returned expression carries an
// already-validated watched value: the result of a param-package or
// summary-validated call, or a local variable that provably reaches a
// Validate() call (or validating callee) in this body.
func (m *Module) validatedExpr(n *CallNode, e ast.Expr, resultIdx int) bool {
	info := n.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		callee := staticCallee(info, e)
		if callee == nil {
			return false
		}
		if callee.Pkg() != nil && isParamPkgPath(callee.Pkg().Path()) {
			return true
		}
		if cs := m.SummaryOf(callee); cs != nil {
			// Single-value context: this call's first result feeds result
			// resultIdx of the enclosing function.
			return len(cs.ValidatedResults) > 0 && cs.ValidatedResults[0]
		}
		return false
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		return m.objValidated(n, obj)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return m.validatedExpr(n, e.X, resultIdx)
		}
	}
	return false
}

// objValidated reports whether the body calls obj.Validate() or passes
// obj (or &obj) into a validating call.
func (m *Module) objValidated(n *CallNode, obj types.Object) bool {
	info := n.Pkg.Info
	isObj := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" && isObj(sel.X) {
			found = true
			return false
		}
		callee := staticCallee(info, call)
		cs := m.SummaryOf(callee)
		paramPkg := callee != nil && callee.Pkg() != nil && isParamPkgPath(callee.Pkg().Path())
		for j, arg := range call.Args {
			if !isObj(arg) {
				continue
			}
			if paramPkg || (cs != nil && j < len(cs.ValidatesParams) && cs.ValidatesParams[j]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
