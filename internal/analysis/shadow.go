package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow flags `:=` declarations that shadow an error-typed `err` from an
// enclosing scope when the outer `err` is still read after the shadowing
// block closes. That pattern almost always means a nested block intended
// to assign the outer variable —
//
//	err := setup()
//	if retry {
//		_, err := attempt() // shadows; the outer err keeps setup()'s value
//		...
//	}
//	if err != nil { ... } // checks the wrong error
//
// — so the later check silently tests a stale error. Shadows whose outer
// variable is never read again are harmless and not reported, as is a read
// with an intervening write (`x, err := f()` or `err = f()` between the
// block and the read refreshes the value, so nothing stale survives), and
// the idiomatic `if err := f(); err != nil { ... }` form is exempt: its
// scope cannot leak and the init-clause declaration is deliberate. Writes
// are matched to reads by source position, not control flow — precise
// enough in practice for a straight-line error-handling style.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "flags := shadowing of an error-typed err whose outer value is read after the inner scope closes",
	Run:  runShadow,
}

func runShadow(pass *Pass) {
	for _, file := range pass.Files {
		reads, writes := collectAccesses(pass, file)
		initAssigns := collectInitAssigns(file)
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || assign.Tok != token.DEFINE || initAssigns[assign] {
				return true
			}
			for _, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "err" {
					continue
				}
				// Defs is non-nil only when this := mints a new object (a
				// mixed := reusing an outer err has no Defs entry).
				obj := pass.Info.Defs[id]
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				inner := obj.Parent()
				if inner == nil || inner.Parent() == nil {
					continue
				}
				outerScope, outer := inner.Parent().LookupParent("err", id.Pos())
				if outer == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
					continue
				}
				if !isErrorType(outer.Type()) || outer.Pos() >= id.Pos() {
					continue
				}
				// Dangerous only if the outer err is read again once the
				// shadowing scope has closed AND no write refreshes it
				// first — such a read sees the stale pre-block value.
				if staleReadAfter(inner.End(), reads[outer], writes[outer]) {
					pass.Reportf(id, SeverityError,
						"err shadows an error declared at line %d that is read after this block; the outer check will see a stale error",
						pass.Fset.Position(outer.Pos()).Line)
				}
			}
			return true
		})
	}
}

// collectAccesses splits each object's uses into read and write positions.
// A use on the left-hand side of an assignment is a write — whether `err =
// f()` or a mixed `x, err := f()` that re-assigns an existing variable.
func collectAccesses(pass *Pass, file *ast.File) (reads, writes map[types.Object][]token.Pos) {
	assigned := map[*ast.Ident]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assigned[id] = true
			}
		}
		return true
	})
	reads = map[types.Object][]token.Pos{}
	writes = map[types.Object][]token.Pos{}
	for id, obj := range pass.Info.Uses {
		if assigned[id] {
			writes[obj] = append(writes[obj], id.Pos())
		} else {
			reads[obj] = append(reads[obj], id.Pos())
		}
	}
	return reads, writes
}

// staleReadAfter reports whether some read past end has no write between
// end and itself — i.e. it observes the value the variable held before the
// shadowing block ran.
func staleReadAfter(end token.Pos, reads, writes []token.Pos) bool {
	for _, r := range reads {
		if r <= end {
			continue
		}
		refreshed := false
		for _, w := range writes {
			if w > end && w < r {
				refreshed = true
				break
			}
		}
		if !refreshed {
			return true
		}
	}
	return false
}

// collectInitAssigns gathers := statements that are the init clause of an
// if/for/switch — scoped-by-construction declarations the analyzer exempts.
func collectInitAssigns(file *ast.File) map[*ast.AssignStmt]bool {
	set := map[*ast.AssignStmt]bool{}
	mark := func(stmt ast.Stmt) {
		if a, ok := stmt.(*ast.AssignStmt); ok {
			set[a] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			mark(s.Init)
		case *ast.ForStmt:
			mark(s.Init)
		case *ast.SwitchStmt:
			mark(s.Init)
		case *ast.TypeSwitchStmt:
			mark(s.Init)
		}
		return true
	})
	return set
}
