package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop flags discarded error returns: a call used as a bare statement
// whose result tuple contains an error, a blank identifier assigned an
// error value (`_ = f()`, `v, _ := f()`), and deferred error-returning
// calls. A short allowlist covers calls that cannot meaningfully fail:
// writes to strings.Builder and bytes.Buffer (documented to never return a
// non-nil error), fmt printing to stdout/stderr, and `defer x.Close()` on
// read paths where the error has nowhere to go.
//
// Test files carry the documented teardown rule, in two parts. First,
// bare error-returning calls inside a function literal passed to
// testing's Cleanup are legal: `t.Cleanup(func() { client.Close() })` is
// the canonical teardown idiom and the error has nowhere useful to go —
// the test already passed or failed on its own assertions. Second, the
// blank identifier is accepted as a visible, deliberate discard in
// _test.go files (`v, _ := f()`, `_ = f()`): the test asserts on the
// value it kept, dedicated failure-case tests cover the error path, and
// an unhandled failure still surfaces through those assertions.
// Invisible discards — a bare `client.Close()` statement in a test body
// — stay flagged: nothing marks them as deliberate.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns from non-allowlisted calls",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		var cleanups []posSpan
		if inTestFile(pass, file) {
			cleanups = cleanupSpans(pass, file)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				if call, ok := node.X.(*ast.CallExpr); ok {
					if !inSpans(cleanups, call.Pos()) {
						checkDroppedCall(pass, call, false)
					}
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, node.Call, true)
			case *ast.GoStmt:
				// Errors from a goroutine body are the body's problem; the
				// spawned call itself returning an error is still a drop.
				checkDroppedCall(pass, node.Call, false)
			case *ast.AssignStmt:
				checkBlankAssign(pass, node)
			}
			return true
		})
	}
}

// posSpan is a half-open source range.
type posSpan struct{ from, to token.Pos }

func inSpans(spans []posSpan, p token.Pos) bool {
	for _, s := range spans {
		if s.from <= p && p < s.to {
			return true
		}
	}
	return false
}

// cleanupSpans collects the source ranges of function literals passed to
// testing's Cleanup (on *testing.T, *testing.B, *testing.F, or the
// testing.TB interface) — the teardown bodies the test-file rule exempts.
func cleanupSpans(pass *Pass, file *ast.File) []posSpan {
	var spans []posSpan
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Cleanup" {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "testing" {
			return true
		}
		if fl, ok := call.Args[0].(*ast.FuncLit); ok {
			spans = append(spans, posSpan{fl.Pos(), fl.End()})
		}
		return true
	})
	return spans
}

// checkDroppedCall flags a call statement whose results include an error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, deferred bool) {
	if !resultsIncludeError(pass, call) {
		return
	}
	if callAllowlisted(pass, call, deferred) {
		return
	}
	pass.Reportf(call, SeverityError,
		"result of %s includes an error that is discarded; handle it or annotate with //modelcheck:ignore errdrop",
		calleeLabel(pass, call))
}

// checkBlankAssign flags blank identifiers that swallow an error value.
// Test files are exempt: there the blank identifier is the documented
// visible-discard idiom (see the analyzer doc).
func checkBlankAssign(pass *Pass, assign *ast.AssignStmt) {
	if inTestFile(pass, assign) {
		return
	}
	// Form 1: x, _ := f() — one call, several results.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.Info.TypeOf(call).(*types.Tuple)
		if !ok || callAllowlisted(pass, call, false) {
			return
		}
		for i, lhs := range assign.Lhs {
			if i < tuple.Len() && isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs, SeverityError,
					"error result of %s is assigned to the blank identifier; handle it or annotate with //modelcheck:ignore errdrop",
					calleeLabel(pass, call))
			}
		}
		return
	}
	// Form 2: _ = f(), a, _ = f(), g() — element-wise assignment.
	if len(assign.Rhs) != len(assign.Lhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := assign.Rhs[i]
		if !isErrorType(pass.Info.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && callAllowlisted(pass, call, false) {
			continue
		}
		pass.Reportf(lhs, SeverityError,
			"error value is assigned to the blank identifier; handle it or annotate with //modelcheck:ignore errdrop")
	}
}

// resultsIncludeError reports whether the call's results contain an error.
func resultsIncludeError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// callAllowlisted reports whether dropping the call's error is accepted.
func callAllowlisted(pass *Pass, call *ast.CallExpr, deferred bool) bool {
	obj := calleeObject(pass, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	// defer x.Close() is idiomatic on read paths; write paths should check
	// Close explicitly, which this cannot distinguish — those stay the
	// author's responsibility (and the repo's write paths do check).
	if deferred && name == "Close" {
		return true
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if infallibleWriter(recv.Type()) {
				return true
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 && allowlistedWriterArg(pass, call.Args[0]) {
					return true
				}
			}
		}
	}
	return false
}

// infallibleWriter reports whether the receiver is a writer documented to
// never return a non-nil error.
func infallibleWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// allowlistedWriterArg reports whether an fmt.Fprint* destination makes the
// dropped error acceptable: stdout/stderr or an infallible writer.
func allowlistedWriterArg(pass *Pass, arg ast.Expr) bool {
	if infallibleWriter(pass.Info.TypeOf(arg)) {
		return true
	}
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// calleeObject resolves the called function's object, if any.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// calleeLabel names the callee for diagnostics.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
