package analysis

import "testing"

func TestFloatCmp(t *testing.T) {
	cases := []struct {
		name string
		file string
		src  string
		want []int // lines with findings
	}{
		{
			name: "flags equality and inequality on float64",
			file: "fixture.go",
			src: `package fixture
func f(a, b float64) bool {
	if a == b { // line 3: flagged
		return true
	}
	return a != b // line 6: flagged
}
`,
			want: []int{3, 6},
		},
		{
			name: "flags switch on float tag",
			file: "fixture.go",
			src: `package fixture
func f(v float64) int {
	switch v { // line 3: flagged
	case 1:
		return 1
	}
	return 0
}
`,
			want: []int{3},
		},
		{
			name: "ordered comparisons and ints are fine",
			file: "fixture.go",
			src: `package fixture
func f(a, b float64, i, j int) bool {
	return a < b || a >= b || i == j || i != j
}
`,
			want: nil,
		},
		{
			name: "constant folding is exempt",
			file: "fixture.go",
			src: `package fixture
const eps = 1e-9
var ok = eps == 1e-9
`,
			want: nil,
		},
		{
			name: "float32 is covered too",
			file: "fixture.go",
			src: `package fixture
func f(a, b float32) bool { return a == b }
`,
			want: []int{2},
		},
		{
			name: "internal/dist hosts the epsilon helpers and is exempt",
			file: "internal/dist/fixture.go",
			src: `package dist
func AlmostEqual(a, b, eps float64) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "golden-value rule: test files may pin against a constant",
			file: "fixture_test.go",
			src: `package fixture
func share() float64 { return 0.64 }
func check() bool {
	return share() == 0.64
}
`,
			want: nil,
		},
		{
			name: "golden-value rule: constant on the left works too",
			file: "fixture_test.go",
			src: `package fixture
func share() float64 { return 0.64 }
var ok = 0.64 != share()
`,
			want: nil,
		},
		{
			name: "computed comparisons stay flagged in test files",
			file: "fixture_test.go",
			src: `package fixture
func share() float64 { return 0.64 }
func check() bool {
	return share() == share()*2 // line 4: flagged — both sides computed
}
`,
			want: []int{4},
		},
		{
			name: "golden-value rule does not apply outside test files",
			file: "fixture.go",
			src: `package fixture
func share() float64 { return 0.64 }
var ok = share() == 0.64 // line 3: flagged — non-test file
`,
			want: []int{3},
		},
		{
			name: "trailing ignore directive suppresses",
			file: "fixture.go",
			src: `package fixture
func f(a, b float64) bool {
	return a == b //modelcheck:ignore floatcmp — deliberate exact sentinel
}
`,
			want: nil,
		},
		{
			name: "standalone ignore directive covers the next line",
			file: "fixture.go",
			src: `package fixture
func f(a, b float64) bool {
	//modelcheck:ignore floatcmp
	return a == b
}
`,
			want: nil,
		},
		{
			name: "ignore directive for a different analyzer does not suppress",
			file: "fixture.go",
			src: `package fixture
func f(a, b float64) bool {
	return a == b //modelcheck:ignore errdrop
}
`,
			want: []int{3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameLines(t, runOnSource(t, FloatCmp, tc.file, tc.src), tc.want...)
		})
	}
}
