package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output, encoded with nothing but encoding/json so the tool
// stays dependency-free. Only the slice of the format that code-scanning
// UIs actually consume is emitted: one run, the analyzer suite as the
// driver's rules, and one result per finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps a finding severity onto the SARIF level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return "note"
}

// WriteSARIF renders the findings of one run as a SARIF 2.1.0 log. Every
// analyzer in the suite appears as a rule even with zero findings, so
// consumers can tell "clean" from "not run". File paths are emitted
// slash-separated and, when relative, unchanged — CI uploads run from the
// module root, which is what code-scanning expects URIs to be relative to.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			// A finding from an analyzer outside the declared suite still
			// needs a rule; append one on the fly.
			idx = len(rules)
			ruleIndex[f.Analyzer] = idx
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: f.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "modelcheck", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
