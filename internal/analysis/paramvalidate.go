package analysis

import (
	"go/ast"
	"go/types"
)

// paramPackages are the packages whose exported structs carry model
// invariants enforced by a Validate() error method (core.Params,
// core.Kernel, config.ServiceConfig, ...). Matched by path suffix.
var paramPackages = []string{"internal/core", "internal/config"}

// ParamValidate enforces the validation contract around parameter structs
// (any struct declared in internal/core or internal/config that has a
// `Validate() error` method). Two rules:
//
//  1. Inside those packages, every exported function or method taking such
//     a struct must validate it: either call param.Validate() or forward
//     the param (or a copy) to another call that does. Methods on the
//     watched struct itself are exempt — they are the invariant's home.
//
//  2. Everywhere else, a composite literal of a watched type must reach a
//     Validate() call on some local path: directly, via the variable it is
//     assigned to, by being passed into a core/config call (rule 1
//     guarantees those validate), into a call whose call-graph summary
//     says it validates that argument, or by being embedded in another
//     watched literal whose Validate cascades. Literals that are returned
//     are the caller's responsibility — and the caller is checked: a
//     variable assigned from a helper constructor whose summary returns an
//     unvalidated watched struct (e.g. experiments.caseStudyParams) is
//     held to the same reach-a-Validate rule as an inline literal.
//
// Cross-function behavior comes from the call-graph summaries
// (callgraph.go): "does f validate its i-th argument" and "does f return
// an already-validated struct" are summary bits, so helpers are chased
// without annotations while unresolvable (external) callees keep the
// benefit of the doubt.
var ParamValidate = &Analyzer{
	Name: "paramvalidate",
	Doc:  "flags parameter structs that can reach the model without a Validate() call",
	Run:  runParamValidate,
}

func isParamPkgPath(path string) bool {
	for _, p := range paramPackages {
		if pkgPathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// isWatchedStruct reports whether t (or *t) is a named struct from a param
// package with a Validate() error method.
func isWatchedStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !isParamPkgPath(named.Obj().Pkg().Path()) {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(named, true, named.Obj().Pkg(), "Validate")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

func runParamValidate(pass *Pass) {
	inParamPkg := isParamPkgPath(pass.PkgPath)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inParamPkg {
				checkEntryPoint(pass, fn)
			} else {
				checkConstructions(pass, fn)
			}
		}
	}
}

// checkEntryPoint implements rule 1 for one function declaration.
func checkEntryPoint(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() {
		return
	}
	// Methods on a watched struct maintain the invariant themselves.
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if isWatchedStruct(pass.Info.TypeOf(fn.Recv.List[0].Type)) {
			return
		}
	}
	if fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		if !isWatchedStruct(pass.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if !paramHandled(pass, fn.Body, obj) {
				pass.Reportf(name, SeverityError,
					"exported %s takes %s but neither calls its Validate() nor forwards it to a call that does",
					fn.Name.Name, name.Name)
			}
		}
	}
}

// paramHandled reports whether the watched parameter obj is validated in
// body: p.Validate() is called, p (or &p, or a direct copy of p) is passed
// to a call that validates it — a callee whose summary validates that
// argument position, or an unresolvable callee given the benefit of the
// doubt — or p is embedded in another watched literal.
func paramHandled(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	// Track direct copies: q := p.
	tracked := map[types.Object]bool{obj: true}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && tracked[pass.Info.Uses[id]] {
				if lhsID, ok := assign.Lhs[i].(*ast.Ident); ok {
					if def := pass.Info.Defs[lhsID]; def != nil {
						tracked[def] = true
					} else if use := pass.Info.Uses[lhsID]; use != nil {
						tracked[use] = true
					}
				}
			}
		}
		return true
	})
	usesTracked := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tracked[pass.Info.Uses[e]]
		case *ast.UnaryExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				return tracked[pass.Info.Uses[id]]
			}
		}
		return false
	}
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Validate" && usesTracked(sel.X) {
					handled = true
					return false
				}
			}
			sum := pass.Mod.SummaryOf(staticCallee(pass.Info, node))
			for j, arg := range node.Args {
				if !usesTracked(arg) {
					continue
				}
				if sum != nil {
					// Resolvable module callee: forwarding counts only if
					// its summary validates this argument position.
					if j < len(sum.ValidatesParams) && sum.ValidatesParams[j] {
						handled = true
						return false
					}
					continue
				}
				// External or unresolvable callee: benefit of the doubt.
				handled = true
				return false
			}
		case *ast.CompositeLit:
			if isWatchedStruct(pass.Info.TypeOf(node)) {
				for _, elt := range node.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if usesTracked(v) {
						handled = true
						return false
					}
				}
			}
		}
		return true
	})
	return handled
}

// checkConstructions implements rule 2 for one function declaration.
func checkConstructions(pass *Pass, fn *ast.FuncDecl) {
	// First pass: classify every watched composite literal's immediate
	// context; collect variables holding watched literals.
	type pending struct {
		lit *ast.CompositeLit
		obj types.Object // variable the literal is assigned to, if any
	}
	var pendings []pending

	// parentOf maps each node to its parent for context classification.
	parentOf := map[ast.Node]ast.Node{}
	for _, root := range []ast.Node{fn.Body} {
		var stack []ast.Node
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if len(stack) > 0 {
				parentOf[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isWatchedStruct(pass.Info.TypeOf(lit)) {
			return true
		}
		ctx := parentOf[lit]
		if u, ok := ctx.(*ast.UnaryExpr); ok { // &T{...}
			ctx = parentOf[u]
		}
		switch ctxNode := ctx.(type) {
		case *ast.ReturnStmt:
			return true // caller's responsibility
		case *ast.KeyValueExpr, *ast.CompositeLit:
			// Embedded in another literal: if the parent literal is watched
			// its Validate cascades; if not, fall through to flag.
			p := ctx
			for {
				if kv, ok := p.(*ast.KeyValueExpr); ok {
					p = parentOf[kv]
					continue
				}
				break
			}
			if plit, ok := p.(*ast.CompositeLit); ok {
				t := pass.Info.TypeOf(plit)
				if isWatchedStruct(t) || insideWatchedLiteral(pass, parentOf, plit) {
					return true
				}
			}
			pass.Reportf(lit, SeverityError,
				"%s constructed inside a non-validating literal; call Validate() before use", litName(pass, lit))
			return true
		case *ast.CallExpr:
			if callReachesValidation(pass, ctxNode, lit) {
				return true
			}
			pass.Reportf(lit, SeverityError,
				"%s passed to %s which is outside internal/core·config; validate it first or let a core/config entry point receive it",
				litName(pass, lit), calleeLabel(pass, ctxNode))
			return true
		case *ast.SelectorExpr:
			// T{...}.Validate() or field read; the Validate case is fine,
			// a bare field read means the struct is used unvalidated.
			if ctxNode.Sel.Name == "Validate" {
				return true
			}
		case *ast.AssignStmt:
			for i, rhs := range ctxNode.Rhs {
				r := ast.Unparen(rhs)
				if u, ok := r.(*ast.UnaryExpr); ok {
					r = ast.Unparen(u.X)
				}
				if r == ast.Expr(lit) && i < len(ctxNode.Lhs) {
					if id, ok := ctxNode.Lhs[i].(*ast.Ident); ok {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil {
							pendings = append(pendings, pending{lit: lit, obj: obj})
							return true
						}
					}
				}
			}
		case *ast.ValueSpec: // var p = T{...}
			for i, v := range ctxNode.Values {
				r := ast.Unparen(v)
				if u, ok := r.(*ast.UnaryExpr); ok {
					r = ast.Unparen(u.X)
				}
				if r == ast.Expr(lit) && i < len(ctxNode.Names) {
					if obj := pass.Info.Defs[ctxNode.Names[i]]; obj != nil {
						pendings = append(pendings, pending{lit: lit, obj: obj})
						return true
					}
				}
			}
		}
		pass.Reportf(lit, SeverityError,
			"%s constructed without reaching a Validate() call in this function", litName(pass, lit))
		return true
	})

	// Helper constructors: a variable assigned from a call whose summary
	// returns a watched struct that is NOT already validated is as suspect
	// as an inline literal, and resolved the same way.
	type pendingCall struct {
		call *ast.CallExpr
		obj  types.Object
		name string // callee label for the diagnostic
	}
	var callPendings []pendingCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pass.Info, call)
		sum := pass.Mod.SummaryOf(callee)
		if sum == nil {
			return true
		}
		// Param-package constructors are rule 1's territory: they hand out
		// validated (or error-rejected) values.
		if callee.Pkg() != nil && isParamPkgPath(callee.Pkg().Path()) {
			return true
		}
		for i, lhs := range assign.Lhs {
			if i >= len(sum.WatchedResults) || !sum.WatchedResults[i] || sum.ValidatedResults[i] {
				continue
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				callPendings = append(callPendings, pendingCall{call: call, obj: obj, name: callee.Name()})
			}
		}
		return true
	})

	// Second pass: resolve variables holding watched literals or
	// unvalidated helper-constructor results.
	for _, p := range pendings {
		if !variableValidated(pass, fn.Body, p.obj) {
			pass.Reportf(p.lit, SeverityError,
				"%s assigned to %s but no path in this function calls %s.Validate() or hands it to a core/config entry point",
				litName(pass, p.lit), p.obj.Name(), p.obj.Name())
		}
	}
	for _, p := range callPendings {
		if !variableValidated(pass, fn.Body, p.obj) {
			pass.Reportf(p.call, SeverityError,
				"%s returns an unvalidated parameter struct assigned to %s; no path in this function calls %s.Validate() or hands it to a validating call",
				p.name, p.obj.Name(), p.obj.Name())
		}
	}
}

// insideWatchedLiteral walks up through nested composite literals looking
// for a watched ancestor.
func insideWatchedLiteral(pass *Pass, parentOf map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := parentOf[n]; cur != nil; cur = parentOf[cur] {
		switch c := cur.(type) {
		case *ast.CompositeLit:
			if isWatchedStruct(pass.Info.TypeOf(c)) {
				return true
			}
		case *ast.BlockStmt, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// callReachesValidation reports whether passing the literal to this call
// satisfies the contract: the callee lives in a param package (rule 1 makes
// those validate) or its call-graph summary validates the argument
// position the literal occupies.
func callReachesValidation(pass *Pass, call *ast.CallExpr, lit *ast.CompositeLit) bool {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if isParamPkgPath(obj.Pkg().Path()) {
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sum := pass.Mod.SummaryOf(fn)
	if sum == nil {
		return false
	}
	for j, arg := range call.Args {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		if e == ast.Expr(lit) {
			return j < len(sum.ValidatesParams) && sum.ValidatesParams[j]
		}
	}
	return false
}

// variableValidated reports whether the variable obj reaches validation
// within body: obj.Validate() is called, obj (or &obj) is an argument to a
// param-package call, or obj is embedded in a watched literal.
func variableValidated(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.Uses[e] == obj
		case *ast.UnaryExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				return pass.Info.Uses[id] == obj
			}
		}
		return false
	}
	validated := false
	ast.Inspect(body, func(n ast.Node) bool {
		if validated {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Validate" && usesObj(sel.X) {
					validated = true
					return false
				}
			}
			callee := calleeObject(pass, node)
			paramPkg := callee != nil && callee.Pkg() != nil && isParamPkgPath(callee.Pkg().Path())
			var sum *FuncSummary
			if fn, ok := callee.(*types.Func); ok {
				sum = pass.Mod.SummaryOf(fn)
			}
			for j, arg := range node.Args {
				if !usesObj(arg) {
					continue
				}
				if paramPkg || (sum != nil && j < len(sum.ValidatesParams) && sum.ValidatesParams[j]) {
					validated = true
					return false
				}
			}
			// Method call on the variable itself, e.g. cfg.Apply().
			if paramPkg {
				if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && usesObj(sel.X) {
					validated = true
					return false
				}
			}
		case *ast.CompositeLit:
			if isWatchedStruct(pass.Info.TypeOf(node)) {
				for _, elt := range node.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if usesObj(v) {
						validated = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if usesObj(res) {
					validated = true // caller's responsibility
					return false
				}
			}
		}
		return true
	})
	return validated
}

// litName renders the literal's type for diagnostics.
func litName(pass *Pass, lit *ast.CompositeLit) string {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return "parameter struct"
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}
